#include "wm/memory.h"

#include <algorithm>

namespace jsk::wm {

namespace {

void join(std::vector<std::uint32_t>& dst, const std::vector<std::uint32_t>& src)
{
    if (src.size() > dst.size()) dst.resize(src.size(), 0);
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] = std::max(dst[i], src[i]);
}

}  // namespace

void memory::set_mode(mode m)
{
    mode_ = m;
    reset();
}

void memory::reset()
{
    cells_.clear();
    clocks_.clear();
    pending_.clear();
    enumerated_reads_ = 0;
}

void memory::on_post(sim::task_id posted, sim::thread_id target, sim::thread_id source)
{
    (void)target;
    if (!relaxed() || source == sim::no_thread) return;
    pending_[posted] = clock_of(source);
}

void memory::on_execute(sim::task_id task, sim::thread_id thread)
{
    if (!relaxed()) return;
    const auto it = pending_.find(task);
    if (it == pending_.end()) return;
    join(clock_of(thread), it->second);
    pending_.erase(it);
}

std::vector<std::uint32_t>& memory::clock_of(sim::thread_id thread)
{
    const auto t = static_cast<std::size_t>(thread);
    if (clocks_.size() <= t) clocks_.resize(t + 1);
    if (clocks_[t].size() <= t) clocks_[t].resize(t + 1, 0);
    return clocks_[t];
}

bool memory::hb_reader(const write_event& w,
                       const std::vector<std::uint32_t>& reader) const
{
    if (w.thread == sim::no_thread) return true;  // init: before everything
    const auto t = static_cast<std::size_t>(w.thread);
    return t < reader.size() && reader[t] >= w.epoch;
}

bool memory::hb_write(const write_event& a, const write_event& b)
{
    if (a.thread == sim::no_thread) return true;
    if (b.thread == sim::no_thread) return false;
    const auto t = static_cast<std::size_t>(a.thread);
    return t < b.clock.size() && b.clock[t] >= a.epoch;
}

bool memory::covers(const write_event& w, part h)
{
    return w.p == part::full || w.p == h;
}

memory::cell& memory::touch(std::uint64_t sab, std::uint32_t slot, double committed)
{
    const auto [it, inserted] = cells_.try_emplace(cell_key(sab, slot));
    if (inserted) {
        write_event init;  // thread == no_thread: happens-before everything
        init.bits = slot_bits(committed);
        it->second.history.push_back(std::move(init));
    }
    return it->second;
}

void memory::readable(const cell& c, part h, const std::vector<std::uint32_t>& reader,
                      std::vector<const write_event*>& out) const
{
    out.clear();
    const auto& hist = c.history;
    for (std::size_t i = hist.size(); i-- > 0;) {  // newest first
        const write_event& w = hist[i];
        if (!covers(w, h)) continue;
        bool obscured = false;
        // A later (in commit order — hb respects it) covering write that
        // both happens-after w and happens-before the reader hides w.
        for (std::size_t j = i + 1; j < hist.size() && !obscured; ++j) {
            const write_event& w2 = hist[j];
            obscured = covers(w2, h) && hb_write(w, w2) && hb_reader(w2, reader);
        }
        if (!obscured) out.push_back(&w);
    }
}

void memory::acquire_newest(const cell& c, std::vector<std::uint32_t>& reader)
{
    if (c.history.empty()) return;
    const write_event& w = c.history.back();
    if (w.thread == sim::no_thread) return;
    join(reader, w.clock);
}

void memory::record_write(std::uint64_t sab, std::uint32_t slot, double committed_before,
                          double value, access acc, std::uint64_t new_bits)
{
    cell& c = touch(sab, slot, committed_before);
    write_event w;
    const sim::thread_id t = sim_ != nullptr ? sim_->current_thread() : sim::no_thread;
    if (t == sim::no_thread) {
        // Harness write from outside any task: it precedes every task that
        // could read the cell, so it behaves like (re)initialisation —
        // collapse the history to it alone.
        c.history.clear();
    } else {
        auto& clk = clock_of(t);
        clk[static_cast<std::size_t>(t)] += 1;
        w.thread = t;
        w.epoch = clk[static_cast<std::size_t>(t)];
        w.clock = clk;
    }
    w.p = acc.p;
    w.ord = acc.ord;
    w.bits = acc.p == part::full ? new_bits : static_cast<std::uint64_t>(to_half(value));
    if (c.history.size() >= k_history) c.history.erase(c.history.begin());
    c.history.push_back(std::move(w));
}

double memory::store(std::uint64_t sab, std::uint32_t slot, double committed,
                     double value, access acc)
{
    const std::uint64_t old_bits = slot_bits(committed);
    const std::uint64_t new_bits = apply_write(old_bits, value, acc.p);
    if (relaxed()) record_write(sab, slot, committed, value, acc, new_bits);
    return slot_value(new_bits);
}

double memory::load(std::uint64_t sab, std::uint32_t slot, double committed, access acc)
{
    const std::uint64_t committed_bits = slot_bits(committed);
    if (!relaxed()) return read_part(committed_bits, acc.p);

    cell& c = touch(sab, slot, committed);
    const sim::thread_id t = sim_ != nullptr ? sim_->current_thread() : sim::no_thread;
    if (acc.ord == ordering::seqcst || t == sim::no_thread) {
        // Seq-cst (or out-of-task harness) read: the commit order is the
        // seq-cst total order, so the committed value is the unique
        // consistent result; acquire the newest write's clock (the sw
        // edge that lets Atomics-synchronised code see no weak behaviour).
        if (t != sim::no_thread) acquire_newest(c, clock_of(t));
        return read_part(committed_bits, acc.p);
    }

    auto& reader = clock_of(t);
    cand_bits_.clear();
    const auto push_candidate = [this](std::uint64_t bits) {
        if (cand_bits_.size() >= k_candidates) return;
        if (std::find(cand_bits_.begin(), cand_bits_.end(), bits) == cand_bits_.end()) {
            cand_bits_.push_back(bits);
        }
    };
    if (acc.p == part::full) {
        readable(c, part::lo, reader, lo_src_);
        readable(c, part::hi, reader, hi_src_);
        cand_bits_.push_back(committed_bits);  // candidate 0 == seq-cst result
        for (const write_event* wl : lo_src_) {
            for (const write_event* wh : hi_src_) {
                // No-tear: two *distinct* full-width (same-size aligned)
                // writes never mix; tearing needs a mixed-size half write.
                if (wl->p == part::full && wh->p == part::full && wl != wh) continue;
                const std::uint64_t lo =
                    wl->p == part::full ? (wl->bits & 0xFFFFFFFFULL) : wl->bits;
                const std::uint64_t hi =
                    wh->p == part::full ? (wh->bits >> 32) : wh->bits;
                push_candidate((hi << 32) | lo);
            }
        }
    } else {
        readable(c, acc.p, reader, lo_src_);
        const std::uint64_t committed_half = acc.p == part::lo
                                                 ? (committed_bits & 0xFFFFFFFFULL)
                                                 : (committed_bits >> 32);
        cand_bits_.push_back(committed_half);
        for (const write_event* w : lo_src_) {
            const std::uint64_t half =
                w->p == part::full
                    ? (acc.p == part::lo ? (w->bits & 0xFFFFFFFFULL) : (w->bits >> 32))
                    : w->bits;
            push_candidate(half);
        }
    }

    std::size_t pick = 0;
    if (cand_bits_.size() > 1) {
        ++enumerated_reads_;
        pick = sim_->choose_value(cand_bits_.size());
    }
    const std::uint64_t bits = cand_bits_[pick];
    return acc.p == part::full ? slot_value(bits) : static_cast<double>(bits);
}

double memory::add(std::uint64_t sab, std::uint32_t slot, double& committed, double delta)
{
    const double old = committed;
    if (relaxed() && sim_ != nullptr && sim_->current_thread() != sim::no_thread) {
        acquire_newest(touch(sab, slot, old), clock_of(sim_->current_thread()));
    }
    committed = store(sab, slot, old, old + delta, seqcst_access);
    return old;
}

double memory::compare_exchange(std::uint64_t sab, std::uint32_t slot, double& committed,
                                double expected, double desired)
{
    const double old = committed;
    if (relaxed() && sim_ != nullptr && sim_->current_thread() != sim::no_thread) {
        acquire_newest(touch(sab, slot, old), clock_of(sim_->current_thread()));
    }
    if (old == expected) committed = store(sab, slot, old, desired, seqcst_access);
    return old;
}

}  // namespace jsk::wm
