// jsk::wm::memory — the axiomatic candidate-execution enumerator.
//
// Under mode::relaxed every SAB access is recorded as an event of a growing
// candidate execution: writes keep (thread, epoch, vector-clock snapshot,
// granularity, payload); happens-before is program order within a task
// chain plus synchronizes-with edges from postMessage (the simulator's
// wm_listener callbacks) and from seq-cst reads-from. An *unordered* read
// then enumerates every consistent reads-from choice the repaired
// ECMAScript model allows:
//
//  * a write is readable unless it is hb-obscured — some covering write
//    both happens-after it and happens-before the reader;
//  * full-width reads pick a (lo-source, hi-source) pair; no-tear forbids
//    mixing two *distinct full-width* writes (same-size aligned accesses
//    never tear), while a half write composed with anything is a legal
//    mixed-size tearing candidate;
//  * candidate 0 is always the committed (newest) value, so the all-zero
//    choice string reproduces seq-cst behaviour exactly — and ddmin
//    shrinking naturally drives witnesses toward it;
//  * seq-cst accesses never enumerate: a seq-cst read returns the committed
//    value (the commit order *is* the seq-cst total order here) and
//    acquires the newest covering write's clock, creating the sw edge.
//
// The chosen candidate index goes through simulation::choose_value — the
// same decision string as schedule choices — so record/replay, shrinking,
// witness keys and the svc store need no new machinery. Enumeration is
// bounded: per-cell history keeps the newest k_history writes and a read
// offers at most k_candidates distinct values (newest first); dropped
// tails under-approximate the model but never break replay determinism.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/simulation.h"
#include "wm/model.h"

namespace jsk::wm {

class memory final : public sim::wm_listener {
public:
    /// Per-cell write-history bound and per-read candidate bound. Small on
    /// purpose: the decision string records a candidate *index*, so replay
    /// only needs the enumeration order to be deterministic, and the
    /// explorer's preemption budget already bounds how many non-zero
    /// choices a run may take.
    static constexpr std::size_t k_history = 8;
    static constexpr std::size_t k_candidates = 6;

    /// Bind the simulation used for choose_value and current-thread
    /// queries. Does not register the listener — the browser does that
    /// when the model switches to relaxed.
    void bind(sim::simulation* sim) { sim_ = sim; }

    void set_mode(mode m);
    [[nodiscard]] mode model() const { return mode_; }
    [[nodiscard]] bool relaxed() const { return mode_ == mode::relaxed; }

    /// Drop all recorded events and clocks (model switch, world reuse).
    void reset();

    // --- sim::wm_listener (postMessage synchronizes-with edges) ---
    void on_post(sim::task_id posted, sim::thread_id target,
                 sim::thread_id source) override;
    void on_execute(sim::task_id task, sim::thread_id thread) override;

    // --- the SAB access surface (called by the context natives) ---

    /// Observe a read of cell (sab, slot) whose committed value is
    /// `committed`. Seq-cst (or seqcst-mode) reads return the committed
    /// value; relaxed unordered reads enumerate candidates and route the
    /// choice through simulation::choose_value.
    double load(std::uint64_t sab, std::uint32_t slot, double committed, access acc);

    /// Apply a write of `value` at granularity `acc.p` to a cell whose
    /// committed value is `committed`; returns the new committed value.
    /// Under relaxed the write is also recorded as a candidate source.
    double store(std::uint64_t sab, std::uint32_t slot, double committed, double value,
                 access acc);

    /// Seq-cst read-modify-write: returns the old committed value and
    /// commits old + delta. (Atomics.add)
    double add(std::uint64_t sab, std::uint32_t slot, double& committed, double delta);

    /// Seq-cst compare-exchange: returns the old committed value and
    /// commits `desired` iff old == expected. (Atomics.compareExchange)
    double compare_exchange(std::uint64_t sab, std::uint32_t slot, double& committed,
                            double expected, double desired);

    /// Reads that were offered more than one candidate (telemetry/tests).
    [[nodiscard]] std::uint64_t enumerated_reads() const { return enumerated_reads_; }

private:
    /// One recorded write event. `thread == sim::no_thread` marks the
    /// implicit initialisation write (and harness writes from outside any
    /// task): it happens-before everything.
    struct write_event {
        sim::thread_id thread = sim::no_thread;
        std::uint32_t epoch = 0;        // writer's own clock after the write
        part p = part::full;
        ordering ord = ordering::unordered;
        std::uint64_t bits = 0;         // full: slot bits; half: value in low 32
        std::vector<std::uint32_t> clock;  // writer clock snapshot at the write
    };

    struct cell {
        std::vector<write_event> history;  // commit order, oldest first
    };

    [[nodiscard]] static std::uint64_t cell_key(std::uint64_t sab, std::uint32_t slot)
    {
        return (sab << 20) ^ (slot & 0xFFFFF);
    }

    /// The cell record, lazily created with the implicit init write seeded
    /// from the current committed bits.
    cell& touch(std::uint64_t sab, std::uint32_t slot, double committed);

    [[nodiscard]] std::vector<std::uint32_t>& clock_of(sim::thread_id thread);

    /// True when `w` happens-before the current state of `thread`'s clock.
    [[nodiscard]] bool hb_reader(const write_event& w,
                                 const std::vector<std::uint32_t>& reader) const;
    /// True when `a` happens-before write `b` (a is in b's snapshot).
    [[nodiscard]] static bool hb_write(const write_event& a, const write_event& b);
    /// True when `w` covers half `h` (h is lo or hi).
    [[nodiscard]] static bool covers(const write_event& w, part h);

    /// Readable (visible, not hb-obscured) covering writes for half `h`,
    /// newest first. `reader` is the reading thread's clock.
    void readable(const cell& c, part h, const std::vector<std::uint32_t>& reader,
                  std::vector<const write_event*>& out) const;

    void record_write(std::uint64_t sab, std::uint32_t slot, double committed_before,
                      double value, access acc, std::uint64_t new_bits);
    void acquire_newest(const cell& c, std::vector<std::uint32_t>& reader);

    sim::simulation* sim_ = nullptr;
    mode mode_ = mode::seqcst;
    std::unordered_map<std::uint64_t, cell> cells_;
    std::vector<std::vector<std::uint32_t>> clocks_;  // per-thread vector clocks
    std::unordered_map<sim::task_id, std::vector<std::uint32_t>> pending_;
    std::uint64_t enumerated_reads_ = 0;

    // scratch (reused per read; the enumerator allocates nothing steady-state)
    std::vector<const write_event*> lo_src_;
    std::vector<const write_event*> hi_src_;
    std::vector<std::uint64_t> cand_bits_;
};

}  // namespace jsk::wm
