// jsk::wm — the repaired ECMAScript SharedArrayBuffer memory model
// (Watt et al., PAPERS.md): access orderings, tear granularity, and the
// browser-level memory-model switch.
//
// The runtime's SAB surface is sequentially consistent by construction —
// tasks are atomic in the DES, so schedule exploration alone can only ever
// see interleaving-order nondeterminism. This module adds the second axis:
// every SAB access carries an `access` descriptor (unordered vs seq-cst,
// full-width vs 32-bit half), and under `mode::relaxed` the unordered reads
// stop returning committed memory and instead enumerate the reads-from
// candidates the axiomatic model allows (wm/memory.h). Under the default
// `mode::seqcst` nothing changes — every existing golden is byte-identical.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace jsk::wm {

/// Access ordering, per the repaired ECMAScript memory model: `unordered`
/// is a plain typed-array read/write (tearable, freely reorderable);
/// `seqcst` is an Atomics.* access (no-tear, totally ordered, and a
/// synchronizes-with edge when a seq-cst read reads a seq-cst write).
enum class ordering : std::uint8_t { unordered = 0, seqcst = 1 };

/// Tear granularity of one access against the 64-bit slot. `full` touches
/// the whole slot; `lo`/`hi` touch one 32-bit half (the mixed-size accesses
/// that make tearing candidates legal — same-size aligned accesses never
/// tear).
enum class part : std::uint8_t { full = 0, lo = 1, hi = 2 };

/// One SAB access descriptor, threaded through the api_table and the
/// context natives. Default-constructed it is a plain unordered full-width
/// access — exactly what every pre-existing call site meant.
struct access {
    ordering ord = ordering::unordered;
    part p = part::full;

    bool operator==(const access&) const = default;
};

inline constexpr access seqcst_access{ordering::seqcst, part::full};

/// The browser-wide memory-model switch. `seqcst` (default) keeps the
/// historical strongly-consistent behaviour; `relaxed` routes unordered
/// reads through the candidate-execution enumerator.
enum class mode : std::uint8_t { seqcst = 0, relaxed = 1 };

inline const char* to_string(mode m)
{
    return m == mode::relaxed ? "relaxed" : "seqcst";
}

inline std::optional<mode> parse_mode(std::string_view text)
{
    if (text == "seqcst") return mode::seqcst;
    if (text == "relaxed") return mode::relaxed;
    return std::nullopt;
}

/// Witness-key program tag: the memory model is part of a trial's identity
/// (the same CVE under relaxed is a different experiment), and the tag
/// rides inside the free-form `program` string so the par cache, the svc
/// store and the wire format all work unchanged. Empty for seqcst — every
/// pre-existing key byte is preserved.
inline std::string program_tag(mode m)
{
    return m == mode::relaxed ? "+relaxed" : "";
}

/// Inverse of program_tag over a suffixed program id: "cve-2013-6646+relaxed"
/// -> ("cve-2013-6646", relaxed); ids without the suffix parse as seqcst.
inline std::pair<std::string, mode> split_program_tag(const std::string& program)
{
    constexpr std::string_view tag = "+relaxed";
    if (program.size() >= tag.size() &&
        std::string_view(program).substr(program.size() - tag.size()) == tag) {
        return {program.substr(0, program.size() - tag.size()), mode::relaxed};
    }
    return {program, mode::seqcst};
}

// --- slot bit manipulation ------------------------------------------------------
// The 64-bit slot is modelled as the bit pattern of its double. Half
// accesses traffic in 32-bit unsigned integers carried as doubles (the way
// a Uint32Array view over the SAB would), so torn values compose and
// decompose deterministically.

inline std::uint64_t slot_bits(double value) { return std::bit_cast<std::uint64_t>(value); }
inline double slot_value(std::uint64_t bits) { return std::bit_cast<double>(bits); }

/// Clamp a half-access operand to u32 (out-of-range and non-finite store 0,
/// like a JS ToUint32 on garbage — the exact value matters less than
/// determinism).
inline std::uint32_t to_half(double value)
{
    if (!(value >= 0.0) || value >= 4294967296.0) return 0;
    return static_cast<std::uint32_t>(value);
}

/// The slot bits after applying a write of `value` at granularity `p` to a
/// slot currently holding `old_bits`.
inline std::uint64_t apply_write(std::uint64_t old_bits, double value, part p)
{
    switch (p) {
        case part::full: return slot_bits(value);
        case part::lo:
            return (old_bits & 0xFFFFFFFF00000000ULL) |
                   static_cast<std::uint64_t>(to_half(value));
        case part::hi:
            return (old_bits & 0x00000000FFFFFFFFULL) |
                   (static_cast<std::uint64_t>(to_half(value)) << 32);
    }
    return old_bits;
}

/// The value a read at granularity `p` observes out of slot bits.
inline double read_part(std::uint64_t bits, part p)
{
    switch (p) {
        case part::full: return slot_value(bits);
        case part::lo: return static_cast<double>(bits & 0xFFFFFFFFULL);
        case part::hi: return static_cast<double>(bits >> 32);
    }
    return slot_value(bits);
}

}  // namespace jsk::wm
