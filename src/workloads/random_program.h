// Seeded random "web programs" for determinism fuzzing.
//
// A seeded generator produces arbitrary mixes of timers, rAF, fetches, DOM
// round trips, workers, messages and clock reads against the interposable
// API surface — exactly as page JavaScript would issue them. The program and
// everything it observes are a pure function of the seed, which is what lets
// the determinism fuzzer (tests/properties/test_program_fuzz.cpp) and the
// schedule-exploration audit (defenses/schedule_audit.h) compare runs across
// physical perturbations and across explored schedules.
#pragma once

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>

#include "runtime/browser.h"

namespace jsk::workloads {

/// Everything a random program observes, serialized for comparison.
struct observation_log {
    std::ostringstream out;
    void note(const std::string& what, double value) { out << what << "=" << value << ";"; }
    void note(const std::string& what) { out << what << ";"; }
    [[nodiscard]] std::string str() const { return out.str(); }
};

/// Generator knobs. Defaults reproduce the historical action mix exactly —
/// every pre-existing (seed -> observations) golden is byte-identical.
struct random_program_options {
    /// Mix SharedArrayBuffer traffic into the action set: unordered full and
    /// 32-bit half accesses, Atomics.{load,store,add,compareExchange}, and a
    /// worker that bumps a shared counter. Off by default; when on, the
    /// observation stream additionally becomes a function of the browser's
    /// memory model (under `relaxed` with a controller attached, rf choices
    /// steer what the unordered reads log).
    bool sab_mix = false;
};

/// Serve the fixture resources (r0..r4), register the echo worker script and
/// post the seeded random program onto the main context. The caller decides
/// what to install first (a defense, a schedule controller) and then runs
/// the simulation to quiescence.
void install_random_program(rt::browser& b, std::uint64_t program_seed,
                            std::shared_ptr<observation_log> log,
                            random_program_options opt = {});

}  // namespace jsk::workloads
