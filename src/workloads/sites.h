// Synthetic web workloads.
//
// The paper evaluates on Alexa Top-500 loads, Raptor tp6 subtests, Dromaeo
// micro-suites and a worker-creation benchmark. None of those are available
// offline, so this module generates seeded synthetic equivalents with the
// same *API mix*: pages are bags of scripts/images/timers/workers loaded
// through the (interposable) api_table, so defense overhead shows up exactly
// where it does in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/browser.h"

namespace jsk::workloads {

// --- event-loop usage profiles (loopscan victims) ---------------------------

struct site_task {
    sim::time_ns delay = 0;  // since profile start
    sim::time_ns cost = 0;
};

/// A victim origin's event-loop usage pattern. Loopscan distinguishes
/// origins by the gaps/durations their tasks impose on a shared event loop.
struct event_profile {
    std::string name;
    std::vector<site_task> tasks;
};

/// google.com-like: many short tasks (max ~4-5 ms on the Chrome scale).
event_profile google_event_profile();
/// youtube.com-like: fewer, longer tasks (max ~9 ms on the Chrome scale).
event_profile youtube_event_profile();

/// Post the profile's tasks onto the browser's main thread (the victim tab
/// sharing the event loop with the attacker).
void run_event_profile(rt::browser& b, const event_profile& profile);

// --- page loads ---------------------------------------------------------------

struct site_spec {
    std::string name;
    std::string origin;
    std::vector<rt::resource> resources;  // registered with the network
    std::vector<std::string> script_urls;
    std::vector<std::string> image_urls;
    std::string hero_url;  // Raptor's hero element (an image)
    int dom_nodes = 40;
    int timer_chains = 2;
    int workers = 0;
    double extra_render_cost_factor = 1.0;  // per-browser Raptor scaling
};

/// Alexa-like site number `rank` (0-based), fully determined by (rank, seed).
site_spec make_synthetic_site(std::uint64_t rank, std::uint64_t seed);

/// Raptor tp6-1 subtests: "amazon", "facebook", "google", "youtube".
/// `browser_name` scales content weight the way Raptor's per-browser hero
/// timings differ in Table III.
site_spec raptor_site(const std::string& name, const std::string& browser_name);

struct load_result {
    double onload_ms = 0.0;  // all subresources finished
    double hero_ms = 0.0;    // the hero image finished (Raptor metric)
};

/// Load the site through the browser's api_table (so installed defenses see
/// every call) and return virtual load timings.
load_result load_site(rt::browser& b, const site_spec& site);

// --- Dromaeo-like micro-suites ---------------------------------------------------

struct micro_result {
    std::string test;
    double duration_ms = 0.0;  // virtual time for the fixed op count
};

/// All suite names, paper-flavoured: compute-heavy and DOM-heavy tests.
std::vector<std::string> dromaeo_tests();

/// Run one named test on the browser; deterministic for a given browser
/// state. Throws std::invalid_argument for unknown names.
micro_result run_dromaeo_test(rt::browser& b, const std::string& test);

/// Worker benchmark (pmav.eu-style): spawn `n` workers, return virtual ms
/// until every worker script has been imported.
double run_worker_bench(rt::browser& b, int n);

/// Compatibility probe: build a page with optional dynamic (ad-like)
/// content and return the DOM token bag.
std::unordered_map<std::string, double> build_compat_page(rt::browser& b,
                                                          std::uint64_t site_seed,
                                                          bool dynamic_ads);

}  // namespace jsk::workloads
