#include "workloads/random_program.h"

#include "sim/rng.h"

namespace jsk::workloads {

namespace sim = jsk::sim;
namespace rt = jsk::rt;

namespace {

struct program_env {
    rt::browser* b;
    std::shared_ptr<observation_log> log;
    /// Shared counter buffer for the sab_mix action family; null when the
    /// option is off (the action never rolls, so the rng stream — and every
    /// historical observation golden — is untouched).
    rt::shared_buffer_ptr sab;
};

void random_action(sim::rng& rng, const program_env& env, int depth);

void random_actions_in_callback(std::uint64_t seed, const program_env& env, int depth)
{
    if (depth > 2) return;
    sim::rng rng(seed);
    const auto n = rng.uniform(0, 2);
    for (std::int64_t i = 0; i < n; ++i) random_action(rng, env, depth);
}

void random_action(sim::rng& rng, const program_env& env, int depth)
{
    rt::browser& b = *env.b;
    auto log = env.log;
    const auto pick = rng.uniform(0, env.sab ? 10 : 9);
    const std::uint64_t sub_seed = rng.next_u64();
    switch (pick) {
        case 0: {  // timer
            const auto delay = rng.uniform(0, 40) * sim::ms;
            b.main().apis().set_timeout(
                [log, sub_seed, &b, depth, sab = env.sab] {
                    log->note("timer@" + std::to_string(b.main().apis().performance_now()));
                    random_actions_in_callback(sub_seed, program_env{&b, log, sab},
                                               depth + 1);
                },
                delay);
            log->note("set_timeout", static_cast<double>(delay / sim::ms));
            break;
        }
        case 1: {  // clock read
            log->note("now", b.main().apis().performance_now());
            break;
        }
        case 2: {  // compute (the "secret" work; costs perturbed between runs)
            b.main().consume(rng.uniform(0, 20) * sim::ms);
            log->note("compute");
            break;
        }
        case 3: {  // rAF
            b.main().apis().request_animation_frame([log](double ts) {
                log->note("raf", ts);
            });
            log->note("request_raf");
            break;
        }
        case 4: {  // fetch (urls r0..r4 registered by install_random_program)
            const std::string url =
                "https://site.example/r" + std::to_string(rng.uniform(0, 4));
            b.main().apis().fetch(
                url, {},
                [log, url, &b](const rt::fetch_result& r) {
                    log->note("fetched:" + url, static_cast<double>(r.bytes));
                    log->note("at", b.main().apis().performance_now());
                },
                [log, url](const rt::fetch_result&) { log->note("fetchfail:" + url); });
            log->note("fetch:" + url);
            break;
        }
        case 5: {  // DOM attribute round trip
            auto el = b.main().apis().create_element("div");
            b.main().apis().set_attribute(el, "k", std::to_string(rng.uniform(0, 99)));
            log->note("attr", std::stod(b.main().apis().get_attribute(el, "k")));
            break;
        }
        case 6: {  // worker round trip
            const double payload = static_cast<double>(rng.uniform(0, 1'000));
            auto w = b.main().apis().create_worker("echo.js");
            w->set_onmessage([log, &b](const rt::message_event& e) {
                log->note("echo", e.data.as_number());
                log->note("at", b.main().apis().performance_now());
            });
            w->post_message(rt::js_value{payload});
            log->note("spawn+post", payload);
            break;
        }
        case 7: {  // interval with self-clear
            auto count = std::make_shared<int>(0);
            auto id = std::make_shared<std::int64_t>(0);
            const auto period = rng.uniform(1, 10) * sim::ms;
            *id = b.main().apis().set_interval(
                [log, count, id, &b] {
                    log->note("intv", static_cast<double>(++*count));
                    if (*count >= 3) b.main().apis().clear_interval(*id);
                },
                period);
            log->note("set_interval", static_cast<double>(period / sim::ms));
            break;
        }
        case 8: {  // Date read
            log->note("date", b.main().apis().date_now());
            break;
        }
        case 10: {  // SAB traffic (sab_mix only — env.sab gates the roll)
            const auto& buf = env.sab;
            const auto op = rng.uniform(0, 4);
            const double v = static_cast<double>(rng.uniform(0, 1'000));
            switch (op) {
                case 0: {  // unordered full-width store + load
                    b.main().apis().sab_store(buf, 0, v, {});
                    log->note("sab", b.main().apis().sab_load(buf, 0, {}));
                    break;
                }
                case 1: {  // mixed-size: half stores, half loads (tearable)
                    b.main().apis().sab_store(
                        buf, 1, v, {wm::ordering::unordered, wm::part::lo});
                    b.main().apis().sab_store(
                        buf, 1, v + 1.0, {wm::ordering::unordered, wm::part::hi});
                    log->note("sab.lo", b.main().apis().sab_load(
                                            buf, 1,
                                            {wm::ordering::unordered, wm::part::lo}));
                    log->note("sab.hi", b.main().apis().sab_load(
                                            buf, 1,
                                            {wm::ordering::unordered, wm::part::hi}));
                    break;
                }
                case 2: {  // Atomics.add counter bump
                    log->note("sab.add", b.main().apis().atomics_add(buf, 2, 1.0));
                    break;
                }
                case 3: {  // Atomics.store / Atomics.load
                    b.main().apis().atomics_store(buf, 3, v);
                    log->note("sab.sc", b.main().apis().atomics_load(buf, 3));
                    break;
                }
                default: {  // Atomics.compareExchange against the last add
                    log->note("sab.cas", b.main().apis().atomics_compare_exchange(
                                             buf, 2, v, v + 1.0));
                    break;
                }
            }
            break;
        }
        default: {  // cancelled timer (must never fire)
            const auto t = b.main().apis().set_timeout(
                [log] { log->note("CANCELLED_TIMER_FIRED"); }, 15 * sim::ms);
            b.main().apis().clear_timeout(t);
            log->note("cancel_timer");
            break;
        }
    }
}

}  // namespace

void install_random_program(rt::browser& b, std::uint64_t program_seed,
                            std::shared_ptr<observation_log> log,
                            random_program_options opt)
{
    for (int i = 0; i < 5; ++i) {
        b.net().serve(rt::resource{"https://site.example/r" + std::to_string(i),
                                   "https://site.example", rt::resource_kind::data,
                                   static_cast<std::size_t>(1'000 * (i + 1)), 0, 0, 0});
    }
    b.set_page_origin("https://site.example");
    b.register_worker_script("echo.js", [](rt::context& ctx) {
        ctx.apis().set_self_onmessage([&ctx](const rt::message_event& e) {
            ctx.apis().post_message_to_parent(e.data, {});
        });
    });

    rt::shared_buffer_ptr sab;
    if (opt.sab_mix) {
        sab = b.main().apis().create_shared_buffer(4);
        // A second thread touching the buffer: the echo worker doubles as a
        // counter bumper, so unordered reads on the main thread have genuine
        // cross-thread reads-from candidates under the relaxed model.
        b.register_worker_script("sab.js", [sab](rt::context& ctx) {
            ctx.apis().set_self_onmessage([&ctx, sab](const rt::message_event& e) {
                const double seen = ctx.apis().sab_load(sab, 0, {});
                ctx.apis().sab_store(sab, 0, seen + 1.0, {});
                (void)ctx.apis().atomics_add(sab, 2, 1.0);
                ctx.apis().post_message_to_parent(rt::js_value{seen}, {});
                (void)e;
            });
        });
        auto w = b.main().apis().create_worker("sab.js");
        w->set_onmessage([log](const rt::message_event& e) {
            log->note("sab.worker", e.data.as_number());
        });
        w->post_message(rt::js_value{1.0});
    }

    b.main().post_task(0, [&b, log, program_seed, sab] {
        sim::rng rng(program_seed);
        const auto actions = 4 + rng.uniform(0, 8);
        for (std::int64_t i = 0; i < actions; ++i) {
            random_action(rng, program_env{&b, log, sab}, 0);
        }
    });
}

}  // namespace jsk::workloads
