#include "workloads/sites.h"

#include <memory>
#include <stdexcept>

#include "sim/rng.h"

namespace jsk::workloads {

namespace sim = jsk::sim;
namespace rt = jsk::rt;

// --- event-loop profiles -------------------------------------------------------

event_profile google_event_profile()
{
    event_profile p;
    p.name = "google";
    // Dense, short tasks: parsing chunks, instant-search handlers.
    for (int i = 0; i < 120; ++i) {
        p.tasks.push_back(site_task{i * 2 * sim::ms, 300 * sim::us});
    }
    p.tasks.push_back(site_task{60 * sim::ms, 4'500 * sim::us});   // one layout burst
    p.tasks.push_back(site_task{180 * sim::ms, 3'800 * sim::us});
    return p;
}

event_profile youtube_event_profile()
{
    event_profile p;
    p.name = "youtube";
    // Sparser but much heavier tasks: player setup, thumbnail decoding.
    for (int i = 0; i < 40; ++i) {
        p.tasks.push_back(site_task{i * 6 * sim::ms, 1'200 * sim::us});
    }
    for (int i = 0; i < 9; ++i) {
        // Player bursts, spaced so they never merge into one longer gap;
        // the heaviest is 8.8 ms (Table II's Chrome value).
        p.tasks.push_back(site_task{(260 + i * 12) * sim::ms,
                                    (7'000 + (i % 3) * 600) * sim::us});
    }
    p.tasks.push_back(site_task{245 * sim::ms, 8'800 * sim::us});
    return p;
}

void run_event_profile(rt::browser& b, const event_profile& profile)
{
    for (const auto& task : profile.tasks) {
        b.main().post_task(
            task.delay, [&b, cost = task.cost] { b.main().consume(cost); },
            "victim:" + profile.name);
    }
}

// --- page loads ------------------------------------------------------------------

site_spec make_synthetic_site(std::uint64_t rank, std::uint64_t seed)
{
    sim::rng rng(seed * 1'000'003 + rank);
    site_spec site;
    site.name = "site" + std::to_string(rank);
    site.origin = "https://" + site.name + ".example";

    const int scripts = static_cast<int>(rng.uniform(2, 8));
    const int images = static_cast<int>(rng.uniform(3, 14));
    site.dom_nodes = static_cast<int>(rng.uniform(30, 220));
    site.timer_chains = static_cast<int>(rng.uniform(1, 5));
    site.workers = rng.chance(0.25) ? static_cast<int>(rng.uniform(1, 3)) : 0;

    for (int i = 0; i < scripts; ++i) {
        rt::resource res;
        res.url = site.origin + "/s" + std::to_string(i) + ".js";
        res.origin = site.origin;
        res.kind = rt::resource_kind::script;
        res.bytes = static_cast<std::size_t>(rng.uniform(4'000, 220'000));
        site.resources.push_back(res);
        site.script_urls.push_back(res.url);
    }
    for (int i = 0; i < images; ++i) {
        rt::resource res;
        res.url = site.origin + "/i" + std::to_string(i) + ".png";
        res.origin = site.origin;
        res.kind = rt::resource_kind::image;
        res.width = static_cast<std::uint32_t>(rng.uniform(32, 640));
        res.height = static_cast<std::uint32_t>(rng.uniform(32, 480));
        res.bytes = static_cast<std::size_t>(res.width) * res.height / 4;
        site.resources.push_back(res);
        site.image_urls.push_back(res.url);
    }
    if (!site.image_urls.empty()) site.hero_url = site.image_urls.front();
    return site;
}

site_spec raptor_site(const std::string& name, const std::string& browser_name)
{
    // Content weights tuned so the Chrome hero timings land in Table III's
    // ranges (google < amazon < facebook < youtube); Firefox's Raptor hero
    // metric runs on a much heavier rendering path in the paper's numbers,
    // reproduced with a per-browser render factor.
    struct shape {
        int scripts;
        std::size_t script_bytes;
        int images;
        std::uint32_t img_dim;
        int dom_nodes;
    };
    shape s;
    if (name == "amazon") s = {6, 60'000, 10, 200, 160};
    else if (name == "facebook") s = {9, 90'000, 12, 220, 260};
    else if (name == "google") s = {3, 30'000, 3, 140, 70};
    else if (name == "youtube") s = {8, 120'000, 16, 320, 300};
    else throw std::invalid_argument("unknown raptor site: " + name);

    site_spec site;
    site.name = name;
    site.origin = "https://" + name + ".example";
    site.dom_nodes = s.dom_nodes;
    site.timer_chains = 3;
    site.workers = name == "youtube" ? 2 : 0;
    site.extra_render_cost_factor = browser_name == "firefox"  ? 7.0
                                    : browser_name == "edge"   ? 3.0
                                                               : 1.0;
    for (int i = 0; i < s.scripts; ++i) {
        rt::resource res;
        res.url = site.origin + "/s" + std::to_string(i) + ".js";
        res.origin = site.origin;
        res.kind = rt::resource_kind::script;
        res.bytes = s.script_bytes;
        site.resources.push_back(res);
        site.script_urls.push_back(res.url);
    }
    for (int i = 0; i < s.images; ++i) {
        rt::resource res;
        res.url = site.origin + "/i" + std::to_string(i) + ".png";
        res.origin = site.origin;
        res.kind = rt::resource_kind::image;
        // The last image is the hero banner: the largest above-the-fold
        // asset, which is what Raptor's hero-element timing keys on.
        const bool is_hero = i == s.images - 1;
        res.width = is_hero ? s.img_dim * 3 : s.img_dim;
        res.height = is_hero ? s.img_dim * 3 : s.img_dim;
        res.bytes = static_cast<std::size_t>(res.width) * res.height / 4;
        site.resources.push_back(res);
        site.image_urls.push_back(res.url);
    }
    site.hero_url = site.image_urls.back();
    return site;
}

load_result load_site(rt::browser& b, const site_spec& site)
{
    for (const auto& res : site.resources) b.net().serve(res);
    b.set_page_origin(site.origin);

    // Trivial worker bodies for sites that use workers.
    for (int i = 0; i < site.workers; ++i) {
        b.register_worker_script(site.origin + "/w" + std::to_string(i) + ".js",
                                 [](rt::context& ctx) { ctx.consume(2 * sim::ms); });
    }

    struct progress {
        int outstanding = 0;
        double onload_ms = -1.0;
        double hero_ms = -1.0;
        double start_ms = 0.0;
    };
    auto st = std::make_shared<progress>();
    rt::browser* bp = &b;

    // `site` is captured by value: the loader task normally runs inside the
    // run_until below, but a copy keeps queued loads safe even if a caller
    // composes loads in ways that defer the task past this frame.
    b.main().post_task(0, [bp, st, site] {
        auto& apis = bp->main().apis();
        st->start_ms = bp->main().now_ms_raw();
        const auto finish_one = [bp, st] {
            if (--st->outstanding == 0) {
                st->onload_ms = bp->main().now_ms_raw() - st->start_ms;
            }
        };

        // DOM construction.
        for (int i = 0; i < site.dom_nodes; ++i) {
            auto div = apis.create_element("div");
            apis.set_attribute(div, "class", "n" + std::to_string(i % 7));
            apis.append_child(bp->doc().root(), div);
        }
        // Subresources.
        for (const auto& url : site.script_urls) {
            ++st->outstanding;
            auto script = apis.create_element("script");
            script->set_attribute_raw("src", url);
            script->onload = finish_one;
            script->onerror = [finish_one](const std::string&) { finish_one(); };
            apis.append_child(bp->doc().root(), script);
        }
        for (const auto& url : site.image_urls) {
            ++st->outstanding;
            auto img = apis.create_element("img");
            img->set_attribute_raw("src", url);
            const bool is_hero = url == site.hero_url;
            img->onload = [bp, st, finish_one, is_hero] {
                if (is_hero) st->hero_ms = bp->main().now_ms_raw() - st->start_ms;
                finish_one();
            };
            img->onerror = [finish_one](const std::string&) { finish_one(); };
            apis.append_child(bp->doc().root(), img);
        }
        // JS activity: short self-rescheduling timer chains. The chain body
        // holds only a weak reference to itself — queued timeouts carry the
        // strong ones — so finished chains free instead of leaking a
        // shared_ptr cycle.
        for (int c = 0; c < site.timer_chains; ++c) {
            auto steps = std::make_shared<int>(6);
            auto chain = std::make_shared<std::function<void()>>();
            *chain = [bp, steps, wchain = std::weak_ptr<std::function<void()>>(chain)] {
                bp->main().consume(200 * sim::us);
                if (--*steps > 0) {
                    if (auto next = wchain.lock()) {
                        bp->main().apis().set_timeout([next] { (*next)(); }, 0);
                    }
                }
            };
            apis.set_timeout([chain] { (*chain)(); }, 1 * sim::ms);
        }
        // Workers.
        for (int i = 0; i < site.workers; ++i) {
            auto w = apis.create_worker(bp->page_origin() + "/w" + std::to_string(i) + ".js");
            (void)w;
        }
        // Per-browser Raptor render weight.
        if (site.extra_render_cost_factor > 1.0) {
            bp->main().consume(static_cast<sim::time_ns>(
                (site.extra_render_cost_factor - 1.0) * 40.0 * sim::ms));
        }
    });
    // Relative horizon: a browser that has already loaded sites (or run
    // anything else) sits past t=0, and an absolute deadline in the past
    // would return without ever executing the loader task posted above.
    b.run_until(b.sim().now() + 120 * sim::sec);
    if (st->onload_ms < 0) st->onload_ms = b.main().now_ms_raw() - st->start_ms;
    if (st->hero_ms < 0) st->hero_ms = st->onload_ms;
    return load_result{st->onload_ms, st->hero_ms};
}

// --- Dromaeo-like micro suites -------------------------------------------------------

std::vector<std::string> dromaeo_tests()
{
    // Dromaeo's real suite is dominated by pure-JS tests; only a handful are
    // DOM-bound, which is why the paper's median overhead is near zero while
    // the DOM attribute test pays ~21%.
    return {"math-cordic",   "math-partial-sums", "math-spectral-norm", "bitops-3bit",
            "string-tagcloud", "string-base64",   "regexp-dna",         "crypto-sha1",
            "3d-cube",        "array-ops",        "object-ops",         "json-serialize",
            "dom-attr",       "dom-modify",       "dom-query",          "dom-traverse"};
}

namespace {

double run_compute_test(rt::browser& b, int ops, sim::time_ns per_op)
{
    double duration = 0.0;
    b.main().post_task(0, [&] {
        const double t0 = b.main().now_ms_raw();
        // Pure JS compute: no interposable API involved.
        b.main().consume(per_op * ops);
        duration = b.main().now_ms_raw() - t0;
    });
    b.run();
    return duration;
}

double run_json_test(rt::browser& b, int ops)
{
    double duration = 0.0;
    b.main().post_task(0, [&] {
        const double t0 = b.main().now_ms_raw();
        rt::js_value obj = rt::make_object({{"k", 1}, {"list", rt::js_value{rt::js_array{
                                                                  1, 2, "three"}}}});
        std::size_t total = 0;
        for (int i = 0; i < ops; ++i) {
            total += obj.to_string().size();
            b.main().consume(80);
        }
        (void)total;
        duration = b.main().now_ms_raw() - t0;
    });
    b.run();
    return duration;
}

double run_dom_attr_test(rt::browser& b, int ops)
{
    double duration = 0.0;
    b.main().post_task(0, [&] {
        auto& apis = b.main().apis();
        auto el = apis.create_element("div");
        const double t0 = b.main().now_ms_raw();
        for (int i = 0; i < ops; ++i) {
            apis.set_attribute(el, "data-x", std::to_string(i & 7));
            (void)apis.get_attribute(el, "data-x");
        }
        duration = b.main().now_ms_raw() - t0;
    });
    b.run();
    return duration;
}

double run_dom_modify_test(rt::browser& b, int ops)
{
    double duration = 0.0;
    b.main().post_task(0, [&] {
        auto& apis = b.main().apis();
        const double t0 = b.main().now_ms_raw();
        auto parent = apis.create_element("div");
        for (int i = 0; i < ops; ++i) {
            auto child = apis.create_element("span");
            apis.append_child(parent, child);
        }
        duration = b.main().now_ms_raw() - t0;
    });
    b.run();
    return duration;
}

double run_dom_query_test(rt::browser& b, int ops)
{
    double duration = 0.0;
    b.main().post_task(0, [&] {
        auto& apis = b.main().apis();
        auto el = apis.create_element("a");
        apis.set_attribute(el, "href", "https://x");
        const double t0 = b.main().now_ms_raw();
        for (int i = 0; i < ops; ++i) (void)apis.get_attribute(el, "href");
        duration = b.main().now_ms_raw() - t0;
    });
    b.run();
    return duration;
}

double run_dom_traverse_test(rt::browser& b, int ops)
{
    double duration = 0.0;
    b.main().post_task(0, [&] {
        auto& apis = b.main().apis();
        auto root = apis.create_element("div");
        for (int i = 0; i < 32; ++i) {
            auto child = apis.create_element("p");
            apis.set_attribute(child, "id", std::to_string(i));
            apis.append_child(root, child);
        }
        const double t0 = b.main().now_ms_raw();
        for (int i = 0; i < ops; ++i) {
            for (const auto& child : root->children()) {
                (void)apis.get_attribute(child, "id");
            }
        }
        duration = b.main().now_ms_raw() - t0;
    });
    b.run();
    return duration;
}

}  // namespace

micro_result run_dromaeo_test(rt::browser& b, const std::string& test)
{
    micro_result out;
    out.test = test;
    if (test == "math-cordic") out.duration_ms = run_compute_test(b, 200'000, 15);
    else if (test == "math-partial-sums") out.duration_ms = run_compute_test(b, 150'000, 22);
    else if (test == "math-spectral-norm") out.duration_ms = run_compute_test(b, 90'000, 35);
    else if (test == "bitops-3bit") out.duration_ms = run_compute_test(b, 300'000, 8);
    else if (test == "string-tagcloud") out.duration_ms = run_compute_test(b, 80'000, 40);
    else if (test == "string-base64") out.duration_ms = run_compute_test(b, 110'000, 24);
    else if (test == "regexp-dna") out.duration_ms = run_compute_test(b, 60'000, 55);
    else if (test == "crypto-sha1") out.duration_ms = run_compute_test(b, 130'000, 21);
    else if (test == "3d-cube") out.duration_ms = run_compute_test(b, 95'000, 33);
    else if (test == "array-ops") out.duration_ms = run_compute_test(b, 120'000, 18);
    else if (test == "object-ops") out.duration_ms = run_compute_test(b, 120'000, 26);
    else if (test == "json-serialize") out.duration_ms = run_json_test(b, 8'000);
    else if (test == "dom-attr") out.duration_ms = run_dom_attr_test(b, 20'000);
    else if (test == "dom-modify") out.duration_ms = run_dom_modify_test(b, 12'000);
    else if (test == "dom-query") out.duration_ms = run_dom_query_test(b, 30'000);
    else if (test == "dom-traverse") out.duration_ms = run_dom_traverse_test(b, 1'500);
    else throw std::invalid_argument("unknown dromaeo test: " + test);
    return out;
}

double run_worker_bench(rt::browser& b, int n)
{
    for (int i = 0; i < n; ++i) {
        b.register_worker_script("bench" + std::to_string(i) + ".js",
                                 [](rt::context& ctx) { ctx.consume(50 * sim::us); });
    }
    struct bench_state {
        int imported = 0;
        double last_import_ms = 0.0;
    };
    auto st = std::make_shared<bench_state>();
    // worker_script_imported fires once per worker under every defense
    // (under JSKernel the user import happens inside the kernel bootstrap,
    // whose import emits the event), so the timings are comparable.
    b.bus().subscribe([st, &b](const rt::rt_event& e) {
        if (e.kind == rt::rt_event_kind::worker_script_imported) {
            ++st->imported;
            st->last_import_ms = sim::to_ms(b.sim().now());
        }
    });
    const double t0 = sim::to_ms(b.sim().now());
    b.main().post_task(0, [&b, n] {
        for (int i = 0; i < n; ++i) {
            (void)b.main().apis().create_worker("bench" + std::to_string(i) + ".js");
        }
    });
    b.run_until(30 * sim::sec);
    return st->imported > 0 ? st->last_import_ms - t0 : 0.0;
}

std::unordered_map<std::string, double> build_compat_page(rt::browser& b,
                                                          std::uint64_t site_seed,
                                                          bool dynamic_ads)
{
    sim::rng rng(site_seed);
    b.main().post_task(0, [&] {
        auto& apis = b.main().apis();
        const int sections = static_cast<int>(rng.uniform(3, 9));
        for (int s = 0; s < sections; ++s) {
            auto section = apis.create_element("section");
            apis.set_attribute(section, "id", "s" + std::to_string(s));
            for (int i = 0; i < 6; ++i) {
                auto p = apis.create_element("p");
                p->text = "lorem ipsum block " + std::to_string(s * 6 + i);
                apis.append_child(section, p);
            }
            apis.append_child(b.doc().root(), section);
        }
        if (dynamic_ads) {
            // Ad slots rotate creatives per visit: unique URLs, campaign ids
            // and copy text, enough to pull the similarity under 99%.
            const int ads = static_cast<int>(rng.uniform(4, 9));
            for (int a = 0; a < ads; ++a) {
                auto ad = apis.create_element("iframe");
                const auto creative = std::to_string(rng.uniform(0, 1'000'000));
                apis.set_attribute(ad, "src", "https://ads.example/slot" + creative);
                apis.set_attribute(ad, "data-campaign", "c" + creative);
                auto copy = apis.create_element("span");
                copy->text = "deal " + creative + " ends " +
                             std::to_string(rng.uniform(1, 28)) + " days";
                apis.append_child(ad, copy);
                apis.append_child(b.doc().root(), ad);
            }
        }
    });
    b.run();
    return b.doc().token_bag();
}

}  // namespace jsk::workloads
