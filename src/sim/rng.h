// Deterministic, seedable random number generation for the simulator.
//
// We intentionally avoid std::mt19937 + std::distributions because their
// outputs differ across standard-library implementations; the whole point of
// this simulator is bit-for-bit reproducibility of experiment tables.
#pragma once

#include <array>
#include <cstdint>

namespace jsk::sim {

/// splitmix64 — used to seed xoshiro and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// Derive an independent child seed from (root, stream_id): the stream id is
/// first diffused through splitmix64 (so consecutive ids land far apart),
/// xor-folded into the root, and the mix diffused again. Pure and stateless —
/// the canonical way to hand each shard/worker/walk its own seed stream
/// (`jsk::par` and the sweep drivers use it; don't improvise `seed + i`
/// arithmetic, which correlates neighbouring streams).
constexpr std::uint64_t split(std::uint64_t root, std::uint64_t stream_id)
{
    std::uint64_t s = stream_id;
    std::uint64_t mixed = root ^ splitmix64(s);
    return splitmix64(mixed);
}

/// xoshiro256** generator: fast, high-quality, fully deterministic.
class rng {
public:
    explicit rng(std::uint64_t seed = 0x6a736b65726e656cULL)  // "jskernel"
    {
        std::uint64_t sm = seed;
        for (auto& word : state_) word = splitmix64(sm);
    }

    std::uint64_t next_u64()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    std::int64_t uniform(std::int64_t lo, std::int64_t hi)
    {
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(next_u64() % span);
    }

    /// Approximately normal deviate via sum of uniforms (Irwin–Hall, n=12);
    /// good enough for jitter modelling and fully portable.
    double normal(double mean, double stddev)
    {
        double acc = 0.0;
        for (int i = 0; i < 12; ++i) acc += next_double();
        return mean + (acc - 6.0) * stddev;
    }

    /// Bernoulli trial.
    bool chance(double p) { return next_double() < p; }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

}  // namespace jsk::sim
