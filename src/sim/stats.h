// Small statistics toolkit used by the attack-success metric and the
// benchmark harnesses (means, spread, Welch's t statistic, CDFs, cosine
// similarity for the DOM-compatibility experiment).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <unordered_map>
#include <vector>

namespace jsk::sim {

struct summary {
    std::size_t n = 0;
    double mean = 0.0;
    double stddev = 0.0;  // sample standard deviation
    double min = 0.0;
    double max = 0.0;
};

/// Summarise a sample. An empty sample yields an all-zero summary.
summary summarize(const std::vector<double>& xs);

/// Welch's t statistic for two samples (0 when either sample is degenerate
/// with zero variance and equal means; large when distributions separate).
double welch_t(const std::vector<double>& a, const std::vector<double>& b);

/// Nearest-mean two-class classification accuracy under leave-none-out:
/// assign each observation to the closer of the two sample means. This is the
/// adversary's distinguishing power; 0.5 is chance, 1.0 is perfect.
double classification_accuracy(const std::vector<double>& a, const std::vector<double>& b);

/// Empirical CDF evaluated on sorted copies of `xs`: returns (value, quantile)
/// pairs suitable for plotting Figure 3.
std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> xs);

/// Percentile (0..100) by linear interpolation on a sorted copy.
double percentile(std::vector<double> xs, double pct);

/// Cosine similarity between two bag-of-token term-frequency vectors,
/// mirroring the paper's §V-B2 DOM-serialisation comparison. Two empty bags
/// compare as identical (1.0).
double cosine_similarity(const std::unordered_map<std::string, double>& a,
                         const std::unordered_map<std::string, double>& b);

}  // namespace jsk::sim
