// jsk::sim::explore — the schedule-exploration engine.
//
// JSKernel's headline claim is scheduling-order invariance: the observable
// timeline is a pure function of the program, regardless of how the engine
// interleaves cross-thread events. Hand-picked interleavings don't test that
// claim; the interesting behaviours live in rare schedules (Loophole,
// Deterministic Browser). This subsystem turns the DES into a controlled
// scheduler: at every scheduling point where several pending tasks are
// co-enabled (equal effective start, or within a commutativity window), a
// pluggable policy picks the next task.
//
//  * Every explored schedule is a compact *decision string* ("0201…"): the
//    index chosen among the sorted co-enabled candidates at each branching
//    point. Any failure replays bit-for-bit from its string.
//  * `explore_dfs` enumerates schedules exhaustively for small programs,
//    bounded by a preemption budget and (optionally) DPOR-lite pruning of
//    independent thread pairs.
//  * `explore_random` takes seeded random walks through the schedule space
//    for large programs.
//  * `shrink` delta-debugs a failing decision string down to the shortest
//    schedule that still violates the invariant.
//
// The program under test is a callback that builds a fresh world (usually an
// rt::browser), attaches the given controller to its simulation, runs, and
// reports whether the invariant under test was violated.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/simulation.h"

namespace jsk::sim::explore {

/// A schedule is the compact decision string. Choice k is the candidate
/// index taken at the k-th *branching* point (scheduling points with a single
/// candidate are not recorded). Runs that consume the whole string follow
/// the tail policy (first candidate for replay) from there on.
struct schedule {
    std::vector<std::uint32_t> choices;

    /// "02a1" — one base-36 digit per choice; indices >= 36 appear as "{n}".
    [[nodiscard]] std::string str() const;

    /// Inverse of str(); nullopt on malformed input.
    static std::optional<schedule> parse(const std::string& text);

    /// Number of non-default choices — the "preemption" count that bounds
    /// DFS depth and that the shrinker minimizes.
    [[nodiscard]] std::size_t preemptions() const;

    /// Drop trailing zeros (a replay regenerates them as the tail default).
    void trim();

    bool operator==(const schedule&) const = default;
};

/// Everything recorded at one branching point, for DFS expansion and
/// diagnostics. Per-candidate metadata lives in flat arrays on the
/// controller (indexed by `offset`) so recording a decision never
/// allocates; read it back through controller::decision_thread/task.
struct decision {
    std::uint32_t chosen = 0;
    std::uint32_t count = 0;
    std::uint32_t offset = 0;  // into the controller's flat candidate arrays
    std::uint32_t step = 0;    // schedule points: exec-log index the chosen
                               // task executes at; value points: index of the
                               // enclosing task (meaningful only with
                               // metadata recording)
    std::uint8_t kind = 0;     // 0 = schedule choice, 1 = weak-memory
                               // reads-from (value) choice. Both share the
                               // decision string; value points carry no
                               // candidate metadata (offset is the array
                               // high-water mark, width 0).
};

/// One recorded resource touch (see sim/por.h for the key namespaces).
/// `ord` is the weak-memory ordering of SAB touches (por::access_order);
/// 0 for everything that is not a memory access.
struct access_rec {
    std::uint64_t key = 0;
    bool write = false;
    std::uint8_t ord = 0;
};

/// One executed task: identity, thread, its immutable ready time, and its
/// span in the access log.
struct exec_rec {
    task_id task = 0;
    thread_id thread = no_thread;
    time_ns ready = 0;
    std::uint32_t access_begin = 0;
    std::uint32_t access_end = 0;
};

/// Drives one run: replays a prescribed prefix of decisions, then follows a
/// tail policy (first candidate, or seeded-random), recording the complete
/// decision string plus per-point metadata.
class controller final : public schedule_hook {
public:
    enum class tail_policy { first, random };

    explicit controller(schedule prefix = {}, tail_policy tail = tail_policy::first,
                        std::uint64_t seed = 0)
        : prefix_(std::move(prefix)), tail_(tail), walk_(seed)
    {
    }

    /// Widen co-enabling: offer tasks whose effective start is within
    /// `window` of the earliest. Set before attach().
    void set_window(time_ns window) { window_ = window; }
    [[nodiscard]] time_ns window() const { return window_; }

    /// Install onto `sim`. The controller must outlive the run.
    void attach(simulation& sim) { sim.set_schedule_hook(this, window_); }

    // schedule_hook
    std::size_t choose(const std::vector<sched_candidate>& candidates) override;
    std::size_t choose_value(std::size_t count) override;
    void on_post(task_id posted, thread_id target, task_id poster,
                 thread_id source) override;
    void on_execute(task_id task, thread_id thread, time_ns ready_at) override;
    void on_access(task_id task, std::uint64_t resource, bool write,
                   std::uint8_t ord) override;

    /// The complete decision string this run actually took.
    [[nodiscard]] const schedule& decisions() const { return recorded_; }
    [[nodiscard]] const std::vector<decision>& trace() const { return trace_; }

    /// The prescribed replay prefix and tail policy this controller was
    /// built with. Together (with the walk seed for random tails) they
    /// determine the whole run up front — which is what lets jsk::par key a
    /// result cache on a tail-first controller *before* it runs.
    [[nodiscard]] const schedule& prescribed() const { return prefix_; }
    [[nodiscard]] tail_policy tail() const { return tail_; }

    /// Candidate metadata for a recorded decision, in offered order. Only
    /// populated when set_record_metadata(true) was set before the run.
    [[nodiscard]] thread_id decision_thread(const decision& d, std::size_t i) const
    {
        return cand_threads_[d.offset + i];
    }
    [[nodiscard]] task_id decision_task(const decision& d, std::size_t i) const
    {
        return cand_tasks_[d.offset + i];
    }
    [[nodiscard]] time_ns decision_start(const decision& d, std::size_t i) const
    {
        return cand_starts_[d.offset + i];
    }

    /// True once the run has consumed the whole prescribed prefix.
    [[nodiscard]] bool prefix_exhausted() const
    {
        return recorded_.choices.size() >= prefix_.choices.size();
    }

    /// True when a prescribed choice was out of range for the candidates
    /// actually offered — the replayed program diverged from the recording.
    [[nodiscard]] bool replay_diverged() const { return diverged_; }

    /// Pre-size every recording buffer (decision string, trace, and — when
    /// metadata recording is on — the candidate arrays and footprint logs)
    /// so recording never reallocates. Snapshot-backed programs (jsk::core
    /// forks) rely on this: a controller that lives outside the world's
    /// arena must not grow its buffers while the arena scope is active, or
    /// the storage would be rolled back with the world on restore. Call
    /// *after* set_record_metadata.
    void reserve(std::size_t decisions)
    {
        recorded_.choices.reserve(decisions);
        trace_.reserve(decisions);
        if (record_metadata_) {
            cand_threads_.reserve(decisions * 4);
            cand_tasks_.reserve(decisions * 4);
            cand_starts_.reserve(decisions * 4);
            exec_log_.reserve(decisions * 4);
            access_log_.reserve(decisions * 16);
            post_log_.reserve(decisions * 4);
            task_step_.reserve(decisions * 8);
        }
    }

    /// True when any recording buffer's current storage satisfies
    /// `contains` — the snapshot overflow check: a fork-serving program
    /// passes core::arena::contains after the run to verify recording never
    /// outgrew its reservation into the (about to be rolled back) arena.
    [[nodiscard]] bool storage_within(
        const std::function<bool(const void*)>& contains) const;

    /// Whether set_record_metadata(true) is in effect.
    [[nodiscard]] bool records_metadata() const { return record_metadata_; }

    /// Opt into dependence-metadata recording: per-decision candidate
    /// arrays (decision_thread / decision_task) and the flat footprint logs
    /// (exec_log / access_log / post_log) that sim/por.h derives dependence,
    /// happens-before, and coverage hashes from. Off by default — the
    /// bookkeeping sits on the exploration hot path and only DPOR /
    /// coverage consume it. explore_dfs enables it when opt.dpor is set;
    /// explore_random when opt.coverage is. Decision strings, counts, and
    /// chosen indices are always recorded.
    void set_record_metadata(bool on) { record_metadata_ = on; }

    /// Footprint logs (metadata recording only; empty otherwise). All flat
    /// and pre-reservable — snapshot-backed programs record through forks.
    [[nodiscard]] const std::vector<exec_rec>& exec_log() const { return exec_log_; }
    [[nodiscard]] const std::vector<access_rec>& access_log() const
    {
        return access_log_;
    }

    static constexpr std::size_t no_step = static_cast<std::size_t>(-1);

    /// Exec-log index at which `task` ran; no_step when it never did (or
    /// recording was off) — dependence checks treat that as "unknown".
    [[nodiscard]] std::size_t step_of(task_id task) const
    {
        if (task >= task_step_.size() || task_step_[task] == 0) return no_step;
        return task_step_[task] - 1;
    }

    /// Exec-log index of the step that posted `task`; no_step when it was
    /// posted from outside a task (world setup) or recording was off.
    [[nodiscard]] std::size_t poster_step_of(task_id task) const;

private:
    schedule prefix_;
    tail_policy tail_;
    rng walk_;
    time_ns window_ = 0;
    bool diverged_ = false;
    bool record_metadata_ = false;
    schedule recorded_;
    std::vector<decision> trace_;
    std::vector<thread_id> cand_threads_;  // flat per-decision candidate metadata
    std::vector<task_id> cand_tasks_;
    std::vector<time_ns> cand_starts_;  // effective start when offered
    // Flat footprint logs (metadata recording only): what ran where, what it
    // touched, and who posted what. post_log_ is posted-id ascending (task
    // ids are handed out in post order), so poster lookups binary-search.
    struct post_rec {
        task_id posted;
        std::uint32_t poster_step;
    };
    std::vector<exec_rec> exec_log_;
    std::vector<access_rec> access_log_;
    std::vector<post_rec> post_log_;
    std::vector<std::uint32_t> task_step_;  // task id -> exec index + 1; 0 = none
};

/// Verdict of one complete controlled run.
struct run_outcome {
    bool violated = false;
    std::string detail;  // surfaced with the failing schedule
};

/// The program under test: build a fresh world, `ctl.attach(world.sim())`,
/// run to quiescence, check the invariant.
using program = std::function<run_outcome(controller&)>;

struct options {
    time_ns window = 0;                 // commutativity window
    std::uint64_t seed = 1;             // random-walk seed
    std::uint64_t max_schedules = 256;  // walk count / DFS run bound
    std::uint32_t preemption_budget = 4;  // DFS: max non-default choices
    bool dpor = false;  // DFS: sleep-set DPOR over the sound dependence
                        // relation (sim/por.h): prune an alternative when it
                        // commutes with the chosen task, or when a sleep set
                        // already claims its subtree is covered elsewhere.
    bool coverage = false;  // explore_random: record footprints, fingerprint
                            // each walk (interleaving class + vuln-sink
                            // prefixes), and mutate prefixes of walks that
                            // reached novel behaviour instead of walking
                            // blind. Deterministic for a fixed seed.
    bool legacy_footprint = false;  // pre-fix posts-only independence (blind
                                    // to channels, SAB cells and monitor
                                    // sinks — UNSOUND, prunes real
                                    // witnesses). Kept only so the
                                    // regression suite can demonstrate the
                                    // miss; never set it otherwise.
};

struct result {
    std::uint64_t schedules_run = 0;
    std::uint64_t pruned = 0;    // DFS: alternatives skipped (budget/DPOR)
    bool exhausted = false;      // DFS: whole bounded tree explored
    std::optional<schedule> failing;  // first violating schedule, if any
    std::string failure_detail;
    std::uint64_t coverage_classes = 0;  // coverage mode: distinct
                                         // interleaving-class hashes seen
    std::uint64_t coverage_novel = 0;    // coverage mode: walks that reached
                                         // any novel fingerprint
};

/// One frontier node of the bounded DFS tree: a prescribed prefix plus the
/// sleep set inherited along it — task ids whose subtrees are already
/// covered by an explored sibling ordering. Task ids are deterministic
/// along a shared prefix, so sleep sets survive re-execution (including
/// through jsk::core forks and across jsk::par wave workers).
struct work_item {
    schedule prefix;
    std::vector<task_id> sleep;
};

/// Children of one completed DFS run: for every branching point the run
/// reached beyond its prescribed prefix, each untaken alternative within
/// the preemption budget — minus the ones sleep-set DPOR proves redundant
/// (asleep, or commuting with the chosen task) — becomes a new work item
/// carrying its own sleep set. Skipped alternatives are counted into
/// `pruned`. Pure with respect to the finished controller, so frontier
/// expansion can run per-job in a parallel wave (jsk::par) and still
/// generate each child exactly once across the tree, in canonical order.
std::vector<work_item> expand_run(const controller& ctl, const work_item& item,
                                  const options& opt, std::uint64_t& pruned);

/// Seeded random walks through the schedule space; stops at the first
/// violation or after max_schedules walks. With opt.coverage, walks after
/// the first mutate prefixes drawn from a pool of fingerprint-novel
/// schedules (see options::coverage).
result explore_random(const program& p, const options& opt = {});

/// Bounded exhaustive search over branching points, within the preemption
/// budget; stops at the first violation. `exhausted` reports whether the
/// bounded tree was fully covered within max_schedules runs. Traversal is
/// wave order — the whole frontier tail, deepest first, then its children —
/// exactly the canonical order par::explore_dfs parallelizes, so results
/// (witness, schedules_run, pruned) are identical at every --jobs count.
result explore_dfs(const program& p, const options& opt = {});

/// Re-run `p` under exactly `s` (tail defaults to the first candidate).
run_outcome replay(const schedule& s, const program& p, time_ns window = 0);

/// Delta-debugging: minimize a violating schedule to the shortest decision
/// string that still violates (chunk deletion, then zeroing of individual
/// choices). `opt.max_schedules` caps the number of candidate replays.
schedule shrink(const schedule& failing, const program& p, const options& opt = {});

}  // namespace jsk::sim::explore
