// jsk::sim::explore — the schedule-exploration engine.
//
// JSKernel's headline claim is scheduling-order invariance: the observable
// timeline is a pure function of the program, regardless of how the engine
// interleaves cross-thread events. Hand-picked interleavings don't test that
// claim; the interesting behaviours live in rare schedules (Loophole,
// Deterministic Browser). This subsystem turns the DES into a controlled
// scheduler: at every scheduling point where several pending tasks are
// co-enabled (equal effective start, or within a commutativity window), a
// pluggable policy picks the next task.
//
//  * Every explored schedule is a compact *decision string* ("0201…"): the
//    index chosen among the sorted co-enabled candidates at each branching
//    point. Any failure replays bit-for-bit from its string.
//  * `explore_dfs` enumerates schedules exhaustively for small programs,
//    bounded by a preemption budget and (optionally) DPOR-lite pruning of
//    independent thread pairs.
//  * `explore_random` takes seeded random walks through the schedule space
//    for large programs.
//  * `shrink` delta-debugs a failing decision string down to the shortest
//    schedule that still violates the invariant.
//
// The program under test is a callback that builds a fresh world (usually an
// rt::browser), attaches the given controller to its simulation, runs, and
// reports whether the invariant under test was violated.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/rng.h"
#include "sim/simulation.h"

namespace jsk::sim::explore {

/// A schedule is the compact decision string. Choice k is the candidate
/// index taken at the k-th *branching* point (scheduling points with a single
/// candidate are not recorded). Runs that consume the whole string follow
/// the tail policy (first candidate for replay) from there on.
struct schedule {
    std::vector<std::uint32_t> choices;

    /// "02a1" — one base-36 digit per choice; indices >= 36 appear as "{n}".
    [[nodiscard]] std::string str() const;

    /// Inverse of str(); nullopt on malformed input.
    static std::optional<schedule> parse(const std::string& text);

    /// Number of non-default choices — the "preemption" count that bounds
    /// DFS depth and that the shrinker minimizes.
    [[nodiscard]] std::size_t preemptions() const;

    /// Drop trailing zeros (a replay regenerates them as the tail default).
    void trim();

    bool operator==(const schedule&) const = default;
};

/// Everything recorded at one branching point, for DFS expansion and
/// diagnostics. Per-candidate metadata lives in flat arrays on the
/// controller (indexed by `offset`) so recording a decision never
/// allocates; read it back through controller::decision_thread/task.
struct decision {
    std::uint32_t chosen = 0;
    std::uint32_t count = 0;
    std::uint32_t offset = 0;  // into the controller's flat candidate arrays
};

/// Drives one run: replays a prescribed prefix of decisions, then follows a
/// tail policy (first candidate, or seeded-random), recording the complete
/// decision string plus per-point metadata.
class controller final : public schedule_hook {
public:
    enum class tail_policy { first, random };

    explicit controller(schedule prefix = {}, tail_policy tail = tail_policy::first,
                        std::uint64_t seed = 0)
        : prefix_(std::move(prefix)), tail_(tail), walk_(seed)
    {
    }

    /// Widen co-enabling: offer tasks whose effective start is within
    /// `window` of the earliest. Set before attach().
    void set_window(time_ns window) { window_ = window; }
    [[nodiscard]] time_ns window() const { return window_; }

    /// Install onto `sim`. The controller must outlive the run.
    void attach(simulation& sim) { sim.set_schedule_hook(this, window_); }

    // schedule_hook
    std::size_t choose(const std::vector<sched_candidate>& candidates) override;
    void on_post(task_id posted, thread_id target, task_id poster) override;

    /// The complete decision string this run actually took.
    [[nodiscard]] const schedule& decisions() const { return recorded_; }
    [[nodiscard]] const std::vector<decision>& trace() const { return trace_; }

    /// The prescribed replay prefix and tail policy this controller was
    /// built with. Together (with the walk seed for random tails) they
    /// determine the whole run up front — which is what lets jsk::par key a
    /// result cache on a tail-first controller *before* it runs.
    [[nodiscard]] const schedule& prescribed() const { return prefix_; }
    [[nodiscard]] tail_policy tail() const { return tail_; }

    /// Candidate metadata for a recorded decision, in offered order. Only
    /// populated when set_record_metadata(true) was set before the run.
    [[nodiscard]] thread_id decision_thread(const decision& d, std::size_t i) const
    {
        return cand_threads_[d.offset + i];
    }
    [[nodiscard]] task_id decision_task(const decision& d, std::size_t i) const
    {
        return cand_tasks_[d.offset + i];
    }

    /// True once the run has consumed the whole prescribed prefix.
    [[nodiscard]] bool prefix_exhausted() const
    {
        return recorded_.choices.size() >= prefix_.choices.size();
    }

    /// True when a prescribed choice was out of range for the candidates
    /// actually offered — the replayed program diverged from the recording.
    [[nodiscard]] bool replay_diverged() const { return diverged_; }

    /// Pre-size the recording buffers (decision string + trace) so taking a
    /// decision never reallocates. Snapshot-backed programs (jsk::core
    /// forks) rely on this: a controller that lives outside the world's
    /// arena must not grow its buffers while the arena scope is active, or
    /// the storage would be rolled back with the world on restore.
    void reserve(std::size_t decisions)
    {
        recorded_.choices.reserve(decisions);
        trace_.reserve(decisions);
    }

    /// Whether set_record_metadata(true) is in effect. Snapshot-backed
    /// programs check this and fall back to fresh worlds: metadata lands in
    /// node-based containers that cannot be pre-reserved.
    [[nodiscard]] bool records_metadata() const { return record_metadata_; }

    /// Opt into DPOR metadata recording: per-decision candidate arrays
    /// (decision_thread / decision_task) and per-task footprints (threads
    /// each task posted to). Off by default: only DPOR-lite independence
    /// checks consume either, and the bookkeeping — a hash insert per post
    /// plus a copy of every offered candidate per branching point — sits on
    /// the exploration hot path. explore_dfs enables it when opt.dpor is
    /// set. Decision strings, counts, and chosen indices are always
    /// recorded.
    void set_record_metadata(bool on) { record_metadata_ = on; }

    /// Threads that `task`'s callback posted to; nullptr when the task never
    /// posted (or never ran, or recording was off — both read as "unknown",
    /// which independence checks treat as dependent).
    [[nodiscard]] const std::vector<thread_id>* footprint(task_id task) const;

private:
    schedule prefix_;
    tail_policy tail_;
    rng walk_;
    time_ns window_ = 0;
    bool diverged_ = false;
    bool record_metadata_ = false;
    schedule recorded_;
    std::vector<decision> trace_;
    std::vector<thread_id> cand_threads_;  // flat per-decision candidate metadata
    std::vector<task_id> cand_tasks_;
    std::unordered_map<task_id, std::vector<thread_id>> posts_;
};

/// Verdict of one complete controlled run.
struct run_outcome {
    bool violated = false;
    std::string detail;  // surfaced with the failing schedule
};

/// The program under test: build a fresh world, `ctl.attach(world.sim())`,
/// run to quiescence, check the invariant.
using program = std::function<run_outcome(controller&)>;

struct options {
    time_ns window = 0;                 // commutativity window
    std::uint64_t seed = 1;             // random-walk seed
    std::uint64_t max_schedules = 256;  // walk count / DFS run bound
    std::uint32_t preemption_budget = 4;  // DFS: max non-default choices
    bool dpor = false;  // DFS: prune swaps of independent thread pairs.
                        // Independence is judged from observed task
                        // footprints (threads posted to) — sound for pure
                        // DES programs, heuristic when tasks share state
                        // outside the simulator (e.g. the browser bus).
};

struct result {
    std::uint64_t schedules_run = 0;
    std::uint64_t pruned = 0;    // DFS: alternatives skipped (budget/DPOR)
    bool exhausted = false;      // DFS: whole bounded tree explored
    std::optional<schedule> failing;  // first violating schedule, if any
    std::string failure_detail;
};

/// Child prefixes of one completed DFS run: for every branching point the
/// run reached beyond its prescribed `prefix`, each untaken alternative
/// within the preemption budget (and not DPOR-pruned) becomes a new prefix.
/// Skipped alternatives are counted into `pruned`. Pure with respect to the
/// finished controller, so frontier expansion can run per-job in a parallel
/// wave (jsk::par) and still generate each child exactly once across the
/// tree, in canonical order.
std::vector<schedule> expand_run(const controller& ctl, const schedule& prefix,
                                 const options& opt, std::uint64_t& pruned);

/// Seeded random walks through the schedule space; stops at the first
/// violation or after max_schedules walks.
result explore_random(const program& p, const options& opt = {});

/// Exhaustive DFS over branching points, bounded by the preemption budget;
/// stops at the first violation. `exhausted` reports whether the bounded
/// tree was fully covered within max_schedules runs.
result explore_dfs(const program& p, const options& opt = {});

/// Re-run `p` under exactly `s` (tail defaults to the first candidate).
run_outcome replay(const schedule& s, const program& p, time_ns window = 0);

/// Delta-debugging: minimize a violating schedule to the shortest decision
/// string that still violates (chunk deletion, then zeroing of individual
/// choices). `opt.max_schedules` caps the number of candidate replays.
schedule shrink(const schedule& failing, const program& p, const options& opt = {});

}  // namespace jsk::sim::explore
