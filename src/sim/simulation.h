// Discrete-event simulation core with per-thread occupancy.
//
// The simulator models a small set of "threads" (browser main thread plus web
// workers). Each thread executes tasks sequentially; tasks on different
// threads logically overlap in virtual time. A task declares its computation
// cost by calling `consume()` while it runs; the thread is then busy until
// `start + total consumed`.
//
// Execution order is by *effective start time* `max(ready_at, busy_until)`,
// which preserves cross-thread causality: a message posted at virtual time t
// is observed by code whose start time is >= t, even when the C++ callbacks
// run in a single host thread.
//
// Two scheduling hot paths, two index structures:
//
//  * Unhooked (production) runs pop from a global priority queue keyed by
//    candidate start time, re-keying entries upward when their thread is
//    still busy. O(log n) per step, allocation-free pops.
//  * Hooked (exploration) runs assemble a *candidate window* each step. That
//    used to rescan all of pending_ (O(n)) and run a pairwise O(C^2) FIFO
//    filter; it is now incrementally indexed: each thread keeps a lazy
//    min-heap of its pending tasks by ready time, a lazy (head start, thread)
//    heap tracks the earliest runnable head across threads, and same-channel
//    (source thread -> target thread) posts are indexed so FIFO
//    realizability is a per-channel prefix-minimum check. The unhooked
//    queue is not even populated while a hook is installed (and is rebuilt
//    from pending state when the hook is removed), so long exploration runs
//    no longer accumulate stale entries.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/id_index.h"
#include "sim/time.h"

namespace jsk::obs {
class sink;
}

namespace jsk::sim {

using thread_id = std::int32_t;
using task_id = std::uint64_t;

inline constexpr thread_id no_thread = -1;

/// Information handed to the task observers after each task completes.
/// Loopscan-style attacks and the trace facility consume this.
struct task_info {
    task_id id = 0;
    thread_id thread = no_thread;
    time_ns ready_at = 0;
    time_ns start = 0;
    time_ns end = 0;
    std::string label;
};

/// One runnable candidate offered to the schedule hook at a scheduling point.
struct sched_candidate {
    task_id id = 0;
    thread_id thread = no_thread;
    time_ns start = 0;  // effective start = max(ready_at, busy_until)
    const std::string* label = nullptr;  // valid only during the choose() call
};

/// Exploration hook (jsk::sim::explore): when installed, the simulator stops
/// popping strictly by (effective start, post order) and instead, at every
/// step, offers the set of *co-enabled* pending tasks — those whose effective
/// start lies within the configured commutativity window of the earliest —
/// and lets the hook pick which one runs next. Candidates are sorted by
/// (start, id) so a decision index is stable across identically-prefixed
/// runs. `choose` is only called when there are >= 2 candidates.
///
/// Only *realizable* schedules are offered: two cross-thread messages on the
/// same channel (same posting thread, same target thread) are never offered
/// out of post order, matching the per-channel FIFO that real message ports
/// guarantee and that the kernel's guard protocol assumes. Same-thread posts
/// (timers) and external posts stay freely reorderable.
class schedule_hook {
public:
    virtual ~schedule_hook() = default;

    /// Pick the next task to run. `candidates` is non-empty; out-of-range
    /// returns are clamped to 0.
    virtual std::size_t choose(const std::vector<sched_candidate>& candidates) = 0;

    /// Called for every accepted post. `poster` is the id of the task on the
    /// stack at post time (0 when posted from outside the simulation) and
    /// `source` its thread (no_thread for external posts) — dependence
    /// tracking (sim/por.h) consumes both: a post is a write to the target
    /// thread's inbox and to the (source -> target) channel.
    virtual void on_post(task_id posted, thread_id target, task_id poster,
                         thread_id source)
    {
        (void)posted;
        (void)target;
        (void)poster;
        (void)source;
    }

    /// Called right before `task`'s callback runs on `thread`. Together with
    /// on_access this lets a hook attribute every recorded access to the
    /// task that performed it. `ready_at` is the task's immutable ready time
    /// — DPOR's may-be-co-enabled check compares it against the co-enabling
    /// window of earlier scheduling points.
    virtual void on_execute(task_id task, thread_id thread, time_ns ready_at)
    {
        (void)task;
        (void)thread;
        (void)ready_at;
    }

    /// Called for every dependency-relevant resource access announced via
    /// simulation::note_access while `task` is on the stack. `resource` is
    /// an opaque key (sim/por.h defines the namespaces: thread inboxes,
    /// channels, SAB cells, vuln-monitor sinks). `ord` is the weak-memory
    /// access ordering (sim/por.h access_order: 0 = not a memory access,
    /// 1 = unordered, 2 = seq-cst) — por analysis consults it for
    /// synchronizes-with edges and data-race reporting.
    virtual void on_access(task_id task, std::uint64_t resource, bool write,
                           std::uint8_t ord)
    {
        (void)task;
        (void)resource;
        (void)write;
        (void)ord;
    }

    /// Pick one of `count` enumerated value candidates — the weak-memory
    /// reads-from choice (jsk::wm) routed through the same decision string
    /// as schedule choices. Only called with count >= 2; out-of-range
    /// returns are clamped to 0 (the committed, seq-cst value).
    virtual std::size_t choose_value(std::size_t count)
    {
        (void)count;
        return 0;
    }
};

/// Weak-memory listener (jsk::wm::memory): notified of every accepted post
/// and of every task execution, on both the hooked and the unhooked
/// scheduling path. The relaxed SAB memory model derives its postMessage
/// synchronizes-with edges from these callbacks — unlike schedule_hook
/// (installed only during exploration), a wm_listener is active on plain
/// production runs too, so relaxed-mode worlds behave identically whether
/// or not a controller is attached.
class wm_listener {
public:
    virtual ~wm_listener() = default;

    virtual void on_post(task_id posted, thread_id target, thread_id source)
    {
        (void)posted;
        (void)target;
        (void)source;
    }

    virtual void on_execute(task_id task, thread_id thread)
    {
        (void)task;
        (void)thread;
    }
};

/// The discrete-event simulator. Not thread-safe: it *models* concurrency but
/// runs in one host thread (CP.3 — no shared writable state to race on).
class simulation {
public:
    simulation() = default;

    simulation(const simulation&) = delete;
    simulation& operator=(const simulation&) = delete;

    /// Create a new simulated thread. The returned id is stable for the
    /// lifetime of the simulation. The thread's busy window starts at
    /// `now()`: a worker spawned inside a task at virtual time t can never
    /// execute anything that starts before t.
    thread_id create_thread(std::string name);

    /// Destroy a thread: its queued tasks are dropped (eagerly — they stop
    /// counting toward pending_tasks() immediately) and future posts to it
    /// are rejected. Mirrors `worker.terminate()` semantics.
    void destroy_thread(thread_id thread);

    [[nodiscard]] bool thread_alive(thread_id thread) const;
    [[nodiscard]] const std::string& thread_name(thread_id thread) const;

    /// Schedule `fn` on `thread` at absolute virtual time >= `when`.
    /// If called from inside a running task, `when` is clamped to `now()`
    /// (nothing can be scheduled in the past). Returns an id usable with
    /// `cancel()`. Posting to a dead thread returns 0 and drops the task.
    task_id post(thread_id thread, time_ns when, std::function<void()> fn,
                 std::string label = {});

    /// Cancel a pending task. Returns true if the task had not run yet.
    bool cancel(task_id id);

    /// True while a task callback is on the stack.
    [[nodiscard]] bool in_task() const { return current_.has_value(); }

    /// True when the scheduler is fully at rest: no task on the stack and
    /// nothing pending. This is jsk::core's snapshot seal contract — a
    /// quiescent world's future behaviour is entirely encoded in its
    /// captured state. (Capturing with tasks *pending* is also sound — they
    /// are part of the image — but capturing mid-task never is.)
    [[nodiscard]] bool quiescent() const { return !in_task() && pending_count_ == 0; }

    /// Virtual "now": inside a task, the running thread's current time
    /// (start + consumed so far); outside, the global low-water mark.
    [[nodiscard]] time_ns now() const;

    /// Thread whose task is currently executing.
    [[nodiscard]] thread_id current_thread() const;

    /// Model `cost` nanoseconds of computation on the current thread.
    /// Must be called from inside a task.
    void consume(time_ns cost);

    /// Earliest time the thread can start a new task.
    [[nodiscard]] time_ns busy_until(thread_id thread) const;

    /// Run until the task queue drains. `max_tasks` guards runaway loops.
    /// Throws std::logic_error when called from inside a task or observer
    /// callback: a nested run would corrupt the running task's timing.
    void run(std::uint64_t max_tasks = std::numeric_limits<std::uint64_t>::max());

    /// Run tasks whose effective start time is <= `deadline`; afterwards the
    /// global clock is at least `deadline`. Throws std::logic_error on
    /// reentrant calls (see run()).
    void run_until(time_ns deadline,
                   std::uint64_t max_tasks = std::numeric_limits<std::uint64_t>::max());

    /// Number of tasks executed so far.
    [[nodiscard]] std::uint64_t tasks_executed() const { return executed_; }

    /// Number of tasks currently pending. Exact: cancelled tasks and tasks
    /// dropped by destroy_thread() leave the count immediately.
    [[nodiscard]] std::size_t pending_tasks() const { return pending_count_; }

    /// High-water mark of pending_tasks() over the simulation's lifetime
    /// (bench/telemetry: peak scheduler backlog).
    [[nodiscard]] std::size_t peak_pending() const { return peak_pending_; }

    /// Entries currently held by the unhooked pop queue. Bookkeeping bound:
    /// exactly 0 while a schedule hook is installed (hooked runs never touch
    /// it); otherwise pending_tasks() plus any not-yet-skipped stale entries.
    [[nodiscard]] std::size_t queued_entries() const { return queue_.size(); }

    /// Observers invoked (in registration order) after every completed task
    /// (loopscan, tracing, invariant checkers). Observers compose: adding one
    /// never displaces another. Do not remove observers from inside an
    /// observer callback.
    using observer_handle = std::uint64_t;
    observer_handle add_task_observer(std::function<void(const task_info&)> observer);
    void remove_task_observer(observer_handle handle);

    /// Attach (or detach, with nullptr) the observability trace sink
    /// (jsk::obs). The simulation is the world's single attach point: kernel
    /// and runtime instrumentation reach the sink through their simulation.
    /// The sink is not owned and must outlive the run. Attaching registers
    /// the names of all existing threads; threads created later register
    /// themselves. Tracing never changes scheduling decisions — a traced run
    /// and an untraced run execute the identical task order.
    void set_trace_sink(obs::sink* sink);
    [[nodiscard]] obs::sink* trace_sink() const { return tsink_; }

    /// Number of threads ever created (destroyed threads keep their id).
    [[nodiscard]] std::size_t thread_count() const { return threads_.size(); }

    /// Hooked scheduling steps taken (candidate windows assembled).
    [[nodiscard]] std::uint64_t hooked_steps() const { return hooked_steps_; }

    /// Always-on tally of candidate-window sizes at hooked scheduling points:
    /// element k counts the steps that offered exactly k candidates (last
    /// element: that many or more). obs/collect.h turns this into the
    /// sim.candidate_window histogram.
    [[nodiscard]] const std::array<std::uint64_t, 16>& cand_counts() const
    {
        return cand_counts_;
    }

    /// Install (or clear, with nullptr) the exploration hook. The hook is
    /// not owned and must outlive the run. `window` widens co-enabling: a
    /// pending task is offered alongside the earliest one when its effective
    /// start is within `window` of it. With a hook installed and window > 0,
    /// global task *start* times may be locally non-monotone; per-message
    /// causality (observation start >= post time) still holds. Installing or
    /// clearing the hook mid-run is supported: the scheduling index for the
    /// new mode is rebuilt from the pending set.
    void set_schedule_hook(schedule_hook* hook, time_ns window = 0);

    /// Announce a dependency-relevant access (SAB cell, monitor sink, ...)
    /// by the currently running task. Free when no hook is installed; with a
    /// hook, forwards to schedule_hook::on_access. Calls from outside a task
    /// (world setup) are dropped — setup is not schedulable, so it cannot
    /// race. `ord` carries the weak-memory access ordering for SAB touches
    /// (see schedule_hook::on_access); non-memory accesses pass 0.
    void note_access(std::uint64_t resource, bool write, std::uint8_t ord = 0)
    {
        if (hook_ != nullptr && current_) {
            hook_->on_access(current_->id, resource, write, ord);
        }
    }

    /// Ask the schedule hook to pick one of `count` enumerated weak-memory
    /// value candidates (jsk::wm reads-from choice). Without a hook — plain
    /// runs, replay tails past the recorded string — the answer is 0, the
    /// committed value, so un-steered execution is seq-cst by construction.
    std::size_t choose_value(std::size_t count)
    {
        if (hook_ == nullptr || count <= 1) return 0;
        const std::size_t pick = hook_->choose_value(count);
        return pick < count ? pick : 0;
    }

    /// Install (or clear, with nullptr) the weak-memory listener. Not
    /// owned; must outlive the run. Fires on both scheduling paths.
    void set_wm_listener(wm_listener* listener) { wm_ = listener; }
    [[nodiscard]] wm_listener* get_wm_listener() const { return wm_; }

private:
    /// Per-thread lazy min-heap entry: a pending task's immutable ready time.
    /// Entries are not removed when a task executes or is cancelled; they
    /// carry the task's arena slot and generation and are treated as
    /// tombstones once the generation no longer matches (one indexed load,
    /// no hash probe).
    struct ready_ref {
        time_ns ready_at;
        task_id id;
        std::uint32_t slot;
        std::uint32_t gen;
        bool operator>(const ready_ref& other) const
        {
            return ready_at != other.ready_at ? ready_at > other.ready_at : id > other.id;
        }
    };

    struct thread_state {
        std::string name;
        bool alive = true;
        time_ns busy_until = 0;
        std::vector<ready_ref> ready;     // hooked mode only; empty otherwise
        time_ns ready_max = 0;            // upper bound on live entries' ready_at
        std::uint64_t collect_stamp = 0;  // last hooked step this thread was collected
        std::size_t stale = 0;            // ready entries whose task left the arena
        std::vector<std::uint64_t> in_channels;  // keys of channels targeting this thread
    };

    struct pending_task {
        thread_id thread = no_thread;
        thread_id source = no_thread;  // thread of the posting task (no_thread
                                       // when posted from outside a task)
        time_ns ready_at = 0;
        std::uint64_t seq = 0;  // global post order (FIFO tie-break)
        std::function<void()> fn;
        std::string label;
    };

    struct queue_entry {
        time_ns key;  // candidate start time; re-keyed upward on busy threads
        std::uint64_t seq;
        task_id id;
        std::uint32_t slot = 0;  // arena slot + generation for O(1) validation
        std::uint32_t gen = 0;
        bool operator>(const queue_entry& other) const
        {
            return key != other.key ? key > other.key : seq > other.seq;
        }
    };

    /// Lazy global heap over thread heads: (effective start of the thread's
    /// earliest pending task, thread). Keys are exact at push time and only
    /// drift as the thread's state moves; surfaced entries are re-validated
    /// and re-keyed, so the first validated pop is the true earliest start.
    struct order_ref {
        time_ns start;
        thread_id thread;
        bool operator>(const order_ref& other) const
        {
            return start != other.start ? start > other.start : thread > other.thread;
        }
    };

    /// Per-channel FIFO index for hooked mode. One channel per (source
    /// thread -> target thread) pair of cross-thread posts; entries are kept
    /// in post (= id) order. The candidate gather never tests entries
    /// individually for FIFO blocking: the only entries an earlier
    /// same-channel post cannot block are the strict prefix minima of the
    /// ready times in id order, so each step walks that chain once per
    /// channel (O(entries), sequential) and offers exactly its members.
    struct channel_entry {
        task_id id;
        time_ns ready_at;
        std::uint32_t slot;  // always live: entries are removed eagerly
    };
    struct channel_state {
        std::vector<channel_entry> entries;  // id-ascending
    };

    struct running_task {
        task_id id;
        thread_id thread;
        time_ns start;
        time_ns consumed;
    };

    /// Pop the next runnable entry, re-keying entries whose thread is still
    /// busy past their key. Returns nullopt when the queue is empty or the
    /// next start time exceeds `deadline`.
    std::optional<queue_entry> next_entry(time_ns deadline);

    /// Hook-driven variant: candidate window assembly from the per-thread
    /// indexes and hook choice (see schedule_hook).
    std::optional<queue_entry> next_entry_hooked(time_ns deadline);

    void execute(const queue_entry& entry);
    /// Settle the running-task record (charge consumed time, bump executed_,
    /// clear current_). Called on both the normal and the unwinding path of
    /// execute() so a throwing task cannot wedge the simulator.
    void finish_current();

    // Hooked-index maintenance.
    static std::uint64_t channel_key(thread_id source, thread_id target);
    void channel_add(thread_id source, thread_id target, task_id id, time_ns ready_at,
                     std::uint32_t slot);
    void channel_remove(const pending_task& task, task_id id);
    std::optional<time_ns> thread_head_start(thread_id thread);
    void rebuild_hook_index();
    void rebuild_unhooked_queue();

    /// Pending tasks live in a slot arena: scheduling refs (ready_ref /
    /// queue_entry) carry (slot, generation) and validate with one indexed
    /// load. The open-addressed id index is only consulted on the id-keyed
    /// operations (cancel, hooked pick resolution), never per candidate.
    struct task_slot {
        pending_task task;
        task_id id = 0;
        std::uint32_t gen = 0;  // bumped on release; stale refs mismatch
        bool alive = false;
    };

    /// Place `task` in a free slot (reusing released ones LIFO) and index it.
    std::uint32_t acquire_slot(pending_task task, task_id id);
    /// Unindex the slot, bump its generation, and recycle it.
    void release_slot(std::uint32_t slot);
    /// The slot's task iff the generation still matches, else nullptr.
    [[nodiscard]] const pending_task* slot_task(std::uint32_t slot,
                                                std::uint32_t gen) const
    {
        const task_slot& s = slots_[slot];
        return s.gen == gen ? &s.task : nullptr;
    }

    std::vector<thread_state> threads_;
    std::vector<task_slot> slots_;
    std::vector<std::uint32_t> slot_free_;  // LIFO free list over slots_
    detail::id_index task_index_;           // live task id -> slot
    std::size_t pending_count_ = 0;
    std::priority_queue<queue_entry, std::vector<queue_entry>, std::greater<>> queue_;
    std::vector<order_ref> thread_order_;  // hooked mode only
    std::unordered_map<std::uint64_t, channel_state> channels_;  // hooked mode only
    std::vector<std::pair<observer_handle, std::function<void(const task_info&)>>>
        observers_;
    schedule_hook* hook_ = nullptr;
    wm_listener* wm_ = nullptr;
    time_ns window_ = 0;
    obs::sink* tsink_ = nullptr;
    std::uint64_t hooked_steps_ = 0;
    std::array<std::uint64_t, 16> cand_counts_{};
    std::optional<running_task> current_;
    bool running_ = false;
    task_id next_task_id_ = 1;
    std::uint64_t next_seq_ = 0;
    std::uint64_t next_observer_ = 1;
    std::uint64_t executed_ = 0;
    std::uint64_t step_stamp_ = 0;
    std::size_t peak_pending_ = 0;
    time_ns floor_time_ = 0;  // global low-water mark outside tasks

    /// Compact candidate record gathered before the per-step sort: sorting
    /// these 24-byte keys and materializing sched_candidates afterwards is
    /// cheaper than sorting the public 32-byte structs directly, and keeps
    /// the picked task's slot at hand for the returned queue_entry.
    struct cand_key {
        time_ns start;
        task_id id;
        std::uint32_t slot;
        thread_id thread;
    };

    // Step-scratch buffers (reused so hooked steps stay allocation-light).
    std::vector<sched_candidate> cand_buf_;
    std::vector<cand_key> cand_keys_;
    std::vector<std::size_t> dfs_stack_;  // ready-heap traversal worklist
    std::vector<order_ref> collected_;
};

}  // namespace jsk::sim
