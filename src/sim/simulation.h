// Discrete-event simulation core with per-thread occupancy.
//
// The simulator models a small set of "threads" (browser main thread plus web
// workers). Each thread executes tasks sequentially; tasks on different
// threads logically overlap in virtual time. A task declares its computation
// cost by calling `consume()` while it runs; the thread is then busy until
// `start + total consumed`.
//
// Execution order is by *effective start time* `max(ready_at, busy_until)`,
// which preserves cross-thread causality: a message posted at virtual time t
// is observed by code whose start time is >= t, even when the C++ callbacks
// run in a single host thread.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace jsk::sim {

using thread_id = std::int32_t;
using task_id = std::uint64_t;

inline constexpr thread_id no_thread = -1;

/// Information handed to the task observers after each task completes.
/// Loopscan-style attacks and the trace facility consume this.
struct task_info {
    task_id id = 0;
    thread_id thread = no_thread;
    time_ns ready_at = 0;
    time_ns start = 0;
    time_ns end = 0;
    std::string label;
};

/// One runnable candidate offered to the schedule hook at a scheduling point.
struct sched_candidate {
    task_id id = 0;
    thread_id thread = no_thread;
    time_ns start = 0;  // effective start = max(ready_at, busy_until)
    const std::string* label = nullptr;
};

/// Exploration hook (jsk::sim::explore): when installed, the simulator stops
/// popping strictly by (effective start, post order) and instead, at every
/// step, offers the set of *co-enabled* pending tasks — those whose effective
/// start lies within the configured commutativity window of the earliest —
/// and lets the hook pick which one runs next. Candidates are sorted by
/// (start, id) so a decision index is stable across identically-prefixed
/// runs. `choose` is only called when there are >= 2 candidates.
///
/// Only *realizable* schedules are offered: two cross-thread messages on the
/// same channel (same posting thread, same target thread) are never offered
/// out of post order, matching the per-channel FIFO that real message ports
/// guarantee and that the kernel's guard protocol assumes. Same-thread posts
/// (timers) and external posts stay freely reorderable.
class schedule_hook {
public:
    virtual ~schedule_hook() = default;

    /// Pick the next task to run. `candidates` is non-empty; out-of-range
    /// returns are clamped to 0.
    virtual std::size_t choose(const std::vector<sched_candidate>& candidates) = 0;

    /// Called for every accepted post. `poster` is the id of the task on the
    /// stack at post time (0 when posted from outside the simulation) —
    /// DPOR-lite independence tracking consumes this.
    virtual void on_post(task_id posted, thread_id target, task_id poster)
    {
        (void)posted;
        (void)target;
        (void)poster;
    }
};

/// The discrete-event simulator. Not thread-safe: it *models* concurrency but
/// runs in one host thread (CP.3 — no shared writable state to race on).
class simulation {
public:
    simulation() = default;

    simulation(const simulation&) = delete;
    simulation& operator=(const simulation&) = delete;

    /// Create a new simulated thread. The returned id is stable for the
    /// lifetime of the simulation.
    thread_id create_thread(std::string name);

    /// Destroy a thread: its queued tasks are dropped and future posts to it
    /// are rejected. Mirrors `worker.terminate()` semantics.
    void destroy_thread(thread_id thread);

    [[nodiscard]] bool thread_alive(thread_id thread) const;
    [[nodiscard]] const std::string& thread_name(thread_id thread) const;

    /// Schedule `fn` on `thread` at absolute virtual time >= `when`.
    /// If called from inside a running task, `when` is clamped to `now()`
    /// (nothing can be scheduled in the past). Returns an id usable with
    /// `cancel()`. Posting to a dead thread returns 0 and drops the task.
    task_id post(thread_id thread, time_ns when, std::function<void()> fn,
                 std::string label = {});

    /// Cancel a pending task. Returns true if the task had not run yet.
    bool cancel(task_id id);

    /// True while a task callback is on the stack.
    [[nodiscard]] bool in_task() const { return current_.has_value(); }

    /// Virtual "now": inside a task, the running thread's current time
    /// (start + consumed so far); outside, the global low-water mark.
    [[nodiscard]] time_ns now() const;

    /// Thread whose task is currently executing.
    [[nodiscard]] thread_id current_thread() const;

    /// Model `cost` nanoseconds of computation on the current thread.
    /// Must be called from inside a task.
    void consume(time_ns cost);

    /// Earliest time the thread can start a new task.
    [[nodiscard]] time_ns busy_until(thread_id thread) const;

    /// Run until the task queue drains. `max_tasks` guards runaway loops.
    void run(std::uint64_t max_tasks = std::numeric_limits<std::uint64_t>::max());

    /// Run tasks whose effective start time is <= `deadline`; afterwards the
    /// global clock is at least `deadline`.
    void run_until(time_ns deadline,
                   std::uint64_t max_tasks = std::numeric_limits<std::uint64_t>::max());

    /// Number of tasks executed so far.
    [[nodiscard]] std::uint64_t tasks_executed() const { return executed_; }

    /// Number of tasks currently pending.
    [[nodiscard]] std::size_t pending_tasks() const { return pending_.size(); }

    /// Observers invoked (in registration order) after every completed task
    /// (loopscan, tracing, invariant checkers). Observers compose: adding one
    /// never displaces another. Do not remove observers from inside an
    /// observer callback.
    using observer_handle = std::uint64_t;
    observer_handle add_task_observer(std::function<void(const task_info&)> observer);
    void remove_task_observer(observer_handle handle);

    /// Install (or clear, with nullptr) the exploration hook. The hook is
    /// not owned and must outlive the run. `window` widens co-enabling: a
    /// pending task is offered alongside the earliest one when its effective
    /// start is within `window` of it. With a hook installed and window > 0,
    /// global task *start* times may be locally non-monotone; per-message
    /// causality (observation start >= post time) still holds.
    void set_schedule_hook(schedule_hook* hook, time_ns window = 0)
    {
        hook_ = hook;
        window_ = window;
    }

private:
    struct thread_state {
        std::string name;
        bool alive = true;
        time_ns busy_until = 0;
    };

    struct pending_task {
        thread_id thread = no_thread;
        thread_id source = no_thread;  // thread of the posting task (no_thread
                                       // when posted from outside a task)
        time_ns ready_at = 0;
        std::function<void()> fn;
        std::string label;
    };

    struct queue_entry {
        time_ns key;  // candidate start time; re-keyed upward on busy threads
        std::uint64_t seq;
        task_id id;
        bool operator>(const queue_entry& other) const
        {
            return key != other.key ? key > other.key : seq > other.seq;
        }
    };

    struct running_task {
        task_id id;
        thread_id thread;
        time_ns start;
        time_ns consumed;
    };

    /// Pop the next runnable entry, re-keying entries whose thread is still
    /// busy past their key. Returns nullopt when the queue is empty or the
    /// next start time exceeds `deadline`.
    std::optional<queue_entry> next_entry(time_ns deadline);

    /// Hook-driven variant: linear scan of pending tasks, candidate window
    /// assembly, and hook choice (see schedule_hook).
    std::optional<queue_entry> next_entry_hooked(time_ns deadline);

    void execute(const queue_entry& entry);

    std::vector<thread_state> threads_;
    std::unordered_map<task_id, pending_task> pending_;
    std::priority_queue<queue_entry, std::vector<queue_entry>, std::greater<>> queue_;
    std::vector<std::pair<observer_handle, std::function<void(const task_info&)>>>
        observers_;
    schedule_hook* hook_ = nullptr;
    time_ns window_ = 0;
    std::optional<running_task> current_;
    task_id next_task_id_ = 1;
    std::uint64_t next_seq_ = 0;
    std::uint64_t next_observer_ = 1;
    std::uint64_t executed_ = 0;
    time_ns floor_time_ = 0;  // global low-water mark outside tasks
};

}  // namespace jsk::sim
