#include "sim/por.h"

#include <algorithm>

namespace jsk::sim::por {

namespace {

constexpr std::uint64_t fnv_offset = 14695981039346656037ULL;
constexpr std::uint64_t fnv_prime = 1099511628211ULL;

constexpr std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= fnv_prime;
    }
    return h;
}

/// Overlap with at least one write on a common key. Footprints are a handful
/// of keys each, so the quadratic scan beats sorting.
bool spans_conflict(const std::vector<explore::access_rec>& log,
                    const explore::exec_rec& a, const explore::exec_rec& b)
{
    for (std::uint32_t i = a.access_begin; i < a.access_end; ++i) {
        for (std::uint32_t j = b.access_begin; j < b.access_end; ++j) {
            if (log[i].key == log[j].key && (log[i].write || log[j].write)) return true;
        }
    }
    return false;
}

}  // namespace

bool dependent(const explore::controller& ctl, task_id a, thread_id ta, task_id b,
               thread_id tb)
{
    if (ta == tb) return true;
    const std::size_t sa = ctl.step_of(a);
    const std::size_t sb = ctl.step_of(b);
    if (sa == explore::controller::no_step || sb == explore::controller::no_step) {
        return true;  // unknown footprint: never prune
    }
    const auto& exec = ctl.exec_log();
    return spans_conflict(ctl.access_log(), exec[sa], exec[sb]);
}

bool dependent_step(const explore::controller& ctl, task_id task, std::size_t step)
{
    const std::size_t st = ctl.step_of(task);
    if (st == explore::controller::no_step) return true;
    const auto& exec = ctl.exec_log();
    if (exec[st].thread == exec[step].thread) return true;
    return spans_conflict(ctl.access_log(), exec[st], exec[step]);
}

analysis::analysis(const explore::controller& ctl)
{
    const auto& exec = ctl.exec_log();
    const auto& accesses = ctl.access_log();
    const std::size_t steps = exec.size();
    thread_of_.reserve(steps);

    // Dense thread columns, discovery order.
    for (const auto& rec : exec) {
        const auto t = static_cast<std::size_t>(rec.thread);
        if (t >= thread_index_.size()) thread_index_.resize(t + 1, UINT32_MAX);
        if (thread_index_[t] == UINT32_MAX) {
            thread_index_[t] = static_cast<std::uint32_t>(thread_count_++);
        }
        thread_of_.push_back(rec.thread);
    }

    // Vector clocks: clock_[j*T + t] = 1 + the latest step on thread column t
    // that happens-before (or is) step j; 0 = none. Edges: program order on
    // each thread, plus poster-step -> posted-task edges.
    clock_.assign(steps * thread_count_, 0);
    std::vector<std::uint32_t> last_on_thread(thread_count_, UINT32_MAX);
    // Synchronizes-with: the last step that touched each SAB key seq-cst.
    // Runs without seq-cst accesses (every pre-weak-memory run) never
    // populate this, so their clocks are bit-identical to the historical
    // relation.
    struct sc_last {
        std::uint64_t key;
        std::uint32_t step;
    };
    std::vector<sc_last> sc;  // sorted by key
    for (std::size_t j = 0; j < steps; ++j) {
        std::uint32_t* vc = clock_.data() + j * thread_count_;
        const std::uint32_t tj =
            thread_index_[static_cast<std::size_t>(exec[j].thread)];
        if (last_on_thread[tj] != UINT32_MAX) {
            const std::uint32_t* prev = clock_.data() + last_on_thread[tj] * thread_count_;
            std::copy(prev, prev + thread_count_, vc);
        }
        if (const std::size_t poster = ctl.poster_step_of(exec[j].task);
            poster != explore::controller::no_step) {
            const std::uint32_t* pvc = clock_.data() + poster * thread_count_;
            for (std::size_t t = 0; t < thread_count_; ++t) {
                vc[t] = std::max(vc[t], pvc[t]);
            }
        }
        for (std::uint32_t i = exec[j].access_begin; i < exec[j].access_end; ++i) {
            if (accesses[i].ord != order_seqcst) continue;
            const std::uint64_t k = accesses[i].key;
            const auto it = std::lower_bound(
                sc.begin(), sc.end(), k,
                [](const sc_last& c, std::uint64_t key) { return c.key < key; });
            if (it != sc.end() && it->key == k) {
                if (it->step != j) {
                    const std::uint32_t* svc = clock_.data() + it->step * thread_count_;
                    for (std::size_t t = 0; t < thread_count_; ++t) {
                        vc[t] = std::max(vc[t], svc[t]);
                    }
                    const std::uint32_t st =
                        thread_index_[static_cast<std::size_t>(thread_of_[it->step])];
                    vc[st] = std::max(vc[st], it->step + 1);
                }
                it->step = static_cast<std::uint32_t>(j);
            } else {
                sc.insert(it, sc_last{k, static_cast<std::uint32_t>(j)});
            }
        }
        vc[tj] = static_cast<std::uint32_t>(j) + 1;
        last_on_thread[tj] = static_cast<std::uint32_t>(j);
    }

    // Coverage fingerprints: per-key access-order chains. The chain value
    // after each touch of a *sink* key is also a monitor-prefix hash.
    struct chain {
        std::uint64_t key;
        std::uint64_t hash;
    };
    std::vector<chain> chains;  // sorted by key
    const auto chain_of = [&](std::uint64_t k) -> chain& {
        const auto it = std::lower_bound(
            chains.begin(), chains.end(), k,
            [](const chain& c, std::uint64_t key) { return c.key < key; });
        if (it != chains.end() && it->key == k) return *it;
        return *chains.insert(it, chain{k, fnv_mix(fnv_offset, k)});
    };
    for (std::size_t j = 0; j < steps; ++j) {
        for (std::uint32_t i = exec[j].access_begin; i < exec[j].access_end; ++i) {
            chain& c = chain_of(accesses[i].key);
            c.hash = fnv_mix(
                c.hash, (static_cast<std::uint64_t>(
                             static_cast<std::uint32_t>(exec[j].thread))
                         << 1) |
                            (accesses[i].write ? 1 : 0));
            if ((accesses[i].key >> 56) == static_cast<std::uint64_t>(resource::sink)) {
                sink_prefixes_.push_back(c.hash);
            }
        }
    }
    class_hash_ = fnv_offset;
    for (const chain& c : chains) {
        class_hash_ = fnv_mix(fnv_mix(class_hash_, c.key), c.hash);
    }
}

bool analysis::happens_before(std::size_t i, std::size_t j) const
{
    if (i == j || j >= steps() || i >= steps()) return false;
    const std::uint32_t ti = thread_index_[static_cast<std::size_t>(thread_of_[i])];
    return clock_[j * thread_count_ + ti] >= static_cast<std::uint32_t>(i) + 1;
}

std::uint64_t race_count(const explore::controller& ctl, const analysis& an)
{
    const auto& exec = ctl.exec_log();
    const auto& log = ctl.access_log();
    std::uint64_t races = 0;
    for (std::size_t i = 0; i + 1 < exec.size(); ++i) {
        for (std::size_t j = i + 1; j < exec.size(); ++j) {
            if (!an.concurrent(i, j)) continue;
            bool racy = false;
            for (std::uint32_t a = exec[i].access_begin;
                 a < exec[i].access_end && !racy; ++a) {
                if (log[a].ord == order_none) continue;  // not a memory access
                for (std::uint32_t b = exec[j].access_begin;
                     b < exec[j].access_end && !racy; ++b) {
                    racy = log[b].ord != order_none && log[a].key == log[b].key &&
                           (log[a].write || log[b].write) &&
                           !(log[a].ord == order_seqcst && log[b].ord == order_seqcst);
                }
            }
            if (racy) ++races;
        }
    }
    return races;
}

}  // namespace jsk::sim::por
