#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace jsk::sim {

summary summarize(const std::vector<double>& xs)
{
    summary s;
    s.n = xs.size();
    if (xs.empty()) return s;
    s.min = s.max = xs.front();
    double sum = 0.0;
    for (double x : xs) {
        sum += x;
        s.min = std::min(s.min, x);
        s.max = std::max(s.max, x);
    }
    s.mean = sum / static_cast<double>(s.n);
    if (s.n > 1) {
        double acc = 0.0;
        for (double x : xs) acc += (x - s.mean) * (x - s.mean);
        s.stddev = std::sqrt(acc / static_cast<double>(s.n - 1));
    }
    return s;
}

double welch_t(const std::vector<double>& a, const std::vector<double>& b)
{
    const summary sa = summarize(a);
    const summary sb = summarize(b);
    if (sa.n < 2 || sb.n < 2) return 0.0;
    const double va = sa.stddev * sa.stddev / static_cast<double>(sa.n);
    const double vb = sb.stddev * sb.stddev / static_cast<double>(sb.n);
    const double denom = std::sqrt(va + vb);
    if (denom == 0.0) {
        // Both samples are point masses: infinitely separable unless equal.
        return sa.mean == sb.mean ? 0.0 : std::numeric_limits<double>::infinity();
    }
    return std::abs(sa.mean - sb.mean) / denom;
}

double classification_accuracy(const std::vector<double>& a, const std::vector<double>& b)
{
    if (a.empty() || b.empty()) return 0.5;
    const double ma = summarize(a).mean;
    const double mb = summarize(b).mean;
    if (ma == mb) return 0.5;
    double score = 0.0;
    auto classify = [&](double x, double own, double other) {
        const double d_own = std::abs(x - own);
        const double d_other = std::abs(x - other);
        if (d_own < d_other) score += 1.0;
        else if (d_own == d_other) score += 0.5;  // tie: coin flip
    };
    for (double x : a) classify(x, ma, mb);
    for (double x : b) classify(x, mb, ma);
    return score / static_cast<double>(a.size() + b.size());
}

std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> xs)
{
    std::sort(xs.begin(), xs.end());
    std::vector<std::pair<double, double>> out;
    out.reserve(xs.size());
    const double n = static_cast<double>(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        out.emplace_back(xs[i], static_cast<double>(i + 1) / n);
    }
    return out;
}

double percentile(std::vector<double> xs, double pct)
{
    if (xs.empty()) return 0.0;
    std::sort(xs.begin(), xs.end());
    const double rank = pct / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double cosine_similarity(const std::unordered_map<std::string, double>& a,
                         const std::unordered_map<std::string, double>& b)
{
    if (a.empty() && b.empty()) return 1.0;
    double dot = 0.0;
    double na = 0.0;
    double nb = 0.0;
    for (const auto& [key, va] : a) {
        na += va * va;
        auto it = b.find(key);
        if (it != b.end()) dot += va * it->second;
    }
    for (const auto& [key, vb] : b) nb += vb * vb;
    if (na == 0.0 || nb == 0.0) return 0.0;
    return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace jsk::sim
