// jsk::sim::por — partial-order reduction support: access keys, the sound
// dependence relation, and happens-before / coverage analysis over one
// finished controlled run.
//
// The explorer prunes an interleaving only when it is *equivalent* to one it
// already covers — two adjacent tasks may be swapped iff they are
// independent. Independence used to be judged from a posts-only footprint
// ("neither task posted to the other's thread"), which is blind to every
// other shared resource: two writers racing through the same channel, SAB
// cell, or vuln-monitor sink were judged independent and the swap that
// expresses the bug was pruned away (see DESIGN.md §12). This module defines
// the footprint that closes that hole:
//
//  * Every dependency-relevant resource is a 64-bit key in one of four
//    namespaces: thread inboxes (a post writes the target's inbox; every
//    executed task reads its own), channels (source -> target post order),
//    SAB cells (buffer id x slot), and vuln-monitor sinks (one key per
//    monitor slot, so only tasks feeding the *same* state machine conflict).
//  * The runtime announces SAB and sink touches through
//    simulation::note_access; posts and executions are recorded by the
//    simulator's own hook callbacks. The controller (sim/explore.h) stores
//    it all in flat, pre-reservable logs.
//  * Two tasks of a finished run are dependent iff they share a thread or
//    their access sets overlap on a key at least one of them writes.
//    Unknown footprints (a task that never ran) are dependent — no pruning.
//
// `analysis` additionally derives a happens-before relation (vector clocks
// over threads, edges = program order + post edges) and the two coverage
// fingerprints that steer explore_random: the interleaving-class hash
// (per-resource access-order chains — a Mazurkiewicz trace invariant, equal
// across equivalent schedules) and rolling prefix hashes of each
// vuln-monitor sink's touch sequence (novel vuln-state-machine prefixes).
// The kernel journal contributes the same kind of fingerprint at the
// harness layer via kernel::journal::class_hash() — the kernel links
// against sim, so the dependency arrow cannot point this way.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/explore.h"

namespace jsk::sim::por {

/// Resource namespaces, tagged into the top byte of the 64-bit access key.
enum class resource : std::uint64_t {
    inbox = 1,    // payload: target thread id
    channel = 2,  // payload: (source thread, target thread)
    sab = 3,      // payload: (buffer id, slot index)
    sink = 4,     // payload: vuln-monitor slot
};

constexpr std::uint64_t key(resource ns, std::uint64_t payload)
{
    return (static_cast<std::uint64_t>(ns) << 56) | (payload & ((1ULL << 56) - 1));
}

/// The target thread's message inbox. Written by every post targeting the
/// thread; read by every task that executes on it.
constexpr std::uint64_t inbox_key(thread_id thread)
{
    return key(resource::inbox, static_cast<std::uint32_t>(thread));
}

/// One (source thread -> target thread) message channel.
constexpr std::uint64_t channel_key(thread_id source, thread_id target)
{
    return key(resource::channel,
               (static_cast<std::uint64_t>(static_cast<std::uint32_t>(source)) << 28) ^
                   static_cast<std::uint32_t>(target));
}

/// One SharedArrayBuffer slot. `buffer` is the world-unique sab_id the
/// browser assigns at creation.
constexpr std::uint64_t sab_key(std::uint64_t buffer, std::uint64_t slot)
{
    return key(resource::sab, (buffer << 20) ^ (slot & ((1ULL << 20) - 1)));
}

/// One CVE monitor's state machine (slot = index into
/// rt::vuln_registry::monitors()). Keying per *monitor* rather than per
/// event kind is load-bearing: a monitor watching two kinds (e.g. fetch_freed
/// then fetch_aborted) makes tasks emitting *different* kinds order-
/// dependent, which per-kind keys would miss.
constexpr std::uint64_t sink_key(std::size_t monitor_slot)
{
    return key(resource::sink, monitor_slot);
}

/// Weak-memory access orderings, as recorded on access_rec::ord and passed
/// through simulation::note_access. `none` marks accesses that are not
/// memory operations at all (inboxes, channels, monitor sinks).
inline constexpr std::uint8_t order_none = 0;
inline constexpr std::uint8_t order_unordered = 1;
inline constexpr std::uint8_t order_seqcst = 2;

/// Sound dependence between two candidate tasks of one finished
/// metadata-recording run: same thread, or overlapping access footprints
/// with at least one write on the common key, or either footprint unknown
/// (the task never executed in this run).
///
/// Access ordering deliberately does NOT weaken this relation. Under the
/// relaxed model the schedule order of two conflicting unordered accesses
/// still determines the *committed* value (reads-from candidate 0) and the
/// result of every seq-cst access that follows, so the tasks do not
/// commute; ordering feeds the orthogonal machinery instead — analysis
/// adds synchronizes-with edges for seq-cst pairs, and race_count reports
/// the unordered conflicting pairs the rf enumerator branches on.
bool dependent(const explore::controller& ctl, task_id a, thread_id ta, task_id b,
               thread_id tb);

/// Dependence between a (possibly not-yet-run) task and the executed step
/// at exec-log index `step` — the sleep-set wake test. Unknown task
/// footprints wake (return true): a sleeping claim must never outlive the
/// evidence for it.
bool dependent_step(const explore::controller& ctl, task_id task, std::size_t step);

/// Happens-before + coverage analysis of one finished run. Build after the
/// program returns (allocates on the caller's heap — never inside a fork).
class analysis {
public:
    explicit analysis(const explore::controller& ctl);

    [[nodiscard]] std::size_t steps() const { return thread_of_.size(); }

    /// Strict happens-before between exec-log steps: program order on each
    /// thread, post edges (the posting step happens-before every step of
    /// the posted task), and synchronizes-with edges between seq-cst
    /// accesses to the same SAB cell (the earlier seq-cst access
    /// happens-before the later one — the seq-cst total order is the
    /// commit order), transitively closed via vector clocks. Runs without
    /// seq-cst accesses derive exactly the historical relation.
    [[nodiscard]] bool happens_before(std::size_t i, std::size_t j) const;

    /// True when neither step happens-before the other.
    [[nodiscard]] bool concurrent(std::size_t i, std::size_t j) const
    {
        return i != j && !happens_before(i, j) && !happens_before(j, i);
    }

    /// Interleaving-class fingerprint: per-resource access-order hash chains
    /// (thread + read/write per touch), combined in sorted key order. Equal
    /// for schedules that differ only by swaps of independent tasks; the
    /// coverage-guided walker treats a never-seen hash as novel behaviour.
    [[nodiscard]] std::uint64_t class_hash() const { return class_hash_; }

    /// Rolling prefix hashes of every vuln-monitor sink's touch sequence —
    /// one hash per (sink, prefix length). A novel hash means some monitor's
    /// state machine was driven through a prefix no earlier walk produced.
    [[nodiscard]] const std::vector<std::uint64_t>& sink_prefix_hashes() const
    {
        return sink_prefixes_;
    }

private:
    std::vector<thread_id> thread_of_;        // step -> thread
    std::vector<std::uint32_t> clock_;        // steps x threads vector clocks
    std::size_t thread_count_ = 0;
    std::vector<std::uint32_t> thread_index_;  // thread id -> dense clock column
    std::uint64_t class_hash_ = 0;
    std::vector<std::uint64_t> sink_prefixes_;
};

/// Data races of one finished run: pairs of happens-before-concurrent steps
/// whose footprints conflict on a SAB cell with at least one write, where
/// the pair is not ordered by the seq-cst total order (i.e. not both
/// accesses seq-cst). Each step pair counts once. This is the set of
/// conflicts the relaxed model's rf enumerator branches on — a seqcst-mode
/// run with a nonzero race_count is exactly a run worth re-sweeping under
/// --memory-model relaxed.
std::uint64_t race_count(const explore::controller& ctl, const analysis& an);

}  // namespace jsk::sim::por
