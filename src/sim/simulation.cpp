#include "sim/simulation.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace jsk::sim {

thread_id simulation::create_thread(std::string name)
{
    threads_.push_back(thread_state{std::move(name), true, floor_time_});
    return static_cast<thread_id>(threads_.size() - 1);
}

void simulation::destroy_thread(thread_id thread)
{
    if (thread < 0 || static_cast<std::size_t>(thread) >= threads_.size()) return;
    threads_[static_cast<std::size_t>(thread)].alive = false;
    // Pending tasks for the thread are dropped lazily in next_entry().
}

bool simulation::thread_alive(thread_id thread) const
{
    return thread >= 0 && static_cast<std::size_t>(thread) < threads_.size() &&
           threads_[static_cast<std::size_t>(thread)].alive;
}

const std::string& simulation::thread_name(thread_id thread) const
{
    return threads_.at(static_cast<std::size_t>(thread)).name;
}

task_id simulation::post(thread_id thread, time_ns when, std::function<void()> fn,
                         std::string label)
{
    if (!thread_alive(thread)) return 0;
    if (!fn) throw std::invalid_argument("simulation::post: empty task function");
    when = std::max(when, now());
    const task_id id = next_task_id_++;
    const thread_id source = current_ ? current_->thread : no_thread;
    pending_.emplace(id,
                     pending_task{thread, source, when, std::move(fn), std::move(label)});
    queue_.push(queue_entry{when, next_seq_++, id});
    if (hook_) hook_->on_post(id, thread, current_ ? current_->id : 0);
    return id;
}

bool simulation::cancel(task_id id)
{
    return pending_.erase(id) > 0;  // stale queue entries are skipped on pop
}

time_ns simulation::now() const
{
    if (current_) return current_->start + current_->consumed;
    return floor_time_;
}

thread_id simulation::current_thread() const
{
    return current_ ? current_->thread : no_thread;
}

void simulation::consume(time_ns cost)
{
    if (!current_) throw std::logic_error("simulation::consume called outside a task");
    if (cost < 0) throw std::invalid_argument("simulation::consume: negative cost");
    current_->consumed += cost;
}

time_ns simulation::busy_until(thread_id thread) const
{
    return threads_.at(static_cast<std::size_t>(thread)).busy_until;
}

simulation::observer_handle simulation::add_task_observer(
    std::function<void(const task_info&)> observer)
{
    const observer_handle handle = next_observer_++;
    observers_.emplace_back(handle, std::move(observer));
    return handle;
}

void simulation::remove_task_observer(observer_handle handle)
{
    std::erase_if(observers_, [handle](const auto& entry) { return entry.first == handle; });
}

std::optional<simulation::queue_entry> simulation::next_entry(time_ns deadline)
{
    if (hook_) return next_entry_hooked(deadline);
    while (!queue_.empty()) {
        queue_entry entry = queue_.top();
        auto it = pending_.find(entry.id);
        if (it == pending_.end()) {  // cancelled
            queue_.pop();
            continue;
        }
        const pending_task& task = it->second;
        if (!thread_alive(task.thread)) {  // thread terminated
            queue_.pop();
            pending_.erase(it);
            continue;
        }
        const time_ns start =
            std::max(task.ready_at, threads_[static_cast<std::size_t>(task.thread)].busy_until);
        if (start > entry.key) {
            // The thread is busy past this entry's key: re-key and retry so
            // that pops come out globally ordered by effective start time.
            queue_.pop();
            queue_.push(queue_entry{start, entry.seq, entry.id});
            continue;
        }
        if (start > deadline) return std::nullopt;
        queue_.pop();
        entry.key = start;
        return entry;
    }
    return std::nullopt;
}

std::optional<simulation::queue_entry> simulation::next_entry_hooked(time_ns deadline)
{
    // Drop tasks whose thread died (the queue-driven path does this lazily).
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (!thread_alive(it->second.thread)) it = pending_.erase(it);
        else ++it;
    }
    if (pending_.empty()) return std::nullopt;

    const auto effective_start = [this](const pending_task& task) {
        return std::max(task.ready_at,
                        threads_[static_cast<std::size_t>(task.thread)].busy_until);
    };

    time_ns earliest = std::numeric_limits<time_ns>::max();
    for (const auto& [id, task] : pending_) {
        earliest = std::min(earliest, effective_start(task));
    }
    if (earliest > deadline) return std::nullopt;

    std::vector<sched_candidate> candidates;
    for (const auto& [id, task] : pending_) {
        const time_ns start = effective_start(task);
        if (start <= earliest + window_ && start <= deadline) {
            candidates.push_back(sched_candidate{id, task.thread, start, &task.label});
        }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const sched_candidate& a, const sched_candidate& b) {
                  return a.start != b.start ? a.start < b.start : a.id < b.id;
              });

    // Per-channel FIFO: a cross-thread message must not overtake an earlier
    // message on the same (source thread -> target thread) channel. Real
    // message ports deliver in send order, so a schedule that swaps them is
    // not realizable; offering it would let the explorer "falsify" protocols
    // (e.g. the kernel channel guard) that legitimately rely on FIFO. An
    // earlier same-channel task is always co-enabled alongside the later one
    // (same thread, ready no later), so a pairwise scan over candidates is
    // complete.
    std::erase_if(candidates, [&](const sched_candidate& x) {
        const pending_task& xt = pending_.at(x.id);
        if (xt.source == no_thread || xt.source == xt.thread) return false;
        for (const sched_candidate& y : candidates) {
            if (y.id >= x.id || y.thread != x.thread) continue;
            const pending_task& yt = pending_.at(y.id);
            if (yt.source == xt.source && yt.ready_at <= xt.ready_at) return true;
        }
        return false;
    });

    std::size_t pick = candidates.size() > 1 ? hook_->choose(candidates) : 0;
    if (pick >= candidates.size()) pick = 0;
    // Stale queue_ entries for this task are skipped on pop if the hook is
    // ever removed mid-run (pending_ is the source of truth).
    return queue_entry{candidates[pick].start, 0, candidates[pick].id};
}

void simulation::execute(const queue_entry& entry)
{
    auto node = pending_.extract(entry.id);
    pending_task task = std::move(node.mapped());

    current_ = running_task{entry.id, task.thread, entry.key, 0};
    task.fn();
    const running_task done = *current_;
    current_.reset();

    const time_ns end = done.start + done.consumed;
    auto& thread = threads_[static_cast<std::size_t>(done.thread)];
    thread.busy_until = std::max(thread.busy_until, end);
    floor_time_ = std::max(floor_time_, done.start);
    ++executed_;

    if (!observers_.empty()) {
        const task_info info{done.id,   done.thread, task.ready_at,
                             done.start, end,        std::move(task.label)};
        // Index loop: observers may be added from inside a callback (they
        // take effect from the next task); removal from a callback is not
        // supported.
        for (std::size_t i = 0; i < observers_.size(); ++i) observers_[i].second(info);
    }
}

void simulation::run(std::uint64_t max_tasks)
{
    run_until(std::numeric_limits<time_ns>::max(), max_tasks);
}

void simulation::run_until(time_ns deadline, std::uint64_t max_tasks)
{
    std::uint64_t budget = max_tasks;
    while (budget-- > 0) {
        auto entry = next_entry(deadline);
        if (!entry) break;
        execute(*entry);
    }
    if (deadline != std::numeric_limits<time_ns>::max()) {
        floor_time_ = std::max(floor_time_, deadline);
    }
}

}  // namespace jsk::sim
