#include "sim/simulation.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"

namespace jsk::sim {

namespace {

template <typename T>
void heap_push(std::vector<T>& heap, T value)
{
    heap.push_back(std::move(value));
    std::push_heap(heap.begin(), heap.end(), std::greater<>{});
}

template <typename T>
T heap_pop(std::vector<T>& heap)
{
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    T out = heap.back();
    heap.pop_back();
    return out;
}

}  // namespace

std::uint32_t simulation::acquire_slot(pending_task task, task_id id)
{
    std::uint32_t slot;
    if (!slot_free_.empty()) {
        slot = slot_free_.back();
        slot_free_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    task_slot& s = slots_[slot];
    s.task = std::move(task);
    s.id = id;
    s.alive = true;
    task_index_.insert(id, slot);
    ++pending_count_;
    return slot;
}

void simulation::release_slot(std::uint32_t slot)
{
    task_slot& s = slots_[slot];
    task_index_.erase(s.id);
    s.alive = false;
    ++s.gen;  // outstanding refs to this slot become tombstones
    s.task.fn = nullptr;
    s.task.label = {};
    slot_free_.push_back(slot);
    --pending_count_;
}

thread_id simulation::create_thread(std::string name)
{
    // A thread born inside a running task (new Worker at virtual time t) must
    // not execute anything earlier than t: seed its busy window from now(),
    // which inside a task is start + consumed, not the stale global floor.
    thread_state state;
    state.name = std::move(name);
    state.busy_until = now();
    threads_.push_back(std::move(state));
    const auto id = static_cast<thread_id>(threads_.size() - 1);
    if (tsink_ != nullptr) {
        tsink_->set_thread_name(id, threads_[static_cast<std::size_t>(id)].name);
    }
    return id;
}

void simulation::set_trace_sink(obs::sink* sink)
{
    tsink_ = sink;
    if (tsink_ == nullptr) return;
    for (std::size_t t = 0; t < threads_.size(); ++t) {
        tsink_->set_thread_name(static_cast<thread_id>(t), threads_[t].name);
    }
}

void simulation::destroy_thread(thread_id thread)
{
    if (thread < 0 || static_cast<std::size_t>(thread) >= threads_.size()) return;
    auto& state = threads_[static_cast<std::size_t>(thread)];
    if (!state.alive) return;
    state.alive = false;
    // Drop the dead thread's tasks eagerly so pending_tasks() stays accurate
    // and neither scheduler ever re-checks liveness per step. Stale queue_ /
    // ready-heap entries for the dropped ids are skipped like cancels.
    for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
        task_slot& s = slots_[slot];
        if (!s.alive || s.task.thread != thread) continue;
        if (hook_) channel_remove(s.task, s.id);
        release_slot(slot);
    }
    state.ready.clear();
    state.ready_max = 0;
    state.stale = 0;
}

bool simulation::thread_alive(thread_id thread) const
{
    return thread >= 0 && static_cast<std::size_t>(thread) < threads_.size() &&
           threads_[static_cast<std::size_t>(thread)].alive;
}

const std::string& simulation::thread_name(thread_id thread) const
{
    return threads_.at(static_cast<std::size_t>(thread)).name;
}

task_id simulation::post(thread_id thread, time_ns when, std::function<void()> fn,
                         std::string label)
{
    if (!thread_alive(thread)) return 0;
    if (!fn) throw std::invalid_argument("simulation::post: empty task function");
    when = std::max(when, now());
    const task_id id = next_task_id_++;
    const std::uint64_t seq = next_seq_++;
    const thread_id source = current_ ? current_->thread : no_thread;
    const std::uint32_t slot = acquire_slot(
        pending_task{thread, source, when, seq, std::move(fn), std::move(label)}, id);
    const std::uint32_t gen = slots_[slot].gen;
    peak_pending_ = std::max(peak_pending_, pending_count_);
    if (hook_ == nullptr) {
        queue_.push(queue_entry{when, seq, id, slot, gen});
    } else {
        auto& state = threads_[static_cast<std::size_t>(thread)];
        heap_push(state.ready, ready_ref{when, id, slot, gen});
        state.ready_max = std::max(state.ready_max, when);
        if (source != no_thread && source != thread) {
            channel_add(source, thread, id, when, slot);
        }
        heap_push(thread_order_, order_ref{std::max(state.busy_until, when), thread});
        hook_->on_post(id, thread, current_ ? current_->id : 0, source);
    }
    if (wm_ != nullptr) wm_->on_post(id, thread, source);
    return id;
}

bool simulation::cancel(task_id id)
{
    const std::uint32_t slot = task_index_.find(id);
    if (slot == detail::id_index::npos) return false;
    // Stale queue_ / ready-heap entries are skipped when they surface.
    if (hook_) {
        channel_remove(slots_[slot].task, id);
        ++threads_[static_cast<std::size_t>(slots_[slot].task.thread)].stale;
    }
    release_slot(slot);
    return true;
}

time_ns simulation::now() const
{
    if (current_) return current_->start + current_->consumed;
    return floor_time_;
}

thread_id simulation::current_thread() const
{
    return current_ ? current_->thread : no_thread;
}

void simulation::consume(time_ns cost)
{
    if (!current_) throw std::logic_error("simulation::consume called outside a task");
    if (cost < 0) throw std::invalid_argument("simulation::consume: negative cost");
    current_->consumed += cost;
}

time_ns simulation::busy_until(thread_id thread) const
{
    return threads_.at(static_cast<std::size_t>(thread)).busy_until;
}

simulation::observer_handle simulation::add_task_observer(
    std::function<void(const task_info&)> observer)
{
    const observer_handle handle = next_observer_++;
    observers_.emplace_back(handle, std::move(observer));
    return handle;
}

void simulation::remove_task_observer(observer_handle handle)
{
    std::erase_if(observers_, [handle](const auto& entry) { return entry.first == handle; });
}

void simulation::set_schedule_hook(schedule_hook* hook, time_ns window)
{
    const bool was_hooked = hook_ != nullptr;
    hook_ = hook;
    window_ = window;
    if (hook != nullptr && !was_hooked) rebuild_hook_index();
    if (hook == nullptr && was_hooked) rebuild_unhooked_queue();
}

// --- hooked-mode index ---------------------------------------------------------

std::uint64_t simulation::channel_key(thread_id source, thread_id target)
{
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(source)) << 32) |
           static_cast<std::uint32_t>(target);
}

void simulation::channel_add(thread_id source, thread_id target, task_id id,
                             time_ns ready_at, std::uint32_t slot)
{
    const auto key = channel_key(source, target);
    const auto [it, inserted] = channels_.try_emplace(key);
    if (inserted) {
        threads_[static_cast<std::size_t>(target)].in_channels.push_back(key);
    }
    // Task ids are allocated monotonically, so appends keep id order.
    it->second.entries.push_back(channel_entry{id, ready_at, slot});
}

void simulation::channel_remove(const pending_task& task, task_id id)
{
    if (task.source == no_thread || task.source == task.thread) return;
    const auto key = channel_key(task.source, task.thread);
    const auto it = channels_.find(key);
    if (it == channels_.end()) return;
    channel_state& ch = it->second;
    const auto pos = std::lower_bound(
        ch.entries.begin(), ch.entries.end(), id,
        [](const channel_entry& e, task_id v) { return e.id < v; });
    if (pos == ch.entries.end() || pos->id != id) return;
    ch.entries.erase(pos);
    if (ch.entries.empty()) {
        std::erase(threads_[static_cast<std::size_t>(task.thread)].in_channels, key);
        channels_.erase(it);
    }
}

std::optional<time_ns> simulation::thread_head_start(thread_id thread)
{
    auto& state = threads_[static_cast<std::size_t>(thread)];
    if (!state.alive) return std::nullopt;
    while (!state.ready.empty() &&
           slots_[state.ready.front().slot].gen != state.ready.front().gen) {
        heap_pop(state.ready);  // executed/cancelled task: discard tombstone
        if (state.stale > 0) --state.stale;
    }
    if (state.ready.empty()) return std::nullopt;
    return std::max(state.busy_until, state.ready.front().ready_at);
}

void simulation::rebuild_hook_index()
{
    for (auto& state : threads_) {
        state.ready.clear();
        state.ready_max = 0;
        state.collect_stamp = 0;
        state.stale = 0;
        state.in_channels.clear();
    }
    channels_.clear();
    thread_order_.clear();
    step_stamp_ = 0;
    queue_ = decltype(queue_){};  // hooked runs never touch the unhooked queue

    // Channel entries must be appended in id (= post) order.
    std::vector<std::pair<task_id, std::uint32_t>> ids;
    ids.reserve(pending_count_);
    for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
        if (slots_[slot].alive) ids.emplace_back(slots_[slot].id, slot);
    }
    std::sort(ids.begin(), ids.end());
    for (const auto& [id, slot] : ids) {
        const pending_task& task = slots_[slot].task;
        auto& target = threads_[static_cast<std::size_t>(task.thread)];
        target.ready.push_back(ready_ref{task.ready_at, id, slot, slots_[slot].gen});
        target.ready_max = std::max(target.ready_max, task.ready_at);
        if (task.source != no_thread && task.source != task.thread) {
            channel_add(task.source, task.thread, id, task.ready_at, slot);
        }
    }
    for (std::size_t t = 0; t < threads_.size(); ++t) {
        auto& state = threads_[t];
        if (state.ready.empty()) continue;
        std::make_heap(state.ready.begin(), state.ready.end(), std::greater<>{});
        heap_push(thread_order_,
                  order_ref{std::max(state.busy_until, state.ready.front().ready_at),
                            static_cast<thread_id>(t)});
    }
}

void simulation::rebuild_unhooked_queue()
{
    queue_ = decltype(queue_){};
    for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
        const task_slot& s = slots_[slot];
        if (!s.alive) continue;
        queue_.push(queue_entry{s.task.ready_at, s.task.seq, s.id, slot, s.gen});
    }
    for (auto& state : threads_) {
        state.ready.clear();
        state.ready_max = 0;
        state.stale = 0;
        state.in_channels.clear();
    }
    channels_.clear();
    thread_order_.clear();
}

// --- scheduling steps ----------------------------------------------------------

std::optional<simulation::queue_entry> simulation::next_entry(time_ns deadline)
{
    if (hook_) return next_entry_hooked(deadline);
    while (!queue_.empty()) {
        queue_entry entry = queue_.top();
        const pending_task* task = slot_task(entry.slot, entry.gen);
        if (task == nullptr) {  // cancelled or dropped with its thread
            queue_.pop();
            continue;
        }
        const time_ns start = std::max(
            task->ready_at, threads_[static_cast<std::size_t>(task->thread)].busy_until);
        if (start > entry.key) {
            // The thread is busy past this entry's key: re-key and retry so
            // that pops come out globally ordered by effective start time.
            queue_.pop();
            queue_.push(queue_entry{start, entry.seq, entry.id, entry.slot, entry.gen});
            continue;
        }
        if (start > deadline) return std::nullopt;
        queue_.pop();
        entry.key = start;
        return entry;
    }
    return std::nullopt;
}

std::optional<simulation::queue_entry> simulation::next_entry_hooked(time_ns deadline)
{
    if (pending_count_ == 0) return std::nullopt;
    constexpr time_ns tmax = std::numeric_limits<time_ns>::max();

    for (int attempt = 0; attempt < 2; ++attempt) {
        ++step_stamp_;
        // Surface the earliest thread head through the lazy order heap, then
        // keep popping to collect every thread whose head falls inside the
        // commutativity window. Stale keys are re-validated as they surface;
        // keys never understate their thread's current head, so the first
        // validated pop is the true earliest effective start.
        time_ns earliest = tmax;
        time_ns bound = tmax;
        collected_.clear();
        while (!thread_order_.empty()) {
            if (earliest != tmax && thread_order_.front().start > bound) break;
            const order_ref top = heap_pop(thread_order_);
            const std::optional<time_ns> cur = thread_head_start(top.thread);
            if (!cur) continue;  // dead or drained thread: drop the entry
            auto& state = threads_[static_cast<std::size_t>(top.thread)];
            if (state.collect_stamp == step_stamp_) continue;  // duplicate entry
            if (*cur != top.start) {
                heap_push(thread_order_, order_ref{*cur, top.thread});  // re-key
                continue;
            }
            if (earliest == tmax) {
                if (top.start > deadline) {
                    heap_push(thread_order_, top);
                    return std::nullopt;
                }
                earliest = top.start;
                bound = window_ > tmax - earliest ? tmax : earliest + window_;
                bound = std::min(bound, deadline);
            }
            state.collect_stamp = step_stamp_;
            collected_.push_back(top);
        }
        if (earliest == tmax) {
            // pending_ is non-empty, so an index invariant was lost (should
            // not happen). Rebuild from the pending set and retry once.
            rebuild_hook_index();
            continue;
        }

        // Gather candidates from each collected thread: every pending task
        // with ready_at <= bound (its start is then <= bound too, because a
        // collected thread's busy window ends by bound), subject to per-
        // channel FIFO realizability. Same-thread and external posts come
        // from the thread's ready heap; its array is traversed in place with
        // subtree pruning — children never have earlier ready times than
        // their parent, so a node past the bound cuts off its whole subtree,
        // and when the window covers the whole backlog (typical on a busy
        // thread, where every task ties at busy_until) the traversal is a
        // plain linear scan with no per-node bound checks.
        //
        // Cross-thread messages must not overtake an earlier message on the
        // same (source -> target) channel: real message ports deliver in
        // send order, so a schedule that swaps them is not realizable, and
        // offering it would let the explorer "falsify" protocols (e.g. the
        // kernel channel guard) that legitimately rely on FIFO. Rather than
        // testing each cross-thread entry for blockers, the gather offers
        // exactly the entries no earlier same-channel post can block — the
        // strict prefix minima of ready times in post order — with one
        // sequential walk per channel targeting the thread.
        cand_keys_.clear();
        for (const order_ref& col : collected_) {
            auto& state = threads_[static_cast<std::size_t>(col.thread)];
            if (state.stale > state.ready.size() / 2 + 16) {
                std::erase_if(state.ready, [this](const ready_ref& r) {
                    return slots_[r.slot].gen != r.gen;
                });
                std::make_heap(state.ready.begin(), state.ready.end(), std::greater<>{});
                state.stale = 0;
                state.ready_max = 0;
                for (const ready_ref& r : state.ready) {
                    state.ready_max = std::max(state.ready_max, r.ready_at);
                }
            }
            const auto offer = [&](const ready_ref& r) {
                const pending_task* task = slot_task(r.slot, r.gen);
                if (task == nullptr) return;  // tombstone
                if (task->source != no_thread && task->source != task->thread) {
                    return;  // cross-thread: offered via the channel walk below
                }
                cand_keys_.push_back(cand_key{std::max(r.ready_at, state.busy_until),
                                              r.id, r.slot, col.thread});
            };
            if (state.ready_max <= bound) {
                for (const ready_ref& r : state.ready) offer(r);
            } else {
                dfs_stack_.clear();
                if (!state.ready.empty()) dfs_stack_.push_back(0);
                while (!dfs_stack_.empty()) {
                    const std::size_t i = dfs_stack_.back();
                    dfs_stack_.pop_back();
                    const ready_ref r = state.ready[i];
                    if (r.ready_at > bound) continue;  // prunes the whole subtree
                    const std::size_t left = 2 * i + 1;
                    if (left < state.ready.size()) {
                        dfs_stack_.push_back(left);
                        if (left + 1 < state.ready.size()) dfs_stack_.push_back(left + 1);
                    }
                    offer(r);
                }
            }
            for (const std::uint64_t key : state.in_channels) {
                const channel_state& ch = channels_.find(key)->second;
                time_ns running = tmax;
                for (const channel_entry& e : ch.entries) {
                    if (e.ready_at >= running) continue;  // an earlier post blocks it
                    running = e.ready_at;
                    if (e.ready_at <= bound) {
                        cand_keys_.push_back(
                            cand_key{std::max(e.ready_at, state.busy_until), e.id,
                                     e.slot, col.thread});
                    }
                }
            }
            heap_push(thread_order_, col);  // restore the thread's head entry
        }
        std::sort(cand_keys_.begin(), cand_keys_.end(),
                  [](const cand_key& a, const cand_key& b) {
                      return a.start != b.start ? a.start < b.start : a.id < b.id;
                  });
        cand_buf_.clear();
        for (const cand_key& k : cand_keys_) {
            cand_buf_.push_back(
                sched_candidate{k.id, k.thread, k.start, &slots_[k.slot].task.label});
        }

        ++hooked_steps_;
        ++cand_counts_[std::min(cand_buf_.size(), cand_counts_.size() - 1)];

        std::size_t pick = cand_buf_.size() > 1 ? hook_->choose(cand_buf_) : 0;
        if (pick >= cand_buf_.size()) pick = 0;
        const cand_key& chosen = cand_keys_[pick];
        if (tsink_ != nullptr && cand_buf_.size() > 1) {
            tsink_->instant(obs::category::explore, chosen.thread, chosen.start,
                            "branch",
                            {obs::num("candidates", cand_buf_.size()),
                             obs::num("pick", pick), obs::num("task", chosen.id)});
        }
        return queue_entry{chosen.start, 0, chosen.id, chosen.slot,
                           slots_[chosen.slot].gen};
    }
    return std::nullopt;
}

void simulation::finish_current()
{
    const running_task done = *current_;
    current_.reset();
    auto& thread = threads_[static_cast<std::size_t>(done.thread)];
    thread.busy_until = std::max(thread.busy_until, done.start + done.consumed);
    floor_time_ = std::max(floor_time_, done.start);
    ++executed_;
}

void simulation::execute(const queue_entry& entry)
{
    pending_task task = std::move(slots_[entry.slot].task);
    release_slot(entry.slot);
    if (hook_) {
        channel_remove(task, entry.id);
        ++threads_[static_cast<std::size_t>(task.thread)].stale;
    }

    current_ = running_task{entry.id, task.thread, entry.key, 0};
    if (wm_ != nullptr) wm_->on_execute(entry.id, task.thread);
    if (hook_) hook_->on_execute(entry.id, task.thread, task.ready_at);
    try {
        task.fn();
    } catch (...) {
        // A throwing task must not leave the simulator corrupted: settle the
        // running-task record (whatever time it consumed before throwing is
        // charged) so now() stays truthful and a later run() is not rejected
        // as reentrant. The exception itself propagates to the run() caller.
        finish_current();
        throw;
    }
    const running_task done = *current_;
    finish_current();
    const time_ns end = done.start + done.consumed;

    if (tsink_ != nullptr) {
        // The event name is the task label verbatim (possibly empty): the
        // sim::trace_recorder adapter reconstructs task_info records from
        // these spans and label equality must survive the round trip.
        tsink_->complete(obs::category::task, done.thread, done.start,
                         end - done.start, task.label,
                         {obs::num("id", done.id), obs::num("ready", task.ready_at)});
    }

    if (!observers_.empty()) {
        const task_info info{done.id,   done.thread, task.ready_at,
                             done.start, end,        std::move(task.label)};
        // Index loop: observers may be added from inside a callback (they
        // take effect from the next task); removal from a callback is not
        // supported.
        for (std::size_t i = 0; i < observers_.size(); ++i) observers_[i].second(info);
    }
}

void simulation::run(std::uint64_t max_tasks)
{
    run_until(std::numeric_limits<time_ns>::max(), max_tasks);
}

void simulation::run_until(time_ns deadline, std::uint64_t max_tasks)
{
    if (running_ || current_) {
        throw std::logic_error(
            "simulation::run/run_until: reentrant call from inside a task");
    }
    running_ = true;
    std::uint64_t budget = max_tasks;
    try {
        while (budget-- > 0) {
            auto entry = next_entry(deadline);
            if (!entry) break;
            execute(*entry);
        }
    } catch (...) {
        running_ = false;
        throw;
    }
    running_ = false;
    if (deadline != std::numeric_limits<time_ns>::max()) {
        floor_time_ = std::max(floor_time_, deadline);
    }
}

}  // namespace jsk::sim
