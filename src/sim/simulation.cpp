#include "sim/simulation.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace jsk::sim {

thread_id simulation::create_thread(std::string name)
{
    threads_.push_back(thread_state{std::move(name), true, floor_time_});
    return static_cast<thread_id>(threads_.size() - 1);
}

void simulation::destroy_thread(thread_id thread)
{
    if (thread < 0 || static_cast<std::size_t>(thread) >= threads_.size()) return;
    threads_[static_cast<std::size_t>(thread)].alive = false;
    // Pending tasks for the thread are dropped lazily in next_entry().
}

bool simulation::thread_alive(thread_id thread) const
{
    return thread >= 0 && static_cast<std::size_t>(thread) < threads_.size() &&
           threads_[static_cast<std::size_t>(thread)].alive;
}

const std::string& simulation::thread_name(thread_id thread) const
{
    return threads_.at(static_cast<std::size_t>(thread)).name;
}

task_id simulation::post(thread_id thread, time_ns when, std::function<void()> fn,
                         std::string label)
{
    if (!thread_alive(thread)) return 0;
    if (!fn) throw std::invalid_argument("simulation::post: empty task function");
    when = std::max(when, now());
    const task_id id = next_task_id_++;
    pending_.emplace(id, pending_task{thread, when, std::move(fn), std::move(label)});
    queue_.push(queue_entry{when, next_seq_++, id});
    return id;
}

bool simulation::cancel(task_id id)
{
    return pending_.erase(id) > 0;  // stale queue entries are skipped on pop
}

time_ns simulation::now() const
{
    if (current_) return current_->start + current_->consumed;
    return floor_time_;
}

thread_id simulation::current_thread() const
{
    return current_ ? current_->thread : no_thread;
}

void simulation::consume(time_ns cost)
{
    if (!current_) throw std::logic_error("simulation::consume called outside a task");
    if (cost < 0) throw std::invalid_argument("simulation::consume: negative cost");
    current_->consumed += cost;
}

time_ns simulation::busy_until(thread_id thread) const
{
    return threads_.at(static_cast<std::size_t>(thread)).busy_until;
}

std::optional<simulation::queue_entry> simulation::next_entry(time_ns deadline)
{
    while (!queue_.empty()) {
        queue_entry entry = queue_.top();
        auto it = pending_.find(entry.id);
        if (it == pending_.end()) {  // cancelled
            queue_.pop();
            continue;
        }
        const pending_task& task = it->second;
        if (!thread_alive(task.thread)) {  // thread terminated
            queue_.pop();
            pending_.erase(it);
            continue;
        }
        const time_ns start =
            std::max(task.ready_at, threads_[static_cast<std::size_t>(task.thread)].busy_until);
        if (start > entry.key) {
            // The thread is busy past this entry's key: re-key and retry so
            // that pops come out globally ordered by effective start time.
            queue_.pop();
            queue_.push(queue_entry{start, entry.seq, entry.id});
            continue;
        }
        if (start > deadline) return std::nullopt;
        queue_.pop();
        entry.key = start;
        return entry;
    }
    return std::nullopt;
}

void simulation::execute(const queue_entry& entry)
{
    auto node = pending_.extract(entry.id);
    pending_task task = std::move(node.mapped());

    current_ = running_task{entry.id, task.thread, entry.key, 0};
    task.fn();
    const running_task done = *current_;
    current_.reset();

    const time_ns end = done.start + done.consumed;
    auto& thread = threads_[static_cast<std::size_t>(done.thread)];
    thread.busy_until = std::max(thread.busy_until, end);
    floor_time_ = std::max(floor_time_, done.start);
    ++executed_;

    if (observer_) {
        observer_(task_info{done.id, done.thread, task.ready_at, done.start, end,
                            std::move(task.label)});
    }
}

void simulation::run(std::uint64_t max_tasks)
{
    run_until(std::numeric_limits<time_ns>::max(), max_tasks);
}

void simulation::run_until(time_ns deadline, std::uint64_t max_tasks)
{
    std::uint64_t budget = max_tasks;
    while (budget-- > 0) {
        auto entry = next_entry(deadline);
        if (!entry) break;
        execute(*entry);
    }
    if (deadline != std::numeric_limits<time_ns>::max()) {
        floor_time_ = std::max(floor_time_, deadline);
    }
}

}  // namespace jsk::sim
