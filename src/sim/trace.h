// Task-execution trace recorder.
//
// The loopscan attack (Vila & Köpf) observes the event-loop usage pattern of
// a victim origin; our reproduction records completed-task intervals and
// exposes simple queries over them. Since the jsk::obs subsystem landed this
// is a thin adapter over an obs::sink: attach() installs a private sink as
// the simulation's trace sink (saving and restoring whatever was attached
// before), and the task_info records are materialized lazily from the
// recorded category::task spans — the recorder and any other obs consumer
// exercise the identical pipeline.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace jsk::sim {

/// Records every completed task; optionally filtered by thread.
class trace_recorder {
public:
    ~trace_recorder() { detach(); }

    /// Install onto `sim`. Saves the sink currently attached (if any) and
    /// restores it on detach, so a recorder can temporarily shadow a global
    /// trace sink. Re-attaching moves the recorder.
    void attach(simulation& sim, thread_id only_thread = no_thread)
    {
        detach();
        only_thread_ = only_thread;
        sim_ = &sim;
        prev_ = sim.trace_sink();
        sim.set_trace_sink(&sink_);
    }

    /// Stop recording and restore the previously attached sink (safe to call
    /// when not attached).
    void detach()
    {
        if (sim_ != nullptr && sim_->trace_sink() == &sink_) {
            sim_->set_trace_sink(prev_);
        }
        sim_ = nullptr;
        prev_ = nullptr;
    }

    void clear()
    {
        sink_.clear();
        records_.clear();
        scanned_ = 0;
    }

    [[nodiscard]] const std::vector<task_info>& records() const
    {
        materialize();
        return records_;
    }

    /// The underlying event stream (kernel/runtime events included when the
    /// recorder shadows a fully instrumented world).
    [[nodiscard]] const obs::sink& events() const { return sink_; }

    /// Largest gap between consecutive task *start* times on the recorded
    /// thread — the loopscan attack's "maximum measured event interval".
    [[nodiscard]] time_ns max_start_interval() const
    {
        const auto& recs = records();
        time_ns max_gap = 0;
        for (std::size_t i = 1; i < recs.size(); ++i) {
            max_gap = std::max(max_gap, recs[i].start - recs[i - 1].start);
        }
        return max_gap;
    }

    /// Total busy time across recorded tasks.
    [[nodiscard]] time_ns total_busy() const
    {
        time_ns acc = 0;
        for (const auto& record : records()) acc += record.end - record.start;
        return acc;
    }

    /// Count of records whose label matches exactly.
    [[nodiscard]] std::size_t count_label(const std::string& label) const
    {
        std::size_t n = 0;
        for (const auto& record : records())
            if (record.label == label) ++n;
        return n;
    }

private:
    /// Reconstruct task_info records from the category::task spans the
    /// simulation emitted (the span name is the task label verbatim; id and
    /// ready time ride as typed args). Incremental: only events recorded
    /// since the last query are scanned.
    void materialize() const
    {
        const auto& events = sink_.events();
        for (; scanned_ < events.size(); ++scanned_) {
            const obs::trace_event& ev = events[scanned_];
            if (ev.cat != obs::category::task || ev.ph != 'X') continue;
            if (only_thread_ != no_thread && ev.tid != only_thread_) continue;
            const obs::arg* id = obs::find_arg(ev, "id");
            const obs::arg* ready = obs::find_arg(ev, "ready");
            task_info info;
            info.id = id != nullptr ? static_cast<task_id>(id->i) : 0;
            info.thread = ev.tid;
            info.ready_at = ready != nullptr ? ready->i : ev.ts;
            info.start = ev.ts;
            info.end = ev.ts + ev.dur;
            info.label = ev.name;
            records_.push_back(std::move(info));
        }
    }

    thread_id only_thread_ = no_thread;
    simulation* sim_ = nullptr;
    obs::sink* prev_ = nullptr;  // restored on detach
    obs::sink sink_;
    mutable std::vector<task_info> records_;
    mutable std::size_t scanned_ = 0;  // sink events already materialized
};

}  // namespace jsk::sim
