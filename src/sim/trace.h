// Task-execution trace recorder.
//
// The loopscan attack (Vila & Köpf) observes the event-loop usage pattern of
// a victim origin; our reproduction records completed-task intervals through
// the simulation's task observer and exposes simple queries over them.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "sim/time.h"

namespace jsk::sim {

/// Records every completed task; optionally filtered by thread.
class trace_recorder {
public:
    ~trace_recorder() { detach(); }

    /// Install onto `sim`. Observers compose — a recorder coexists with
    /// loopscan or any other task observer. Re-attaching moves the recorder.
    void attach(simulation& sim, thread_id only_thread = no_thread)
    {
        detach();
        only_thread_ = only_thread;
        sim_ = &sim;
        handle_ = sim.add_task_observer([this](const task_info& info) { on_task(info); });
    }

    /// Stop recording (safe to call when not attached).
    void detach()
    {
        if (sim_ != nullptr) sim_->remove_task_observer(handle_);
        sim_ = nullptr;
        handle_ = 0;
    }

    void clear() { records_.clear(); }

    [[nodiscard]] const std::vector<task_info>& records() const { return records_; }

    /// Largest gap between consecutive task *start* times on the recorded
    /// thread — the loopscan attack's "maximum measured event interval".
    [[nodiscard]] time_ns max_start_interval() const
    {
        time_ns max_gap = 0;
        for (std::size_t i = 1; i < records_.size(); ++i) {
            max_gap = std::max(max_gap, records_[i].start - records_[i - 1].start);
        }
        return max_gap;
    }

    /// Total busy time across recorded tasks.
    [[nodiscard]] time_ns total_busy() const
    {
        time_ns acc = 0;
        for (const auto& record : records_) acc += record.end - record.start;
        return acc;
    }

    /// Count of records whose label matches exactly.
    [[nodiscard]] std::size_t count_label(const std::string& label) const
    {
        std::size_t n = 0;
        for (const auto& record : records_)
            if (record.label == label) ++n;
        return n;
    }

private:
    void on_task(const task_info& info)
    {
        if (only_thread_ != no_thread && info.thread != only_thread_) return;
        records_.push_back(info);
    }

    thread_id only_thread_ = no_thread;
    simulation* sim_ = nullptr;
    simulation::observer_handle handle_ = 0;
    std::vector<task_info> records_;
};

}  // namespace jsk::sim
