// Open-addressed hash index from 64-bit ids to 32-bit slot numbers: linear
// probing, tombstoned erase (keeps probe chains intact), power-of-two tables.
// Sequential ids are decorrelated with the splitmix64 finalizer. Amortized
// allocation only on growth/rehash — the steady-state find/insert/erase path
// never allocates. Shared by the simulator's pending-task arena; the kernel
// event_queue uses the same scheme internally.
#pragma once

#include <cstdint>
#include <vector>

namespace jsk::sim::detail {

class id_index {
public:
    static constexpr std::uint32_t npos = ~std::uint32_t{0};

    [[nodiscard]] std::uint32_t find(std::uint64_t id) const
    {
        if (keys_.empty()) return npos;
        const std::size_t mask = keys_.size() - 1;
        std::size_t pos = mix(id) & mask;
        while (state_[pos] != 0) {
            if (state_[pos] == 1 && keys_[pos] == id) return slots_[pos];
            pos = (pos + 1) & mask;
        }
        return npos;
    }

    void insert(std::uint64_t id, std::uint32_t slot)
    {
        if (keys_.empty() || (filled_ + 1) * 4 > keys_.size() * 3) {
            rehash(std::max<std::size_t>(64, (used_ + 1) * 2));
        }
        const std::size_t mask = keys_.size() - 1;
        std::size_t pos = mix(id) & mask;
        while (state_[pos] == 1) pos = (pos + 1) & mask;
        if (state_[pos] == 0) ++filled_;  // reusing a tombstone keeps filled_
        keys_[pos] = id;
        slots_[pos] = slot;
        state_[pos] = 1;
        ++used_;
    }

    void erase(std::uint64_t id)
    {
        if (keys_.empty()) return;
        const std::size_t mask = keys_.size() - 1;
        std::size_t pos = mix(id) & mask;
        while (state_[pos] != 0) {
            if (state_[pos] == 1 && keys_[pos] == id) {
                state_[pos] = 2;  // tombstone
                --used_;
                return;
            }
            pos = (pos + 1) & mask;
        }
    }

    void clear()
    {
        keys_.clear();
        slots_.clear();
        state_.clear();
        used_ = 0;
        filled_ = 0;
    }

private:
    static std::uint64_t mix(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    void rehash(std::size_t min_capacity)
    {
        std::size_t cap = 64;
        while (cap < min_capacity) cap *= 2;
        std::vector<std::uint64_t> keys(cap);
        std::vector<std::uint32_t> slots(cap);
        std::vector<std::uint8_t> state(cap, 0);
        const std::size_t mask = cap - 1;
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (state_[i] != 1) continue;
            std::size_t pos = mix(keys_[i]) & mask;
            while (state[pos] != 0) pos = (pos + 1) & mask;
            keys[pos] = keys_[i];
            slots[pos] = slots_[i];
            state[pos] = 1;
        }
        keys_ = std::move(keys);
        slots_ = std::move(slots);
        state_ = std::move(state);
        filled_ = used_;
    }

    std::vector<std::uint64_t> keys_;
    std::vector<std::uint32_t> slots_;
    std::vector<std::uint8_t> state_;  // 0 empty, 1 full, 2 tombstone
    std::size_t used_ = 0;
    std::size_t filled_ = 0;
};

}  // namespace jsk::sim::detail
