#include "sim/explore.h"

#include <algorithm>
#include <utility>

namespace jsk::sim::explore {

// --- schedule ------------------------------------------------------------------

namespace {

constexpr char digits[] = "0123456789abcdefghijklmnopqrstuvwxyz";

}  // namespace

std::string schedule::str() const
{
    std::string out;
    for (const auto choice : choices) {
        if (choice < 36) {
            out.push_back(digits[choice]);
        } else {
            out.push_back('{');
            out += std::to_string(choice);
            out.push_back('}');
        }
    }
    return out;
}

std::optional<schedule> schedule::parse(const std::string& text)
{
    schedule out;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c >= '0' && c <= '9') {
            out.choices.push_back(static_cast<std::uint32_t>(c - '0'));
        } else if (c >= 'a' && c <= 'z') {
            out.choices.push_back(static_cast<std::uint32_t>(c - 'a' + 10));
        } else if (c == '{') {
            const auto close = text.find('}', i);
            if (close == std::string::npos || close == i + 1) return std::nullopt;
            std::uint32_t value = 0;
            for (std::size_t j = i + 1; j < close; ++j) {
                if (text[j] < '0' || text[j] > '9') return std::nullopt;
                value = value * 10 + static_cast<std::uint32_t>(text[j] - '0');
            }
            out.choices.push_back(value);
            i = close;
        } else {
            return std::nullopt;
        }
    }
    return out;
}

std::size_t schedule::preemptions() const
{
    return static_cast<std::size_t>(
        std::count_if(choices.begin(), choices.end(), [](auto c) { return c != 0; }));
}

void schedule::trim()
{
    while (!choices.empty() && choices.back() == 0) choices.pop_back();
}

// --- controller ----------------------------------------------------------------

std::size_t controller::choose(const std::vector<sched_candidate>& candidates)
{
    const std::size_t point = recorded_.choices.size();
    std::size_t pick = 0;
    if (point < prefix_.choices.size()) {
        pick = prefix_.choices[point];
        if (pick >= candidates.size()) {
            diverged_ = true;
            pick = 0;
        }
    } else if (tail_ == tail_policy::random) {
        pick = static_cast<std::size_t>(
            walk_.uniform(0, static_cast<std::int64_t>(candidates.size()) - 1));
    }

    recorded_.choices.push_back(static_cast<std::uint32_t>(pick));
    decision d;
    d.chosen = static_cast<std::uint32_t>(pick);
    d.count = static_cast<std::uint32_t>(candidates.size());
    d.offset = static_cast<std::uint32_t>(cand_threads_.size());
    if (record_metadata_) {
        for (const auto& candidate : candidates) {
            cand_threads_.push_back(candidate.thread);
            cand_tasks_.push_back(candidate.id);
        }
    }
    trace_.push_back(d);
    return pick;
}

void controller::on_post(task_id posted, thread_id target, task_id poster)
{
    (void)posted;
    if (!record_metadata_ || poster == 0) return;
    auto& footprint = posts_[poster];
    if (std::find(footprint.begin(), footprint.end(), target) == footprint.end()) {
        footprint.push_back(target);
    }
}

const std::vector<thread_id>* controller::footprint(task_id task) const
{
    const auto it = posts_.find(task);
    return it == posts_.end() ? nullptr : &it->second;
}

// --- drivers -------------------------------------------------------------------

result explore_random(const program& p, const options& opt)
{
    result res;
    for (std::uint64_t walk = 0; walk < opt.max_schedules; ++walk) {
        // Walk 0 is the default schedule (all-first); the rest are seeded.
        controller ctl({}, walk == 0 ? controller::tail_policy::first
                                     : controller::tail_policy::random,
                       opt.seed + walk);
        ctl.set_window(opt.window);
        const run_outcome out = p(ctl);
        ++res.schedules_run;
        if (out.violated) {
            schedule failing = ctl.decisions();
            failing.trim();
            res.failing = std::move(failing);
            res.failure_detail = out.detail;
            return res;
        }
    }
    return res;
}

namespace {

/// DPOR-lite independence: two co-enabled tasks commute when they run on
/// different threads and, per the footprints observed in this run, neither
/// posted to the other's thread. (Each thread's busy window is unaffected by
/// the order of same-start tasks on *other* threads, so swapping them yields
/// an equivalent simulator trace.) Unknown footprints (task never ran) are
/// treated as dependent — no pruning.
bool independent(const controller& ctl, const decision& d, std::size_t a, std::size_t b)
{
    const thread_id ta = ctl.decision_thread(d, a);
    const thread_id tb = ctl.decision_thread(d, b);
    if (ta == tb) return false;
    const auto* fa = ctl.footprint(ctl.decision_task(d, a));
    const auto* fb = ctl.footprint(ctl.decision_task(d, b));
    const auto posts_to = [](const std::vector<thread_id>* fp, thread_id t) {
        return fp != nullptr && std::find(fp->begin(), fp->end(), t) != fp->end();
    };
    if (posts_to(fa, tb) || posts_to(fb, ta)) return false;
    return true;
}

}  // namespace

std::vector<schedule> expand_run(const controller& ctl, const schedule& prefix,
                                 const options& opt, std::uint64_t& pruned)
{
    // Expand alternatives at every branching point this run reached beyond
    // its prescribed prefix. Each child prefix is generated exactly once
    // across the whole tree.
    std::vector<schedule> children;
    const auto& trace = ctl.trace();
    const auto& taken = ctl.decisions().choices;
    std::size_t preemptions_before = prefix.preemptions();
    for (std::size_t point = prefix.choices.size(); point < trace.size(); ++point) {
        const decision& d = trace[point];
        for (std::uint32_t alt = 1; alt < d.count; ++alt) {
            if (alt == d.chosen) continue;
            if (preemptions_before + 1 > opt.preemption_budget) {
                ++pruned;
                continue;
            }
            if (opt.dpor && independent(ctl, d, d.chosen, alt)) {
                ++pruned;
                continue;
            }
            schedule child;
            child.choices.assign(taken.begin(),
                                 taken.begin() + static_cast<std::ptrdiff_t>(point));
            child.choices.push_back(alt);
            children.push_back(std::move(child));
        }
        if (d.chosen != 0) ++preemptions_before;
    }
    return children;
}

result explore_dfs(const program& p, const options& opt)
{
    result res;
    std::vector<schedule> work{schedule{}};
    while (!work.empty()) {
        if (res.schedules_run >= opt.max_schedules) return res;  // not exhausted
        schedule prefix = std::move(work.back());
        work.pop_back();

        controller ctl(prefix, controller::tail_policy::first);
        ctl.set_window(opt.window);
        if (opt.dpor) ctl.set_record_metadata(true);
        const run_outcome out = p(ctl);
        ++res.schedules_run;
        if (out.violated) {
            schedule failing = ctl.decisions();
            failing.trim();
            res.failing = std::move(failing);
            res.failure_detail = out.detail;
            return res;
        }

        for (auto& child : expand_run(ctl, prefix, opt, res.pruned)) {
            work.push_back(std::move(child));
        }
    }
    res.exhausted = true;
    return res;
}

run_outcome replay(const schedule& s, const program& p, time_ns window)
{
    controller ctl(s, controller::tail_policy::first);
    ctl.set_window(window);
    return p(ctl);
}

schedule shrink(const schedule& failing, const program& p, const options& opt)
{
    std::uint64_t budget = opt.max_schedules;
    const auto violates = [&](const schedule& candidate) {
        if (budget == 0) return false;
        --budget;
        return replay(candidate, p, opt.window).violated;
    };

    schedule current = failing;
    current.trim();

    // Pass 1: ddmin-style chunk deletion. Removing a decision realigns all
    // later choices to earlier branching points — the candidate is simply a
    // different (shorter) schedule, kept only if it still violates.
    std::size_t chunk = std::max<std::size_t>(current.choices.size() / 2, 1);
    while (chunk >= 1 && !current.choices.empty()) {
        bool shrunk = false;
        for (std::size_t start = 0; start < current.choices.size();) {
            schedule candidate = current;
            const auto first = candidate.choices.begin() +
                               static_cast<std::ptrdiff_t>(start);
            const auto last =
                candidate.choices.begin() +
                static_cast<std::ptrdiff_t>(std::min(start + chunk, candidate.choices.size()));
            candidate.choices.erase(first, last);
            if (violates(candidate)) {
                current = std::move(candidate);
                shrunk = true;
            } else {
                start += chunk;
            }
        }
        if (!shrunk) {
            if (chunk == 1) break;
            chunk /= 2;
        }
    }

    // Pass 2: zero out individual non-default choices.
    for (std::size_t i = 0; i < current.choices.size(); ++i) {
        if (current.choices[i] == 0) continue;
        schedule candidate = current;
        candidate.choices[i] = 0;
        if (violates(candidate)) current = std::move(candidate);
    }

    current.trim();
    return current;
}

}  // namespace jsk::sim::explore
