#include "sim/explore.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "sim/por.h"
#include "sim/rng.h"

namespace jsk::sim::explore {

// --- schedule ------------------------------------------------------------------

namespace {

constexpr char digits[] = "0123456789abcdefghijklmnopqrstuvwxyz";

}  // namespace

std::string schedule::str() const
{
    std::string out;
    for (const auto choice : choices) {
        if (choice < 36) {
            out.push_back(digits[choice]);
        } else {
            out.push_back('{');
            out += std::to_string(choice);
            out.push_back('}');
        }
    }
    return out;
}

std::optional<schedule> schedule::parse(const std::string& text)
{
    schedule out;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c >= '0' && c <= '9') {
            out.choices.push_back(static_cast<std::uint32_t>(c - '0'));
        } else if (c >= 'a' && c <= 'z') {
            out.choices.push_back(static_cast<std::uint32_t>(c - 'a' + 10));
        } else if (c == '{') {
            const auto close = text.find('}', i);
            if (close == std::string::npos || close == i + 1) return std::nullopt;
            std::uint32_t value = 0;
            for (std::size_t j = i + 1; j < close; ++j) {
                if (text[j] < '0' || text[j] > '9') return std::nullopt;
                value = value * 10 + static_cast<std::uint32_t>(text[j] - '0');
            }
            out.choices.push_back(value);
            i = close;
        } else {
            return std::nullopt;
        }
    }
    return out;
}

std::size_t schedule::preemptions() const
{
    return static_cast<std::size_t>(
        std::count_if(choices.begin(), choices.end(), [](auto c) { return c != 0; }));
}

void schedule::trim()
{
    while (!choices.empty() && choices.back() == 0) choices.pop_back();
}

// --- controller ----------------------------------------------------------------

std::size_t controller::choose(const std::vector<sched_candidate>& candidates)
{
    const std::size_t point = recorded_.choices.size();
    std::size_t pick = 0;
    if (point < prefix_.choices.size()) {
        pick = prefix_.choices[point];
        if (pick >= candidates.size()) {
            diverged_ = true;
            pick = 0;
        }
    } else if (tail_ == tail_policy::random) {
        pick = static_cast<std::size_t>(
            walk_.uniform(0, static_cast<std::int64_t>(candidates.size()) - 1));
    }

    recorded_.choices.push_back(static_cast<std::uint32_t>(pick));
    decision d;
    d.chosen = static_cast<std::uint32_t>(pick);
    d.count = static_cast<std::uint32_t>(candidates.size());
    d.offset = static_cast<std::uint32_t>(cand_threads_.size());
    d.step = static_cast<std::uint32_t>(exec_log_.size());  // chosen runs next
    if (record_metadata_) {
        for (const auto& candidate : candidates) {
            cand_threads_.push_back(candidate.thread);
            cand_tasks_.push_back(candidate.id);
            cand_starts_.push_back(candidate.start);
        }
    }
    trace_.push_back(d);
    return pick;
}

std::size_t controller::choose_value(std::size_t count)
{
    // A weak-memory reads-from choice shares the decision string with
    // schedule choices: replay, shrinking and witness keys see one opaque
    // digit sequence. Index 0 is always the committed (seq-cst) value, so
    // the default/zeroed tail reproduces strongly-consistent behaviour.
    const std::size_t point = recorded_.choices.size();
    std::size_t pick = 0;
    if (point < prefix_.choices.size()) {
        pick = prefix_.choices[point];
        if (pick >= count) {
            diverged_ = true;
            pick = 0;
        }
    } else if (tail_ == tail_policy::random) {
        pick = static_cast<std::size_t>(
            walk_.uniform(0, static_cast<std::int64_t>(count) - 1));
    }

    recorded_.choices.push_back(static_cast<std::uint32_t>(pick));
    decision d;
    d.kind = 1;
    d.chosen = static_cast<std::uint32_t>(pick);
    d.count = static_cast<std::uint32_t>(count);
    d.offset = static_cast<std::uint32_t>(cand_threads_.size());  // width 0
    d.step = exec_log_.empty() ? 0
                               : static_cast<std::uint32_t>(exec_log_.size() - 1);
    trace_.push_back(d);
    return pick;
}

void controller::on_post(task_id posted, thread_id target, task_id poster,
                         thread_id source)
{
    if (!record_metadata_ || poster == 0 || exec_log_.empty()) return;
    // A post writes the target thread's inbox (every task executing there
    // implicitly reads it — see on_execute) and the source->target channel.
    on_access(poster, por::inbox_key(target), /*write=*/true, 0);
    on_access(poster, por::channel_key(source, target), /*write=*/true, 0);
    post_log_.push_back(
        post_rec{posted, static_cast<std::uint32_t>(exec_log_.size() - 1)});
}

void controller::on_execute(task_id task, thread_id thread, time_ns ready_at)
{
    if (!record_metadata_) return;
    const auto mark = static_cast<std::uint32_t>(access_log_.size());
    exec_log_.push_back(exec_rec{task, thread, ready_at, mark, mark});
    if (task >= task_step_.size()) task_step_.resize(task + 1, 0);
    task_step_[task] = static_cast<std::uint32_t>(exec_log_.size());
    // The implicit inbox read: executing on a thread observes what was
    // posted there, so it conflicts with every post targeting the thread.
    on_access(task, por::inbox_key(thread), /*write=*/false, 0);
}

void controller::on_access(task_id task, std::uint64_t resource, bool write,
                           std::uint8_t ord)
{
    (void)task;  // attribution is positional: accesses land on the open step
    if (!record_metadata_ || exec_log_.empty()) return;
    access_log_.push_back(access_rec{resource, write, ord});
    exec_log_.back().access_end = static_cast<std::uint32_t>(access_log_.size());
}

std::size_t controller::poster_step_of(task_id task) const
{
    const auto it = std::lower_bound(
        post_log_.begin(), post_log_.end(), task,
        [](const post_rec& rec, task_id id) { return rec.posted < id; });
    if (it == post_log_.end() || it->posted != task) return no_step;
    return it->poster_step;
}

bool controller::storage_within(
    const std::function<bool(const void*)>& contains) const
{
    const auto in = [&](const auto& v) { return !v.empty() && contains(v.data()); };
    return in(recorded_.choices) || in(trace_) || in(cand_threads_) ||
           in(cand_tasks_) || in(cand_starts_) || in(exec_log_) ||
           in(access_log_) || in(post_log_) || in(task_step_);
}

// --- drivers -------------------------------------------------------------------

namespace {

/// The pre-fix posts-only independence heuristic, preserved verbatim behind
/// options::legacy_footprint so the soundness regression suite can
/// demonstrate the witness it loses: it only asks whether either task
/// posted to the other's *thread*, so same-target posters, SAB racers and
/// monitor-sink racers all read as independent. It even treats a task that
/// never ran as having an empty footprint (no conflict), despite claiming
/// otherwise. Do not use outside that suite.
bool legacy_independent(const controller& ctl, const decision& d, std::size_t a,
                        std::size_t b)
{
    const thread_id ta = ctl.decision_thread(d, a);
    const thread_id tb = ctl.decision_thread(d, b);
    if (ta == tb) return false;
    const auto posts_to = [&](std::size_t cand, thread_id t) {
        const std::size_t step = ctl.step_of(ctl.decision_task(d, cand));
        if (step == controller::no_step) return false;  // the historical quirk
        const exec_rec& rec = ctl.exec_log()[step];
        const std::uint64_t key = por::inbox_key(t);
        for (std::uint32_t i = rec.access_begin; i < rec.access_end; ++i) {
            const access_rec& acc = ctl.access_log()[i];
            if (acc.key == key && acc.write) return true;
        }
        return false;
    };
    if (posts_to(a, tb) || posts_to(b, ta)) return false;
    return true;
}

bool sleep_contains(const std::vector<task_id>& sleep, task_id task)
{
    return std::find(sleep.begin(), sleep.end(), task) != sleep.end();
}

/// Thread a task executed on in this run, or no_thread when it never ran
/// (in which case por::dependent is conservative regardless of the thread).
thread_id thread_of(const controller& ctl, task_id task)
{
    const std::size_t step = ctl.step_of(task);
    return step == controller::no_step ? no_thread : ctl.exec_log()[step].thread;
}

/// Propagate a sleep set across the executed step at exec index `step`:
/// sleepers dependent with it wake up (their claimed coverage assumed the
/// step could be commuted past them — no longer true). Returns true when
/// the executed task *itself* was asleep, i.e. the rest of this run is
/// redundant with an already-covered ordering.
bool wake_step(const controller& ctl, std::vector<task_id>& sleep, std::size_t step)
{
    const task_id ran = ctl.exec_log()[step].task;
    bool redundant = false;
    std::erase_if(sleep, [&](task_id t) {
        if (t == ran) {
            redundant = true;
            return true;
        }
        return por::dependent_step(ctl, t, step);
    });
    return redundant;
}

/// Causal ancestry of the task that executed step `s`: the task itself, its
/// poster, the poster's poster, … back to a root task with no recorded
/// poster. Post edges are the only inter-task ordering the scheduler
/// enforces, so this chain is exactly the set of tasks that must run before
/// step `s` can.
std::vector<task_id> causal_chain(const controller& ctl, std::size_t s)
{
    std::vector<task_id> chain;
    task_id t = ctl.exec_log()[s].task;
    for (;;) {
        chain.push_back(t);
        const std::size_t ps = ctl.poster_step_of(t);
        if (ps == controller::no_step) break;
        t = ctl.exec_log()[ps].task;
    }
    return chain;
}

bool chain_contains(const std::vector<task_id>& chain, task_id t)
{
    return std::find(chain.begin(), chain.end(), t) != chain.end();
}

}  // namespace

std::vector<work_item> expand_run(const controller& ctl, const work_item& item,
                                  const options& opt, std::uint64_t& pruned)
{
    // Expand alternatives at branching points of this run. Plain and
    // legacy modes visit only points beyond the prescribed prefix (each
    // child prefix is then generated exactly once across the tree). Sound
    // DPOR also re-examines the in-prefix ancestor decisions: this run's
    // continuation differs from the one each ancestor was expanded
    // against, so it can expose races at those earlier states that the
    // ancestor's own scan could not see — classic DPOR accumulates
    // backtrack points across *every* execution passing through a state.
    // Re-derived duplicates are dropped by the drivers' seen-prefix set.
    std::vector<work_item> children;
    const auto& trace = ctl.trace();
    const auto& taken = ctl.decisions().choices;
    const schedule& prefix = item.prefix;
    if (prefix.choices.size() > trace.size()) return children;  // diverged short

    const bool sound_dpor = opt.dpor && !opt.legacy_footprint;
    const bool sleep_sets = sound_dpor;
    const std::size_t first_point = sound_dpor ? 0 : prefix.choices.size();
    std::size_t preemptions_before = sound_dpor ? 0 : prefix.preemptions();
    std::vector<task_id> sleep = sleep_sets ? item.sleep : std::vector<task_id>{};
    // Exec step right after the prefix's last prescribed choice ran.
    std::size_t step = prefix.choices.empty()
                           ? 0
                           : trace[prefix.choices.size() - 1].step + 1;

    for (std::size_t point = first_point; point < trace.size(); ++point) {
        const decision& d = trace[point];
        // Inside the prefix the sleep-set state of the ancestor decisions is
        // unknown (it lived in their work items), so no sleep tracking there
        // — only race-driven child generation, which is sound with an empty
        // sleep set.
        const bool in_prefix = point < prefix.choices.size();
        if (sleep_sets && !in_prefix) {
            // Forced (non-branching) steps between decisions still wake
            // sleepers; a forced step that was itself asleep makes the rest
            // of the run redundant with an already-covered ordering.
            for (; step < d.step; ++step) {
                if (wake_step(ctl, sleep, step)) return children;
            }
        }
        if (d.kind != 0) {
            // Weak-memory value point (jsk::wm reads-from choice): the
            // alternatives are sibling rf candidates, not tasks — there is
            // no race scan, no candidate metadata, and no sleep-set
            // machinery (reversing a value choice reorders nothing). A
            // non-zero choice spends preemption budget exactly like a
            // schedule preemption: it steps away from the seq-cst default,
            // which is what bounds rf-enumeration depth. In-prefix value
            // points regenerate nothing — the candidate count is a pure
            // function of the shared prefix, so every alternative was
            // already generated when the point was first reached.
            if (!in_prefix) {
                for (std::uint32_t alt = 1; alt < d.count; ++alt) {
                    if (alt == d.chosen) continue;
                    if (preemptions_before + 1 > opt.preemption_budget) {
                        ++pruned;
                        continue;
                    }
                    work_item child;
                    child.prefix.choices.assign(
                        taken.begin(),
                        taken.begin() + static_cast<std::ptrdiff_t>(point));
                    child.prefix.choices.push_back(alt);
                    // Empty sleep set: a different reads-from value can
                    // change the program's control flow, so no sibling
                    // coverage claim survives the substitution.
                    children.push_back(std::move(child));
                }
            }
            if (d.chosen != 0) ++preemptions_before;
            continue;
        }
        // Candidate metadata exists only when the controller records it
        // (opt.dpor) — don't touch it on the plain exhaustive path.
        const task_id chosen_task = opt.dpor ? ctl.decision_task(d, d.chosen) : 0;
        // Race-driven generation (the Flanagan–Godefroid backtrack rule):
        // a sibling needs its own subtree only when reversing it against the
        // chosen step can express a new ordering. Scan every later step e
        // that conflicts with the chosen step and is causally concurrent
        // with it (the chosen task is not in e's poster chain); the
        // alternative to wake at this decision is whichever candidate sits
        // in e's causal past — the earliest divergence that can float e
        // above the chosen step. It is NOT enough to test each candidate's
        // own footprint against the chosen: the conflicting step may be a
        // descendant the candidate merely posts (candidate Z independent of
        // chosen a, Z posts W, W conflicts with a — only Z-first reaches
        // the W-before-a class). When no candidate is in e's past, fall
        // back to waking every sibling.
        const bool race_scan = sound_dpor && d.count > 1;
        bool mark_all = false;
        std::vector<char> marked;
        if (race_scan) {
            marked.assign(d.count, 0);
            // May-be-co-enabled filter: candidates are offered within a
            // `window` of the earliest pending effective start, and while the
            // chosen task pends that anchor never exceeds its start. A
            // setup-posted task (immutable ready time) beyond
            // chosen_start + window therefore can never be co-enabled with
            // the chosen here — its reversal is unreachable from this state
            // and needs no backtrack. Dynamically-posted tasks keep the
            // conservative treatment (their ready times move with the
            // schedule), as does the whole point when a sibling candidate
            // shares the chosen's thread (running it would push the chosen's
            // effective start, dragging the window with it).
            const time_ns chosen_start = ctl.decision_start(d, d.chosen);
            const thread_id chosen_thread = ctl.decision_thread(d, d.chosen);
            bool sibling_same_thread = false;
            for (std::uint32_t i = 0; i < d.count; ++i) {
                if (i != d.chosen && ctl.decision_thread(d, i) == chosen_thread) {
                    sibling_same_thread = true;
                }
            }
            const std::size_t steps = ctl.exec_log().size();
            for (std::size_t e = d.step + 1; e < steps && !mark_all; ++e) {
                const exec_rec& er = ctl.exec_log()[e];
                if (!por::dependent_step(ctl, er.task, d.step)) continue;
                if (!sibling_same_thread &&
                    er.ready > chosen_start + ctl.window() &&
                    ctl.poster_step_of(er.task) == controller::no_step) {
                    continue;  // never co-enabled with the chosen: no race
                }
                const std::vector<task_id> chain = causal_chain(ctl, e);
                if (chain_contains(chain, chosen_task)) continue;  // ordered
                bool found = false;
                for (std::uint32_t i = 0; i < d.count && !found; ++i) {
                    if (i == d.chosen) continue;
                    if (chain_contains(chain, ctl.decision_task(d, i))) {
                        marked[i] = 1;
                        found = true;
                    }
                }
                if (!found) mark_all = true;
            }
        }
        // Tasks whose subtrees this state's expansion covers: the chosen
        // task first, then each sibling a child was actually generated for.
        std::vector<task_id> covered;
        if (sleep_sets) covered.push_back(chosen_task);
        for (std::uint32_t alt = 1; alt < d.count; ++alt) {
            if (alt == d.chosen) continue;
            const task_id alt_task =
                opt.dpor ? ctl.decision_task(d, alt) : task_id{0};
            if (sleep_sets && !in_prefix && sleep_contains(sleep, alt_task)) {
                ++pruned;  // asleep: covered by an explored sibling ordering
                continue;
            }
            if (preemptions_before + 1 > opt.preemption_budget) {
                ++pruned;
                continue;
            }
            if (opt.dpor) {
                if (opt.legacy_footprint) {
                    if (legacy_independent(ctl, d, d.chosen, alt)) {
                        ++pruned;
                        continue;
                    }
                } else {
                    // A candidate that never executed in this run was either
                    // cut off by the horizon or disabled by something that
                    // conflicts with it — both mean its ordering is
                    // unexplored here, so keep it conservatively.
                    const bool never_ran =
                        ctl.step_of(alt_task) == controller::no_step;
                    if (!never_ran && !mark_all && !marked[alt]) {
                        ++pruned;
                        continue;
                    }
                }
            }
            work_item child;
            child.prefix.choices.assign(
                taken.begin(), taken.begin() + static_cast<std::ptrdiff_t>(point));
            child.prefix.choices.push_back(alt);
            if (sleep_sets) {
                // The child starts where this state's earlier explorations
                // already cover the inherited sleepers and `covered` — minus
                // anything dependent with the transition the child takes.
                // (In-prefix children inherit nothing: the ancestor's sleep
                // state is unknown, and `covered` holds only its chosen.)
                const thread_id alt_thread = ctl.decision_thread(d, alt);
                if (!in_prefix) {
                    for (const task_id t : sleep) {
                        if (t != alt_task &&
                            !por::dependent(ctl, t, thread_of(ctl, t), alt_task,
                                            alt_thread)) {
                            child.sleep.push_back(t);
                        }
                    }
                }
                for (const task_id t : covered) {
                    if (t != alt_task && !sleep_contains(child.sleep, t) &&
                        !por::dependent(ctl, t, thread_of(ctl, t), alt_task,
                                        alt_thread)) {
                        child.sleep.push_back(t);
                    }
                }
                covered.push_back(alt_task);
            }
            children.push_back(std::move(child));
        }
        if (sleep_sets && !in_prefix) {
            if (wake_step(ctl, sleep, d.step)) return children;
            step = d.step + 1;
        }
        if (d.chosen != 0) ++preemptions_before;
    }
    return children;
}

result explore_dfs(const program& p, const options& opt)
{
    // Wave-order traversal: run the whole frontier tail (deepest first) as
    // one batch, then append every batch member's children. This is exactly
    // the canonical order par::explore_dfs distributes over its worker
    // pool, so witness, schedules_run and pruned are identical at every
    // --jobs count; serial simply stops at the first violation instead of
    // finishing the wave.
    result res;
    std::vector<work_item> work{work_item{}};
    // Sound DPOR re-derives backtracks at ancestor decisions from every run
    // passing through them, so the same child prefix can surface more than
    // once; each subtree is still explored exactly once. Keyed by the
    // decision string, seeded with the root.
    std::unordered_set<std::string> seen;
    seen.insert(std::string{});
    while (!work.empty()) {
        const std::uint64_t budget = opt.max_schedules > res.schedules_run
                                         ? opt.max_schedules - res.schedules_run
                                         : 0;
        if (budget == 0) return res;  // bound hit: not exhausted
        const std::size_t batch =
            work.size() < budget ? work.size() : static_cast<std::size_t>(budget);
        const std::size_t base_index = work.size() - batch;
        std::vector<work_item> children;
        for (std::size_t i = 0; i < batch; ++i) {
            const work_item& item = work[work.size() - 1 - i];
            controller ctl(item.prefix, controller::tail_policy::first);
            ctl.set_window(opt.window);
            if (opt.dpor) ctl.set_record_metadata(true);
            const run_outcome out = p(ctl);
            ++res.schedules_run;
            if (out.violated) {
                schedule failing = ctl.decisions();
                failing.trim();
                res.failing = std::move(failing);
                res.failure_detail = out.detail;
                return res;
            }
            for (auto& child : expand_run(ctl, item, opt, res.pruned)) {
                if (!seen.insert(child.prefix.str()).second) continue;
                children.push_back(std::move(child));
            }
        }
        work.resize(base_index);
        for (auto& child : children) work.push_back(std::move(child));
    }
    res.exhausted = true;
    return res;
}

result explore_random(const program& p, const options& opt)
{
    result res;
    // Coverage mode: fingerprint every completed walk and keep a pool of
    // schedules that reached novel behaviour; later walks replay a random
    // prefix of a pool member and walk randomly from there, steering the
    // search toward unseen interleaving classes / monitor prefixes instead
    // of re-rolling the same hot paths. Fully deterministic for a fixed
    // seed. The non-coverage path is byte-identical to the historical one.
    std::unordered_set<std::uint64_t> seen_classes;
    std::unordered_set<std::uint64_t> seen_prints;
    std::vector<schedule> pool;
    constexpr std::size_t k_pool_cap = 64;
    rng steer(split(opt.seed, 0x636f76657261ULL));
    for (std::uint64_t walk = 0; walk < opt.max_schedules; ++walk) {
        // Walk 0 is the default schedule (all-first); the rest are seeded.
        schedule prefix;
        if (opt.coverage && walk > 0 && !pool.empty()) {
            const auto& base =
                pool[static_cast<std::size_t>(steer.uniform(
                    0, static_cast<std::int64_t>(pool.size()) - 1))];
            const auto cut = static_cast<std::size_t>(steer.uniform(
                0, static_cast<std::int64_t>(base.choices.size())));
            prefix.choices.assign(base.choices.begin(),
                                  base.choices.begin() +
                                      static_cast<std::ptrdiff_t>(cut));
        }
        controller ctl(std::move(prefix), walk == 0
                                              ? controller::tail_policy::first
                                              : controller::tail_policy::random,
                       opt.seed + walk);
        ctl.set_window(opt.window);
        if (opt.coverage) ctl.set_record_metadata(true);
        const run_outcome out = p(ctl);
        ++res.schedules_run;
        if (out.violated) {
            schedule failing = ctl.decisions();
            failing.trim();
            res.failing = std::move(failing);
            res.failure_detail = out.detail;
            return res;
        }
        if (!opt.coverage) continue;
        const por::analysis an(ctl);
        bool novel = seen_classes.insert(an.class_hash()).second;
        for (const std::uint64_t h : an.sink_prefix_hashes()) {
            novel = seen_prints.insert(h).second || novel;
        }
        res.coverage_classes = seen_classes.size();
        if (!novel) continue;
        ++res.coverage_novel;
        schedule interesting = ctl.decisions();
        interesting.trim();
        if (pool.size() < k_pool_cap) {
            pool.push_back(std::move(interesting));
        } else {
            pool[static_cast<std::size_t>(steer.uniform(
                0, static_cast<std::int64_t>(k_pool_cap) - 1))] =
                std::move(interesting);
        }
    }
    return res;
}

run_outcome replay(const schedule& s, const program& p, time_ns window)
{
    controller ctl(s, controller::tail_policy::first);
    ctl.set_window(window);
    return p(ctl);
}

schedule shrink(const schedule& failing, const program& p, const options& opt)
{
    std::uint64_t budget = opt.max_schedules;
    const auto violates = [&](const schedule& candidate) {
        if (budget == 0) return false;
        --budget;
        return replay(candidate, p, opt.window).violated;
    };

    schedule current = failing;
    current.trim();

    // Pass 1: ddmin-style chunk deletion. Removing a decision realigns all
    // later choices to earlier branching points — the candidate is simply a
    // different (shorter) schedule, kept only if it still violates.
    std::size_t chunk = std::max<std::size_t>(current.choices.size() / 2, 1);
    while (chunk >= 1 && !current.choices.empty()) {
        bool shrunk = false;
        for (std::size_t start = 0; start < current.choices.size();) {
            schedule candidate = current;
            const auto first = candidate.choices.begin() +
                               static_cast<std::ptrdiff_t>(start);
            const auto last =
                candidate.choices.begin() +
                static_cast<std::ptrdiff_t>(std::min(start + chunk, candidate.choices.size()));
            candidate.choices.erase(first, last);
            if (violates(candidate)) {
                current = std::move(candidate);
                shrunk = true;
            } else {
                start += chunk;
            }
        }
        if (!shrunk) {
            if (chunk == 1) break;
            chunk /= 2;
        }
    }

    // Pass 2: zero out individual non-default choices.
    for (std::size_t i = 0; i < current.choices.size(); ++i) {
        if (current.choices[i] == 0) continue;
        schedule candidate = current;
        candidate.choices[i] = 0;
        if (violates(candidate)) current = std::move(candidate);
    }

    current.trim();
    return current;
}

}  // namespace jsk::sim::explore
