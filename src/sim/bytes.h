// jsk::sim — canonical byte codec.
//
// Everything this repo persists or streams (witness keys, store records,
// service wire frames) uses one canonical form: little-endian fixed-width
// integers and u32-length-prefixed byte strings, appended to a std::string.
// The encoding is explicitly platform-independent — the same logical value
// serializes to the same bytes on every architecture and after every
// recompilation — because on-disk cache keys and golden-bytes tests depend
// on it. Decoders are bounds-checked and never read past `size`; a short
// buffer is reported, not UB.
//
// CRC32 (IEEE 802.3, reflected, the zlib/PNG polynomial) lives here too:
// it is the per-record integrity check of the svc store and must match the
// standard check value ("123456789" -> 0xCBF43926) so external tools can
// validate shard files.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace jsk::sim::bytes {

// --- encoding ---------------------------------------------------------------

inline void put_u8(std::string& out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

inline void put_u32(std::string& out, std::uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8) {
        out.push_back(static_cast<char>((v >> shift) & 0xff));
    }
}

inline void put_u64(std::string& out, std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8) {
        out.push_back(static_cast<char>((v >> shift) & 0xff));
    }
}

/// u32 length prefix + raw bytes. Strings longer than 4 GiB do not occur in
/// this codebase (decision strings and plan strings are kilobytes).
inline void put_str(std::string& out, const std::string& s)
{
    put_u32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

// --- decoding ---------------------------------------------------------------

/// Cursor over an immutable byte buffer. Every get_* advances the cursor on
/// success and returns nullopt (cursor untouched) when fewer bytes remain
/// than the field needs — callers distinguish "clean end" via done().
class reader {
public:
    reader(const char* data, std::size_t size) : data_(data), size_(size) {}
    explicit reader(const std::string& s) : reader(s.data(), s.size()) {}

    [[nodiscard]] std::size_t offset() const { return pos_; }
    [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
    [[nodiscard]] bool done() const { return pos_ == size_; }

    std::optional<std::uint8_t> get_u8()
    {
        if (remaining() < 1) return std::nullopt;
        return static_cast<std::uint8_t>(data_[pos_++]);
    }

    std::optional<std::uint32_t> get_u32()
    {
        if (remaining() < 4) return std::nullopt;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
                 << (8 * i);
        }
        pos_ += 4;
        return v;
    }

    std::optional<std::uint64_t> get_u64()
    {
        if (remaining() < 8) return std::nullopt;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
                 << (8 * i);
        }
        pos_ += 8;
        return v;
    }

    std::optional<std::string> get_str()
    {
        const std::size_t mark = pos_;
        const auto len = get_u32();
        if (!len || remaining() < *len) {
            pos_ = mark;
            return std::nullopt;
        }
        std::string s(data_ + pos_, *len);
        pos_ += *len;
        return s;
    }

private:
    const char* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

// --- CRC32 (IEEE, reflected) ------------------------------------------------

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32_table()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit) {
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            }
            t[i] = c;
        }
        return t;
    }();
    return table;
}

}  // namespace detail

/// Incremental form: pass the previous return value as `seed` to continue a
/// digest across buffers. The one-shot digest of `data` is crc32(data, n).
inline std::uint32_t crc32(const char* data, std::size_t size, std::uint32_t seed = 0)
{
    const auto& table = detail::crc32_table();
    std::uint32_t c = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i) {
        c = table[(c ^ static_cast<unsigned char>(data[i])) & 0xff] ^ (c >> 8);
    }
    return c ^ 0xffffffffu;
}

inline std::uint32_t crc32(const std::string& s, std::uint32_t seed = 0)
{
    return crc32(s.data(), s.size(), seed);
}

}  // namespace jsk::sim::bytes
