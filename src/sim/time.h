// Virtual time primitives for the discrete-event simulator.
//
// All simulator time is expressed in integer nanoseconds (`time_ns`).
// Helper factories exist so call sites read naturally: `5 * sim::ms`.
#pragma once

#include <cstdint>

namespace jsk::sim {

/// Absolute virtual time or a duration, in nanoseconds.
using time_ns = std::int64_t;

inline constexpr time_ns ns = 1;
inline constexpr time_ns us = 1'000;
inline constexpr time_ns ms = 1'000'000;
inline constexpr time_ns sec = 1'000'000'000;

/// Convert a nanosecond count to fractional milliseconds (for reporting).
constexpr double to_ms(time_ns t) { return static_cast<double>(t) / static_cast<double>(ms); }

/// Convert fractional milliseconds to nanoseconds (rounding toward zero).
constexpr time_ns from_ms(double v) { return static_cast<time_ns>(v * static_cast<double>(ms)); }

/// Quantise `t` down to a multiple of `quantum` (clock-precision reduction).
/// A non-positive quantum means "no quantisation".
constexpr time_ns quantize(time_ns t, time_ns quantum)
{
    if (quantum <= 1) return t;
    return (t / quantum) * quantum;
}

}  // namespace jsk::sim
