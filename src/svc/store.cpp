#include "svc/store.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "par/cache.h"
#include "svc/record.h"

#if defined(__unix__) || defined(__APPLE__)
#define JSK_SVC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace jsk::svc {

namespace fs = std::filesystem;

// --- mapping ----------------------------------------------------------------

/// Read-only view of one shard file. On POSIX platforms the file is mmap'd
/// MAP_PRIVATE, so recall never copies it into the heap and untouched pages
/// never become resident; elsewhere the file is read into a heap buffer
/// (same interface, weaker economics). shrink() narrows the *logical* size
/// after tail truncation — the trailing pages stay mapped but are never
/// read again, which keeps truncate-after-mmap free of SIGBUS hazards.
class store::mapping {
public:
    static std::unique_ptr<mapping> open(const std::string& path)
    {
        std::error_code ec;
        if (!fs::exists(path, ec)) return nullptr;
        auto m = std::unique_ptr<mapping>(new mapping());
#if JSK_SVC_HAVE_MMAP
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0) throw std::runtime_error("svc::store: cannot open " + path);
        struct stat st{};
        if (::fstat(fd, &st) != 0) {
            ::close(fd);
            throw std::runtime_error("svc::store: cannot stat " + path);
        }
        m->size_ = static_cast<std::size_t>(st.st_size);
        if (m->size_ > 0) {
            void* addr = ::mmap(nullptr, m->size_, PROT_READ, MAP_PRIVATE, fd, 0);
            if (addr == MAP_FAILED) {
                ::close(fd);
                throw std::runtime_error("svc::store: mmap failed for " + path);
            }
            m->addr_ = addr;
            m->mapped_ = m->size_;
            m->data_ = static_cast<const char*>(addr);
        }
        ::close(fd);
#else
        std::ifstream in(path, std::ios::binary);
        if (!in) throw std::runtime_error("svc::store: cannot open " + path);
        m->heap_.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
        m->data_ = m->heap_.data();
        m->size_ = m->heap_.size();
#endif
        return m;
    }

    ~mapping()
    {
#if JSK_SVC_HAVE_MMAP
        if (addr_ != nullptr) ::munmap(addr_, mapped_);
#endif
    }

    mapping(const mapping&) = delete;
    mapping& operator=(const mapping&) = delete;

    [[nodiscard]] const char* data() const { return data_; }
    [[nodiscard]] std::size_t size() const { return size_; }
    void shrink(std::size_t new_size) { size_ = new_size; }

private:
    mapping() = default;

#if JSK_SVC_HAVE_MMAP
    void* addr_ = nullptr;
    std::size_t mapped_ = 0;
#else
    std::string heap_;
#endif
    const char* data_ = nullptr;
    std::size_t size_ = 0;
};

// --- CURRENT ----------------------------------------------------------------

namespace {

std::string current_path(const std::string& dir)
{
    return (fs::path(dir) / "CURRENT").string();
}

std::optional<std::uint64_t> read_current(const std::string& dir)
{
    std::ifstream in(current_path(dir));
    if (!in) return std::nullopt;
    std::uint64_t generation = 0;
    in >> generation;
    if (in.fail()) return std::nullopt;
    return generation;
}

/// Write-then-rename so CURRENT is never observed half-written: a crash
/// mid-flip leaves the old generation live and complete.
void write_current(const std::string& dir, std::uint64_t generation)
{
    const std::string tmp = current_path(dir) + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) throw std::runtime_error("svc::store: cannot write " + tmp);
        out << generation << "\n";
    }
    fs::rename(tmp, current_path(dir));
}

}  // namespace

// --- store ------------------------------------------------------------------

store::store(store_options opt) : opt_(std::move(opt))
{
    if (opt_.dir.empty()) throw std::invalid_argument("svc::store: empty dir");
    if (opt_.shards == 0) opt_.shards = 1;
    fs::create_directories(opt_.dir);
    auto generation = read_current(opt_.dir);
    if (!generation) {
        write_current(opt_.dir, 0);
        generation = 0;
    }
    load_generation(*generation);
}

store::~store()
{
    for (std::FILE* f : appenders_) {
        if (f != nullptr) std::fclose(f);
    }
}

std::string store::shard_path(std::uint64_t generation, std::size_t shard_index) const
{
    return (fs::path(opt_.dir) / ("gen-" + std::to_string(generation) + "-shard-" +
                                  std::to_string(shard_index) + ".jsk"))
        .string();
}

std::size_t store::shard_of(const std::string& key) const
{
    return static_cast<std::size_t>(par::fnv1a(key) % opt_.shards);
}

void store::load_generation(std::uint64_t generation)
{
    for (std::FILE* f : appenders_) {
        if (f != nullptr) std::fclose(f);
    }
    appenders_.assign(opt_.shards, nullptr);
    index_.clear();
    maps_.clear();
    session_values_.clear();
    stats_.generation = generation;
    stats_.entries = 0;
    stats_.bytes = 0;
    stats_.loaded_records = 0;
    stats_.dropped_records = 0;
    stats_.truncated_bytes = 0;

    maps_.reserve(opt_.shards);
    for (std::size_t s = 0; s < opt_.shards; ++s) {
        maps_.push_back(mapping::open(shard_path(generation, s)));
        scan_shard(s);
    }
}

void store::scan_shard(std::size_t shard_index)
{
    mapping* m = maps_[shard_index].get();
    if (m == nullptr || m->size() == 0) return;
    const char* data = m->data();
    const std::size_t size = m->size();
    std::size_t pos = 0;
    while (pos < size) {
        record rec;
        record_status status = record_status::ok;
        const std::size_t used = parse_record(data + pos, size - pos, rec, status);
        if (status != record_status::ok) {
            // Torn tail or corrupted record: the valid prefix is the cache.
            // Everything from here on is untrusted (lengths may lie about
            // where the next record starts), so cut it — on disk too, which
            // is what makes the *next* open clean.
            if (status == record_status::bad_crc) ++stats_.dropped_records;
            stats_.truncated_bytes += size - pos;
            std::error_code ec;
            fs::resize_file(shard_path(stats_.generation, shard_index), pos, ec);
            m->shrink(pos);
            return;
        }
        // The slot aliases the mapping: value bytes start after the two
        // length prefixes and the key.
        slot sl;
        sl.data = data + pos + 8 + rec.key.size();
        sl.size = static_cast<std::uint32_t>(rec.value.size());
        const auto it = index_.find(rec.key);
        if (it == index_.end()) {
            ++stats_.entries;
            stats_.bytes += rec.key.size() + sl.size;
            index_.emplace(std::move(rec.key), sl);
        } else {
            // Duplicate key across appends (possible only via histories that
            // interleave erase + reopen without compaction): last wins.
            stats_.bytes += sl.size;
            stats_.bytes -= it->second.size;
            it->second = sl;
        }
        ++stats_.loaded_records;
        pos += used;
    }
}

std::optional<std::string_view> store::get(const std::string& key)
{
    const auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    ++stats_.recalls;
    return std::string_view(it->second.data, it->second.size);
}

bool store::contains(const std::string& key) const
{
    return index_.find(key) != index_.end();
}

bool store::put(const std::string& key, const std::string& value)
{
    if (contains(key)) return false;
    std::string encoded;
    encoded.reserve(record_overhead + key.size() + value.size());
    append_record(encoded, key, value);
    append_to_shard(shard_of(key), encoded);

    session_values_.push_back(value);
    slot sl;
    sl.data = session_values_.back().data();
    sl.size = static_cast<std::uint32_t>(value.size());
    index_.emplace(key, sl);
    ++stats_.entries;
    stats_.bytes += key.size() + value.size();
    ++stats_.appended_records;
    return true;
}

void store::erase(const std::string& key)
{
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    --stats_.entries;
    stats_.bytes -= it->first.size() + it->second.size;
    index_.erase(it);
}

void store::append_to_shard(std::size_t shard_index, const std::string& encoded)
{
    std::FILE*& f = appenders_[shard_index];
    if (f == nullptr) {
        f = std::fopen(shard_path(stats_.generation, shard_index).c_str(), "ab");
        if (f == nullptr) {
            throw std::runtime_error("svc::store: cannot append to shard " +
                                     std::to_string(shard_index));
        }
    }
    if (std::fwrite(encoded.data(), 1, encoded.size(), f) != encoded.size()) {
        throw std::runtime_error("svc::store: short write to shard " +
                                 std::to_string(shard_index));
    }
    // One flush per record: a crash loses at most the in-flight record, and
    // the loader's truncate-to-valid handles even that half-written tail.
    std::fflush(f);
}

void store::compact()
{
    const std::uint64_t old_generation = stats_.generation;
    const std::uint64_t next = old_generation + 1;

    // Stage the new generation fully before flipping CURRENT. index_ is a
    // sorted map, so each shard's bytes are a pure function of the live
    // contents — two stores holding the same entries compact to identical
    // files.
    std::vector<std::string> buffers(opt_.shards);
    for (const auto& [key, sl] : index_) {
        append_record(buffers[shard_of(key)], key, std::string(sl.data, sl.size));
    }
    for (std::size_t s = 0; s < opt_.shards; ++s) {
        if (buffers[s].empty()) continue;
        const std::string path = shard_path(next, s);
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (!out) throw std::runtime_error("svc::store: cannot write " + path);
        out.write(buffers[s].data(),
                  static_cast<std::streamsize>(buffers[s].size()));
        if (!out) throw std::runtime_error("svc::store: short write to " + path);
    }
    write_current(opt_.dir, next);

    // The flip is durable; the old generation is dead weight now.
    for (std::size_t s = 0; s < opt_.shards; ++s) {
        std::error_code ec;
        fs::remove(shard_path(old_generation, s), ec);
    }
    const std::uint64_t appended = stats_.appended_records;
    const std::uint64_t recalls = stats_.recalls;
    const std::uint64_t compactions = stats_.compactions + 1;
    load_generation(next);
    stats_.appended_records = appended;
    stats_.recalls = recalls;
    stats_.compactions = compactions;
}

}  // namespace jsk::svc
