#include "svc/store.h"

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "par/cache.h"
#include "svc/record.h"

#if defined(__unix__) || defined(__APPLE__)
#define JSK_SVC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace jsk::svc {

namespace fs = std::filesystem;

// --- mapping ----------------------------------------------------------------

/// Read-only view of one shard file. On POSIX platforms the file is mmap'd
/// MAP_PRIVATE, so recall never copies it into the heap and untouched pages
/// never become resident; elsewhere the file is read into a heap buffer
/// (same interface, weaker economics). shrink() narrows the *logical* size
/// after tail truncation — the trailing pages stay mapped but are never
/// read again, which keeps truncate-after-mmap free of SIGBUS hazards.
class store::mapping {
public:
    static std::unique_ptr<mapping> open(const std::string& path)
    {
        std::error_code ec;
        if (!fs::exists(path, ec)) return nullptr;
        auto m = std::unique_ptr<mapping>(new mapping());
#if JSK_SVC_HAVE_MMAP
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0) throw std::runtime_error("svc::store: cannot open " + path);
        struct stat st{};
        if (::fstat(fd, &st) != 0) {
            ::close(fd);
            throw std::runtime_error("svc::store: cannot stat " + path);
        }
        m->size_ = static_cast<std::size_t>(st.st_size);
        if (m->size_ > 0) {
            void* addr = ::mmap(nullptr, m->size_, PROT_READ, MAP_PRIVATE, fd, 0);
            if (addr == MAP_FAILED) {
                ::close(fd);
                throw std::runtime_error("svc::store: mmap failed for " + path);
            }
            m->addr_ = addr;
            m->mapped_ = m->size_;
            m->data_ = static_cast<const char*>(addr);
        }
        ::close(fd);
#else
        std::ifstream in(path, std::ios::binary);
        if (!in) throw std::runtime_error("svc::store: cannot open " + path);
        m->heap_.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
        m->data_ = m->heap_.data();
        m->size_ = m->heap_.size();
#endif
        return m;
    }

    ~mapping()
    {
#if JSK_SVC_HAVE_MMAP
        if (addr_ != nullptr) ::munmap(addr_, mapped_);
#endif
    }

    mapping(const mapping&) = delete;
    mapping& operator=(const mapping&) = delete;

    [[nodiscard]] const char* data() const { return data_; }
    [[nodiscard]] std::size_t size() const { return size_; }
    void shrink(std::size_t new_size) { size_ = new_size; }

private:
    mapping() = default;

#if JSK_SVC_HAVE_MMAP
    void* addr_ = nullptr;
    std::size_t mapped_ = 0;
#else
    std::string heap_;
#endif
    const char* data_ = nullptr;
    std::size_t size_ = 0;
};

// --- CURRENT ----------------------------------------------------------------

namespace {

std::string current_path(const std::string& dir)
{
    return (fs::path(dir) / "CURRENT").string();
}

std::optional<std::uint64_t> read_current(const std::string& dir)
{
    std::ifstream in(current_path(dir));
    if (!in) return std::nullopt;
    std::uint64_t generation = 0;
    in >> generation;
    if (in.fail()) return std::nullopt;
    return generation;
}

/// Durable CURRENT flip: write tmp, fsync it, rename over CURRENT, fsync
/// the directory — a crash at any boundary leaves either the old value live
/// or the new value fully durable, never a half-written CURRENT. Any step
/// failing surfaces as store_error with errno context, with the orphaned
/// tmp cleaned up; a *crash* (crash_error is not an io_error) skips the
/// cleanup by design, and the next open removes the orphan instead.
void write_current(vfs& v, const std::string& dir, std::uint64_t generation)
{
    const std::string current = current_path(dir);
    const std::string tmp = current + ".tmp";
    try {
        auto out = v.open_trunc(tmp);
        out->write(std::to_string(generation) + "\n");
        out->sync();
        out->close();
        v.rename(tmp, current);
        v.sync_dir(dir);
    } catch (const io_error& e) {
        v.remove(tmp);
        throw store_error("svc::store: CURRENT flip to generation " +
                              std::to_string(generation) + " failed in " + dir +
                              ": " + e.what(),
                          e.code());
    }
}

}  // namespace

// --- store ------------------------------------------------------------------

store::store(store_options opt) : opt_(std::move(opt))
{
    if (opt_.dir.empty()) throw std::invalid_argument("svc::store: empty dir");
    if (opt_.shards == 0) opt_.shards = 1;
    fs_ = opt_.fs != nullptr ? opt_.fs : &default_vfs();
    fs::create_directories(opt_.dir);
    // A crash mid-flip can orphan CURRENT.tmp; it is dead bytes — the flip
    // either renamed it (gone) or never happened (old CURRENT still live).
    fs().remove(current_path(opt_.dir) + ".tmp");
    auto generation = read_current(opt_.dir);
    if (!generation) {
        write_current(fs(), opt_.dir, 0);
        generation = 0;
    }
    load_generation(*generation);
    remove_stale_files(*generation);
}

store::~store() = default;

std::string store::shard_path(std::uint64_t generation, std::size_t shard_index) const
{
    return (fs::path(opt_.dir) / ("gen-" + std::to_string(generation) + "-shard-" +
                                  std::to_string(shard_index) + ".jsk"))
        .string();
}

std::size_t store::shard_of(const std::string& key) const
{
    return static_cast<std::size_t>(par::fnv1a(key) % opt_.shards);
}

void store::load_generation(std::uint64_t generation)
{
    appenders_.clear();
    appenders_.resize(opt_.shards);
    good_size_.assign(opt_.shards, 0);
    dirty_.assign(opt_.shards, false);
    torn_.assign(opt_.shards, false);
    queued_.clear();
    index_.clear();
    maps_.clear();
    session_values_.clear();
    stats_.generation = generation;
    stats_.entries = 0;
    stats_.bytes = 0;
    stats_.loaded_records = 0;
    stats_.dropped_records = 0;
    stats_.truncated_bytes = 0;

    maps_.reserve(opt_.shards);
    for (std::size_t s = 0; s < opt_.shards; ++s) {
        maps_.push_back(mapping::open(shard_path(generation, s)));
        scan_shard(s);
        good_size_[s] = maps_[s] != nullptr ? maps_[s]->size() : 0;
    }
}

/// Delete files of any generation other than the live one. A crash during
/// compaction can strand either staged next-generation shards (died before
/// the flip) or the previous generation's shards (died after the flip,
/// before the deletes) — both are unreferenced by CURRENT and safe to drop.
void store::remove_stale_files(std::uint64_t live_generation)
{
    std::error_code ec;
    fs::directory_iterator it(opt_.dir, ec);
    if (ec) return;
    for (const auto& entry : it) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("gen-", 0) != 0) continue;
        char* end = nullptr;
        const unsigned long long generation = std::strtoull(name.c_str() + 4, &end, 10);
        if (end == name.c_str() + 4 || *end != '-') continue;
        if (generation != live_generation) fs().remove(entry.path().string());
    }
}

void store::scan_shard(std::size_t shard_index)
{
    mapping* m = maps_[shard_index].get();
    if (m == nullptr || m->size() == 0) return;
    const char* data = m->data();
    const std::size_t size = m->size();
    std::size_t pos = 0;
    while (pos < size) {
        record rec;
        record_status status = record_status::ok;
        const std::size_t used = parse_record(data + pos, size - pos, rec, status);
        if (status != record_status::ok) {
            // Torn tail or corrupted record: the valid prefix is the cache.
            // Everything from here on is untrusted (lengths may lie about
            // where the next record starts), so cut it — on disk too, which
            // is what makes the *next* open clean. Disk-cut failure is
            // tolerable (the logical shrink governs this process), but a
            // crash point firing here must still propagate.
            if (status == record_status::bad_crc) ++stats_.dropped_records;
            stats_.truncated_bytes += size - pos;
            try {
                fs().resize(shard_path(stats_.generation, shard_index), pos);
            } catch (const io_error&) {
            }
            m->shrink(pos);
            return;
        }
        // The slot aliases the mapping: value bytes start after the two
        // length prefixes and the key.
        slot sl;
        sl.data = data + pos + 8 + rec.key.size();
        sl.size = static_cast<std::uint32_t>(rec.value.size());
        const auto it = index_.find(rec.key);
        if (it == index_.end()) {
            ++stats_.entries;
            stats_.bytes += rec.key.size() + sl.size;
            index_.emplace(std::move(rec.key), sl);
        } else {
            // Duplicate key across appends (possible only via histories that
            // interleave erase + reopen without compaction): last wins.
            stats_.bytes += sl.size;
            stats_.bytes -= it->second.size;
            it->second = sl;
        }
        ++stats_.loaded_records;
        pos += used;
    }
}

std::optional<std::string_view> store::get(const std::string& key)
{
    const auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    ++stats_.recalls;
    return std::string_view(it->second.data, it->second.size);
}

bool store::contains(const std::string& key) const
{
    return index_.find(key) != index_.end();
}

bool store::put(const std::string& key, const std::string& value)
{
    if (contains(key)) return false;

    // Index into memory first: correctness never waits on the disk. The
    // deque gives the slot a stable address for the store's lifetime.
    session_values_.push_back(value);
    slot sl;
    sl.data = session_values_.back().data();
    sl.size = static_cast<std::uint32_t>(value.size());
    index_.emplace(key, sl);
    ++stats_.entries;
    stats_.bytes += key.size() + value.size();

    if (degraded_) {
        queued_.push_back(key);
        ++stats_.queued_promotions;
        return true;
    }

    std::string encoded;
    encoded.reserve(record_overhead + key.size() + value.size());
    append_record(encoded, key, value);
    const std::size_t shard = shard_of(key);
    try {
        append_to_shard(shard, encoded);
        ++stats_.appended_records;
    } catch (const io_error& e) {
        // Persistent write failure: the shard's tail may hold a partial
        // record and the stream state is suspect. Drop the appender, mark
        // the tail torn (retry_writes truncates back to the last good byte
        // before re-appending), and go read-only. crash_error — a simulated
        // process death — is deliberately NOT caught here.
        appenders_[shard].reset();
        torn_[shard] = true;
        enter_degraded("put(" + std::to_string(key.size()) + "-byte key) on shard " +
                       std::to_string(shard) + ": " + e.what());
        queued_.push_back(key);
        ++stats_.queued_promotions;
    }
    return true;
}

void store::erase(const std::string& key)
{
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    --stats_.entries;
    stats_.bytes -= it->first.size() + it->second.size;
    index_.erase(it);
}

void store::append_to_shard(std::size_t shard_index, const std::string& encoded)
{
    std::unique_ptr<vfs::file>& f = appenders_[shard_index];
    if (f == nullptr) {
        f = fs().open_append(shard_path(stats_.generation, shard_index));
    }
    f->write(encoded);
    // One flush per record: a crash loses at most the in-flight record, and
    // the loader's truncate-to-valid handles even that half-written tail.
    // Durability (fsync) is batched in sync(), the service's ack barrier.
    f->flush();
    good_size_[shard_index] += encoded.size();
    dirty_[shard_index] = true;
}

bool store::sync()
{
    if (degraded_) return false;
    if (!opt_.fsync) return true;
    for (std::size_t s = 0; s < opt_.shards; ++s) {
        if (!dirty_[s] || appenders_[s] == nullptr) continue;
        try {
            appenders_[s]->sync();
            ++stats_.fsyncs;
            dirty_[s] = false;
        } catch (const io_error& e) {
            // The records are in the file (flush succeeded at append time);
            // only their *durability* is in doubt. Content is not torn, so
            // nothing queues — retry_writes() simply re-syncs.
            ++stats_.sync_failures;
            enter_degraded("sync on shard " + std::to_string(s) + ": " + e.what());
            return false;
        }
    }
    return true;
}

void store::enter_degraded(const std::string& reason)
{
    if (!degraded_) {
        degraded_ = true;
        ++stats_.degraded_entries;
    }
    degraded_log_.push_back(reason);
}

bool store::retry_writes()
{
    if (!degraded_ && queued_.empty()) return true;
    try {
        // First heal any torn tails: drop the suspect stream, cut the file
        // back to its last known-good byte, and let append reopen it.
        for (std::size_t s = 0; s < opt_.shards; ++s) {
            if (!torn_[s]) continue;
            appenders_[s].reset();
            fs().resize(shard_path(stats_.generation, s), good_size_[s]);
            torn_[s] = false;
        }
        while (!queued_.empty()) {
            const std::string& key = queued_.front();
            const auto it = index_.find(key);
            if (it != index_.end()) {
                std::string encoded;
                append_record(encoded, key,
                              std::string(it->second.data, it->second.size));
                append_to_shard(shard_of(key), encoded);
                ++stats_.appended_records;
            }
            queued_.pop_front();
        }
        degraded_ = false;
        return sync();
    } catch (const io_error& e) {
        enter_degraded("retry_writes: " + std::string(e.what()));
        return false;
    }
}

void store::compact()
{
    if (degraded_) {
        throw store_error(
            "svc::store: compact refused while degraded (" +
                (degraded_log_.empty() ? std::string("no journal") : degraded_log_.back()) +
                ")",
            EROFS);
    }
    const std::uint64_t old_generation = stats_.generation;
    const std::uint64_t next = old_generation + 1;

    // Stage the new generation fully before flipping CURRENT. index_ is a
    // sorted map, so each shard's bytes are a pure function of the live
    // contents — two stores holding the same entries compact to identical
    // files.
    std::vector<std::string> buffers(opt_.shards);
    for (const auto& [key, sl] : index_) {
        append_record(buffers[shard_of(key)], key, std::string(sl.data, sl.size));
    }
    try {
        for (std::size_t s = 0; s < opt_.shards; ++s) {
            if (buffers[s].empty()) continue;
            auto out = fs().open_trunc(shard_path(next, s));
            out->write(buffers[s]);
            out->sync();
            out->close();
        }
        write_current(fs(), opt_.dir, next);
    } catch (const store_error&) {
        for (std::size_t s = 0; s < opt_.shards; ++s) fs().remove(shard_path(next, s));
        throw;
    } catch (const io_error& e) {
        for (std::size_t s = 0; s < opt_.shards; ++s) fs().remove(shard_path(next, s));
        throw store_error("svc::store: compaction staging for generation " +
                              std::to_string(next) + " failed: " + e.what(),
                          e.code());
    }

    // The flip is durable; the old generation is dead weight now. (A crash
    // between the flip and these deletes strands the old files — harmless,
    // remove_stale_files reaps them at the next open.)
    for (std::size_t s = 0; s < opt_.shards; ++s) {
        fs().remove(shard_path(old_generation, s));
    }
    const std::uint64_t appended = stats_.appended_records;
    const std::uint64_t recalls = stats_.recalls;
    const std::uint64_t compactions = stats_.compactions + 1;
    const std::uint64_t fsyncs = stats_.fsyncs;
    const std::uint64_t sync_failures = stats_.sync_failures;
    const std::uint64_t queued_promotions = stats_.queued_promotions;
    const std::uint64_t degraded_entries = stats_.degraded_entries;
    load_generation(next);
    stats_.appended_records = appended;
    stats_.recalls = recalls;
    stats_.compactions = compactions;
    stats_.fsyncs = fsyncs;
    stats_.sync_failures = sync_failures;
    stats_.queued_promotions = queued_promotions;
    stats_.degraded_entries = degraded_entries;
}

}  // namespace jsk::svc
