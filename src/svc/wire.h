// jsk::svc — the streaming job-intake wire format.
//
// The service talks to clients over any byte stream — a pipe, a local
// socket, a file of pre-recorded frames, or an in-memory buffer in tests —
// through one length-prefixed frame format:
//
//   frame := u8 type | u32 payload_len (LE) | payload bytes
//
// Client -> service frames:
//   hello     payload = u32-prefixed tenant id (optional; default tenant
//             otherwise; must precede any job)
//   job       payload = u64 client_job_id | canonical witness key
//             (par::serialize: seed, plan, decisions, defense, program)
//   end_wave  payload empty — close the current wave: the service runs the
//             buffered jobs and streams the wave's frames back
//
// Service -> client frames:
//   result    payload = u64 client_job_id | serialized job_result — one per
//             accepted job, emitted in *canonical job order* (sorted by
//             witness-key bytes), never arrival order: the concatenation of
//             result frames is a pure function of the wave's job set
//   wave_done payload = the wave's merged matrix JSON (same canonical
//             order), closing the wave
//   error     payload = u64 client_job_id (0 when not job-specific) |
//             u32-prefixed message — a rejected job or malformed frame; the
//             stream stays usable
//
// Determinism contract: because responses are canonically ordered and each
// job's outcome is a pure function of its witness key, streaming the same
// job set in any arrival order yields byte-identical result streams and
// merged JSON — the property tests/svc/test_service.cpp pins.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>

#include "par/cache.h"
#include "svc/record.h"

namespace jsk::svc {

// --- byte streams -----------------------------------------------------------

class byte_source {
public:
    virtual ~byte_source() = default;
    /// Up to `n` bytes into `buf`; 0 means end of stream.
    virtual std::size_t read(char* buf, std::size_t n) = 0;
};

class byte_sink {
public:
    virtual ~byte_sink() = default;
    virtual void write(const char* data, std::size_t n) = 0;
    virtual void flush() {}
};

/// Single-threaded in-memory pipe: what tests (and the in-process client)
/// connect the service's source/sink to.
class mem_pipe final : public byte_source, public byte_sink {
public:
    std::size_t read(char* buf, std::size_t n) override
    {
        std::size_t got = 0;
        while (got < n && !buf_.empty()) {
            buf[got++] = buf_.front();
            buf_.pop_front();
        }
        return got;
    }

    void write(const char* data, std::size_t n) override
    {
        buf_.insert(buf_.end(), data, data + n);
    }

    [[nodiscard]] std::size_t size() const { return buf_.size(); }
    [[nodiscard]] bool empty() const { return buf_.empty(); }

private:
    std::deque<char> buf_;
};

/// Non-owning wrappers over C stdio streams (stdin/stdout in the CLI's
/// serve mode, or any fdopen'd pipe/socket).
class file_source final : public byte_source {
public:
    explicit file_source(std::FILE* f) : f_(f) {}
    std::size_t read(char* buf, std::size_t n) override
    {
        return std::fread(buf, 1, n, f_);
    }

private:
    std::FILE* f_;
};

class file_sink final : public byte_sink {
public:
    explicit file_sink(std::FILE* f) : f_(f) {}
    void write(const char* data, std::size_t n) override
    {
        if (std::fwrite(data, 1, n, f_) != n) {
            throw std::runtime_error("svc::wire: short write");
        }
    }
    void flush() override { std::fflush(f_); }

private:
    std::FILE* f_;
};

// --- frames -----------------------------------------------------------------

enum class frame_type : std::uint8_t {
    hello = 1,
    job = 2,
    end_wave = 3,
    result = 4,
    wave_done = 5,
    error = 6,
};

struct frame {
    frame_type type = frame_type::error;
    std::string payload;
};

/// Torn or malformed framing (as opposed to clean EOF).
class wire_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Frames larger than this are rejected as malformed rather than allocated
/// — a corrupt length prefix must not look like a 4 GiB message.
inline constexpr std::uint32_t max_frame_payload = 64u << 20;

void write_frame(byte_sink& sink, frame_type type, const std::string& payload);

/// Read one frame. Returns false on clean end-of-stream (EOF at a frame
/// boundary); throws wire_error on EOF mid-frame, an unknown type byte, or
/// an oversized payload.
bool read_frame(byte_source& source, frame& out);

// --- typed payloads ---------------------------------------------------------

struct wire_job {
    std::uint64_t client_id = 0;
    par::witness_key key;
};

struct wire_result {
    std::uint64_t client_id = 0;
    job_result result;
};

struct wire_reject {
    std::uint64_t client_id = 0;  // 0 when not job-specific
    std::string message;
};

std::string encode_hello(const std::string& tenant);
std::optional<std::string> decode_hello(const std::string& payload);

std::string encode_job(const wire_job& j);
std::optional<wire_job> decode_job(const std::string& payload);

std::string encode_result(const wire_result& r);
std::optional<wire_result> decode_result(const std::string& payload);

std::string encode_reject(const wire_reject& e);
std::optional<wire_reject> decode_reject(const std::string& payload);

}  // namespace jsk::svc
