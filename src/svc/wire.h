// jsk::svc — the streaming job-intake wire format.
//
// The service talks to clients over any byte stream — a pipe, a local
// socket, a file of pre-recorded frames, or an in-memory buffer in tests —
// through one length-prefixed frame format:
//
//   frame := u8 type | u32 payload_len (LE) | payload bytes
//
// Client -> service frames:
//   hello     payload = u32-prefixed tenant id, optionally followed by one
//             resumable-capability byte (0/1; absent = 0, the legacy
//             encoding). Must precede any job.
//   job       payload = u64 client_job_id | canonical witness key
//             (par::serialize: seed, plan, decisions, defense, program)
//   end_wave  payload empty — close the current wave: the service runs the
//             buffered jobs and streams the wave's frames back
//   resume    payload = u32-prefixed tenant | u64 epoch | u64 last_seq —
//             re-attach after a torn connection: replay every pending wave
//             frame with seq > last_seq, from the store epoch the client
//             last saw. A mismatched epoch or no pending wave is answered
//             with an error frame; the client then resubmits from scratch.
//
// Service -> client frames (every payload leads with a u64 sequence
// number; seq starts at 1 per connection and increments per data frame, so
// a reconnecting client can name exactly how far it got):
//   session   payload = u64 epoch | u64 resume_from (no seq — session
//             frames describe the connection rather than belonging to the
//             replayable data stream): the store incarnation serving this
//             connection, and the first data seq the service is about to
//             send. Sent once after a resumable hello or a resume; epoch
//             changes whenever the store reopens, which is what makes
//             stale resumes detectable.
//   result    payload = u64 seq | u64 client_job_id | serialized
//             job_result — one per accepted job, emitted in *canonical job
//             order* (sorted by witness-key bytes), never arrival order:
//             the concatenation of result frames is a pure function of the
//             wave's job set
//   wave_done payload = u64 seq | the wave's merged matrix JSON (same
//             canonical order), closing the wave
//   error     payload = u64 seq | u64 client_job_id (0 when not
//             job-specific) | u32-prefixed message — a rejected job or
//             malformed frame; the stream stays usable
//
// Determinism contract: because responses are canonically ordered, each
// job's outcome is a pure function of its witness key, and seq numbering
// restarts at 1 for every wave conversation, streaming the same job set in
// any arrival order yields byte-identical result streams and merged JSON —
// the property tests/svc/test_service.cpp pins. session frames are the one
// exception (epochs name process incarnations), which is why they carry no
// seq and sit outside the replayable data stream.
//
// Durability contract: the service emits a wave's frames only after the
// wave's new outcomes are fsync'd (store::sync) and its intent record
// committed — a result frame IS the acknowledgement, and an acknowledged
// result survives any crash.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>

#include "par/cache.h"
#include "svc/record.h"

namespace jsk::svc {

/// Torn or malformed framing (as opposed to clean EOF).
class wire_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// The outbound side of a torn connection: the sink could not take or
/// drain bytes. Distinct from plain wire_error so serve() can tell "client
/// sent garbage" (stream stays usable) from "client is gone" (stop
/// writing).
class wire_sink_error : public wire_error {
public:
    using wire_error::wire_error;
};

// --- byte streams -----------------------------------------------------------

class byte_source {
public:
    virtual ~byte_source() = default;
    /// Up to `n` bytes into `buf`; 0 means end of stream.
    virtual std::size_t read(char* buf, std::size_t n) = 0;
};

class byte_sink {
public:
    virtual ~byte_sink() = default;
    virtual void write(const char* data, std::size_t n) = 0;
    virtual void flush() {}
};

/// Single-threaded in-memory pipe: what tests (and the in-process client)
/// connect the service's source/sink to.
class mem_pipe final : public byte_source, public byte_sink {
public:
    std::size_t read(char* buf, std::size_t n) override
    {
        std::size_t got = 0;
        while (got < n && !buf_.empty()) {
            buf[got++] = buf_.front();
            buf_.pop_front();
        }
        return got;
    }

    void write(const char* data, std::size_t n) override
    {
        buf_.insert(buf_.end(), data, data + n);
    }

    [[nodiscard]] std::size_t size() const { return buf_.size(); }
    [[nodiscard]] bool empty() const { return buf_.empty(); }

private:
    std::deque<char> buf_;
};

/// byte_source over a borrowed string — a captured response, possibly a
/// torn prefix of what the peer intended to send.
class string_source final : public byte_source {
public:
    explicit string_source(const std::string& s) : data_(&s) {}
    std::size_t read(char* buf, std::size_t n) override
    {
        const std::size_t take = std::min(n, data_->size() - pos_);
        for (std::size_t i = 0; i < take; ++i) buf[i] = (*data_)[pos_ + i];
        pos_ += take;
        return take;
    }

private:
    const std::string* data_;
    std::size_t pos_ = 0;
};

/// Non-owning wrappers over C stdio streams (stdin/stdout in the CLI's
/// serve mode, or any fdopen'd pipe/socket).
class file_source final : public byte_source {
public:
    explicit file_source(std::FILE* f) : f_(f) {}
    std::size_t read(char* buf, std::size_t n) override
    {
        return std::fread(buf, 1, n, f_);
    }

private:
    std::FILE* f_;
};

class file_sink final : public byte_sink {
public:
    explicit file_sink(std::FILE* f) : f_(f) {}
    void write(const char* data, std::size_t n) override
    {
        if (std::fwrite(data, 1, n, f_) != n || std::ferror(f_) != 0) {
            throw wire_sink_error("svc::wire: torn sink (short write)");
        }
    }
    /// A sink that cannot drain is a torn connection, not a shrug: an
    /// unchecked fflush here would let the service believe it acknowledged
    /// frames the client never received.
    void flush() override
    {
        if (std::fflush(f_) != 0 || std::ferror(f_) != 0) {
            throw wire_sink_error("svc::wire: torn sink (flush failed)");
        }
    }

private:
    std::FILE* f_;
};

// --- frames -----------------------------------------------------------------

enum class frame_type : std::uint8_t {
    hello = 1,
    job = 2,
    end_wave = 3,
    result = 4,
    wave_done = 5,
    error = 6,
    resume = 7,
    session = 8,
};

struct frame {
    frame_type type = frame_type::error;
    std::string payload;
};

/// Frames larger than this are rejected as malformed rather than allocated
/// — a corrupt length prefix must not look like a 4 GiB message.
inline constexpr std::uint32_t max_frame_payload = 64u << 20;

void write_frame(byte_sink& sink, frame_type type, const std::string& payload);

/// Read one frame. Returns false on clean end-of-stream (EOF at a frame
/// boundary); throws wire_error on EOF mid-frame, an unknown type byte, or
/// an oversized payload.
bool read_frame(byte_source& source, frame& out);

// --- typed payloads ---------------------------------------------------------

struct wire_hello {
    std::string tenant;
    bool resumable = false;  // client understands session/seq replay
};

struct wire_job {
    std::uint64_t client_id = 0;
    par::witness_key key;
};

struct wire_result {
    std::uint64_t seq = 0;
    std::uint64_t client_id = 0;
    job_result result;
};

struct wire_reject {
    std::uint64_t seq = 0;
    std::uint64_t client_id = 0;  // 0 when not job-specific
    std::string message;
};

struct wire_wave_done {
    std::uint64_t seq = 0;
    std::string merged_json;
};

struct wire_resume {
    std::string tenant;
    std::uint64_t epoch = 0;
    std::uint64_t last_seq = 0;  // highest data seq received; 0 = none
};

struct wire_session {
    std::uint64_t epoch = 0;
    std::uint64_t resume_from = 0;  // first data seq the service will send
};

std::string encode_hello(const std::string& tenant, bool resumable = false);
std::optional<wire_hello> decode_hello(const std::string& payload);

std::string encode_job(const wire_job& j);
std::optional<wire_job> decode_job(const std::string& payload);

std::string encode_result(const wire_result& r);
std::optional<wire_result> decode_result(const std::string& payload);

std::string encode_reject(const wire_reject& e);
std::optional<wire_reject> decode_reject(const std::string& payload);

std::string encode_wave_done(const wire_wave_done& w);
std::optional<wire_wave_done> decode_wave_done(const std::string& payload);

std::string encode_resume(const wire_resume& r);
std::optional<wire_resume> decode_resume(const std::string& payload);

std::string encode_session(const wire_session& s);
std::optional<wire_session> decode_session(const std::string& payload);

}  // namespace jsk::svc
