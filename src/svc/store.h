// jsk::svc — the disk-persistent witness-keyed result store.
//
// A store is a directory of append-only shard files holding canonical
// records (svc/record.h), plus a CURRENT file naming the live generation:
//
//   CURRENT                     "G\n" — the generation whose files are live
//   gen-G-shard-S.jsk           records whose fnv1a(key) % shards == S
//
// Writes append one CRC-framed record and flush; reads are served from an
// index built at open over mmap-backed file contents, so a warm process
// recalls millions of cached outcomes at memory speed without heap-copying
// the shard files. Crash safety is structural: on open, each shard is
// scanned front to back and the file is truncated to its last valid record
// — a torn tail (power cut mid-append) or a bit-flipped record costs the
// corrupted suffix, never the store (the surviving prefix is a correct
// partial cache, because records are self-contained and keys content-
// addressed).
//
// Durability is layered: each put() flushes its record to the OS (a crash
// loses at most the in-flight record), and sync() batch-fsyncs every shard
// touched since the last sync — the service calls it once per wave, before
// acknowledging results, so an acknowledged outcome is on the platter, not
// in a page cache. CURRENT flips are write-tmp → fsync → rename → fsync
// the directory; a crash anywhere in the sequence leaves the old
// generation live and complete.
//
// All file operations route through a svc::vfs (fault-injectable; the
// default is a passthrough costing one branch per op). Persistent write
// failures — a full disk, a dying device — do NOT throw mid-wave: the
// store enters a journaled read-only degraded mode, keeps serving from the
// mmap index and the in-memory session values, queues the promotions it
// could not persist, and lets retry_writes() re-attempt them once the
// disk recovers. faults::crash_error (the injected process kill) is never
// caught anywhere on this path.
//
// Eviction is epoch-based: erase()/evict_if() drop entries from the live
// index, and compact() rewrites exactly the live entries — in canonical
// key order, so compacted shard bytes are a pure function of the contents
// — into generation G+1, flips CURRENT, and deletes the old files. A crash
// anywhere before the CURRENT flip leaves generation G intact.
//
// The store is single-threaded by design (the service serializes store
// access around its parallel waves); `put` is first-insert-wins, matching
// the in-memory cache: every writer of a key computed the same bytes.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "svc/vfs.h"

namespace jsk::svc {

/// A store-level structural failure (generation flip, compaction staging),
/// with errno context inherited from the underlying io_error.
class store_error : public io_error {
public:
    using io_error::io_error;
};

struct store_options {
    std::string dir;          // created if missing
    std::size_t shards = 8;   // files per generation
    /// File operations seam; nullptr = the shared passthrough default_vfs().
    /// Not owned; must outlive the store.
    vfs* fs = nullptr;
    /// sync() fsyncs dirty shards (true) or stops at the OS flush already
    /// performed per put (false — the bench's durability A/B knob).
    bool fsync = true;
};

struct store_stats {
    std::uint64_t generation = 0;
    std::uint64_t entries = 0;           // live (indexed) records
    std::uint64_t bytes = 0;             // key+value payload bytes of live records
    std::uint64_t loaded_records = 0;    // valid records recalled at open
    std::uint64_t appended_records = 0;  // put()s that hit disk this session
    std::uint64_t dropped_records = 0;   // bad-CRC records hit at open
    std::uint64_t truncated_bytes = 0;   // corrupt/torn suffix bytes cut at open
    std::uint64_t recalls = 0;           // get() hits
    std::uint64_t compactions = 0;
    std::uint64_t fsyncs = 0;            // shard fsyncs issued by sync()
    std::uint64_t sync_failures = 0;     // sync() calls that hit an I/O error
    std::uint64_t queued_promotions = 0; // puts queued while degraded
    std::uint64_t degraded_entries = 0;  // times the store entered degraded mode
};

class store {
public:
    /// Open (creating the directory and CURRENT on first use) and build the
    /// index. Throws store_error/io_error on structural I/O failure — but
    /// never on corrupt record *contents*, which are truncated away instead.
    explicit store(store_options opt);
    ~store();

    store(const store&) = delete;
    store& operator=(const store&) = delete;

    /// The stored value, or nullopt. The view is valid until compact() or
    /// destruction (it aliases the mmap or the session append log).
    std::optional<std::string_view> get(const std::string& key);

    [[nodiscard]] bool contains(const std::string& key) const;

    /// Append (key, value) if the key is not live. Returns whether the key
    /// entered the live index; a duplicate put is a no-op (first-insert-
    /// wins). Never throws for I/O: a persistent write failure flips the
    /// store into degraded mode and queues the record for retry_writes().
    bool put(const std::string& key, const std::string& value);

    /// Batch-fsync every shard touched since the last sync(); the service's
    /// ack barrier. Returns false (and enters degraded mode) on persistent
    /// failure instead of throwing mid-wave. A no-op when opt.fsync is off
    /// or nothing is dirty.
    bool sync();

    // --- degraded mode ------------------------------------------------------

    /// True once a persistent write failure put the store in read-only
    /// degraded mode: gets are served (mmap + session memory), puts queue.
    [[nodiscard]] bool degraded() const { return degraded_; }

    /// The journal of degradation events (reason strings, in order).
    [[nodiscard]] const std::vector<std::string>& degraded_log() const
    {
        return degraded_log_;
    }

    /// Try to leave degraded mode: truncate each damaged shard back to its
    /// last known-good byte, re-append every queued record, and sync.
    /// Returns true when the queue drained and the store is clean again.
    bool retry_writes();

    /// Drop a key from the live index. In-memory until the next compact()
    /// persists the eviction — a reopen without compacting resurrects it
    /// (the record is still on disk, and it is still a true outcome).
    void erase(const std::string& key);

    /// erase() every live key `pred` selects. Returns how many.
    template <typename Pred>
    std::size_t evict_if(Pred&& pred)
    {
        std::vector<std::string> doomed;
        for (const auto& [key, slot] : index_) {
            if (pred(key)) doomed.push_back(key);
        }
        for (const auto& key : doomed) erase(key);
        return doomed.size();
    }

    /// Rewrite the live entries into generation+1 (canonical key order,
    /// deterministic bytes), flip CURRENT, fsync the directory, delete the
    /// old generation's files, and re-open on the new one. Throws
    /// store_error (errno context, staged files cleaned up) on failure;
    /// refuses outright while degraded.
    void compact();

    /// Visit every live (key, value) in canonical key order.
    template <typename Fn>
    void for_each(Fn&& fn) const
    {
        for (const auto& [key, slot] : index_) {
            fn(key, std::string_view(slot.data, slot.size));
        }
    }

    [[nodiscard]] const store_stats& stats() const { return stats_; }
    [[nodiscard]] std::size_t shard_count() const { return opt_.shards; }
    [[nodiscard]] const std::string& dir() const { return opt_.dir; }

    /// Shard index a key maps to: stable fnv1a over the key bytes.
    [[nodiscard]] std::size_t shard_of(const std::string& key) const;

private:
    struct slot {
        const char* data = nullptr;
        std::uint32_t size = 0;
    };

    /// One shard file's read-only contents, mmap-backed where the platform
    /// allows (heap-read fallback elsewhere); empty files map to nothing.
    class mapping;

    void load_generation(std::uint64_t generation);
    void scan_shard(std::size_t shard_index);
    /// Append + flush one encoded record; throws io_error on failure.
    void append_to_shard(std::size_t shard_index, const std::string& encoded);
    void enter_degraded(const std::string& reason);
    void remove_stale_files(std::uint64_t live_generation);
    [[nodiscard]] std::string shard_path(std::uint64_t generation,
                                         std::size_t shard_index) const;
    [[nodiscard]] vfs& fs() const { return *fs_; }

    store_options opt_;
    vfs* fs_ = nullptr;
    store_stats stats_;
    std::map<std::string, slot> index_;         // canonical key order
    std::vector<std::unique_ptr<mapping>> maps_;  // one per shard (may be null)
    std::deque<std::string> session_values_;    // values put() this session
    std::vector<std::unique_ptr<vfs::file>> appenders_;  // lazily-opened streams
    std::vector<std::uint64_t> good_size_;      // known-good content bytes per shard
    std::vector<bool> dirty_;                   // shards appended since last sync()
    std::vector<bool> torn_;                    // shards whose tail may be partial
    bool degraded_ = false;
    std::vector<std::string> degraded_log_;
    std::deque<std::string> queued_;            // keys whose records await retry
};

}  // namespace jsk::svc
