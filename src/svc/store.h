// jsk::svc — the disk-persistent witness-keyed result store.
//
// A store is a directory of append-only shard files holding canonical
// records (svc/record.h), plus a CURRENT file naming the live generation:
//
//   CURRENT                     "G\n" — the generation whose files are live
//   gen-G-shard-S.jsk           records whose fnv1a(key) % shards == S
//
// Writes append one CRC-framed record and flush; reads are served from an
// index built at open over mmap-backed file contents, so a warm process
// recalls millions of cached outcomes at memory speed without heap-copying
// the shard files. Crash safety is structural: on open, each shard is
// scanned front to back and the file is truncated to its last valid record
// — a torn tail (power cut mid-append) or a bit-flipped record costs the
// corrupted suffix, never the store (the surviving prefix is a correct
// partial cache, because records are self-contained and keys content-
// addressed).
//
// Eviction is epoch-based: erase()/evict_if() drop entries from the live
// index, and compact() rewrites exactly the live entries — in canonical
// key order, so compacted shard bytes are a pure function of the contents
// — into generation G+1, flips CURRENT, and deletes the old files. A crash
// anywhere before the CURRENT flip leaves generation G intact.
//
// The store is single-threaded by design (the service serializes store
// access around its parallel waves); `put` is first-insert-wins, matching
// the in-memory cache: every writer of a key computed the same bytes.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace jsk::svc {

struct store_options {
    std::string dir;          // created if missing
    std::size_t shards = 8;   // files per generation
};

struct store_stats {
    std::uint64_t generation = 0;
    std::uint64_t entries = 0;           // live (indexed) records
    std::uint64_t bytes = 0;             // key+value payload bytes of live records
    std::uint64_t loaded_records = 0;    // valid records recalled at open
    std::uint64_t appended_records = 0;  // put()s that hit disk this session
    std::uint64_t dropped_records = 0;   // bad-CRC records hit at open
    std::uint64_t truncated_bytes = 0;   // corrupt/torn suffix bytes cut at open
    std::uint64_t recalls = 0;           // get() hits
    std::uint64_t compactions = 0;
};

class store {
public:
    /// Open (creating the directory and CURRENT on first use) and build the
    /// index. Throws std::runtime_error on I/O failure — but never on
    /// corrupt record *contents*, which are truncated away instead.
    explicit store(store_options opt);
    ~store();

    store(const store&) = delete;
    store& operator=(const store&) = delete;

    /// The stored value, or nullopt. The view is valid until compact() or
    /// destruction (it aliases the mmap or the session append log).
    std::optional<std::string_view> get(const std::string& key);

    [[nodiscard]] bool contains(const std::string& key) const;

    /// Append (key, value) if the key is not live. Returns whether a record
    /// was written; a duplicate put is a no-op (first-insert-wins).
    bool put(const std::string& key, const std::string& value);

    /// Drop a key from the live index. In-memory until the next compact()
    /// persists the eviction — a reopen without compacting resurrects it
    /// (the record is still on disk, and it is still a true outcome).
    void erase(const std::string& key);

    /// erase() every live key `pred` selects. Returns how many.
    template <typename Pred>
    std::size_t evict_if(Pred&& pred)
    {
        std::vector<std::string> doomed;
        for (const auto& [key, slot] : index_) {
            if (pred(key)) doomed.push_back(key);
        }
        for (const auto& key : doomed) erase(key);
        return doomed.size();
    }

    /// Rewrite the live entries into generation+1 (canonical key order,
    /// deterministic bytes), flip CURRENT, delete the old generation's
    /// files, and re-open on the new one.
    void compact();

    /// Visit every live (key, value) in canonical key order.
    template <typename Fn>
    void for_each(Fn&& fn) const
    {
        for (const auto& [key, slot] : index_) {
            fn(key, std::string_view(slot.data, slot.size));
        }
    }

    [[nodiscard]] const store_stats& stats() const { return stats_; }
    [[nodiscard]] std::size_t shard_count() const { return opt_.shards; }
    [[nodiscard]] const std::string& dir() const { return opt_.dir; }

    /// Shard index a key maps to: stable fnv1a over the key bytes.
    [[nodiscard]] std::size_t shard_of(const std::string& key) const;

private:
    struct slot {
        const char* data = nullptr;
        std::uint32_t size = 0;
    };

    /// One shard file's read-only contents, mmap-backed where the platform
    /// allows (heap-read fallback elsewhere); empty files map to nothing.
    class mapping;

    void load_generation(std::uint64_t generation);
    void scan_shard(std::size_t shard_index);
    void append_to_shard(std::size_t shard_index, const std::string& encoded);
    [[nodiscard]] std::string shard_path(std::uint64_t generation,
                                         std::size_t shard_index) const;

    store_options opt_;
    store_stats stats_;
    std::map<std::string, slot> index_;         // canonical key order
    std::vector<std::unique_ptr<mapping>> maps_;  // one per shard (may be null)
    std::deque<std::string> session_values_;    // values put() this session
    std::vector<std::FILE*> appenders_;         // lazily-opened append streams
};

}  // namespace jsk::svc
