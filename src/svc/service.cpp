#include "svc/service.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "attacks/explore_sweep.h"
#include "core/arena.h"
#include "core/world.h"
#include "defenses/defense.h"
#include "faults/plan.h"
#include "kernel/json.h"
#include "par/sweep.h"
#include "sim/explore.h"
#include "wm/model.h"

namespace jsk::svc {

namespace {

constexpr const char* k_random_prefix = "program:";

bool is_random_program(const std::string& program)
{
    return program.rfind(k_random_prefix, 0) == 0;
}

std::optional<std::uint64_t> random_program_seed(const std::string& program)
{
    const std::string digits = program.substr(std::string(k_random_prefix).size());
    if (digits.empty()) return std::nullopt;
    for (const char c : digits) {
        if (c < '0' || c > '9') return std::nullopt;
    }
    return std::strtoull(digits.c_str(), nullptr, 10);
}

std::optional<defenses::defense_id> defense_from_name(const std::string& name)
{
    for (const defenses::defense_id id : defenses::all_defense_ids()) {
        if (defenses::to_string(id) == name) return id;
    }
    return std::nullopt;
}

/// Chaos jobs (fault plan active, or a random program) replay by
/// (seed, plan); explore jobs replay by (seed, decisions, defense).
bool is_chaos_job(const par::witness_key& key)
{
    return !key.plan.empty() || is_random_program(key.program);
}

}  // namespace

/// Thread-confined per-worker state: sealed world snapshots (rebuilt at
/// most once per (worker, recipe)) and fork telemetry. Dropped wholesale on
/// resize() — the new threads must not restore worlds another thread built.
struct service::worker_state {
    core::snapshot_cache snaps;
    core::fork_stats stats;
};

service::service(service_options opt) : opt_(std::move(opt))
{
    if (opt_.jobs == 0) opt_.jobs = par::default_jobs();
    if (!opt_.store_dir.empty()) {
        store_options sopt;
        sopt.dir = opt_.store_dir;
        sopt.shards = opt_.store_shards;
        sopt.fs = opt_.fs;
        sopt.fsync = opt_.fsync;
        store_ = std::make_unique<store>(std::move(sopt));
        intent_ = std::make_unique<intent_log>(
            (std::filesystem::path(opt_.store_dir) / "INTENT").string(), opt_.fs);
    }
    pool_ = std::make_unique<par::worker_pool>(opt_.jobs);
    workers_ = std::make_unique<par::worker_local<worker_state>>(pool_->workers());
    known_programs_ = attacks::cve_ids();
}

service::~service() = default;

service::session& service::connect(const std::string& tenant_id)
{
    auto& slot = sessions_[tenant_id];
    if (!slot) slot = std::unique_ptr<session>(new session(*this, tenant_id));
    return *slot;
}

void service::resize(std::size_t jobs)
{
    pool_->resize(jobs);
    workers_ = std::make_unique<par::worker_local<worker_state>>(pool_->workers());
}

std::size_t service::jobs() const
{
    return pool_->workers();
}

std::optional<std::string> service::validate(const par::witness_key& key) const
{
    // A "+relaxed" suffix selects the weak SAB memory model for the job; the
    // stem is validated exactly like an untagged program id.
    const auto [program, model] = wm::split_program_tag(key.program);
    (void)model;
    if (is_random_program(program)) {
        if (!random_program_seed(program)) {
            return "malformed random-program id '" + key.program +
                   "' (want program:<seed>)";
        }
    } else if (std::find(known_programs_.begin(), known_programs_.end(), program) ==
               known_programs_.end()) {
        return "unknown program '" + key.program + "'";
    }
    if (!key.plan.empty()) {
        try {
            (void)faults::plan::parse(key.plan);
        } catch (const std::exception& e) {
            return std::string("malformed plan: ") + e.what();
        }
    }
    if (is_chaos_job(key)) {
        if (!key.decisions.empty()) {
            return "chaos jobs replay by (seed, plan); decisions must be empty";
        }
        if (key.defense != "plain" && key.defense != "jskernel") {
            return "chaos jobs support defenses plain|jskernel, not '" + key.defense +
                   "'";
        }
    } else {
        if (key.defense != "plain" && !defense_from_name(key.defense)) {
            return "unknown defense '" + key.defense + "'";
        }
        if (!sim::explore::schedule::parse(key.decisions)) {
            return "malformed decisions string";
        }
    }
    return std::nullopt;
}

void service::session::submit(job j)
{
    if (const auto why = svc_->validate(j.key)) throw std::invalid_argument(*why);
    pending_.push_back(std::move(j));
}

wave_result service::session::flush()
{
    return svc_->run_wave(*this);
}

job_result service::execute(const par::witness_key& key, std::size_t worker_id)
{
    const bool use_snapshots = opt_.snapshots && core::arena::supported();
    worker_state& ws = workers_->get(worker_id);
    const auto [program, model] = wm::split_program_tag(key.program);
    job_result r;
    if (is_chaos_job(key)) {
        const faults::plan p =
            key.plan.empty() ? faults::plan{} : faults::plan::parse(key.plan);
        const bool with_kernel = key.defense == "jskernel";
        attacks::chaos_options copt = opt_.chaos;
        copt.model = model;
        attacks::chaos_trial_result trial;
        if (is_random_program(program)) {
            const std::uint64_t program_seed = *random_program_seed(program);
            if (use_snapshots) {
                core::world_snapshot& snap = ws.snaps.get(
                    attacks::chaos_world_recipe(with_kernel, key.seed, copt),
                    &ws.stats);
                trial = attacks::run_chaos_program_forked(snap, program_seed, p,
                                                          copt, &ws.stats);
            } else {
                trial = attacks::run_chaos_program(program_seed, with_kernel, p,
                                                   key.seed, copt);
            }
        } else {
            if (use_snapshots) {
                core::world_snapshot& snap = ws.snaps.get(
                    attacks::chaos_world_recipe(with_kernel, key.seed, copt),
                    &ws.stats);
                trial = attacks::run_chaos_trial_forked(snap, program, p,
                                                        copt, &ws.stats);
            } else {
                trial = attacks::run_chaos_trial(program, with_kernel, p, key.seed,
                                                 copt);
            }
        }
        r.triggered = trial.triggered;
        r.hit_task_cap = trial.hit_task_cap;
        r.tasks_executed = trial.tasks_executed;
        r.faults_injected = trial.faults_injected;
        r.journal_digest = par::fnv1a(trial.journal_json);
        r.trace_digest = par::fnv1a(trial.trace_json);
    } else {
        attacks::cve_trial_spec spec;
        spec.cve = program;
        spec.model = model;
        spec.browser_seed = key.seed;
        if (key.defense != "plain") spec.defense = defense_from_name(key.defense);
        attacks::cve_walk_spec walk;
        walk.prefix = *sim::explore::schedule::parse(key.decisions);
        attacks::cve_trial_outcome out;
        if (use_snapshots) {
            core::world_snapshot& snap =
                ws.snaps.get(attacks::cve_world_recipe(spec), &ws.stats);
            out = attacks::run_cve_trial_forked(snap, spec, walk, &ws.stats);
        } else {
            out = attacks::run_cve_trial_fresh(spec, walk);
        }
        r.triggered = out.triggered;
        r.decisions = out.decisions;
    }
    return r;
}

wave_result service::run_wave(session& sess)
{
    const auto t0 = std::chrono::steady_clock::now();
    wave_result w;
    w.jobs = std::move(sess.pending_);
    sess.pending_.clear();
    const std::size_t n = w.jobs.size();

    // Canonical order: serialized witness bytes, ties by client id. From
    // here on, nothing downstream can see the arrival order.
    {
        std::vector<std::pair<std::string, job>> tagged;
        tagged.reserve(n);
        for (job& j : w.jobs) tagged.emplace_back(par::serialize(j.key), std::move(j));
        std::sort(tagged.begin(), tagged.end(), [](const auto& a, const auto& b) {
            if (a.first != b.first) return a.first < b.first;
            return a.second.client_id < b.second.client_id;
        });
        w.jobs.clear();
        for (auto& [bytes, j] : tagged) w.jobs.push_back(std::move(j));
    }

    // Phase A (serial): resolve against the in-memory cache, then the
    // store. Disk hits are promoted into the memory cache, so a duplicate
    // later in the wave resolves as a memory hit. What remains is the map
    // of genuinely new witnesses -> the job slots waiting on each.
    std::vector<std::shared_ptr<const job_result>> resolved(n);
    std::map<std::string, std::vector<std::size_t>> need;  // canonical order
    for (std::size_t i = 0; i < n; ++i) {
        if (const auto hit = cache_.lookup(w.jobs[i].key)) {
            resolved[i] = hit;
            ++w.hits_mem;
            continue;
        }
        std::string kb = par::serialize(w.jobs[i].key);
        const auto pending = need.find(kb);
        if (pending == need.end() && store_ != nullptr) {
            if (const auto raw = store_->get(kb)) {
                if (auto parsed = parse_result(std::string(*raw))) {
                    resolved[i] =
                        cache_.insert(w.jobs[i].key, std::move(*parsed), raw->size());
                    ++w.hits_disk;
                    continue;
                }
                // Unparsable payload (version skew): fall through and
                // re-simulate; the store keeps first-insert-wins, so the
                // stale record stays until a compaction evicts it.
            }
        }
        if (pending != need.end()) {
            pending->second.push_back(i);
        } else {
            need.emplace(std::move(kb), std::vector<std::size_t>{i});
        }
    }

    // Phase B (parallel): simulate the unique misses on the pool. The job
    // list is canonically ordered (need is a sorted map), each trial is a
    // pure function of its witness, and results land in per-job slots —
    // the same contract every jsk::par sweep runs under.
    if (!need.empty()) {
        std::vector<const par::witness_key*> to_run;
        std::vector<const std::vector<std::size_t>*> fills;
        std::vector<const std::string*> key_bytes;
        to_run.reserve(need.size());
        for (const auto& [kb, indices] : need) {
            key_bytes.push_back(&kb);
            to_run.push_back(&w.jobs[indices.front()].key);
            fills.push_back(&indices);
        }
        auto outcomes = par::sweep_on<job_result>(
            *pool_, to_run.size(),
            [&](std::size_t i, const par::worker_context& ctx) {
                return execute(*to_run[i], ctx.worker_id);
            });

        // Phase C (serial): publish to the memory cache and spill to disk.
        for (std::size_t i = 0; i < to_run.size(); ++i) {
            const std::string value_bytes = serialize(outcomes[i]);
            const auto resident =
                cache_.insert(*to_run[i], std::move(outcomes[i]), value_bytes.size());
            if (store_ != nullptr) store_->put(*key_bytes[i], value_bytes);
            for (const std::size_t slot : *fills[i]) resolved[slot] = resident;
        }
        w.trials = need.size();
    }

    w.results.reserve(n);
    std::uint64_t bytes_served = 0;
    for (std::size_t i = 0; i < n; ++i) {
        w.results.push_back(*resolved[i]);
        bytes_served += 16 + serialize(w.results.back()).size();  // result frame payload
    }
    w.merged_json = merged_json(w.jobs, w.results);

    obs::registry& reg = tenants_.get(sess.tenant_);
    reg.get_counter("svc.jobs").inc(n);
    reg.get_counter("svc.waves").inc();
    reg.get_counter("svc.cache_hits_mem").inc(w.hits_mem);
    reg.get_counter("svc.cache_hits_disk").inc(w.hits_disk);
    reg.get_counter("svc.trials").inc(w.trials);
    reg.get_counter("svc.bytes_served").inc(bytes_served);
    reg.get_histogram("svc.wave_jobs").record(static_cast<double>(n));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (elapsed > 0.0 && w.trials > 0) {
        reg.get_gauge("svc.trials_per_sec")
            .set(static_cast<double>(w.trials) / elapsed);
    }
    ++waves_;
    return w;
}

std::string service::merged_json(const std::vector<job>& jobs,
                                 const std::vector<job_result>& results)
{
    namespace json = kernel::json;
    json::array rows;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const par::witness_key& key = jobs[i].key;
        const job_result& r = results[i];
        json::object rec;
        rec.emplace("client_id", json::value{std::to_string(jobs[i].client_id)});
        rec.emplace("program", json::value{key.program});
        rec.emplace("seed", json::value{std::to_string(key.seed)});
        rec.emplace("plan", json::value{key.plan});
        rec.emplace("decisions", json::value{key.decisions});
        rec.emplace("defense", json::value{key.defense});
        rec.emplace("triggered", json::value{r.triggered});
        rec.emplace("hit_task_cap", json::value{r.hit_task_cap});
        rec.emplace("tasks_executed",
                    json::value{static_cast<double>(r.tasks_executed)});
        rec.emplace("faults_injected",
                    json::value{static_cast<double>(r.faults_injected)});
        rec.emplace("journal_digest", json::value{std::to_string(r.journal_digest)});
        rec.emplace("trace_digest", json::value{std::to_string(r.trace_digest)});
        rec.emplace("decisions_out", json::value{r.decisions});
        rows.push_back(json::value{std::move(rec)});
    }
    json::object root;
    root.emplace("jobs", json::value{std::move(rows)});
    return json::dump(json::value{std::move(root)});
}

std::size_t service::serve(byte_source& in, byte_sink& out,
                           const std::function<void(const wave_result&)>& on_wave)
{
    session* sess = nullptr;
    std::uint64_t next_seq = 1;  // per connection; deterministic by design
    const auto current = [&]() -> session& {
        if (sess == nullptr) sess = &connect("default");
        return *sess;
    };
    // Intake rejects are advisory and carry seq 0 — they are not journaled,
    // so they must not consume positions in the replayable data stream.
    const auto reject = [&](std::uint64_t client_id, const std::string& message) {
        write_frame(out, frame_type::error, encode_reject({0, client_id, message}));
    };
    std::size_t waves = 0;

    // Resolve + acknowledge one wave. `first_seq` numbers its first result
    // frame; frames with seq <= skip_through are suppressed (resume replay
    // of what the client already holds). The durable-commit order is the
    // contract: journal intent -> resolve -> fsync the store -> emit and
    // flush frames -> commit intent. A crash before the first emit leaves a
    // client with nothing acknowledged and a journaled (or absent) wave; a
    // crash after any emit leaves a journaled wave whose replay regenerates
    // the remaining frames byte-identically.
    const auto flush_wave = [&](std::uint64_t first_seq, std::uint64_t skip_through) {
        session& s = current();
        if (intent_ != nullptr) {
            try {
                if (intent_->pending()) intent_->commit();  // stale: superseded
                std::vector<wire_job> journal;
                journal.reserve(s.pending_.size());
                for (const job& j : s.pending_) journal.push_back({j.client_id, j.key});
                intent_->begin(s.tenant(), journal, first_seq);
            } catch (const io_error&) {
                // The journal is part of the durability story, not the
                // correctness story: with a failing disk the wave still
                // resolves and streams — it just cannot be replayed.
            }
        }
        const wave_result w = s.flush();
        if (store_ != nullptr) store_->sync();
        std::uint64_t seq = first_seq;
        for (std::size_t i = 0; i < w.jobs.size(); ++i, ++seq) {
            if (seq <= skip_through) continue;
            write_frame(out, frame_type::result,
                        encode_result({seq, w.jobs[i].client_id, w.results[i]}));
        }
        if (seq > skip_through) {
            write_frame(out, frame_type::wave_done,
                        encode_wave_done({seq, w.merged_json}));
        }
        ++seq;
        next_seq = seq;
        out.flush();
        if (intent_ != nullptr) {
            try {
                intent_->commit();
            } catch (const io_error&) {
            }
        }
        if (on_wave) on_wave(w);
        ++waves;
    };

    frame f;
    while (read_frame(in, f)) {
        switch (f.type) {
            case frame_type::hello: {
                const auto hello = decode_hello(f.payload);
                if (!hello) {
                    reject(0, "malformed hello frame");
                } else if (sess != nullptr && sess->pending() > 0) {
                    reject(0, "hello mid-wave: flush before switching tenants");
                } else {
                    sess = &connect(hello->tenant);
                    if (hello->resumable) {
                        write_frame(out, frame_type::session,
                                    encode_session({epoch(), next_seq}));
                    }
                }
                break;
            }
            case frame_type::job: {
                const auto j = decode_job(f.payload);
                if (!j) {
                    reject(0, "malformed job frame");
                    break;
                }
                try {
                    current().submit(job{j->client_id, j->key});
                } catch (const std::invalid_argument& e) {
                    reject(j->client_id, e.what());
                }
                break;
            }
            case frame_type::end_wave:
                flush_wave(next_seq, 0);
                break;
            case frame_type::resume: {
                const auto r = decode_resume(f.payload);
                if (!r) {
                    reject(0, "malformed resume frame");
                    break;
                }
                const bool match = intent_ != nullptr && intent_->pending() &&
                                   intent_->pending()->tenant == r->tenant &&
                                   intent_->pending()->epoch == r->epoch;
                if (!match) {
                    // Nothing journaled for that (tenant, epoch). If a
                    // pending wave for the same tenant survives from some
                    // other epoch the client cannot account for it either —
                    // discard it; the resubmission recomputes from cache.
                    if (intent_ != nullptr && intent_->pending() &&
                        intent_->pending()->tenant == r->tenant) {
                        try {
                            intent_->commit();
                        } catch (const io_error&) {
                        }
                    }
                    reject(0, "nothing to resume");
                    break;
                }
                const intent_log::pending_wave replay = *intent_->pending();
                sess = &connect(r->tenant);
                write_frame(out, frame_type::session,
                            encode_session({epoch(), r->last_seq + 1}));
                bool ok = true;
                for (const wire_job& wj : replay.jobs) {
                    try {
                        sess->submit(job{wj.client_id, wj.key});
                    } catch (const std::invalid_argument&) {
                        ok = false;  // journaled jobs were validated once;
                                     // skew here means an incompatible build
                    }
                }
                if (!ok) {
                    sess->pending_.clear();
                    reject(0, "nothing to resume");
                    break;
                }
                flush_wave(replay.first_seq, r->last_seq);
                break;
            }
            default:
                reject(0, "unexpected frame type from client");
                break;
        }
    }
    // A stream that ends with buffered jobs still gets its wave: piping a
    // job file into the service without a trailing end_wave serves it.
    if (sess != nullptr && sess->pending() > 0) flush_wave(next_seq, 0);
    return waves;
}

std::string service::snapshot_json() const
{
    namespace json = kernel::json;
    json::object root;
    const auto cache_stats = cache_.snapshot();
    json::object cache;
    cache.emplace("hits", json::value{static_cast<double>(cache_stats.hits)});
    cache.emplace("misses", json::value{static_cast<double>(cache_stats.misses)});
    cache.emplace("entries", json::value{static_cast<double>(cache_stats.entries)});
    cache.emplace("bytes", json::value{static_cast<double>(cache_stats.bytes)});
    root.emplace("cache", json::value{std::move(cache)});
    json::object pool;
    pool.emplace("workers", json::value{static_cast<double>(pool_->workers())});
    root.emplace("pool", json::value{std::move(pool)});
    if (store_ != nullptr) {
        const store_stats& st = store_->stats();
        json::object disk;
        disk.emplace("generation", json::value{static_cast<double>(st.generation)});
        disk.emplace("entries", json::value{static_cast<double>(st.entries)});
        disk.emplace("bytes", json::value{static_cast<double>(st.bytes)});
        disk.emplace("loaded_records",
                     json::value{static_cast<double>(st.loaded_records)});
        disk.emplace("appended_records",
                     json::value{static_cast<double>(st.appended_records)});
        disk.emplace("dropped_records",
                     json::value{static_cast<double>(st.dropped_records)});
        disk.emplace("truncated_bytes",
                     json::value{static_cast<double>(st.truncated_bytes)});
        disk.emplace("recalls", json::value{static_cast<double>(st.recalls)});
        disk.emplace("compactions", json::value{static_cast<double>(st.compactions)});
        disk.emplace("fsyncs", json::value{static_cast<double>(st.fsyncs)});
        disk.emplace("sync_failures",
                     json::value{static_cast<double>(st.sync_failures)});
        disk.emplace("queued_promotions",
                     json::value{static_cast<double>(st.queued_promotions)});
        disk.emplace("degraded", json::value{store_->degraded()});
        json::array journal;
        for (const std::string& reason : store_->degraded_log()) {
            journal.push_back(json::value{reason});
        }
        disk.emplace("degraded_log", json::value{std::move(journal)});
        root.emplace("store", json::value{std::move(disk)});
    } else {
        root.emplace("store", json::value{nullptr});
    }
    root.emplace("epoch", json::value{static_cast<double>(epoch())});
    root.emplace("metrics", tenants_.snapshot());
    root.emplace("waves", json::value{static_cast<double>(waves_)});
    return json::dump(json::value{std::move(root)});
}

}  // namespace jsk::svc
