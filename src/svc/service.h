// jsk::svc — the sweep service: long-lived, multi-tenant, cache-backed.
//
// jsk::par runs one batch and exits; `service` wraps the same machinery in
// a process that stays up: tenants connect, stream (program, plan,
// decisions, defense, seed) work units, and flush *waves* — each wave is
// canonically ordered (sorted by serialized witness key, ties by client
// id), resolved against the in-memory witness cache and then the disk
// store, and only the genuinely new work is simulated, on the shared
// jsk::par worker pool with snapshot-served worlds. Results stream back in
// canonical order with the wave's merged matrix JSON.
//
// The determinism contract survives end to end: a job's outcome is a pure
// function of its witness key (that is what makes caching sound), and the
// canonical wave order erases arrival order, worker count and cache state
// from every response byte — the same job set yields byte-identical result
// streams and merged JSON whether it arrived shuffled, sorted, duplicated
// across a warm cache, or sharded over 1 or 8 workers.
//
// Accounting is per tenant (obs::tenant_set): jobs, mem/disk cache hits,
// trials simulated, bytes served, wave counts, trials/sec — folded into a
// service-wide snapshot on demand. Workers can be added or removed between
// waves (resize()), which re-shards the pool and drops the per-worker
// snapshot caches (worlds are thread-confined; new threads rebuild their
// own).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attacks/chaos_sweep.h"
#include "obs/tenants.h"
#include "par/cache.h"
#include "par/pool.h"
#include "par/worker_local.h"
#include "svc/intent.h"
#include "svc/record.h"
#include "svc/store.h"
#include "svc/vfs.h"
#include "svc/wire.h"

namespace jsk::core {
class snapshot_cache;
}

namespace jsk::svc {

struct service_options {
    /// Persistence root; "" = in-memory only (no store).
    std::string store_dir;
    std::size_t store_shards = 8;
    /// Worker-pool size; 0 = par::default_jobs(), 1 = thread-free serial.
    std::size_t jobs = 1;
    /// Serve trials from per-worker world snapshots where the platform
    /// allows; byte-identical output either way (throughput knob only).
    bool snapshots = true;
    /// Chaos-path trial knobs (jobs whose plan is non-empty).
    attacks::chaos_options chaos;
    /// File-operation seam for the store, intent log, and every other
    /// durable byte; nullptr = the passthrough default_vfs(). Not owned.
    vfs* fs = nullptr;
    /// Forwarded to store_options::fsync: whether the per-wave ack barrier
    /// reaches the platter or stops at the OS (the bench durability knob).
    bool fsync = true;
};

/// One buffered work unit: the client's correlation id plus the witness.
struct job {
    std::uint64_t client_id = 0;
    par::witness_key key;
};

struct wave_result {
    std::vector<job> jobs;            // canonical order
    std::vector<job_result> results;  // results[i] belongs to jobs[i]
    std::string merged_json;          // canonical aggregate (kernel::json dump)
    std::uint64_t hits_mem = 0;       // served from the in-memory cache
    std::uint64_t hits_disk = 0;      // recalled from the store
    std::uint64_t trials = 0;         // simulated fresh this wave
};

class service {
public:
    explicit service(service_options opt);
    ~service();

    service(const service&) = delete;
    service& operator=(const service&) = delete;

    /// One tenant's connection: buffer jobs, flush waves.
    class session {
    public:
        /// Validate and buffer. Throws std::invalid_argument (unknown
        /// program/defense, malformed plan/decisions, decisions on a chaos
        /// job) — the wire loop turns that into an error frame.
        void submit(job j);

        /// Run the buffered wave; clears the buffer.
        wave_result flush();

        [[nodiscard]] const std::string& tenant() const { return tenant_; }
        [[nodiscard]] std::size_t pending() const { return pending_.size(); }

    private:
        friend class service;
        session(service& svc, std::string tenant)
            : svc_(&svc), tenant_(std::move(tenant))
        {
        }

        service* svc_;
        std::string tenant_;
        std::vector<job> pending_;
    };

    /// The tenant's session, created on first connect.
    session& connect(const std::string& tenant_id);

    /// Re-shard the worker pool between waves (0 = par::default_jobs()).
    void resize(std::size_t jobs);
    [[nodiscard]] std::size_t jobs() const;

    /// Drive a full framed conversation (svc/wire.h): hello picks the
    /// tenant, job frames buffer, end_wave flushes — results + wave_done
    /// stream back; invalid jobs and malformed frame payloads produce error
    /// frames (seq 0: advisory, outside the replayable stream) without
    /// killing the stream. A trailing unflushed wave is flushed at EOF.
    ///
    /// Durable commit per wave: the wave's intent (tenant + full job list +
    /// first response seq) is journaled and fsync'd, then the wave resolves
    /// and the store sync()s, and only then do the seq-numbered response
    /// frames go out — a result frame is an acknowledgement that survives
    /// any crash. The intent commits once the frames are flushed.
    ///
    /// Resumable clients send hello with the capability flag and receive a
    /// session frame {epoch, next seq}; after a torn connection they send
    /// resume {tenant, epoch, last_seq}, and the service replays the
    /// pending journaled wave's frames with their original seqs, skipping
    /// everything at or below last_seq. A resume with no matching pending
    /// wave (wrong tenant, wrong epoch, nothing journaled) is answered
    /// with an error frame whose message is exactly "nothing to resume" —
    /// the client's cue to clear its accumulator and resubmit from scratch.
    ///
    /// Returns the number of waves served; `on_wave` (when set) observes
    /// each wave_result as it completes.
    std::size_t serve(byte_source& in, byte_sink& out,
                      const std::function<void(const wave_result&)>& on_wave = {});

    [[nodiscard]] par::result_cache<job_result>& cache() { return cache_; }
    /// nullptr when the service is memory-only.
    [[nodiscard]] store* disk() { return store_.get(); }
    /// nullptr when the service is memory-only (no durable state to
    /// journal, so nothing is resumable either).
    [[nodiscard]] intent_log* intent() { return intent_.get(); }
    /// This incarnation's session epoch (0 when memory-only): bumped every
    /// time the service reopens its durable state, which is what lets a
    /// resume name the incarnation its last_seq was counted against.
    [[nodiscard]] std::uint64_t epoch() const
    {
        return intent_ != nullptr ? intent_->epoch() : 0;
    }
    [[nodiscard]] obs::tenant_set& tenants() { return tenants_; }

    /// Service-wide stats: per-tenant + folded metrics, cache counters,
    /// store stats. Diagnostics — includes wall-clock-derived gauges, so
    /// not part of any byte-compared oracle.
    [[nodiscard]] std::string snapshot_json() const;

    /// The canonical aggregate of a resolved wave — one row per job in
    /// canonical order. Pure function of (jobs, results).
    static std::string merged_json(const std::vector<job>& jobs,
                                   const std::vector<job_result>& results);

private:
    struct worker_state;  // per-worker snapshot caches (thread-confined)

    wave_result run_wave(session& sess);
    job_result execute(const par::witness_key& key, std::size_t worker_id);
    /// nullopt when valid; otherwise the rejection message.
    [[nodiscard]] std::optional<std::string> validate(const par::witness_key& key) const;

    service_options opt_;
    std::unique_ptr<store> store_;
    std::unique_ptr<intent_log> intent_;
    par::result_cache<job_result> cache_;
    obs::tenant_set tenants_;
    std::unique_ptr<par::worker_pool> pool_;
    std::unique_ptr<par::worker_local<worker_state>> workers_;
    std::map<std::string, std::unique_ptr<session>> sessions_;
    std::vector<std::string> known_programs_;
    std::uint64_t waves_ = 0;
};

}  // namespace jsk::svc
