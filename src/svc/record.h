// jsk::svc — the persistent record format.
//
// Everything the sweep service writes to disk is a sequence of records in
// one canonical little-endian framing:
//
//   record := u32 key_len | u32 value_len | key bytes | value bytes | u32 crc
//
// where `crc` is CRC32 (IEEE) over everything before it — both length
// fields included, so a corrupted length cannot silently re-frame the
// stream. `key` is a canonically-serialized par::witness_key
// (par::serialize) and `value` an opaque payload (for the result store, a
// serialized job_result). The format is self-delimiting and append-only:
// a reader scans records front to back and stops at the first one that is
// truncated or fails its CRC, which makes the valid prefix of a
// crash-interrupted (or bit-flipped) shard file a correct partial cache.
//
// job_result is the outcome payload: what one (program, seed, plan,
// decisions, defense) trial yields, compact enough to hold millions of and
// rich enough to rebuild the service's merged matrix JSON without
// re-simulating. Digests rather than full journals/traces — the full
// oracles stay with the chaos/explore subsystems; the service serves
// outcomes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace jsk::svc {

/// Outcome of one service job — the value half of a store record.
struct job_result {
    bool triggered = false;      // the program's CVE monitor fired
    bool hit_task_cap = false;   // liveness violation (chaos path only)
    std::uint64_t tasks_executed = 0;
    std::uint64_t faults_injected = 0;
    std::uint64_t journal_digest = 0;  // fnv1a(journal_json), 0 when no kernel
    std::uint64_t trace_digest = 0;    // fnv1a(trace_json), 0 on the explore path
    std::string decisions;             // harvested (trimmed) schedule, explore path

    bool operator==(const job_result&) const = default;
};

/// Canonical serialization: u8 flags (bit0 triggered, bit1 hit_task_cap) |
/// u64 tasks | u64 faults | u64 journal_digest | u64 trace_digest |
/// u32-prefixed decisions. Little-endian throughout.
std::string serialize(const job_result& r);

/// Inverse of serialize(); nullopt on truncated/trailing/unknown-flag bytes.
std::optional<job_result> parse_result(const std::string& bytes);

/// One decoded record.
struct record {
    std::string key;
    std::string value;
};

/// Fixed framing bytes per record (two length prefixes + CRC).
inline constexpr std::size_t record_overhead = 12;

/// Append the canonical encoding of (key, value) to `out`.
void append_record(std::string& out, const std::string& key, const std::string& value);

enum class record_status {
    ok,         // a full record parsed and its CRC matched
    truncated,  // buffer ended mid-record (crash tail)
    bad_crc,    // framing complete but the CRC failed (corruption)
};

/// Parse one record from data[0, size). Returns the bytes consumed on
/// `ok`, 0 otherwise (with `status` saying why). A zero-length buffer is
/// `truncated` — callers treat it as a clean end of the valid prefix.
std::size_t parse_record(const char* data, std::size_t size, record& out,
                         record_status& status);

}  // namespace jsk::svc
