// jsk::svc — the wave intent log.
//
// A wave has a dangerous window: after the service resolves its jobs
// (simulation done, outcomes fsync'd into the store) but before the client
// holds every response frame. A crash inside that window must not strand
// the wave half-acknowledged, so the service journals its intent:
//
//   begin(wave)   appended + fsync'd BEFORE any response frame is emitted —
//                 records the tenant and the full job list (client ids +
//                 witness keys), which is everything needed to re-emit the
//                 wave's frames byte-identically (outcomes are pure
//                 functions of the keys, and the store already holds them)
//   commit(wave)  appended once the wave's frames are fully flushed —
//                 the wave no longer needs replay
//
// On reopen the log is scanned with the same CRC-framed truncate-to-valid
// discipline as the store shards; a trailing begin without its commit is
// the pending wave. A resuming client replays it (minus the frames it
// already has, by sequence number); any other traffic discards it — both
// paths then commit, so the window closes exactly once. commit is flushed
// but not fsync'd: losing a commit to a crash merely replays a wave the
// client fully holds, and idempotent replay is free where an extra fsync
// per wave is not.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "svc/vfs.h"
#include "svc/wire.h"

namespace jsk::svc {

class intent_log {
public:
    struct pending_wave {
        std::uint64_t wave_id = 0;
        std::uint64_t epoch = 0;      // incarnation that journaled the wave
        std::uint64_t first_seq = 0;  // seq of the wave's first result frame
        std::string tenant;
        std::vector<wire_job> jobs;  // arrival order, exactly as submitted
    };

    /// Open (creating if missing) and scan `path`, healing any torn tail.
    /// A trailing uncommitted begin becomes pending(); otherwise the log is
    /// truncated back to empty. Claims the next epoch (max recorded + 1)
    /// and makes the claim durable. Throws io_error on structural failure.
    intent_log(std::string path, vfs* fs);

    intent_log(const intent_log&) = delete;
    intent_log& operator=(const intent_log&) = delete;

    [[nodiscard]] const std::optional<pending_wave>& pending() const
    {
        return pending_;
    }

    /// This incarnation's epoch: strictly greater than any epoch a client
    /// ever saw from this log's previous openers.
    [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

    /// Journal a wave about to be acknowledged. Appends + fsyncs; throws
    /// io_error when the journal cannot be made durable (the service then
    /// runs the wave unjournaled rather than failing it). The wave becomes
    /// pending() until committed.
    void begin(const std::string& tenant, const std::vector<wire_job>& jobs,
               std::uint64_t first_seq);

    /// Close the pending wave (fully acknowledged or explicitly discarded).
    /// Append + flush only — a lost commit replays an idempotent wave.
    void commit();

    /// Wave ids are monotone across incarnations: max seen at open + 1.
    [[nodiscard]] std::uint64_t next_wave_id() const { return next_wave_id_; }

private:
    void append(const std::string& key, const std::string& value, bool durable);

    std::string path_;
    vfs* fs_;
    std::unique_ptr<vfs::file> appender_;
    std::optional<pending_wave> pending_;
    std::uint64_t next_wave_id_ = 1;
    std::uint64_t epoch_ = 1;
};

}  // namespace jsk::svc
