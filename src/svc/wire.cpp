#include "svc/wire.h"

#include "sim/bytes.h"

namespace jsk::svc {

namespace bytes = sim::bytes;

void write_frame(byte_sink& sink, frame_type type, const std::string& payload)
{
    std::string header;
    bytes::put_u8(header, static_cast<std::uint8_t>(type));
    bytes::put_u32(header, static_cast<std::uint32_t>(payload.size()));
    sink.write(header.data(), header.size());
    if (!payload.empty()) sink.write(payload.data(), payload.size());
}

namespace {

/// Exactly `n` bytes or bust: 0 < got < n is a torn frame.
bool read_exact(byte_source& source, char* buf, std::size_t n, bool& clean_eof)
{
    std::size_t got = 0;
    while (got < n) {
        const std::size_t r = source.read(buf + got, n - got);
        if (r == 0) {
            clean_eof = got == 0;
            return false;
        }
        got += r;
    }
    clean_eof = false;
    return true;
}

}  // namespace

bool read_frame(byte_source& source, frame& out)
{
    char header[5];
    bool clean_eof = false;
    if (!read_exact(source, header, sizeof(header), clean_eof)) {
        if (clean_eof) return false;
        throw wire_error("svc::wire: stream ended mid-header");
    }
    bytes::reader rd(header, sizeof(header));
    const std::uint8_t type = *rd.get_u8();
    const std::uint32_t len = *rd.get_u32();
    if (type < static_cast<std::uint8_t>(frame_type::hello) ||
        type > static_cast<std::uint8_t>(frame_type::session)) {
        throw wire_error("svc::wire: unknown frame type " + std::to_string(type));
    }
    if (len > max_frame_payload) {
        throw wire_error("svc::wire: oversized frame (" + std::to_string(len) +
                         " bytes)");
    }
    out.type = static_cast<frame_type>(type);
    out.payload.resize(len);
    if (len > 0 && !read_exact(source, out.payload.data(), len, clean_eof)) {
        throw wire_error("svc::wire: stream ended mid-payload");
    }
    return true;
}

std::string encode_hello(const std::string& tenant, bool resumable)
{
    std::string out;
    bytes::put_str(out, tenant);
    // The legacy hello is exactly the tenant string; the capability byte is
    // appended only when set, so pre-resume encoders and decoders interop.
    if (resumable) bytes::put_u8(out, 1);
    return out;
}

std::optional<wire_hello> decode_hello(const std::string& payload)
{
    bytes::reader rd(payload);
    auto tenant = rd.get_str();
    if (!tenant) return std::nullopt;
    wire_hello h;
    h.tenant = std::move(*tenant);
    if (rd.done()) return h;
    const auto flag = rd.get_u8();
    if (!flag || !rd.done() || *flag > 1) return std::nullopt;
    h.resumable = *flag == 1;
    return h;
}

std::string encode_job(const wire_job& j)
{
    std::string out;
    bytes::put_u64(out, j.client_id);
    out += par::serialize(j.key);
    return out;
}

std::optional<wire_job> decode_job(const std::string& payload)
{
    bytes::reader rd(payload);
    const auto client_id = rd.get_u64();
    if (!client_id) return std::nullopt;
    const auto key =
        par::parse_witness(payload.substr(rd.offset()));
    if (!key) return std::nullopt;
    wire_job j;
    j.client_id = *client_id;
    j.key = *key;
    return j;
}

std::string encode_result(const wire_result& r)
{
    std::string out;
    bytes::put_u64(out, r.seq);
    bytes::put_u64(out, r.client_id);
    out += serialize(r.result);
    return out;
}

std::optional<wire_result> decode_result(const std::string& payload)
{
    bytes::reader rd(payload);
    const auto seq = rd.get_u64();
    const auto client_id = rd.get_u64();
    if (!seq || !client_id) return std::nullopt;
    const auto result = parse_result(payload.substr(rd.offset()));
    if (!result) return std::nullopt;
    wire_result r;
    r.seq = *seq;
    r.client_id = *client_id;
    r.result = *result;
    return r;
}

std::string encode_reject(const wire_reject& e)
{
    std::string out;
    bytes::put_u64(out, e.seq);
    bytes::put_u64(out, e.client_id);
    bytes::put_str(out, e.message);
    return out;
}

std::optional<wire_reject> decode_reject(const std::string& payload)
{
    bytes::reader rd(payload);
    const auto seq = rd.get_u64();
    const auto client_id = rd.get_u64();
    auto message = rd.get_str();
    if (!seq || !client_id || !message || !rd.done()) return std::nullopt;
    wire_reject e;
    e.seq = *seq;
    e.client_id = *client_id;
    e.message = std::move(*message);
    return e;
}

std::string encode_wave_done(const wire_wave_done& w)
{
    std::string out;
    bytes::put_u64(out, w.seq);
    out += w.merged_json;
    return out;
}

std::optional<wire_wave_done> decode_wave_done(const std::string& payload)
{
    bytes::reader rd(payload);
    const auto seq = rd.get_u64();
    if (!seq) return std::nullopt;
    wire_wave_done w;
    w.seq = *seq;
    w.merged_json = payload.substr(rd.offset());
    return w;
}

std::string encode_resume(const wire_resume& r)
{
    std::string out;
    bytes::put_str(out, r.tenant);
    bytes::put_u64(out, r.epoch);
    bytes::put_u64(out, r.last_seq);
    return out;
}

std::optional<wire_resume> decode_resume(const std::string& payload)
{
    bytes::reader rd(payload);
    auto tenant = rd.get_str();
    const auto epoch = rd.get_u64();
    const auto last_seq = rd.get_u64();
    if (!tenant || !epoch || !last_seq || !rd.done()) return std::nullopt;
    wire_resume r;
    r.tenant = std::move(*tenant);
    r.epoch = *epoch;
    r.last_seq = *last_seq;
    return r;
}

std::string encode_session(const wire_session& s)
{
    std::string out;
    bytes::put_u64(out, s.epoch);
    bytes::put_u64(out, s.resume_from);
    return out;
}

std::optional<wire_session> decode_session(const std::string& payload)
{
    bytes::reader rd(payload);
    const auto epoch = rd.get_u64();
    const auto resume_from = rd.get_u64();
    if (!epoch || !resume_from || !rd.done()) return std::nullopt;
    wire_session s;
    s.epoch = *epoch;
    s.resume_from = *resume_from;
    return s;
}

}  // namespace jsk::svc
