// jsk::svc — the fault-injectable filesystem seam.
//
// Every byte the sweep service makes durable — store shard appends, CURRENT
// generation flips, wave intent records — and every response byte it emits
// through a stdio sink routes through this one abstraction, so
// faults::io_injector can interpose on open/write/flush/fsync/rename/close
// with deterministic faults and seeded crash points. With no injector (or a
// null plan) every operation is the real libc call plus exactly one branch,
// the same zero-overhead discipline as the obs null sink and the runtime
// fault injector.
//
// Fault semantics, chosen so faults may change *latency* but never *bytes*:
//
//   transient  (EINTR, short write)   retried inside the vfs until the full
//                                     buffer lands — callers never see them
//   persistent (ENOSPC, flush/fsync/  surface as io_error with errno
//               rename failure)       context — the store catches these and
//                                     enters degraded mode; nothing above
//                                     it throws mid-wave
//   crash      (crash_at boundaries)  throw faults::crash_error — the
//                                     in-process SIGKILL; *nothing* on the
//                                     durability path may catch it
//
// Crash points bracket every durable boundary (before/after each write,
// flush, fsync, rename, directory sync), which is what makes the crash
// matrix exhaustive: counting one fault-free run enumerates every
// instruction boundary at which the process can die.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>

#include "faults/io.h"

namespace jsk::svc {

/// A failed file operation, with errno context. Persistent injected faults
/// and real filesystem failures both surface as this one type.
class io_error : public std::runtime_error {
public:
    io_error(const std::string& what, int err)
        : std::runtime_error(what + " (errno " + std::to_string(err) + ")"),
          errno_(err)
    {
    }

    [[nodiscard]] int code() const { return errno_; }

private:
    int errno_;
};

class vfs {
public:
    /// Passthrough: every operation is the real call plus one null check.
    vfs() = default;

    /// Fault-injected: decisions and crash points come from `inj` (not
    /// owned; must outlive the vfs).
    explicit vfs(faults::io_injector* inj) : inj_(inj) {}

    vfs(const vfs&) = delete;
    vfs& operator=(const vfs&) = delete;

    [[nodiscard]] faults::io_injector* injector() const { return inj_; }

    // --- buffered writable file --------------------------------------------

    /// One writable stream (append or truncate mode). write() retries
    /// transient faults internally and throws io_error on persistent ones;
    /// flush()/sync() surface flush/fsync failures the same way. close() is
    /// idempotent and checked; the destructor closes silently (crash-path
    /// unwind must not throw again).
    class file {
    public:
        ~file();
        file(const file&) = delete;
        file& operator=(const file&) = delete;

        void write(const char* data, std::size_t n);
        void write(const std::string& s) { write(s.data(), s.size()); }
        /// Push stdio buffers to the OS (fflush, ferror-checked).
        void flush();
        /// flush() then fsync the descriptor: the record is on the platter
        /// (or the platter lied — that failure surfaces too).
        void sync();
        void close();

        [[nodiscard]] const std::string& path() const { return path_; }

    private:
        friend class vfs;
        file(std::FILE* f, std::string path, vfs* owner)
            : f_(f), path_(std::move(path)), owner_(owner)
        {
        }

        std::FILE* f_;
        std::string path_;
        vfs* owner_;
    };

    /// Open for appending (created if missing). Throws io_error on failure.
    std::unique_ptr<file> open_append(const std::string& path);
    /// Open truncated for writing. Throws io_error on failure.
    std::unique_ptr<file> open_trunc(const std::string& path);

    // --- whole-path operations ---------------------------------------------

    /// POSIX rename(2): atomic replace. Throws io_error (injected or real).
    void rename(const std::string& from, const std::string& to);

    /// Best-effort unlink — failure to remove dead bytes is never fatal.
    void remove(const std::string& path) noexcept;

    /// Truncate `path` to `size` bytes. Best-effort (open-time healing
    /// tolerates a read-only disk); crash points still apply.
    void resize(const std::string& path, std::uint64_t size) noexcept(false);

    /// fsync the directory itself, making renames/creates inside it
    /// durable. Throws io_error on (injected or real) failure; a no-op on
    /// platforms without directory descriptors.
    void sync_dir(const std::string& dir);

    [[nodiscard]] bool exists(const std::string& path) const;

private:
    friend class file;
    std::unique_ptr<file> open_mode(const std::string& path, const char* mode);

    faults::io_injector* inj_ = nullptr;
};

/// The shared passthrough instance used when a caller does not thread its
/// own vfs (store/service default). Never fault-injected.
vfs& default_vfs();

}  // namespace jsk::svc
