#include "svc/crash.h"

#include <filesystem>
#include <stdexcept>

#include "svc/client.h"
#include "svc/service.h"
#include "svc/vfs.h"

namespace jsk::svc {

namespace fs = std::filesystem;

namespace {

std::uint64_t mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/// Frame sink with crash points around every write: the "process died
/// while the response was in flight" half of the matrix. Bytes written
/// before the death stay in the underlying pipe — exactly what a kernel
/// socket buffer would have delivered to the client of a dead peer.
class crash_sink final : public byte_sink {
public:
    crash_sink(byte_sink& inner, faults::io_injector* inj)
        : inner_(&inner), inj_(inj)
    {
    }

    void write(const char* data, std::size_t n) override
    {
        if (inj_ != nullptr && inj_->enabled()) inj_->crash_point("sink.write.before");
        inner_->write(data, n);
        if (inj_ != nullptr && inj_->enabled()) inj_->crash_point("sink.write.after");
    }

    void flush() override
    {
        if (inj_ != nullptr && inj_->enabled()) inj_->crash_point("sink.flush");
        inner_->flush();
    }

private:
    byte_sink* inner_;
    faults::io_injector* inj_;
};

/// One server incarnation: build a service over `store_dir` with the given
/// plan, feed it `request`, and return whatever response bytes escaped
/// before completion, a crash, or an unrecoverable injected I/O failure.
struct incarnation_result {
    std::string response;
    bool crashed = false;
    bool io_failed = false;
    std::uint64_t crash_points_seen = 0;
};

incarnation_result run_incarnation(const crash_matrix_options& opt,
                                   const std::string& store_dir,
                                   const faults::io_plan& plan,
                                   const std::string& request)
{
    incarnation_result r;
    faults::io_injector inj(plan);
    vfs faulted(&inj);
    mem_pipe out;
    crash_sink sink(out, &inj);
    try {
        service_options so;
        so.store_dir = store_dir;
        so.store_shards = opt.shards;
        so.jobs = opt.workers;
        so.snapshots = opt.snapshots;
        so.fs = &faulted;
        service svc(so);
        string_source in(request);
        svc.serve(in, sink);
    } catch (const faults::crash_error&) {
        r.crashed = true;
    } catch (const io_error&) {
        // Construction-time injected failure (store open, intent epoch
        // claim): the "connection" was refused; the client backs off and
        // redials a fresh incarnation.
        r.io_failed = true;
    }
    r.crash_points_seen = inj.crash_points_seen();
    r.response.resize(out.size());
    out.read(r.response.data(), r.response.size());
    return r;
}

/// The normalized replayable byte stream: every result frame payload,
/// re-encoded in seq order, concatenated. What must be invariant under
/// crashes.
std::string normalized_frames(const session_client::wave_outcome& w)
{
    std::string out;
    for (const wire_result& r : w.results) out += encode_result(r);
    return out;
}

}  // namespace

crash_matrix_report run_crash_matrix(const crash_matrix_options& opt)
{
    if (opt.jobs.empty()) {
        throw std::invalid_argument("svc::run_crash_matrix: empty job list");
    }
    if (opt.dir.empty()) {
        throw std::invalid_argument("svc::run_crash_matrix: empty working dir");
    }
    fs::create_directories(opt.dir);
    crash_matrix_report report;

    // One matrix run: drive the wave to completion against a server whose
    // first incarnation dies at crash point `crash_at` (0 = never), with
    // `plan_salt` diversifying the fault streams of retry incarnations.
    const auto drive = [&](const std::string& store_dir, std::uint64_t crash_at,
                           std::uint64_t plan_salt) {
        std::uint64_t incarnation = 0;
        session_client::options copt;
        copt.tenant = "crash-matrix";
        copt.max_attempts = opt.max_attempts;
        session_client client(
            [&](const std::string& request) {
                faults::io_plan plan = opt.base_plan;
                plan.crash_at = incarnation == 0 ? crash_at : 0;
                plan.seed = mix64(opt.base_plan.seed ^ plan_salt ^
                                  (incarnation * 0x9E3779B97F4A7C15ULL));
                ++incarnation;
                ++report.incarnations;
                const incarnation_result r =
                    run_incarnation(opt, store_dir, plan, request);
                if (r.crashed) ++report.crashes;
                if (r.io_failed) ++report.io_failures;
                return r.response;
            },
            copt);
        return client.run_wave(opt.jobs);
    };

    // Phase 0 — reference: no faults, no crash. Also the boundary count:
    // a second, counting run arms the injector with the unreachable
    // crash_count_only so every boundary increments without firing.
    const std::string ref_dir = (fs::path(opt.dir) / "reference").string();
    fs::remove_all(ref_dir);
    {
        faults::io_plan clean;  // null plan: pure passthrough
        session_client::options copt;
        copt.tenant = "crash-matrix";
        copt.max_attempts = opt.max_attempts;
        session_client client(
            [&](const std::string& request) {
                return run_incarnation(opt, ref_dir, clean, request).response;
            },
            copt);
        const auto outcome = client.run_wave(opt.jobs);
        report.reference_json = outcome.merged_json;
        report.reference_frames = normalized_frames(outcome);
        if (!outcome.complete) {
            report.mismatches.push_back(0);
            return report;  // the fault-free path must work before any matrix
        }
    }
    fs::remove_all(ref_dir);

    // Count the boundaries of one full fault-free conversation.
    {
        const std::string count_dir = (fs::path(opt.dir) / "count").string();
        fs::remove_all(count_dir);
        faults::io_plan counting = opt.base_plan;
        counting.crash_at = faults::crash_count_only;
        // Build the same first-connection request session_client would send.
        mem_pipe req;
        write_frame(req, frame_type::hello,
                    encode_hello("crash-matrix", /*resumable=*/true));
        for (const wire_job& j : opt.jobs) {
            write_frame(req, frame_type::job, encode_job(j));
        }
        write_frame(req, frame_type::end_wave, std::string());
        std::string request;
        request.resize(req.size());
        req.read(request.data(), request.size());
        const incarnation_result r =
            run_incarnation(opt, count_dir, counting, request);
        report.crash_points = r.crash_points_seen;
        fs::remove_all(count_dir);
    }

    // The matrix: kill the first incarnation at every counted boundary.
    for (std::uint64_t k = 1; k <= report.crash_points; ++k) {
        const std::string run_dir =
            (fs::path(opt.dir) / ("crash-" + std::to_string(k))).string();
        fs::remove_all(run_dir);
        const auto outcome = drive(run_dir, k, /*plan_salt=*/k * 0x51AB0001ULL);
        ++report.runs;
        report.resumes += outcome.resumes;
        report.resubmits += outcome.resubmits;
        if (!outcome.complete || outcome.merged_json != report.reference_json ||
            normalized_frames(outcome) != report.reference_frames) {
            report.mismatches.push_back(k);
        }
        fs::remove_all(run_dir);
    }
    return report;
}

}  // namespace jsk::svc
