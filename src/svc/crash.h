// jsk::svc — the exhaustive crash-recovery matrix.
//
// The durability claim this module proves: kill the sweep service at ANY
// durable boundary — mid shard append, between the store fsync and the
// first response frame, halfway through emitting frame bytes, during the
// CURRENT flip, inside the intent journal — reopen it over the same
// directory, resume the client, and the completed wave's result frames and
// merged JSON are byte-identical to a run that never crashed, with no
// acknowledged result lost and no sequence served twice.
//
// Enumeration is deterministic, not sampled: the vfs (and the harness's
// frame sink) routes every such boundary through io_injector::crash_point,
// so one fault-free run with crash_at = crash_count_only *counts* the N
// reachable boundaries, and the matrix then replays the whole
// client/server conversation N times with crash_at = 1..N — every possible
// process death, each in a fresh store directory, each driven to
// completion by session_client's resume protocol. Fault plans (short
// writes, ENOSPC, fsync failures) stack on top: the per-incarnation plan
// seed is salted so a deterministic fault cannot re-fire identically
// forever and wedge recovery, and the assertion stays bytes-for-bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/io.h"
#include "svc/wire.h"

namespace jsk::svc {

struct crash_matrix_options {
    /// The wave under test, arrival order (all jobs must be valid).
    std::vector<wire_job> jobs;
    /// Working root; per-run store directories are created (and removed)
    /// beneath it.
    std::string dir;
    std::size_t shards = 4;
    /// Worker-pool size for the service under test (1 = serial, the cheap
    /// and sanitizer-friendly default).
    std::size_t workers = 1;
    bool snapshots = true;
    /// Fault rates layered on every incarnation (crash_at is overridden by
    /// the matrix; the seed is salted per incarnation).
    faults::io_plan base_plan;
    /// Connection attempts session_client may spend per matrix run.
    unsigned max_attempts = 12;
};

struct crash_matrix_report {
    std::uint64_t crash_points = 0;  // N: boundaries counted fault-free
    std::uint64_t runs = 0;          // matrix runs executed (one per k)
    std::uint64_t crashes = 0;       // crash_error firings observed
    std::uint64_t incarnations = 0;  // server (re)opens across all runs
    std::uint64_t resumes = 0;       // resume requests the service honored
    std::uint64_t resubmits = 0;     // waves restarted from scratch
    std::uint64_t io_failures = 0;   // incarnations lost to injected io_error
    /// crash_at values whose final bytes diverged from the reference, or
    /// whose wave never completed within max_attempts. Empty = proven.
    std::vector<std::uint64_t> mismatches;
    std::string reference_json;    // fault-free merged JSON
    std::string reference_frames;  // fault-free result frames, concatenated

    [[nodiscard]] bool ok() const
    {
        return crash_points > 0 && mismatches.empty();
    }
};

/// Run the matrix. Throws std::invalid_argument on an unusable setup
/// (empty job list / dir); never throws for injected faults or crashes —
/// those are the subject matter, and they land in the report.
crash_matrix_report run_crash_matrix(const crash_matrix_options& opt);

}  // namespace jsk::svc
