#include "svc/client.h"

namespace jsk::svc {

session_client::wave_outcome session_client::run_wave(
    const std::vector<wire_job>& jobs)
{
    wave_outcome out;
    // seq -> raw (type, payload) as received; replay must never contradict.
    std::map<std::uint64_t, frame> held;
    std::uint64_t epoch = 0;
    bool have_epoch = false;
    bool fresh_submit = true;

    for (unsigned attempt = 0; attempt < opt_.max_attempts && !out.complete;
         ++attempt) {
        if (attempt > 0 && opt_.sleep) opt_.sleep(backoff_ns(attempt));
        ++out.attempts;

        // Compose this connection's request.
        mem_pipe req;
        if (fresh_submit) {
            if (attempt > 0) ++out.resubmits;
            held.clear();
            out.rejects.clear();
            write_frame(req, frame_type::hello,
                        encode_hello(opt_.tenant, /*resumable=*/true));
            for (const wire_job& j : jobs) {
                write_frame(req, frame_type::job, encode_job(j));
            }
            write_frame(req, frame_type::end_wave, std::string());
        } else {
            ++out.resumes;
            const std::uint64_t last_seq = held.empty() ? 0 : held.rbegin()->first;
            wire_resume r;
            r.tenant = opt_.tenant;
            r.epoch = epoch;
            r.last_seq = last_seq;
            write_frame(req, frame_type::resume, encode_resume(r));
        }
        std::string request;
        request.resize(req.size());
        req.read(request.data(), request.size());

        const std::string response = transport_(request);

        // Parse whatever made it back. A torn tail is expected — it just
        // means the next attempt resumes; everything before the tear is
        // real, acknowledged data and is kept.
        string_source src(response);
        bool resume_rejected = false;
        try {
            frame f;
            while (read_frame(src, f)) {
                switch (f.type) {
                    case frame_type::session: {
                        const auto s = decode_session(f.payload);
                        if (s) {
                            epoch = s->epoch;
                            have_epoch = true;
                        }
                        break;
                    }
                    case frame_type::result:
                    case frame_type::wave_done: {
                        std::uint64_t seq = 0;
                        if (f.type == frame_type::result) {
                            const auto r = decode_result(f.payload);
                            if (!r) throw wire_error("svc::client: bad result frame");
                            seq = r->seq;
                        } else {
                            const auto w = decode_wave_done(f.payload);
                            if (!w) {
                                throw wire_error("svc::client: bad wave_done frame");
                            }
                            seq = w->seq;
                        }
                        const auto it = held.find(seq);
                        if (it != held.end()) {
                            if (it->second.payload != f.payload ||
                                it->second.type != f.type) {
                                throw wire_error(
                                    "svc::client: replay contradicts seq " +
                                    std::to_string(seq));
                            }
                        } else {
                            held.emplace(seq, f);
                        }
                        if (f.type == frame_type::wave_done) out.complete = true;
                        break;
                    }
                    case frame_type::error: {
                        const auto e = decode_reject(f.payload);
                        if (!e) throw wire_error("svc::client: bad error frame");
                        if (e->seq == 0) {
                            if (e->message == "nothing to resume") {
                                resume_rejected = true;
                            } else {
                                out.rejects.push_back(*e);
                            }
                        } else {
                            const auto it = held.find(e->seq);
                            if (it == held.end()) held.emplace(e->seq, f);
                        }
                        break;
                    }
                    default:
                        throw wire_error("svc::client: unexpected frame type " +
                                         std::to_string(static_cast<int>(f.type)));
                }
            }
        } catch (const wire_error& e) {
            const std::string what = e.what();
            if (what.find("svc::client:") == 0) throw;  // protocol violation
            // Torn framing: the connection died mid-frame. Fall through to
            // the resume path with everything received so far.
        }

        if (out.complete) break;
        if (resume_rejected || !have_epoch) {
            // Either the service disowned our resume, or the connection
            // died before even the session frame arrived — in both cases
            // there is nothing to resume against: submit from scratch.
            fresh_submit = true;
            have_epoch = false;
        } else {
            fresh_submit = false;
        }
    }

    // Assemble the outcome in seq order.
    for (const auto& [seq, f] : held) {
        if (f.type == frame_type::result) {
            out.results.push_back(*decode_result(f.payload));
        } else if (f.type == frame_type::wave_done) {
            out.merged_json = decode_wave_done(f.payload)->merged_json;
        }
    }
    return out;
}

}  // namespace jsk::svc
