#include "svc/vfs.h"

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#define JSK_SVC_HAVE_FSYNC 1
#include <fcntl.h>
#include <unistd.h>
#endif

namespace jsk::svc {

namespace fs = std::filesystem;

// --- vfs::file --------------------------------------------------------------

vfs::file::~file()
{
    if (f_ != nullptr) {
        std::fclose(f_);
        f_ = nullptr;
    }
}

void vfs::file::write(const char* data, std::size_t n)
{
    faults::io_injector* inj = owner_->inj_;
    std::size_t done = 0;
    while (done < n) {
        std::size_t attempt = n - done;
        if (inj != nullptr && inj->enabled()) {
            inj->crash_point("file.write.before");
            const auto d = inj->on_write(attempt);
            switch (d.kind) {
                case faults::io_injector::write_fault::enospc:
                    throw io_error("svc::vfs: write failed on " + path_, ENOSPC);
                case faults::io_injector::write_fault::eintr:
                    // The syscall landed nothing; retry the same span. One
                    // extra loop turn is the whole cost — latency, not bytes.
                    inj->crash_point("file.write.eintr");
                    continue;
                case faults::io_injector::write_fault::short_write:
                    attempt = d.progress;
                    break;
                case faults::io_injector::write_fault::none:
                    break;
            }
        }
        const std::size_t wrote = std::fwrite(data + done, 1, attempt, f_);
        if (wrote != attempt) {
            throw io_error("svc::vfs: short write to " + path_,
                           errno != 0 ? errno : EIO);
        }
        done += wrote;
        if (inj != nullptr && inj->enabled()) inj->crash_point("file.write.after");
    }
}

void vfs::file::flush()
{
    faults::io_injector* inj = owner_->inj_;
    if (inj != nullptr && inj->enabled()) {
        inj->crash_point("file.flush.before");
        if (inj->on_flush()) throw io_error("svc::vfs: flush failed on " + path_, EIO);
    }
    if (std::fflush(f_) != 0 || std::ferror(f_) != 0) {
        throw io_error("svc::vfs: flush failed on " + path_, errno != 0 ? errno : EIO);
    }
    if (inj != nullptr && inj->enabled()) inj->crash_point("file.flush.after");
}

void vfs::file::sync()
{
    flush();
    faults::io_injector* inj = owner_->inj_;
    if (inj != nullptr && inj->enabled()) {
        inj->crash_point("file.sync.before");
        if (inj->on_fsync()) throw io_error("svc::vfs: fsync failed on " + path_, EIO);
    }
#if JSK_SVC_HAVE_FSYNC
    if (::fsync(::fileno(f_)) != 0) {
        throw io_error("svc::vfs: fsync failed on " + path_, errno != 0 ? errno : EIO);
    }
#endif
    if (inj != nullptr && inj->enabled()) inj->crash_point("file.sync.after");
}

void vfs::file::close()
{
    if (f_ == nullptr) return;
    std::FILE* f = f_;
    f_ = nullptr;
    if (std::fclose(f) != 0) {
        throw io_error("svc::vfs: close failed on " + path_, errno != 0 ? errno : EIO);
    }
}

// --- vfs --------------------------------------------------------------------

std::unique_ptr<vfs::file> vfs::open_mode(const std::string& path, const char* mode)
{
    std::FILE* f = std::fopen(path.c_str(), mode);
    if (f == nullptr) {
        throw io_error("svc::vfs: cannot open " + path, errno != 0 ? errno : EIO);
    }
    return std::unique_ptr<file>(new file(f, path, this));
}

std::unique_ptr<vfs::file> vfs::open_append(const std::string& path)
{
    return open_mode(path, "ab");
}

std::unique_ptr<vfs::file> vfs::open_trunc(const std::string& path)
{
    return open_mode(path, "wb");
}

void vfs::rename(const std::string& from, const std::string& to)
{
    if (inj_ != nullptr && inj_->enabled()) {
        inj_->crash_point("rename.before");
        if (inj_->on_rename()) {
            throw io_error("svc::vfs: rename " + from + " -> " + to + " failed", EIO);
        }
    }
    std::error_code ec;
    fs::rename(from, to, ec);
    if (ec) {
        throw io_error("svc::vfs: rename " + from + " -> " + to + " failed", ec.value());
    }
    if (inj_ != nullptr && inj_->enabled()) inj_->crash_point("rename.after");
}

void vfs::remove(const std::string& path) noexcept
{
    std::error_code ec;
    fs::remove(path, ec);
}

void vfs::resize(const std::string& path, std::uint64_t size)
{
    if (inj_ != nullptr && inj_->enabled()) inj_->crash_point("resize.before");
    std::error_code ec;
    fs::resize_file(path, size, ec);
    if (ec) {
        throw io_error("svc::vfs: cannot truncate " + path, ec.value());
    }
    if (inj_ != nullptr && inj_->enabled()) inj_->crash_point("resize.after");
}

void vfs::sync_dir(const std::string& dir)
{
    if (inj_ != nullptr && inj_->enabled()) {
        inj_->crash_point("sync_dir.before");
        if (inj_->on_fsync()) {
            throw io_error("svc::vfs: fsync failed on directory " + dir, EIO);
        }
    }
#if JSK_SVC_HAVE_FSYNC
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd >= 0) {
        const int rc = ::fsync(fd);
        const int err = errno;
        ::close(fd);
        if (rc != 0) {
            throw io_error("svc::vfs: fsync failed on directory " + dir,
                           err != 0 ? err : EIO);
        }
    }
    // Directories that cannot be opened read-only (exotic filesystems) are
    // quietly skipped — the shard-level truncate-to-valid recovery covers
    // whatever ordering the platform then provides.
#endif
    if (inj_ != nullptr && inj_->enabled()) inj_->crash_point("sync_dir.after");
}

bool vfs::exists(const std::string& path) const
{
    std::error_code ec;
    return fs::exists(path, ec);
}

vfs& default_vfs()
{
    static vfs instance;
    return instance;
}

}  // namespace jsk::svc
