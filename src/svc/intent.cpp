#include "svc/intent.h"

#include <filesystem>
#include <fstream>
#include <iterator>

#include "sim/bytes.h"
#include "svc/record.h"

namespace jsk::svc {

namespace bytes = sim::bytes;

namespace {

// Record keys: kind byte + wave id (epoch claims use the epoch as the id).
// The payload codec rides on svc::record so the log inherits CRC framing
// and truncate-to-valid recovery verbatim.
constexpr char kind_begin = 'B';
constexpr char kind_commit = 'C';
constexpr char kind_epoch = 'E';

std::string intent_key(char kind, std::uint64_t id)
{
    std::string out;
    bytes::put_u8(out, static_cast<std::uint8_t>(kind));
    bytes::put_u64(out, id);
    return out;
}

std::string encode_begin(std::uint64_t epoch, std::uint64_t first_seq,
                         const std::string& tenant,
                         const std::vector<wire_job>& jobs)
{
    std::string out;
    bytes::put_u64(out, epoch);
    bytes::put_u64(out, first_seq);
    bytes::put_str(out, tenant);
    bytes::put_u32(out, static_cast<std::uint32_t>(jobs.size()));
    for (const wire_job& j : jobs) {
        bytes::put_u64(out, j.client_id);
        bytes::put_str(out, par::serialize(j.key));
    }
    return out;
}

bool decode_begin(const std::string& value, intent_log::pending_wave& out)
{
    bytes::reader rd(value);
    const auto epoch = rd.get_u64();
    const auto first_seq = rd.get_u64();
    auto tenant = rd.get_str();
    const auto count = rd.get_u32();
    if (!epoch || !first_seq || !tenant || !count) return false;
    std::vector<wire_job> jobs;
    jobs.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
        const auto client_id = rd.get_u64();
        const auto key_bytes = rd.get_str();
        if (!client_id || !key_bytes) return false;
        const auto key = par::parse_witness(*key_bytes);
        if (!key) return false;
        wire_job j;
        j.client_id = *client_id;
        j.key = *key;
        jobs.push_back(std::move(j));
    }
    if (!rd.done()) return false;
    out.epoch = *epoch;
    out.first_seq = *first_seq;
    out.tenant = std::move(*tenant);
    out.jobs = std::move(jobs);
    return true;
}

}  // namespace

intent_log::intent_log(std::string path, vfs* fs)
    : path_(std::move(path)), fs_(fs != nullptr ? fs : &default_vfs())
{
    // Scan whatever survives on disk. The read path is plain ifstream — the
    // fault domain covers writes; reads either see the bytes or the CRC
    // scan cuts them.
    std::string contents;
    {
        std::ifstream in(path_, std::ios::binary);
        if (in) {
            contents.assign(std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>());
        }
    }
    std::size_t pos = 0;
    std::size_t valid = 0;
    while (pos < contents.size()) {
        record rec;
        record_status status = record_status::ok;
        const std::size_t used =
            parse_record(contents.data() + pos, contents.size() - pos, rec, status);
        if (status != record_status::ok) break;
        pos += used;
        valid = pos;
        bytes::reader rd(rec.key);
        const auto kind = rd.get_u8();
        const auto id = rd.get_u64();
        if (!kind || !id || !rd.done()) continue;  // foreign record: skip
        if (static_cast<char>(*kind) == kind_begin) {
            if (*id >= next_wave_id_) next_wave_id_ = *id + 1;
            pending_wave w;
            if (!decode_begin(rec.value, w)) continue;
            w.wave_id = *id;
            if (w.epoch >= epoch_) epoch_ = w.epoch + 1;
            pending_ = std::move(w);
        } else if (static_cast<char>(*kind) == kind_commit) {
            if (*id >= next_wave_id_) next_wave_id_ = *id + 1;
            if (pending_ && pending_->wave_id == *id) pending_.reset();
        } else if (static_cast<char>(*kind) == kind_epoch) {
            if (*id >= epoch_) epoch_ = *id + 1;
        }
    }
    if (!pending_) {
        // Nothing outstanding: restart the log from zero bytes so it never
        // grows across sessions. (With a pending wave the history stays —
        // the replay path must survive yet another crash.)
        if (valid != 0 && fs_->exists(path_)) fs_->resize(path_, 0);
    } else if (valid != contents.size()) {
        // Torn tail after a valid pending begin: heal the file like a shard.
        fs_->resize(path_, valid);
    }
    // Claim this incarnation's epoch durably before anyone can see it in a
    // session frame — a client must never hold an epoch a later opener
    // could reuse.
    append(intent_key(kind_epoch, epoch_), std::string(), /*durable=*/true);
}

void intent_log::append(const std::string& key, const std::string& value,
                        bool durable)
{
    if (appender_ == nullptr) appender_ = fs_->open_append(path_);
    std::string encoded;
    append_record(encoded, key, value);
    appender_->write(encoded);
    if (durable) {
        appender_->sync();
    } else {
        appender_->flush();
    }
}

void intent_log::begin(const std::string& tenant, const std::vector<wire_job>& jobs,
                       std::uint64_t first_seq)
{
    const std::uint64_t wave_id = next_wave_id_++;
    append(intent_key(kind_begin, wave_id),
           encode_begin(epoch_, first_seq, tenant, jobs),
           /*durable=*/true);
    pending_wave w;
    w.wave_id = wave_id;
    w.epoch = epoch_;
    w.first_seq = first_seq;
    w.tenant = tenant;
    w.jobs = jobs;
    pending_ = std::move(w);
}

void intent_log::commit()
{
    if (!pending_) return;
    const std::uint64_t wave_id = pending_->wave_id;
    pending_.reset();
    append(intent_key(kind_commit, wave_id), std::string(), /*durable=*/false);
}

}  // namespace jsk::svc
