// jsk::svc — the resumable sweep client.
//
// `session_client` drives one wave to completion across torn connections.
// The transport is deliberately tiny: a callable that takes one request
// byte-string (a full framed conversation) and returns whatever response
// bytes came back before the connection died — possibly all of them,
// possibly a torn prefix, possibly nothing. Each invocation is one
// connection; in tests it wraps an in-process service::serve() call that a
// crash point may kill halfway, in a CLI it would wrap a pipe or socket.
//
// Protocol per attempt:
//   1. First attempt: hello(tenant, resumable) + every job + end_wave.
//   2. Parse the response: session frames update the epoch; data frames
//      (result / wave_done / error with seq > 0) accumulate keyed by seq —
//      an already-held seq must carry byte-identical payload (replay is
//      idempotent; a contradiction is a protocol violation and throws).
//      wave_done completes the wave.
//   3. Torn response (wire_error, or EOF before wave_done): back off
//      deterministically and send resume(tenant, epoch, last_seq).
//   4. A "nothing to resume" error answers a resume the service cannot
//      honor: clear everything and resubmit from scratch (step 1).
//
// Backoff is a pure function of the attempt index — no wall clock, no
// randomness — so a crash-matrix run that kills the connection at every
// possible byte offset still replays deterministically. The sleep itself
// is injected (tests pass a counter; real callers pass a real sleeper).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "svc/wire.h"

namespace jsk::svc {

/// Deterministic exponential backoff: 1ms doubling per attempt, capped at
/// 1s. Pure — same attempt index, same delay, every process, every run.
[[nodiscard]] constexpr std::uint64_t backoff_ns(unsigned attempt)
{
    constexpr std::uint64_t base = 1'000'000;    // 1ms
    constexpr std::uint64_t cap = 1'000'000'000; // 1s
    const std::uint64_t shifted =
        attempt >= 10 ? cap : base << attempt;
    return shifted > cap ? cap : shifted;
}

class session_client {
public:
    /// One connection: request bytes in, response bytes out (possibly a
    /// torn prefix of what the service intended to send).
    using transport = std::function<std::string(const std::string&)>;

    struct options {
        std::string tenant = "default";
        unsigned max_attempts = 10;
        /// Called with backoff_ns(attempt) before each retry; null = no-op.
        std::function<void(std::uint64_t)> sleep;
    };

    session_client(transport t, options o)
        : transport_(std::move(t)), opt_(std::move(o))
    {
    }

    struct wave_outcome {
        /// Data frames in seq order, deduplicated across attempts.
        std::vector<wire_result> results;
        std::vector<wire_reject> rejects;  // advisory seq-0 errors, last submission
        std::string merged_json;           // from wave_done
        bool complete = false;             // wave_done received
        unsigned attempts = 0;             // connections consumed
        unsigned resumes = 0;              // resume frames honored
        unsigned resubmits = 0;            // full restarts after failed resume
    };

    /// Drive `jobs` to a completed wave or run out of attempts. Throws
    /// wire_error if the service contradicts itself (same seq, different
    /// bytes) — that is a durability bug, not a connectivity problem.
    wave_outcome run_wave(const std::vector<wire_job>& jobs);

private:
    transport transport_;
    options opt_;
};

}  // namespace jsk::svc
