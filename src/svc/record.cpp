#include "svc/record.h"

#include "sim/bytes.h"

namespace jsk::svc {

namespace bytes = sim::bytes;

std::string serialize(const job_result& r)
{
    std::string out;
    out.reserve(1 + 8 * 4 + 4 + r.decisions.size());
    std::uint8_t flags = 0;
    if (r.triggered) flags |= 1u;
    if (r.hit_task_cap) flags |= 2u;
    bytes::put_u8(out, flags);
    bytes::put_u64(out, r.tasks_executed);
    bytes::put_u64(out, r.faults_injected);
    bytes::put_u64(out, r.journal_digest);
    bytes::put_u64(out, r.trace_digest);
    bytes::put_str(out, r.decisions);
    return out;
}

std::optional<job_result> parse_result(const std::string& raw)
{
    bytes::reader rd(raw);
    const auto flags = rd.get_u8();
    if (!flags || (*flags & ~0x03u) != 0) return std::nullopt;
    job_result r;
    r.triggered = (*flags & 1u) != 0;
    r.hit_task_cap = (*flags & 2u) != 0;
    const auto tasks = rd.get_u64();
    const auto faults = rd.get_u64();
    const auto journal = rd.get_u64();
    const auto trace = rd.get_u64();
    auto decisions = rd.get_str();
    if (!tasks || !faults || !journal || !trace || !decisions || !rd.done()) {
        return std::nullopt;
    }
    r.tasks_executed = *tasks;
    r.faults_injected = *faults;
    r.journal_digest = *journal;
    r.trace_digest = *trace;
    r.decisions = std::move(*decisions);
    return r;
}

void append_record(std::string& out, const std::string& key, const std::string& value)
{
    const std::size_t start = out.size();
    bytes::put_u32(out, static_cast<std::uint32_t>(key.size()));
    bytes::put_u32(out, static_cast<std::uint32_t>(value.size()));
    out.append(key);
    out.append(value);
    const std::uint32_t crc = bytes::crc32(out.data() + start, out.size() - start);
    bytes::put_u32(out, crc);
}

std::size_t parse_record(const char* data, std::size_t size, record& out,
                         record_status& status)
{
    bytes::reader rd(data, size);
    const auto key_len = rd.get_u32();
    const auto value_len = rd.get_u32();
    if (!key_len || !value_len) {
        status = record_status::truncated;
        return 0;
    }
    // Guard the sum against u32 overflow before comparing with the buffer.
    const std::uint64_t payload =
        static_cast<std::uint64_t>(*key_len) + static_cast<std::uint64_t>(*value_len);
    if (rd.remaining() < payload + 4) {
        status = record_status::truncated;
        return 0;
    }
    const std::size_t body = 8 + static_cast<std::size_t>(payload);
    const std::uint32_t want = bytes::crc32(data, body);
    bytes::reader crc_rd(data + body, 4);
    const std::uint32_t got = *crc_rd.get_u32();
    if (want != got) {
        status = record_status::bad_crc;
        return 0;
    }
    out.key.assign(data + 8, *key_len);
    out.value.assign(data + 8 + *key_len, *value_len);
    status = record_status::ok;
    return body + 4;
}

}  // namespace jsk::svc
