#include "core/snapshot.h"

#include <cstring>
#include <stdexcept>

namespace jsk::core {

void fork_stats::merge(const fork_stats& other)
{
    snapshots += other.snapshots;
    forks += other.forks;
    restores += other.restores;
    pages_scanned += other.pages_scanned;
    pages_restored += other.pages_restored;
    bytes_restored += other.bytes_restored;
    cow_faults += other.cow_faults;
    if (other.image_bytes > image_bytes) image_bytes = other.image_bytes;
}

world_snapshot::world_snapshot()
    : mode_(arena::cow_available() ? restore_mode::cow : restore_mode::scan)
{
    // Anything the standard library initializes lazily must exist before the
    // first arena scope, or its heap state would be rewound by a restore.
    detail::prewarm_process_statics();
}

world_snapshot::~world_snapshot()
{
    // The arena member tears down the lease; worlds are never destructed.
}

void world_snapshot::seal(fork_stats* stats)
{
    if (!image_.empty()) {
        throw std::logic_error("jsk::core::world_snapshot: capture() called twice");
    }
    mark_ = heap_.used();
    pages_ = (mark_ + arena::page_bytes - 1) / arena::page_bytes;
    image_.assign(heap_.base(), heap_.base() + pages_ * arena::page_bytes);
    if (mode_ == restore_mode::cow && !heap_.cow_arm(mark_)) {
        mode_ = restore_mode::scan;  // arming can fail at runtime; degrade
    }
    if (stats != nullptr) {
        ++stats->snapshots;
        if (image_.size() > stats->image_bytes) stats->image_bytes = image_.size();
    }
}

void world_snapshot::restore(fork_stats* stats)
{
    if (anchor_ == nullptr) return;  // never sealed; nothing to roll back
    unsigned char* base = heap_.base();
    std::uint64_t restored_pages = 0;
    if (mode_ == restore_mode::cow) {
        // Copy back exactly the pages written since the last restore, plus
        // the hot set. Dirty pages are promoted to hot (they stay writable,
        // so future writes won't fault again); clean pages are still
        // protected and provably pristine. Zero syscalls on this path.
        for (std::size_t page = 0; page < pages_; ++page) {
            const arena::page_state st = heap_.cow_state(page);
            if (st == arena::page_state::clean) continue;
            std::memcpy(base + page * arena::page_bytes,
                        image_.data() + page * arena::page_bytes, arena::page_bytes);
            if (st == arena::page_state::dirty) heap_.cow_promote(page);
            ++restored_pages;
        }
    } else {
        for (std::size_t page = 0; page < pages_; ++page) {
            unsigned char* live = base + page * arena::page_bytes;
            const unsigned char* want = image_.data() + page * arena::page_bytes;
            if (std::memcmp(live, want, arena::page_bytes) != 0) {
                std::memcpy(live, want, arena::page_bytes);
                ++restored_pages;
            }
        }
        if (stats != nullptr) stats->pages_scanned += pages_;
    }
    heap_.reset_to(mark_);
    if (stats != nullptr) {
        ++stats->restores;
        stats->pages_restored += restored_pages;
        stats->bytes_restored += restored_pages * arena::page_bytes;
        stats->cow_faults += heap_.cow_faults() - reported_faults_;
        reported_faults_ = heap_.cow_faults();
    }
}

}  // namespace jsk::core
