// jsk::core — arena-backed world storage.
//
// The snapshot/fork engine (snapshot.h) needs every byte of a world's state —
// browser, contexts, kernel tree, task closures — to live in one contiguous,
// *address-stable* region, because DES task closures capture raw pointers
// into their world. A forked world therefore cannot be a relocated copy; it
// must be the same bytes at the same addresses, restored in place between
// trials. This header provides that region:
//
//  * One process-wide PROT_NONE reservation (64 chunks x 256 MiB, mapped
//    MAP_NORESERVE at startup-on-first-use) from which each `arena` leases
//    one chunk. Chunks are committed (mprotect RW) on lease and returned to
//    the kernel (madvise DONTNEED + PROT_NONE) on release, so idle arenas
//    cost address space, not memory.
//  * `arena` is a bump allocator over its chunk. Nothing is ever freed
//    individually; `reset_to(mark)` rewinds the bump pointer, which is how a
//    restore discards everything a fork allocated.
//  * `arena::scope` is a thread-local guard that reroutes the *global*
//    `operator new` family (replaced in arena.cpp) into the active arena, so
//    world construction needs no allocator plumbing: every std::string,
//    std::function and container node a world creates while a scope is live
//    lands in the arena automatically. `operator delete` is a no-op for any
//    pointer inside the reservation (a single range compare), so destructors
//    run anywhere — guard on, guard off, never — without corrupting either
//    heap.
//  * Copy-on-write tracking (cow_arm/cow_fault): pages of the captured
//    prefix are write-protected; the SIGSEGV handler records the first write
//    to each page and unprotects it. Pages that fault once are promoted to a
//    *hot set* that stays writable and is unconditionally re-copied on every
//    restore, so a steady-state fork/restore cycle performs zero mprotect
//    calls and zero faults. Unavailable under sanitizers (they own the
//    signal machinery); snapshot.h falls back to page-wise scan restore.
//
// Threading contract: an arena (and the world inside it) is confined to one
// thread at a time — the jsk::par worker that owns it. The only cross-thread
// state is the reservation base (an atomic written once) and the chunk
// lease table (mutex-guarded, touched only on arena construction/teardown).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jsk::core {

class arena {
public:
    static constexpr std::size_t page_bytes = 4096;
    static constexpr std::size_t chunk_bytes = 256ull << 20;  // per-arena capacity
    static constexpr std::size_t max_arenas = 64;

    /// True when the platform gave us the reservation (POSIX mmap). When
    /// false, arena construction throws and snapshot-backed paths must fall
    /// back to fresh worlds.
    static bool supported();

    /// True when mprotect/SIGSEGV dirty-page tracking may be used: mmap
    /// supported, not running under ASan/TSan/MSan, and not overridden by
    /// JSK_SNAPSHOT_MODE=scan (JSK_SNAPSHOT_MODE=cow forces it on where
    /// possible).
    static bool cow_available();

    /// Whether `p` points into the process-wide arena reservation (any
    /// arena, live or released). One atomic load + range compare.
    static bool contains(const void* p);

    /// The arena the calling thread's active scope routes into, or nullptr.
    static arena* current();

    arena();  // leases a chunk; throws std::runtime_error when unavailable
    ~arena();
    arena(const arena&) = delete;
    arena& operator=(const arena&) = delete;

    /// Bump-allocate. Called by the replaced operator new under a scope;
    /// throws std::bad_alloc when the chunk is exhausted.
    void* allocate(std::size_t bytes, std::size_t align);

    [[nodiscard]] unsigned char* base() const { return base_; }
    [[nodiscard]] std::size_t used() const { return used_; }

    /// Rewind the bump pointer; all allocations above `mark` become dead.
    void reset_to(std::size_t mark);

    // --- copy-on-write dirty-page tracking (see header comment) ------------

    /// Write-protect pages [0, bytes) and start tracking writes. Returns
    /// false (and tracks nothing) when cow_available() is false.
    bool cow_arm(std::size_t bytes);

    /// Drop protection and tracking (arena teardown, or mode change).
    void cow_disarm();

    [[nodiscard]] bool cow_armed() const { return cow_pages_ != 0; }
    [[nodiscard]] std::size_t cow_pages() const { return cow_pages_; }
    [[nodiscard]] std::uint64_t cow_faults() const { return cow_faults_; }

    /// Page states while armed. clean pages are still write-protected and
    /// provably unmodified; dirty pages were written since the last restore;
    /// hot pages faulted in some earlier fork and stay writable forever
    /// (treated as always-dirty by restores).
    enum class page_state : unsigned char { clean = 0, dirty = 1, hot = 2 };
    [[nodiscard]] page_state cow_state(std::size_t page) const
    {
        return static_cast<page_state>(cow_state_[page]);
    }
    /// Mark a dirty page hot after restoring it (restore loop only).
    void cow_promote(std::size_t page)
    {
        cow_state_[page] = static_cast<unsigned char>(page_state::hot);
    }

    /// SIGSEGV-handler entry: `addr` faulted inside this arena's chunk.
    /// Returns true when the fault was a tracked first-write (page recorded
    /// and unprotected); false means the fault is not ours — chain on.
    bool cow_fault(void* addr);

    /// RAII guard: reroutes global operator new on this thread into `a`.
    /// Scopes do not nest (a world never builds another world).
    class scope {
    public:
        explicit scope(arena& a);
        ~scope();
        scope(const scope&) = delete;
        scope& operator=(const scope&) = delete;
    };

private:
    unsigned char* base_ = nullptr;
    std::size_t chunk_index_ = 0;
    std::size_t used_ = 0;
    std::size_t cow_pages_ = 0;  // 0 = disarmed
    std::uint64_t cow_faults_ = 0;
    std::vector<unsigned char> cow_state_;  // page_state per armed page
};

namespace detail {
/// One-time warm-up of lazily initialized process state (locale facets used
/// by `ostream << double`, etc.) so nothing library-internal is first
/// allocated inside an arena scope and then rewound by a restore.
void prewarm_process_statics();
}  // namespace detail

}  // namespace jsk::core
