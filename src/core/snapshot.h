// jsk::core — world snapshots and copy-on-write forks.
//
// A `world_snapshot` owns one arena, builds a world inside it (arena::scope
// makes every allocation land there), and seals a byte image of the used
// prefix. A `fork` is then the cheapest possible "copy" of that world: run
// the trial against the live arena, and on destruction restore the mutated
// bytes back to the sealed image and rewind the bump pointer. Because the
// restored world occupies the same addresses, every raw pointer captured in
// task closures, bus subscriptions and kernel structures stays valid — which
// is the property a relocating clone could never provide.
//
// Restore strategies (decided per-process by arena::cow_available()):
//
//  * scan — memcmp each page of the sealed prefix against the image and
//    copy back only pages that changed. No signals, sanitizer-safe; cost is
//    one read pass over the image per restore.
//  * cow — pages are write-protected at seal time; the SIGSEGV handler
//    records the first write per page. A restore copies exactly the pages
//    written since the last restore plus the "hot set" (pages that faulted
//    in any earlier fork stay writable and are re-copied unconditionally),
//    so steady state is fault-free and touches only the world's genuinely
//    mutable pages.
//
// Forking discipline (enforced by the fork API; see DESIGN.md §11):
//
//  * Mutations of the world happen inside fork::step, which re-enters the
//    arena scope so per-trial objects (controllers, injectors, logs) are
//    arena-allocated and vanish with the restore.
//  * Harvest — turning run results into caller-owned strings/structs —
//    happens after step() returns, with the scope off (allocations go to
//    the global heap) but before the fork destructor restores (arena bytes
//    still readable). fork::step intentionally returns void to keep
//    arena-allocated returns from leaking into caller frames.
//  * Worlds in arenas are never destructed; teardown is the restore (or the
//    arena lease ending). World types must therefore hold no resources
//    other than memory — true of every DES-backed object in this repo.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/arena.h"

namespace jsk::core {

/// Fork/restore telemetry. Counts depend on worker claim order and cache
/// locality, so they are *never* folded into trial metrics or matrix JSON —
/// byte-determinism of those artifacts is a hard contract. Benches and the
/// differential suites read them through obs::collect_core.
struct fork_stats {
    std::uint64_t snapshots = 0;       // worlds built + sealed
    std::uint64_t forks = 0;           // trials served from a snapshot
    std::uint64_t restores = 0;        // completed rollbacks
    std::uint64_t pages_scanned = 0;   // scan mode: pages memcmp'd
    std::uint64_t pages_restored = 0;  // pages copied back from the image
    std::uint64_t bytes_restored = 0;
    std::uint64_t cow_faults = 0;      // first-write faults taken (cow mode)
    std::uint64_t image_bytes = 0;     // high-water sealed image size

    void merge(const fork_stats& other);
};

enum class restore_mode { scan, cow };

class world_snapshot {
public:
    /// Picks cow when arena::cow_available(), else scan.
    world_snapshot();
    ~world_snapshot();
    world_snapshot(const world_snapshot&) = delete;
    world_snapshot& operator=(const world_snapshot&) = delete;

    /// Build the world inside the arena and seal the image. `build` runs
    /// under an arena::scope and returns the world's anchor pointer (any
    /// object the fork users cast back). One capture per snapshot.
    template <class Build>
    void capture(Build&& build, fork_stats* stats = nullptr)
    {
        {
            arena::scope guard(heap_);
            anchor_ = std::forward<Build>(build)();
        }
        seal(stats);
    }

    /// The pointer `build` returned; stable across every fork/restore.
    [[nodiscard]] void* anchor() const { return anchor_; }
    [[nodiscard]] arena& heap() { return heap_; }
    [[nodiscard]] restore_mode mode() const { return mode_; }
    [[nodiscard]] std::size_t image_bytes() const { return image_.size(); }
    [[nodiscard]] bool sealed() const { return anchor_ != nullptr; }

    /// Roll the arena back to the sealed image (fork destructor path).
    void restore(fork_stats* stats);

private:
    void seal(fork_stats* stats);

    arena heap_;
    std::vector<unsigned char> image_;  // sealed bytes, global heap
    std::size_t mark_ = 0;              // bump pointer at seal
    std::size_t pages_ = 0;             // ceil(mark_ / page)
    std::uint64_t reported_faults_ = 0;  // cow faults already folded into stats
    void* anchor_ = nullptr;
    restore_mode mode_ = restore_mode::scan;
};

/// RAII trial against a snapshot: construct, step() the trial body, harvest
/// with the scope off, and let the destructor restore. One live fork per
/// snapshot at a time (the arena is the world).
class fork {
public:
    explicit fork(world_snapshot& snap, fork_stats* stats = nullptr)
        : snap_(snap), stats_(stats)
    {
        if (stats_ != nullptr) ++stats_->forks;
    }
    ~fork() { snap_.restore(stats_); }
    fork(const fork&) = delete;
    fork& operator=(const fork&) = delete;

    /// Run a mutation step under the arena scope. Returns void by design:
    /// results must be harvested through captured pointers after step()
    /// (global-heap copies) — see the forking discipline above.
    template <class Fn>
    void step(Fn&& fn)
    {
        arena::scope guard(snap_.heap());
        std::forward<Fn>(fn)();
    }

private:
    world_snapshot& snap_;
    fork_stats* stats_;
};

}  // namespace jsk::core
