#include "core/world.h"

#include "obs/collect.h"

namespace jsk::core {

std::string world_recipe::key() const
{
    std::string k = "seed=";
    k += std::to_string(browser_seed);
    k += with_trace ? ";trace=1" : ";trace=0";
    if (boot_kernel) {
        k += ";kernel=1;wd=";
        k += std::to_string(watchdog_budget_ms);
        k += ";retry=";
        k += std::to_string(fetch_retry_attempts);
        k += "x";
        k += std::to_string(fetch_retry_base_ms);
    }
    if (!site_ranks.empty()) {
        k += ";sites=";
        for (std::size_t i = 0; i < site_ranks.size(); ++i) {
            if (i != 0) k += ",";
            k += std::to_string(site_ranks[i]);
        }
        k += "@";
        k += std::to_string(site_seed);
    }
    return k;
}

world::world(const world_recipe& r)
    : browser(rt::chrome_profile(), r.browser_seed), vulns(browser.bus())
{
    if (r.with_trace) {
        browser.sim().set_trace_sink(&sink);
        obs::wire_runtime(sink, browser);
        vulns.set_trace_sink(&sink);
    }
    if (r.boot_kernel) {
        kernel::kernel_options ko;
        ko.watchdog_budget_ms = r.watchdog_budget_ms;
        kern = kernel::kernel::boot(browser, ko);
        if (r.fetch_retry_attempts > 0) {
            kern->add_policy(kernel::make_policy_fetch_retry(r.fetch_retry_attempts,
                                                             r.fetch_retry_base_ms));
        }
    }
    site_loads.reserve(r.site_ranks.size());
    for (const std::uint64_t rank : r.site_ranks) {
        const workloads::site_spec site = workloads::make_synthetic_site(rank, r.site_seed);
        site_loads.push_back(workloads::load_site(browser, site));
    }
}

world::~world()
{
    // Only reached for stack-built (fresh) worlds: the sink member dies
    // before browser/vulns, so detach it first.
    browser.sim().set_trace_sink(nullptr);
    vulns.set_trace_sink(nullptr);
}

std::unique_ptr<world_snapshot> snapshot_world(const world_recipe& recipe,
                                               fork_stats* stats)
{
    auto snap = std::make_unique<world_snapshot>();
    snap->capture([&]() -> void* { return new world(recipe); }, stats);
    return snap;
}

world_snapshot& snapshot_cache::get(const world_recipe& recipe, fork_stats* stats)
{
    const std::string key = recipe.key();
    for (auto& [k, snap] : by_key_) {
        if (k == key) return *snap;
    }
    by_key_.emplace_back(key, snapshot_world(recipe, stats));
    return *by_key_.back().second;
}

}  // namespace jsk::core
