#include "core/arena.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#define JSK_CORE_HAVE_MMAP 1
#include <signal.h>
#include <sys/mman.h>
#endif

// Sanitizers install their own SIGSEGV handling and shadow memory; the
// mprotect/fault COW path is incompatible with both, so it self-disables and
// snapshots fall back to scan restore.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define JSK_CORE_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define JSK_CORE_SANITIZED 1
#endif
#endif

namespace jsk::core {

namespace {

constexpr std::size_t k_total_bytes = arena::chunk_bytes * arena::max_arenas;

// Reservation state. All zero-initialized (no dynamic initializers), so the
// replaced operator new/delete below are safe from the very first
// static-initialization allocation: contains() reads a zero base and says
// "not ours" until the first arena exists.
std::atomic<std::uintptr_t> g_reservation_base{0};
std::atomic<arena*> g_chunk_owner[arena::max_arenas];
bool g_chunk_leased[arena::max_arenas];
std::mutex g_lease_mu;
std::once_flag g_reserve_once;
std::once_flag g_segv_once;
std::once_flag g_prewarm_once;
bool g_reserve_failed = false;

// The thread's active arena (scope guard). Plain pointer: zero-initialized,
// no TLS destructor.
thread_local arena* tl_current = nullptr;

void reserve_address_space()
{
#ifdef JSK_CORE_HAVE_MMAP
    void* p = ::mmap(nullptr, k_total_bytes, PROT_NONE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (p == MAP_FAILED) {
        g_reserve_failed = true;
        return;
    }
    g_reservation_base.store(reinterpret_cast<std::uintptr_t>(p),
                             std::memory_order_release);
#else
    g_reserve_failed = true;
#endif
}

bool reservation_ready()
{
    std::call_once(g_reserve_once, reserve_address_space);
    return !g_reserve_failed;
}

#ifdef JSK_CORE_HAVE_MMAP
struct sigaction g_prev_segv;

void segv_handler(int sig, siginfo_t* info, void* ucontext)
{
    const std::uintptr_t base = g_reservation_base.load(std::memory_order_relaxed);
    const std::uintptr_t addr = reinterpret_cast<std::uintptr_t>(info->si_addr);
    if (base != 0 && addr - base < k_total_bytes) {
        const std::size_t chunk = (addr - base) / arena::chunk_bytes;
        arena* a = g_chunk_owner[chunk].load(std::memory_order_acquire);
        if (a != nullptr && a->cow_fault(info->si_addr)) return;
    }
    // Not a tracked arena write: chain to whoever was installed before us
    // (sanitizer runtimes, crash reporters), else re-raise with the default
    // disposition so the process still dies loudly on real segfaults.
    if ((g_prev_segv.sa_flags & SA_SIGINFO) != 0 && g_prev_segv.sa_sigaction != nullptr) {
        g_prev_segv.sa_sigaction(sig, info, ucontext);
        return;
    }
    if ((g_prev_segv.sa_flags & SA_SIGINFO) == 0 && g_prev_segv.sa_handler != SIG_DFL &&
        g_prev_segv.sa_handler != SIG_IGN) {
        g_prev_segv.sa_handler(sig);
        return;
    }
    ::signal(SIGSEGV, SIG_DFL);
    ::raise(SIGSEGV);
}

void install_segv_handler()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = segv_handler;
    sa.sa_flags = SA_SIGINFO | SA_NODEFER;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGSEGV, &sa, &g_prev_segv);
}
#endif

enum class cow_mode_env { auto_detect, force_scan, force_cow };

cow_mode_env read_mode_env()
{
    const char* mode = std::getenv("JSK_SNAPSHOT_MODE");
    if (mode == nullptr) return cow_mode_env::auto_detect;
    if (std::string(mode) == "scan") return cow_mode_env::force_scan;
    if (std::string(mode) == "cow") return cow_mode_env::force_cow;
    return cow_mode_env::auto_detect;
}

}  // namespace

bool arena::supported() { return reservation_ready(); }

bool arena::cow_available()
{
#if !defined(JSK_CORE_HAVE_MMAP)
    return false;
#else
    static const cow_mode_env env = read_mode_env();
    if (env == cow_mode_env::force_scan) return false;
#if defined(JSK_CORE_SANITIZED)
    // Never under sanitizers, even when forced: their SEGV machinery and
    // shadow mappings make mprotect tracking unsound.
    return false;
#else
    return reservation_ready();
#endif
#endif
}

bool arena::contains(const void* p)
{
    const std::uintptr_t base = g_reservation_base.load(std::memory_order_relaxed);
    return base != 0 &&
           reinterpret_cast<std::uintptr_t>(p) - base < k_total_bytes;
}

arena* arena::current() { return tl_current; }

arena::arena()
{
    if (!reservation_ready()) {
        throw std::runtime_error("jsk::core::arena: no address-space reservation");
    }
    std::lock_guard<std::mutex> lock(g_lease_mu);
    std::size_t index = max_arenas;
    for (std::size_t i = 0; i < max_arenas; ++i) {
        if (!g_chunk_leased[i]) {
            index = i;
            break;
        }
    }
    if (index == max_arenas) {
        throw std::runtime_error("jsk::core::arena: all chunks leased");
    }
    unsigned char* base =
        reinterpret_cast<unsigned char*>(g_reservation_base.load(std::memory_order_relaxed)) +
        index * chunk_bytes;
#ifdef JSK_CORE_HAVE_MMAP
    if (::mprotect(base, chunk_bytes, PROT_READ | PROT_WRITE) != 0) {
        throw std::runtime_error("jsk::core::arena: mprotect(RW) failed");
    }
#endif
    g_chunk_leased[index] = true;
    base_ = base;
    chunk_index_ = index;
    g_chunk_owner[index].store(this, std::memory_order_release);
}

arena::~arena()
{
    if (base_ == nullptr) return;
    if (cow_armed()) cow_disarm();
    g_chunk_owner[chunk_index_].store(nullptr, std::memory_order_release);
#ifdef JSK_CORE_HAVE_MMAP
    // Return the pages to the OS and fault on any dangling use.
    ::madvise(base_, chunk_bytes, MADV_DONTNEED);
    ::mprotect(base_, chunk_bytes, PROT_NONE);
#endif
    std::lock_guard<std::mutex> lock(g_lease_mu);
    g_chunk_leased[chunk_index_] = false;
}

void* arena::allocate(std::size_t bytes, std::size_t align)
{
    if (align < alignof(std::max_align_t)) align = alignof(std::max_align_t);
    const std::size_t offset = (used_ + align - 1) & ~(align - 1);
    if (offset + bytes > chunk_bytes || offset + bytes < offset) {
        throw std::bad_alloc();
    }
    used_ = offset + bytes;
    return base_ + offset;
}

void arena::reset_to(std::size_t mark)
{
    if (mark > used_) {
        throw std::logic_error("jsk::core::arena::reset_to: mark above bump pointer");
    }
    used_ = mark;
}

bool arena::cow_arm(std::size_t bytes)
{
#ifdef JSK_CORE_HAVE_MMAP
    if (!cow_available() || bytes == 0) return false;
    std::call_once(g_segv_once, install_segv_handler);
    const std::size_t pages = (bytes + page_bytes - 1) / page_bytes;
    cow_state_.assign(pages, static_cast<unsigned char>(page_state::clean));
    if (::mprotect(base_, pages * page_bytes, PROT_READ) != 0) {
        cow_state_.clear();
        return false;
    }
    cow_pages_ = pages;
    return true;
#else
    (void)bytes;
    return false;
#endif
}

void arena::cow_disarm()
{
    if (!cow_armed()) return;
#ifdef JSK_CORE_HAVE_MMAP
    ::mprotect(base_, cow_pages_ * page_bytes, PROT_READ | PROT_WRITE);
#endif
    cow_pages_ = 0;
    cow_state_.clear();
}

bool arena::cow_fault(void* addr)
{
#ifdef JSK_CORE_HAVE_MMAP
    // Async-signal context: byte stores and one mprotect syscall only.
    const std::size_t page =
        static_cast<std::size_t>(static_cast<unsigned char*>(addr) - base_) / page_bytes;
    if (page >= cow_pages_) return false;
    if (cow_state_[page] != static_cast<unsigned char>(page_state::clean)) {
        return false;  // already writable — this fault is not our protection
    }
    if (::mprotect(base_ + page * page_bytes, page_bytes, PROT_READ | PROT_WRITE) != 0) {
        return false;
    }
    cow_state_[page] = static_cast<unsigned char>(page_state::dirty);
    ++cow_faults_;
    return true;
#else
    (void)addr;
    return false;
#endif
}

arena::scope::scope(arena& a)
{
    if (tl_current != nullptr) {
        throw std::logic_error("jsk::core::arena::scope: scopes do not nest");
    }
    tl_current = &a;
}

arena::scope::~scope() { tl_current = nullptr; }

namespace detail {

void prewarm_process_statics()
{
    std::call_once(g_prewarm_once, [] {
        // Locale/facet machinery behind `ostream << double` (journal and
        // trace serialization) allocates lazily on first use.
        std::ostringstream os;
        os << 3.14159;
        (void)os.str();
    });
}

// Allocation backends for the replaced global operators below.
void* route_alloc(std::size_t bytes, std::size_t align)
{
    if (bytes == 0) bytes = 1;
    if (arena* a = tl_current) return a->allocate(bytes, align);
    void* p = nullptr;
    if (align <= alignof(std::max_align_t)) {
        p = std::malloc(bytes);
    } else if (::posix_memalign(&p, align, bytes) != 0) {
        p = nullptr;
    }
    if (p == nullptr) throw std::bad_alloc();
    return p;
}

void route_free(void* p)
{
    if (p == nullptr) return;
    // Arena storage is never freed individually — restores rewind the bump
    // pointer instead — so destructors may run long after (or never) without
    // touching either heap.
    if (arena::contains(p)) return;
    std::free(p);
}

}  // namespace detail

}  // namespace jsk::core

// --- replaced global allocation functions -----------------------------------
//
// Linking jsk_core gives the whole binary these operators: malloc-backed by
// default, rerouted into the active arena while an arena::scope is live on
// the calling thread. [new.delete.single] requires all forms to be replaced
// together.

void* operator new(std::size_t bytes)
{
    return jsk::core::detail::route_alloc(bytes, __STDCPP_DEFAULT_NEW_ALIGNMENT__);
}

void* operator new[](std::size_t bytes)
{
    return jsk::core::detail::route_alloc(bytes, __STDCPP_DEFAULT_NEW_ALIGNMENT__);
}

void* operator new(std::size_t bytes, std::align_val_t align)
{
    return jsk::core::detail::route_alloc(bytes, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t bytes, std::align_val_t align)
{
    return jsk::core::detail::route_alloc(bytes, static_cast<std::size_t>(align));
}

void* operator new(std::size_t bytes, const std::nothrow_t&) noexcept
{
    try {
        return jsk::core::detail::route_alloc(bytes, __STDCPP_DEFAULT_NEW_ALIGNMENT__);
    } catch (...) {
        return nullptr;
    }
}

void* operator new[](std::size_t bytes, const std::nothrow_t&) noexcept
{
    try {
        return jsk::core::detail::route_alloc(bytes, __STDCPP_DEFAULT_NEW_ALIGNMENT__);
    } catch (...) {
        return nullptr;
    }
}

void* operator new(std::size_t bytes, std::align_val_t align, const std::nothrow_t&) noexcept
{
    try {
        return jsk::core::detail::route_alloc(bytes, static_cast<std::size_t>(align));
    } catch (...) {
        return nullptr;
    }
}

void* operator new[](std::size_t bytes, std::align_val_t align, const std::nothrow_t&) noexcept
{
    try {
        return jsk::core::detail::route_alloc(bytes, static_cast<std::size_t>(align));
    } catch (...) {
        return nullptr;
    }
}

void operator delete(void* p) noexcept { jsk::core::detail::route_free(p); }
void operator delete[](void* p) noexcept { jsk::core::detail::route_free(p); }
void operator delete(void* p, std::size_t) noexcept { jsk::core::detail::route_free(p); }
void operator delete[](void* p, std::size_t) noexcept { jsk::core::detail::route_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { jsk::core::detail::route_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { jsk::core::detail::route_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept
{
    jsk::core::detail::route_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept
{
    jsk::core::detail::route_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept
{
    jsk::core::detail::route_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept
{
    jsk::core::detail::route_free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept
{
    jsk::core::detail::route_free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept
{
    jsk::core::detail::route_free(p);
}
