// jsk::core — the standard snapshot-able world.
//
// Every sweep trial in this repo assembles the same object graph: a seeded
// rt::browser, the CVE monitor registry, optionally a trace sink wired onto
// the bus, optionally a booted JSKernel with the retry policy, optionally a
// set of synthetic page sessions preloaded to quiescence (the paper's
// Alexa-style evaluation worlds). `world_recipe` names that shape,
// `world` builds it — on the ordinary heap for a fresh trial, or inside a
// world_snapshot's arena for forked trials — and `snapshot_cache` memoizes
// sealed snapshots per recipe so a sweep worker pays world construction
// once per distinct world shape instead of once per trial.
//
// Quiescence: a recipe world is snapshot-safe by construction. Site
// preloads run the simulation to their load horizon internally
// (workloads::load_site), and everything else (kernel boot, sink wiring)
// only posts tasks — captured pending tasks are part of the image and
// replay identically in every fork. The seal point is outside any task
// (sim().in_task() is false), which is the only hard quiescence requirement.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/snapshot.h"
#include "kernel/kernel.h"
#include "obs/trace.h"
#include "runtime/browser.h"
#include "runtime/vuln.h"
#include "workloads/sites.h"

namespace jsk::core {

struct world_recipe {
    std::uint64_t browser_seed = 17;
    /// Wire an obs::sink onto the sim + bus + monitors (chaos trials).
    bool with_trace = false;
    /// Boot JSKernel over the main context (chaos trials; explore trials
    /// install the defense per fork instead, matching the fresh path).
    bool boot_kernel = false;
    double watchdog_budget_ms = 150.0;  // kernel dispatcher watchdog
    int fetch_retry_attempts = 3;       // 0 disables the retry policy
    double fetch_retry_base_ms = 25.0;
    /// Synthetic sites preloaded to quiescence before the seal — the
    /// "page session" the paper's site-scale sweeps fork from. Note that
    /// preloads advance virtual time, so trial deadlines must be expressed
    /// relative to sim().now().
    std::vector<std::uint64_t> site_ranks;
    std::uint64_t site_seed = 101;

    /// Canonical identity string — the snapshot_cache key.
    [[nodiscard]] std::string key() const;
};

/// The assembled world. Lives either on the caller's stack (fresh trials)
/// or inside a snapshot arena (forked trials; never destructed there).
class world {
public:
    explicit world(const world_recipe& r);
    ~world();
    world(const world&) = delete;
    world& operator=(const world&) = delete;

    rt::browser browser;
    rt::vuln_registry vulns;
    obs::sink sink;  // wired only when recipe.with_trace
    std::unique_ptr<kernel::kernel> kern;  // null unless recipe.boot_kernel
    std::vector<workloads::load_result> site_loads;
};

/// Build + seal a snapshot of `recipe`'s world. The snapshot's anchor is
/// the `world*`.
std::unique_ptr<world_snapshot> snapshot_world(const world_recipe& recipe,
                                               fork_stats* stats = nullptr);

/// Convenience cast for fork users.
inline world& snapshot_anchor(world_snapshot& snap)
{
    return *static_cast<world*>(snap.anchor());
}

/// Worker-confined memo of sealed snapshots keyed by recipe. Not
/// thread-safe by design: each jsk::par worker owns one (par::worker_local),
/// so snapshots are built at most once per (worker, recipe) and no world is
/// ever shared across threads.
class snapshot_cache {
public:
    world_snapshot& get(const world_recipe& recipe, fork_stats* stats = nullptr);
    [[nodiscard]] std::size_t size() const { return by_key_.size(); }

private:
    std::vector<std::pair<std::string, std::unique_ptr<world_snapshot>>> by_key_;
};

}  // namespace jsk::core
