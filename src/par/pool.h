// jsk::par — sharded parallel sweep engine: the worker pool.
//
// Every large campaign in this repo (CVE-matrix sweep, chaos sweep, DFS
// frontier expansion) is a product of fully deterministic, independent
// (seed, plan, decisions) simulations. This pool runs those jobs across a
// fixed set of OS threads while keeping the *results* scheduling-invariant:
//
//  * Jobs are identified by a dense index [0, count). Workers claim chunks
//    of indices from a lock-free `shard_queue` (a single atomic cursor —
//    MPMC by construction: any worker may claim any chunk, claims never
//    overlap, and the only contention is one fetch_add per chunk).
//  * Each worker gets a `worker_context` carrying a splitmix64-`split`
//    seed stream (sim::split(root_seed, worker_id)) for any *worker-local*
//    randomness. Job-level seeds must derive from the job index, never the
//    worker id, or results would depend on the claim order.
//  * Results are written into caller-owned slots indexed by job — no shared
//    accumulation. Aggregation happens after run() returns, in canonical
//    job-index order, which is what makes sweep output byte-identical to
//    the serial run regardless of how the OS scheduled the workers.
//
// run() with workers() == 1 executes inline on the calling thread — the
// serial path, no threads touched — so `--jobs 1` is exactly the old
// behaviour.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jsk::par {

/// Number of workers to use when the caller doesn't say: hardware
/// concurrency, clamped to at least 1 (hardware_concurrency may return 0).
std::size_t default_jobs();

/// Lock-free MPMC dispenser over a dense job range. Workers claim
/// half-open chunks [begin, end); claims never overlap and the union of all
/// claims is exactly [0, count).
class shard_queue {
public:
    explicit shard_queue(std::size_t count, std::size_t chunk = 1)
        : count_(count), chunk_(chunk == 0 ? 1 : chunk)
    {
    }

    /// Claim the next chunk. Returns false when the range is exhausted.
    bool claim(std::size_t& begin, std::size_t& end)
    {
        const std::size_t b = next_.fetch_add(chunk_, std::memory_order_relaxed);
        if (b >= count_) return false;
        begin = b;
        end = b + chunk_ < count_ ? b + chunk_ : count_;
        return true;
    }

    [[nodiscard]] std::size_t count() const { return count_; }
    [[nodiscard]] std::size_t chunk() const { return chunk_; }

private:
    std::atomic<std::size_t> next_{0};
    std::size_t count_;
    std::size_t chunk_;
};

/// Per-worker state handed to every job invocation.
struct worker_context {
    std::size_t worker_id = 0;   // [0, workers)
    std::uint64_t seed_stream = 0;  // sim::split(root_seed, worker_id)
};

/// Fixed-size pool of persistent OS threads. Threads are spawned once in the
/// constructor and parked on a condition variable between run() calls, so a
/// sweep that issues many waves (DFS frontier expansion) pays thread startup
/// once. Job exceptions are captured and the first one (by job index, not
/// completion order — determinism again) is rethrown from run().
class worker_pool {
public:
    using job_fn = std::function<void(std::size_t job, const worker_context& ctx)>;

    /// `workers == 0` means default_jobs().
    explicit worker_pool(std::size_t workers = 0,
                         std::uint64_t root_seed = 0x6a736b2e706172ULL);  // "jsk.par"
    ~worker_pool();

    worker_pool(const worker_pool&) = delete;
    worker_pool& operator=(const worker_pool&) = delete;

    [[nodiscard]] std::size_t workers() const { return contexts_.size(); }

    /// Re-shard the pool to `workers` threads (0 = default_jobs()). Only
    /// valid between run() calls — the current wave must have drained. The
    /// old threads are joined and a fresh set spawned with seed streams
    /// re-derived from the original root seed, so a pool resized to n is
    /// indistinguishable from one constructed with n: long-lived services
    /// can grow and shrink between waves without disturbing determinism.
    /// No-op when the size already matches.
    void resize(std::size_t workers);

    /// Run `fn(job, ctx)` for every job in [0, count), sharded `chunk` jobs
    /// at a time. Blocks until all jobs completed (or failed). Not
    /// reentrant: one run() at a time per pool.
    void run(std::size_t count, const job_fn& fn, std::size_t chunk = 1);

private:
    void worker_main(std::size_t worker_id);
    void drain(const worker_context& ctx);
    void spawn(std::size_t workers);
    void shutdown();

    std::uint64_t root_seed_;
    std::vector<worker_context> contexts_;
    std::vector<std::thread> threads_;

    std::mutex mu_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    std::uint64_t generation_ = 0;  // bumped per run() to wake workers
    bool stopping_ = false;
    std::size_t active_ = 0;  // workers still draining the current run

    // Per-run state, valid while active_ > 0.
    shard_queue* queue_ = nullptr;
    const job_fn* fn_ = nullptr;
    std::exception_ptr first_error_;
    std::size_t first_error_job_ = 0;
};

}  // namespace jsk::par
