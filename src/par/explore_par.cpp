#include "par/explore_par.h"

#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "par/pool.h"
#include "par/sweep.h"

namespace jsk::par {

namespace explore = sim::explore;

namespace {

/// Everything one wave job yields, in plain data the merge can fold.
struct wave_run {
    bool violated = false;
    std::string detail;
    explore::schedule failing;            // recorded + trimmed, violated only
    std::vector<explore::work_item> children;
    std::uint64_t pruned = 0;
};

}  // namespace

explore::result explore_dfs(const explore::program& p, const explore_options& opt)
{
    if (opt.jobs == 1) return explore::explore_dfs(p, opt.base);

    explore::result res;
    worker_pool pool(opt.jobs);
    std::vector<explore::work_item> work{explore::work_item{}};
    // Same duplicate-prefix filter as the serial driver: sound DPOR can
    // re-derive a backtrack at an ancestor decision from several runs, and
    // each subtree must be scheduled exactly once. Applied at merge time in
    // canonical batch order, so the surviving set is jobs-invariant.
    std::unordered_set<std::string> seen;
    seen.insert(std::string{});
    while (!work.empty()) {
        const std::size_t budget = opt.base.max_schedules > res.schedules_run
                                       ? opt.base.max_schedules - res.schedules_run
                                       : 0;
        if (budget == 0) return res;  // bound hit: not exhausted
        const std::size_t batch = work.size() < budget ? work.size() : budget;

        // The wave takes the *tail* of the work list (the serial pop end),
        // batch[i] = work[size-1-i], keeping the flavour of DFS: deepest
        // recently-generated prefixes first.
        const std::size_t base_index = work.size() - batch;
        auto runs = sweep_on<wave_run>(pool, batch, [&](std::size_t i,
                                                        const worker_context&) {
            const explore::work_item& item = work[work.size() - 1 - i];
            explore::controller ctl(item.prefix,
                                    explore::controller::tail_policy::first);
            ctl.set_window(opt.base.window);
            if (opt.base.dpor) ctl.set_record_metadata(true);
            const explore::run_outcome out = p(ctl);
            wave_run r;
            r.violated = out.violated;
            if (out.violated) {
                r.detail = out.detail;
                r.failing = ctl.decisions();
                r.failing.trim();
            } else {
                r.children = explore::expand_run(ctl, item, opt.base, r.pruned);
            }
            return r;
        });
        work.resize(base_index);

        // Canonical-order merge, counting exactly as the serial driver does:
        // runs are folded one by one in batch order, and the first violation
        // stops the fold — runs after it in the batch did execute (the wave
        // had already been dispatched) but are not charged to schedules_run
        // and contribute no pruned counts, so every number matches a serial
        // walk that stopped at the same run. Runs *before* the violation keep
        // their pruned counts: they completed and their subtrees were cut.
        for (const wave_run& r : runs) {
            ++res.schedules_run;
            if (r.violated) {
                res.failing = r.failing;
                res.failure_detail = r.detail;
                return res;
            }
            res.pruned += r.pruned;
        }
        for (auto& r : runs) {
            for (auto& child : r.children) {
                if (!seen.insert(child.prefix.str()).second) continue;
                work.push_back(std::move(child));
            }
        }
    }
    res.exhausted = true;
    return res;
}

}  // namespace jsk::par
