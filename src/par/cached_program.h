// jsk::par — caching adapter for explore programs.
//
// An explore run is determined up front only when its tail policy is
// `first`: the prescribed prefix plus an all-default tail pins the whole
// schedule, so the trimmed prefix *is* the witness and the outcome can be
// recalled before building a browser. Random-tail walks can't be looked up
// (their decision string is an output), but they can still *seed* the cache:
// the trimmed string a walk recorded replays identically under tail-first,
// so shrink/replay passes that revisit a discovered witness skip the
// simulation entirely.
//
// Divergent replays (a prescribed choice out of range for the candidates
// actually offered) are never cached under the prescribed key — recorded
// and prescribed strings disagree, so such a prefix always re-simulates.
#pragma once

#include <utility>

#include "par/cache.h"
#include "sim/explore.h"

namespace jsk::par {

/// Wrap `inner` so outcome-only consumers (shrink, replay, sweep cells) hit
/// `cache` on repeated interleavings. `base` carries the non-schedule key
/// fields (program identity, seed, plan, defense); the decision string is
/// filled per run. Callers sharing one cache across different programs must
/// set `base.program`, or two programs' identical prefixes will alias.
///
/// Cached hits return the stored outcome *without running the program*: the
/// controller records no decisions, so callers that read ctl.decisions() or
/// ctl.trace() after the run (explore_random witnesses, DFS expansion) must
/// use the uncached program instead.
inline sim::explore::program cached_program(sim::explore::program inner,
                                            result_cache<sim::explore::run_outcome>& cache,
                                            witness_key base)
{
    return [inner = std::move(inner), &cache,
            base = std::move(base)](sim::explore::controller& ctl) {
        witness_key key = base;
        const bool replayable = ctl.tail() == sim::explore::controller::tail_policy::first;
        if (replayable) {
            sim::explore::schedule prescribed = ctl.prescribed();
            prescribed.trim();
            key.decisions = prescribed.str();
            if (const auto hit = cache.lookup(key)) return *hit;
        }
        const sim::explore::run_outcome out = inner(ctl);
        if (!ctl.replay_diverged()) {
            sim::explore::schedule recorded = ctl.decisions();
            recorded.trim();
            key.decisions = recorded.str();
            cache.insert(key, out);
        }
        return out;
    };
}

}  // namespace jsk::par
