// jsk::par — witness-keyed result cache.
//
// Every simulation in this repo is a pure function of its witness: the
// (program id, seed, fault-plan string, decision string, defense id) tuple
// that the explore and chaos subsystems already print, replay, and paste
// back into CLIs. That purity is what makes caching sound: a cached value *is* the
// value a fresh run would produce, so sweeps that consult the cache emit
// byte-identical aggregates whether a trial was simulated or recalled.
//
// The cache is sharded — key-hash picks one of a fixed set of
// (mutex, unordered_map) shards — so parallel sweep workers contend only
// when their keys collide in a shard, and is keyed by the *full* tuple
// (hash selects the shard and bucket; equality is on the tuple itself, so a
// 64-bit collision can never alias two witnesses). Values are held behind
// shared_ptr<const V>: lookups never copy the stored journals/traces and
// stay valid even if the cache is cleared mid-use.
//
// Drivers take the cache as an optional pointer (default nullptr = every
// trial simulated). Determinism suites that *measure* replay (run twice,
// compare bytes) must run uncached, or the second run compares a value with
// itself.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace jsk::par {

/// The replayable identity of one simulated interleaving. `decisions` is an
/// explore decision string ("" = default schedule), `plan` a
/// faults::plan::str() serialization ("" = no injector), `defense` a defense
/// id name ("plain" when none installed), `program` the identity of the
/// workload itself — a CVE id or program-seed spelling. Sweeps run many
/// programs under the same (seed, plan, defense); without `program`, two
/// CVEs' default-schedule trials would share a key and recall each other's
/// outcomes.
struct witness_key {
    std::uint64_t seed = 0;
    std::string plan;
    std::string decisions;
    std::string defense;
    std::string program;

    bool operator==(const witness_key&) const = default;
};

/// FNV-1a over a byte string — the digest the sweep drivers use to compare
/// per-shard journals/traces without holding every oracle in memory.
/// Stable across platforms (unlike std::hash).
inline std::uint64_t fnv1a(const std::string& bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/// FNV-1a over every field — stable across platforms (unlike std::hash), so
/// cache statistics and shard assignment are reproducible too.
inline std::uint64_t hash(const witness_key& k)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix_byte = [&h](unsigned char b) {
        h ^= b;
        h *= 0x100000001b3ULL;
    };
    for (int shift = 0; shift < 64; shift += 8) {
        mix_byte(static_cast<unsigned char>(k.seed >> shift));
    }
    const auto mix_str = [&](const std::string& s) {
        mix_byte(0xff);  // field separator: ("ab","c") != ("a","bc")
        for (const char c : s) mix_byte(static_cast<unsigned char>(c));
    };
    mix_str(k.plan);
    mix_str(k.decisions);
    mix_str(k.defense);
    mix_str(k.program);
    return h;
}

/// Thread-safe sharded map from witness to result. V is immutable once
/// inserted; re-inserting an existing key keeps the first value (all writers
/// computed the same bytes, so it cannot matter which survives).
template <typename V>
class result_cache {
public:
    static constexpr std::size_t shard_count = 16;

    struct stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t entries = 0;
    };

    /// nullptr on miss; the returned pointer never dangles.
    std::shared_ptr<const V> lookup(const witness_key& key)
    {
        shard& sh = shard_for(key);
        std::lock_guard<std::mutex> lock(sh.mu);
        const auto it = sh.map.find(key);
        if (it == sh.map.end()) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return nullptr;
        }
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
    }

    /// Store (or keep the existing) value; returns the resident one.
    std::shared_ptr<const V> insert(const witness_key& key, V value)
    {
        shard& sh = shard_for(key);
        std::lock_guard<std::mutex> lock(sh.mu);
        auto [it, inserted] =
            sh.map.try_emplace(key, std::make_shared<const V>(std::move(value)));
        return it->second;
    }

    [[nodiscard]] stats snapshot() const
    {
        stats s;
        s.hits = hits_.load(std::memory_order_relaxed);
        s.misses = misses_.load(std::memory_order_relaxed);
        for (const shard& sh : shards_) {
            std::lock_guard<std::mutex> lock(sh.mu);
            s.entries += sh.map.size();
        }
        return s;
    }

    void clear()
    {
        for (shard& sh : shards_) {
            std::lock_guard<std::mutex> lock(sh.mu);
            sh.map.clear();
        }
    }

private:
    struct key_hash {
        std::size_t operator()(const witness_key& k) const
        {
            return static_cast<std::size_t>(hash(k));
        }
    };

    struct shard {
        mutable std::mutex mu;
        std::unordered_map<witness_key, std::shared_ptr<const V>, key_hash> map;
    };

    shard& shard_for(const witness_key& key)
    {
        return shards_[hash(key) % shard_count];
    }

    std::array<shard, shard_count> shards_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

}  // namespace jsk::par
