// jsk::par — witness-keyed result cache.
//
// Every simulation in this repo is a pure function of its witness: the
// (program id, seed, fault-plan string, decision string, defense id) tuple
// that the explore and chaos subsystems already print, replay, and paste
// back into CLIs. That purity is what makes caching sound: a cached value *is* the
// value a fresh run would produce, so sweeps that consult the cache emit
// byte-identical aggregates whether a trial was simulated or recalled.
//
// The cache is sharded — key-hash picks one of a fixed set of
// (mutex, unordered_map) shards — so parallel sweep workers contend only
// when their keys collide in a shard, and is keyed by the *full* tuple
// (hash selects the shard and bucket; equality is on the tuple itself, so a
// 64-bit collision can never alias two witnesses). Values are held behind
// shared_ptr<const V>: lookups never copy the stored journals/traces and
// stay valid even if the cache is cleared mid-use.
//
// Drivers take the cache as an optional pointer (default nullptr = every
// trial simulated). Determinism suites that *measure* replay (run twice,
// compare bytes) must run uncached, or the second run compares a value with
// itself.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/bytes.h"

namespace jsk::par {

/// The replayable identity of one simulated interleaving. `decisions` is an
/// explore decision string ("" = default schedule), `plan` a
/// faults::plan::str() serialization ("" = no injector), `defense` a defense
/// id name ("plain" when none installed), `program` the identity of the
/// workload itself — a CVE id or program-seed spelling. Sweeps run many
/// programs under the same (seed, plan, defense); without `program`, two
/// CVEs' default-schedule trials would share a key and recall each other's
/// outcomes.
struct witness_key {
    std::uint64_t seed = 0;
    std::string plan;
    std::string decisions;
    std::string defense;
    std::string program;

    bool operator==(const witness_key&) const = default;

    /// Canonical total order — (seed, plan, decisions, defense, program),
    /// the same order the serialized form compares in. Spill files and
    /// iteration hooks sort by this so on-disk bytes are deterministic.
    friend bool operator<(const witness_key& a, const witness_key& b)
    {
        if (a.seed != b.seed) return a.seed < b.seed;
        if (a.plan != b.plan) return a.plan < b.plan;
        if (a.decisions != b.decisions) return a.decisions < b.decisions;
        if (a.defense != b.defense) return a.defense < b.defense;
        return a.program < b.program;
    }
};

/// Canonical serialized form of a witness key — the *persistent* identity:
/// little-endian u64 seed, then each string field u32-length-prefixed, in
/// declaration order. This is what the svc store writes as the record key
/// and what hash() digests, so on-disk keys survive recompilation, compiler
/// upgrades and platform changes (std::hash guarantees none of that).
inline std::string serialize(const witness_key& k)
{
    std::string out;
    out.reserve(8 + 4 * 4 + k.plan.size() + k.decisions.size() + k.defense.size() +
                k.program.size());
    sim::bytes::put_u64(out, k.seed);
    sim::bytes::put_str(out, k.plan);
    sim::bytes::put_str(out, k.decisions);
    sim::bytes::put_str(out, k.defense);
    sim::bytes::put_str(out, k.program);
    return out;
}

/// Inverse of serialize(); nullopt on truncated/trailing bytes.
inline std::optional<witness_key> parse_witness(const std::string& bytes)
{
    sim::bytes::reader r(bytes);
    witness_key k;
    const auto seed = r.get_u64();
    if (!seed) return std::nullopt;
    k.seed = *seed;
    auto plan = r.get_str();
    auto decisions = r.get_str();
    auto defense = r.get_str();
    auto program = r.get_str();
    if (!plan || !decisions || !defense || !program || !r.done()) return std::nullopt;
    k.plan = std::move(*plan);
    k.decisions = std::move(*decisions);
    k.defense = std::move(*defense);
    k.program = std::move(*program);
    return k;
}

/// FNV-1a over a byte string — the digest the sweep drivers use to compare
/// per-shard journals/traces without holding every oracle in memory.
/// Stable across platforms (unlike std::hash).
inline std::uint64_t fnv1a(const std::string& bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/// FNV-1a over the canonical serialized form — byte-for-byte equal to
/// fnv1a(serialize(k)) without materializing the string, so the in-memory
/// hash, the on-disk shard assignment and any external tool digesting a
/// record's key bytes all agree. (Length prefixes play the field-separator
/// role: ("ab","c") and ("a","bc") serialize — and hash — differently.)
inline std::uint64_t hash(const witness_key& k)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix_byte = [&h](unsigned char b) {
        h ^= b;
        h *= 0x100000001b3ULL;
    };
    const auto mix_u32 = [&](std::uint32_t v) {
        for (int shift = 0; shift < 32; shift += 8) {
            mix_byte(static_cast<unsigned char>(v >> shift));
        }
    };
    for (int shift = 0; shift < 64; shift += 8) {
        mix_byte(static_cast<unsigned char>(k.seed >> shift));
    }
    const auto mix_str = [&](const std::string& s) {
        mix_u32(static_cast<std::uint32_t>(s.size()));
        for (const char c : s) mix_byte(static_cast<unsigned char>(c));
    };
    mix_str(k.plan);
    mix_str(k.decisions);
    mix_str(k.defense);
    mix_str(k.program);
    return h;
}

/// Thread-safe sharded map from witness to result. V is immutable once
/// inserted; re-inserting an existing key keeps the first value (all writers
/// computed the same bytes, so it cannot matter which survives).
template <typename V>
class result_cache {
public:
    static constexpr std::size_t shard_count = 16;

    struct stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t entries = 0;
        std::uint64_t bytes = 0;
    };

    /// nullptr on miss; the returned pointer never dangles.
    std::shared_ptr<const V> lookup(const witness_key& key)
    {
        shard& sh = shard_for(key);
        std::lock_guard<std::mutex> lock(sh.mu);
        const auto it = sh.map.find(key);
        if (it == sh.map.end()) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return nullptr;
        }
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
    }

    /// Store (or keep the existing) value; returns the resident one.
    /// `value_bytes` is the size this entry charges against bytes() — pass
    /// the serialized payload size when one exists (the svc spill path
    /// does); the default charges the in-memory struct, which is a floor,
    /// not an exact heap accounting. First-insert-wins: a losing insert
    /// charges nothing.
    std::shared_ptr<const V> insert(const witness_key& key, V value,
                                    std::size_t value_bytes = sizeof(V))
    {
        shard& sh = shard_for(key);
        std::lock_guard<std::mutex> lock(sh.mu);
        auto [it, inserted] =
            sh.map.try_emplace(key, std::make_shared<const V>(std::move(value)));
        if (inserted) {
            entries_.fetch_add(1, std::memory_order_relaxed);
            const std::size_t key_bytes = 8 + 4 * 4 + key.plan.size() +
                                          key.decisions.size() + key.defense.size() +
                                          key.program.size();
            bytes_.fetch_add(key_bytes + value_bytes, std::memory_order_relaxed);
        }
        return it->second;
    }

    /// Resident entry count (monotonic between clear()s).
    [[nodiscard]] std::uint64_t entries() const
    {
        return entries_.load(std::memory_order_relaxed);
    }

    /// Serialized-key bytes plus charged value bytes across all entries —
    /// what a full spill to disk would write (modulo record framing).
    [[nodiscard]] std::uint64_t bytes() const
    {
        return bytes_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] stats snapshot() const
    {
        stats s;
        s.hits = hits_.load(std::memory_order_relaxed);
        s.misses = misses_.load(std::memory_order_relaxed);
        s.entries = entries();
        s.bytes = bytes();
        return s;
    }

    /// Iteration hook for spill-to-disk: visit every (key, value) pair in
    /// canonical key order — deterministic regardless of insertion order or
    /// unordered_map internals, so a spilled file's bytes depend only on the
    /// cache's contents. Snapshots the entries under the shard locks first;
    /// `fn` runs lock-free (and may re-enter the cache).
    template <typename Fn>
    void for_each_sorted(Fn&& fn) const
    {
        std::vector<std::pair<witness_key, std::shared_ptr<const V>>> all;
        for (const shard& sh : shards_) {
            std::lock_guard<std::mutex> lock(sh.mu);
            for (const auto& [k, v] : sh.map) all.emplace_back(k, v);
        }
        std::sort(all.begin(), all.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        for (const auto& [k, v] : all) fn(k, *v);
    }

    void clear()
    {
        for (shard& sh : shards_) {
            std::lock_guard<std::mutex> lock(sh.mu);
            sh.map.clear();
        }
        entries_.store(0, std::memory_order_relaxed);
        bytes_.store(0, std::memory_order_relaxed);
    }

private:
    struct key_hash {
        std::size_t operator()(const witness_key& k) const
        {
            return static_cast<std::size_t>(hash(k));
        }
    };

    struct shard {
        mutable std::mutex mu;
        std::unordered_map<witness_key, std::shared_ptr<const V>, key_hash> map;
    };

    shard& shard_for(const witness_key& key)
    {
        return shards_[hash(key) % shard_count];
    }

    std::array<shard, shard_count> shards_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> entries_{0};
    std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace jsk::par
