// jsk::par — parallel frontier expansion for the schedule-exploration DFS.
//
// The serial explore_dfs pops one prefix at a time off a LIFO work list.
// Here the whole frontier is run as one *wave* on the worker pool, and the
// wave's outcomes are folded in canonical batch order:
//
//  * every prefix in the wave is simulated (even the ones "after" a
//    violation), so schedules_run, pruned, the failing schedule, and
//    `exhausted` are pure functions of the program and options — identical
//    at --jobs 2 and --jobs 128;
//  * the first violation *in canonical order* wins, which for a fully-run
//    wave is also jobs-invariant;
//  * child prefixes are appended frontier-order, so each wave's batch is
//    deterministic too.
//
// Wave order visits the bounded tree breadth-first-ish rather than the
// serial LIFO order, so against `explore_dfs` (the --jobs 1 path) only the
// *set* of runs within max_schedules is guaranteed equal when the tree is
// explored to exhaustion — which is the regime DFS is for.
//
// The program must tolerate concurrent invocation: each call builds a fresh
// world and touches nothing shared (every program in this repo does).
#pragma once

#include <cstddef>

#include "sim/explore.h"

namespace jsk::par {

struct explore_options {
    sim::explore::options base;
    std::size_t jobs = 0;  // 0 = default_jobs(); <= 1 delegates to serial DFS
};

/// Bounded-DFS search with wave-parallel frontier expansion. Semantics match
/// sim::explore::explore_dfs except for traversal order (see file comment).
sim::explore::result explore_dfs(const sim::explore::program& p,
                                 const explore_options& opt = {});

}  // namespace jsk::par
