// jsk::par — parallel frontier expansion for the schedule-exploration DFS.
//
// The serial explore_dfs walks the same wave frontier this module
// distributes: batch off the work-list tail (batch[i] = work[size-1-i]),
// children appended after the whole batch. Here the batch runs on the
// worker pool and the wave's outcomes are folded in canonical batch order:
//
//  * runs are charged to schedules_run one by one, and the first violation
//    in canonical order stops the fold — later batch members did execute
//    (the wave was already dispatched) but are not counted, so
//    schedules_run, pruned, the failing schedule, and `exhausted` equal
//    the serial driver's numbers exactly: identical at --jobs 1, 2, 128;
//  * a run that precedes the violation keeps its pruned count (its subtree
//    was genuinely cut); the violating run contributes none, just as the
//    serial driver returns before expanding it;
//  * child work items (prefix + DPOR sleep set) are appended frontier-order,
//    so each wave's batch is deterministic too.
//
// The program must tolerate concurrent invocation: each call builds a fresh
// world and touches nothing shared (every program in this repo does).
#pragma once

#include <cstddef>

#include "sim/explore.h"

namespace jsk::par {

struct explore_options {
    sim::explore::options base;
    std::size_t jobs = 0;  // 0 = default_jobs(); <= 1 delegates to serial DFS
};

/// Bounded-DFS search with wave-parallel frontier expansion. Semantics match
/// sim::explore::explore_dfs except for traversal order (see file comment).
sim::explore::result explore_dfs(const sim::explore::program& p,
                                 const explore_options& opt = {});

}  // namespace jsk::par
