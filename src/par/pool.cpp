#include "par/pool.h"

#include "sim/rng.h"

namespace jsk::par {

std::size_t default_jobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

worker_pool::worker_pool(std::size_t workers, std::uint64_t root_seed)
    : root_seed_(root_seed)
{
    spawn(workers == 0 ? default_jobs() : workers);
}

worker_pool::~worker_pool()
{
    shutdown();
}

void worker_pool::spawn(std::size_t n)
{
    contexts_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        contexts_.push_back(worker_context{i, sim::split(root_seed_, i)});
    }
    // Worker 0 is the calling thread; only ids >= 1 get OS threads. With
    // n == 1 the pool is thread-free and run() is the plain serial loop.
    threads_.reserve(n - 1);
    for (std::size_t i = 1; i < n; ++i) {
        threads_.emplace_back([this, i] { worker_main(i); });
    }
}

void worker_pool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) t.join();
    threads_.clear();
    contexts_.clear();
}

void worker_pool::resize(std::size_t workers)
{
    const std::size_t n = workers == 0 ? default_jobs() : workers;
    if (n == this->workers()) return;
    shutdown();
    // All old threads are joined: the per-run state is quiescent and no one
    // is waiting on the condition variables, so resetting the generation
    // counter is safe — and necessary, or a fresh thread (seen_generation
    // 0) would treat a stale nonzero generation as a pending wave and drain
    // a null queue.
    stopping_ = false;
    generation_ = 0;
    spawn(n);
}

void worker_pool::run(std::size_t count, const job_fn& fn, std::size_t chunk)
{
    if (count == 0) return;
    shard_queue queue(count, chunk);
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_ = &queue;
        fn_ = &fn;
        first_error_ = nullptr;
        first_error_job_ = count;
        active_ = workers();
        ++generation_;
    }
    work_cv_.notify_all();

    drain(contexts_[0]);  // the calling thread is worker 0

    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return active_ == 0; });
    queue_ = nullptr;
    fn_ = nullptr;
    if (first_error_) std::rethrow_exception(first_error_);
}

void worker_pool::worker_main(std::size_t worker_id)
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [&] {
                return stopping_ || generation_ != seen_generation;
            });
            if (stopping_) return;
            seen_generation = generation_;
        }
        drain(contexts_[worker_id]);
    }
}

void worker_pool::drain(const worker_context& ctx)
{
    // Read the per-run pointers once; they stay valid until every worker
    // has decremented active_, which happens strictly after this returns.
    shard_queue* queue;
    const job_fn* fn;
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue = queue_;
        fn = fn_;
    }
    std::size_t begin = 0;
    std::size_t end = 0;
    while (queue->claim(begin, end)) {
        for (std::size_t job = begin; job < end; ++job) {
            try {
                (*fn)(job, ctx);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu_);
                // Keep the lowest-index failure so the rethrow is
                // deterministic no matter which worker hit it first.
                if (!first_error_ || job < first_error_job_) {
                    first_error_ = std::current_exception();
                    first_error_job_ = job;
                }
            }
        }
    }
    bool last = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        last = --active_ == 0;
    }
    if (last) done_cv_.notify_all();
}

}  // namespace jsk::par
