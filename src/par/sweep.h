// jsk::par — sweep driver: shard an indexed job product across the pool and
// hand the results back in canonical job-index order.
//
// The contract that makes parallel sweeps byte-identical to serial ones:
//
//  1. Job i's result depends only on i (and the job's own derived seeds) —
//     never on the worker that ran it or on any other job.
//  2. Results land in slot i of the returned vector; whoever aggregates
//     iterates the vector front to back.
//
// Under those two rules, every aggregate (journal digests, sweep tables,
// --json output) is a pure function of the job list, so `--jobs 8` and
// `--jobs 1` cannot differ by construction. sweep() runs inline (no pool,
// no threads) when opt.jobs == 1.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "par/pool.h"
#include "sim/rng.h"

namespace jsk::par {

struct sweep_options {
    std::size_t jobs = 0;   // worker count; 0 = default_jobs(), 1 = serial inline
    std::size_t chunk = 1;  // shard granularity (jobs claimed per queue pop)
    std::uint64_t root_seed = 0x6a736b2e706172ULL;  // worker seed-stream root
};

/// Run `fn(job_index, worker_context)` for every index in [0, count) and
/// return the results indexed by job. `R` must be default-constructible;
/// each slot is written exactly once, by the worker that ran the job.
template <typename R, typename Fn>
std::vector<R> sweep(std::size_t count, Fn&& fn, const sweep_options& opt = {})
{
    std::vector<R> results(count);
    const std::size_t workers = opt.jobs == 0 ? default_jobs() : opt.jobs;
    if (workers <= 1 || count <= 1) {
        worker_context ctx{0, sim::split(opt.root_seed, 0)};
        for (std::size_t job = 0; job < count; ++job) results[job] = fn(job, ctx);
        return results;
    }
    worker_pool pool(workers, opt.root_seed);
    pool.run(
        count,
        [&](std::size_t job, const worker_context& ctx) { results[job] = fn(job, ctx); },
        opt.chunk);
    return results;
}

/// Same, reusing a caller-owned pool (e.g. across DFS waves).
template <typename R, typename Fn>
std::vector<R> sweep_on(worker_pool& pool, std::size_t count, Fn&& fn,
                        std::size_t chunk = 1)
{
    std::vector<R> results(count);
    pool.run(
        count,
        [&](std::size_t job, const worker_context& ctx) { results[job] = fn(job, ctx); },
        chunk);
    return results;
}

}  // namespace jsk::par
