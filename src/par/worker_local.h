// jsk::par — per-worker slots for sweep-scoped state.
//
// Snapshot-backed sweeps keep one world arena (and its sealed snapshots)
// per pool worker: worlds are thread-confined by contract, so sharing a
// snapshot across workers is forbidden, and rebuilding per job defeats the
// point. `worker_local<T>` is the minimal container for that pattern — a
// fixed array of lazily-constructed slots indexed by worker_context::
// worker_id. No locks: under the sweep contract slot i is only ever touched
// by worker i while the sweep runs, and by the owning thread before the
// sweep starts / after the pool join (both fully ordered with the workers).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace jsk::par {

template <class T>
class worker_local {
public:
    /// `workers` must be the resolved worker count (0 is treated as 1, the
    /// inline/serial path).
    explicit worker_local(std::size_t workers) : slots_(workers == 0 ? 1 : workers) {}

    /// The calling worker's slot, default-constructed on first use.
    T& get(std::size_t worker_id)
    {
        auto& slot = slots_.at(worker_id);
        if (!slot) slot = std::make_unique<T>();
        return *slot;
    }

    [[nodiscard]] std::size_t size() const { return slots_.size(); }

    /// Owner-thread fold after the join, in worker order (deterministic for
    /// commutative folds like counter merges).
    template <class Fn>
    void for_each(Fn&& fn)
    {
        for (auto& slot : slots_) {
            if (slot) fn(*slot);
        }
    }

private:
    std::vector<std::unique_ptr<T>> slots_;
};

}  // namespace jsk::par
