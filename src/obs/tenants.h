// jsk::obs — tenant-tagged metrics registries.
//
// The sweep service serves many tenants from one process; each connection
// accounts its own jobs, cache hits and bytes served without contending on
// (or leaking into) anyone else's instruments. `tenant_set` is the minimal
// container for that: one lazily-created registry per tenant id, plus a
// service-wide snapshot that folds every tenant in id order — std::map
// keying makes both the per-tenant section and the fold deterministic, so
// two services that did the same work snapshot to identical bytes.
//
// Thread-safety follows the rest of obs: registries are written by whoever
// owns them (the service writes tenant metrics only between waves, on the
// serving thread), and tenant_set itself is confined to that thread.
#pragma once

#include <map>
#include <string>

#include "kernel/json.h"
#include "obs/metrics.h"

namespace jsk::obs {

class tenant_set {
public:
    /// The tenant's registry, created empty on first use.
    registry& get(const std::string& tenant_id) { return tenants_[tenant_id]; }

    [[nodiscard]] bool empty() const { return tenants_.empty(); }
    [[nodiscard]] std::size_t size() const { return tenants_.size(); }

    [[nodiscard]] const std::map<std::string, registry>& tenants() const
    {
        return tenants_;
    }

    /// Every tenant folded into one registry, in tenant-id order (counters
    /// add, histograms merge, gauges last-tenant-wins — the same contract
    /// as registry::merge across sweep shards).
    [[nodiscard]] registry merged() const;

    /// {"tenants":{id:registry-snapshot,...},"total":merged-snapshot}.
    [[nodiscard]] kernel::json::value snapshot() const;

    /// kernel::json::dump(snapshot()) — compact, key-ordered, deterministic.
    [[nodiscard]] std::string to_json() const;

private:
    std::map<std::string, registry> tenants_;
};

}  // namespace jsk::obs
