#include "obs/metrics.h"

#include <stdexcept>

namespace jsk::obs {

namespace json = kernel::json;

void histogram::merge(const histogram& other)
{
    if (bounds_ != other.bounds_) {
        throw std::invalid_argument(
            "histogram::merge: bucket bounds differ between shards");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    if (other.count_ > 0 && (count_ == 0 || other.max_ > max_)) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
}

void registry::merge(const registry& other)
{
    for (const auto& [name, c] : other.counters_) counters_[name].inc(c.value());
    for (const auto& [name, g] : other.gauges_) gauges_[name].set(g.value());
    for (const auto& [name, h] : other.histograms_) {
        auto [it, inserted] = histograms_.try_emplace(name, h.bounds());
        it->second.merge(h);
    }
}

json::value registry::snapshot() const
{
    json::object root;

    if (!counters_.empty()) {
        json::object out;
        for (const auto& [name, c] : counters_) {
            out.emplace(name, json::value{static_cast<double>(c.value())});
        }
        root.emplace("counters", json::value{std::move(out)});
    }

    if (!gauges_.empty()) {
        json::object out;
        for (const auto& [name, g] : gauges_) {
            out.emplace(name, json::value{g.value()});
        }
        root.emplace("gauges", json::value{std::move(out)});
    }

    if (!histograms_.empty()) {
        json::object out;
        for (const auto& [name, h] : histograms_) {
            json::object rec;
            rec.emplace("count", json::value{static_cast<double>(h.count())});
            rec.emplace("sum", json::value{h.sum()});
            rec.emplace("max", json::value{h.max()});
            json::array bounds;
            for (const double b : h.bounds()) bounds.push_back(json::value{b});
            rec.emplace("bounds", json::value{std::move(bounds)});
            json::array counts;
            for (const std::uint64_t n : h.bucket_counts()) {
                counts.push_back(json::value{static_cast<double>(n)});
            }
            rec.emplace("counts", json::value{std::move(counts)});
            out.emplace(name, json::value{std::move(rec)});
        }
        root.emplace("histograms", json::value{std::move(out)});
    }

    return json::value{std::move(root)};
}

std::string registry::to_json() const { return json::dump(snapshot()); }

}  // namespace jsk::obs
