#include "obs/metrics.h"

namespace jsk::obs {

namespace json = kernel::json;

json::value registry::snapshot() const
{
    json::object root;

    if (!counters_.empty()) {
        json::object out;
        for (const auto& [name, c] : counters_) {
            out.emplace(name, json::value{static_cast<double>(c.value())});
        }
        root.emplace("counters", json::value{std::move(out)});
    }

    if (!gauges_.empty()) {
        json::object out;
        for (const auto& [name, g] : gauges_) {
            out.emplace(name, json::value{g.value()});
        }
        root.emplace("gauges", json::value{std::move(out)});
    }

    if (!histograms_.empty()) {
        json::object out;
        for (const auto& [name, h] : histograms_) {
            json::object rec;
            rec.emplace("count", json::value{static_cast<double>(h.count())});
            rec.emplace("sum", json::value{h.sum()});
            rec.emplace("max", json::value{h.max()});
            json::array bounds;
            for (const double b : h.bounds()) bounds.push_back(json::value{b});
            rec.emplace("bounds", json::value{std::move(bounds)});
            json::array counts;
            for (const std::uint64_t n : h.bucket_counts()) {
                counts.push_back(json::value{static_cast<double>(n)});
            }
            rec.emplace("counts", json::value{std::move(counts)});
            out.emplace(name, json::value{std::move(rec)});
        }
        root.emplace("histograms", json::value{std::move(out)});
    }

    return json::value{std::move(root)};
}

std::string registry::to_json() const { return json::dump(snapshot()); }

}  // namespace jsk::obs
