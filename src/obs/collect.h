// jsk::obs — collectors: copy the intrinsic counters that the hot paths
// maintain (simulation, kernel event queues, CVE monitors) into a metrics
// registry, and bridge the runtime event bus onto a trace sink.
//
// The split keeps instrumentation cost where it belongs: the hot paths bump
// plain integers (always on, nanoseconds), and everything string- or
// JSON-shaped happens here, on demand, after the run.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace jsk::sim {
class simulation;
}
namespace jsk::kernel {
class kernel;
}
namespace jsk::rt {
class browser;
class vuln_registry;
}
namespace jsk::faults {
class injector;
}
namespace jsk::core {
struct fork_stats;
}
namespace jsk::sim::explore {
struct result;
}

namespace jsk::obs {

/// Simulator counters: tasks executed, pending/peak backlog, thread count,
/// hooked steps, and the candidate-window size histogram
/// (sim.candidate_window — how wide the co-enabled set was at each hooked
/// scheduling point).
void collect_sim(registry& reg, const sim::simulation& s);

/// Kernel counters, aggregated over `k` and all its (transitive) worker
/// kernels: API calls, events dispatched, journal entries, policy
/// checks/denials, and the event-queue telemetry (pushes, peak size,
/// compactions, current depth).
void collect_kernel(registry& reg, kernel::kernel& k);

/// CVE monitor state: monitors installed, monitors currently triggered.
void collect_vulns(registry& reg, const rt::vuln_registry& vulns);

/// Fault-injection telemetry: decisions consulted, faults injected, and the
/// per-kind breakdown (fetch timeout/reset/partial/spike, worker spawn
/// failures/crashes, message drops/duplicates/delays).
void collect_faults(registry& reg, const faults::injector& inj);

/// Snapshot/fork telemetry (jsk::core): worlds sealed, forks served,
/// restores, pages scanned/copied back, COW write-faults, image high-water.
/// These counts depend on worker claim order and snapshot-cache locality,
/// so they go into bench/diagnostic registries only — never into a
/// per-trial registry that feeds a byte-compared matrix artifact.
void collect_core(registry& reg, const core::fork_stats& st);

/// Schedule-exploration outcome: schedules run, subtrees pruned by DPOR,
/// witness found/exhausted flags, and (coverage-guided mode) distinct
/// interleaving classes seen plus walks that reached novel behaviour.
void collect_explore(registry& reg, const sim::explore::result& r);

/// Subscribe a bridge on the browser's event bus that forwards every runtime
/// announcement (postMessage send/recv, fetch issue/complete/abort, worker
/// lifecycle, storage access, page reload) to `s` as instant events. The
/// bus has no unsubscribe, so `s` must outlive `b`. Returns the number of
/// event kinds the bridge maps (for tests).
std::size_t wire_runtime(sink& s, rt::browser& b);

}  // namespace jsk::obs
