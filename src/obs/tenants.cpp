#include "obs/tenants.h"

namespace jsk::obs {

registry tenant_set::merged() const
{
    registry total;
    for (const auto& [id, reg] : tenants_) total.merge(reg);
    return total;
}

kernel::json::value tenant_set::snapshot() const
{
    namespace json = kernel::json;
    json::object per_tenant;
    for (const auto& [id, reg] : tenants_) per_tenant.emplace(id, reg.snapshot());
    json::object root;
    root.emplace("tenants", json::value{std::move(per_tenant)});
    root.emplace("total", merged().snapshot());
    return json::value{std::move(root)};
}

std::string tenant_set::to_json() const
{
    return kernel::json::dump(snapshot());
}

}  // namespace jsk::obs
