#include "obs/chrome_export.h"

#include <cstdio>
#include <fstream>

namespace jsk::obs {

namespace {

void append_escaped(std::string& out, std::string_view s)
{
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
}

/// Virtual nanoseconds as fixed-point microseconds ("12.345"): the trace
/// format's ts unit is microseconds, and fixed three decimals keeps the
/// rendering integer-derived (no floating point anywhere near a timestamp).
void append_us(std::string& out, sim::time_ns t)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                  static_cast<long long>(t / 1000),
                  static_cast<long long>(t < 0 ? -(t % 1000) : t % 1000));
    out += buf;
}

void append_arg_value(std::string& out, const arg& a)
{
    char buf[64];
    switch (a.k) {
        case arg::kind::i64:
            std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(a.i));
            out += buf;
            break;
        case arg::kind::f64:
            std::snprintf(buf, sizeof(buf), "%.17g", a.d);
            out += buf;
            break;
        case arg::kind::text:
            out += '"';
            append_escaped(out, a.s);
            out += '"';
            break;
    }
}

}  // namespace

std::string to_chrome_trace(const sink& s, const std::string& other_data_json)
{
    std::string out;
    out.reserve(128 + s.events().size() * 96);
    out += "{\"traceEvents\":[\n";

    bool first = true;
    const auto comma = [&out, &first] {
        if (!first) out += ",\n";
        first = false;
    };

    // Metadata: one process for the whole world, one name per sim thread.
    comma();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
           "\"args\":{\"name\":\"jskernel\"}}";
    for (const auto& [tid, name] : s.thread_names()) {
        comma();
        out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
        out += std::to_string(tid);
        out += ",\"args\":{\"name\":\"";
        append_escaped(out, name);
        out += "\"}}";
    }

    for (const trace_event& ev : s.events()) {
        comma();
        out += "{\"name\":\"";
        append_escaped(out, ev.name);
        out += "\",\"cat\":\"";
        out += to_string(ev.cat);
        out += "\",\"ph\":\"";
        out += ev.ph;
        out += "\",\"pid\":1,\"tid\":";
        out += std::to_string(ev.tid);
        out += ",\"ts\":";
        append_us(out, ev.ts);
        if (ev.ph == 'X') {
            out += ",\"dur\":";
            append_us(out, ev.dur);
        }
        if (ev.ph == 'i') out += ",\"s\":\"t\"";  // instant scope: thread
        if (!ev.args.empty()) {
            out += ",\"args\":{";
            for (std::size_t i = 0; i < ev.args.size(); ++i) {
                if (i > 0) out += ',';
                out += '"';
                append_escaped(out, ev.args[i].key);
                out += "\":";
                append_arg_value(out, ev.args[i]);
            }
            out += '}';
        }
        out += '}';
    }

    out += "\n],\"displayTimeUnit\":\"ms\"";
    if (!other_data_json.empty()) {
        out += ",\"otherData\":";
        out += other_data_json;
    }
    out += "}\n";
    return out;
}

bool write_chrome_trace(const sink& s, const std::string& path,
                        const std::string& other_data_json)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
        return false;
    }
    out << to_chrome_trace(s, other_data_json);
    return static_cast<bool>(out);
}

}  // namespace jsk::obs
