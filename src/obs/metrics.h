// jsk::obs — the unified observability subsystem: metrics registry.
//
// Named counters, gauges and histograms for the quantities the benches and
// the trace CLI report: tasks dispatched, queue depths, heap compactions,
// candidate-window sizes, attack trigger counts. Instruments are created on
// first use and live in std::maps, so a snapshot always serializes in name
// order — combined with kernel::json::dump's deterministic rendering, two
// same-seed runs snapshot to identical bytes.
//
// This is a *pull*-model registry: the hot paths keep their own intrinsic
// integer counters (simulation, event_queue, kernel) and the collectors in
// obs/collect.h copy them into a registry on demand. Nothing here is ever
// touched per-task.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kernel/json.h"

namespace jsk::obs {

/// Monotonic count of occurrences.
class counter {
public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    void set(std::uint64_t v) { value_ = v; }
    [[nodiscard]] std::uint64_t value() const { return value_; }

private:
    std::uint64_t value_ = 0;
};

/// Last-written point-in-time value.
class gauge {
public:
    void set(double v) { value_ = v; }
    [[nodiscard]] double value() const { return value_; }

private:
    double value_ = 0;
};

/// Fixed-bound histogram: `bounds` are inclusive upper edges, with an
/// implicit final +inf bucket. Tracks count/sum/max alongside the buckets.
class histogram {
public:
    /// Default bounds: powers of two up to 512 — sized for the discrete
    /// distributions we record (candidate-window sizes, queue depths).
    histogram() : histogram(default_bounds()) {}

    explicit histogram(std::vector<double> bounds)
        : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0)
    {
    }

    void record(double v) { record_n(v, 1); }

    void record_n(double v, std::uint64_t n)
    {
        if (n == 0) return;
        std::size_t b = 0;
        while (b < bounds_.size() && v > bounds_[b]) ++b;
        counts_[b] += n;
        count_ += n;
        sum_ += v * static_cast<double>(n);
        if (count_ == n || v > max_) max_ = v;
    }

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] double sum() const { return sum_; }
    [[nodiscard]] double max() const { return max_; }
    [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
    [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const
    {
        return counts_;
    }

    /// Fold another histogram in bucket-wise. Requires identical bounds
    /// (same instrument recorded by two shards); throws std::invalid_argument
    /// otherwise — silently mis-bucketing would corrupt every percentile.
    void merge(const histogram& other);

    static std::vector<double> default_bounds()
    {
        return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
    }

private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double max_ = 0;
};

/// Instrument store. Instruments are created on first access and keyed by
/// dotted names ("kernel.events_dispatched"); lookups after creation return
/// the same instrument.
class registry {
public:
    counter& get_counter(const std::string& name) { return counters_[name]; }
    gauge& get_gauge(const std::string& name) { return gauges_[name]; }
    histogram& get_histogram(const std::string& name) { return histograms_[name]; }
    histogram& get_histogram(const std::string& name, std::vector<double> bounds)
    {
        auto [it, inserted] = histograms_.try_emplace(name, std::move(bounds));
        return it->second;
    }

    [[nodiscard]] const std::map<std::string, counter>& counters() const
    {
        return counters_;
    }
    [[nodiscard]] const std::map<std::string, gauge>& gauges() const { return gauges_; }
    [[nodiscard]] const std::map<std::string, histogram>& histograms() const
    {
        return histograms_;
    }

    [[nodiscard]] bool empty() const
    {
        return counters_.empty() && gauges_.empty() && histograms_.empty();
    }

    void clear()
    {
        counters_.clear();
        gauges_.clear();
        histograms_.clear();
    }

    /// Fold a per-shard registry into this one: counters add, histograms
    /// merge bucket-wise (bounds must match), and gauges take `other`'s
    /// value (a gauge is "last written wins", so merging shards in
    /// canonical job order reproduces exactly the value a serial run would
    /// have left behind). Parallel sweeps give every shard its own registry
    /// and fold them in job-index order after the join — instruments are
    /// never shared across threads.
    void merge(const registry& other);

    /// The registry as a JSON value:
    ///   {"counters":{name:n,...},
    ///    "gauges":{name:v,...},
    ///    "histograms":{name:{"count":n,"sum":s,"max":m,
    ///                        "bounds":[...],"counts":[...]},...}}
    /// Sections with no instruments are omitted.
    [[nodiscard]] kernel::json::value snapshot() const;

    /// kernel::json::dump(snapshot()) — compact, key-ordered, deterministic.
    [[nodiscard]] std::string to_json() const;

private:
    std::map<std::string, counter> counters_;
    std::map<std::string, gauge> gauges_;
    std::map<std::string, histogram> histograms_;
};

}  // namespace jsk::obs
