#include "obs/collect.h"

#include "core/snapshot.h"
#include "faults/injector.h"
#include "kernel/kernel.h"
#include "runtime/browser.h"
#include "runtime/vuln.h"
#include "sim/explore.h"
#include "sim/simulation.h"

namespace jsk::obs {

void collect_sim(registry& reg, const sim::simulation& s)
{
    reg.get_counter("sim.tasks_executed").set(s.tasks_executed());
    reg.get_counter("sim.peak_pending").set(s.peak_pending());
    reg.get_counter("sim.hooked_steps").set(s.hooked_steps());
    reg.get_gauge("sim.pending_tasks").set(static_cast<double>(s.pending_tasks()));
    reg.get_gauge("sim.queued_entries").set(static_cast<double>(s.queued_entries()));
    reg.get_gauge("sim.threads").set(static_cast<double>(s.thread_count()));

    // The intrinsic per-step tallies become a proper histogram here: bucket k
    // of cand_counts() holds the number of hooked steps that offered k
    // candidates (last bucket = "that many or more").
    const auto& tallies = s.cand_counts();
    std::vector<double> bounds;
    for (std::size_t i = 0; i + 1 < tallies.size(); ++i) {
        bounds.push_back(static_cast<double>(i));
    }
    histogram& h = reg.get_histogram("sim.candidate_window", std::move(bounds));
    for (std::size_t i = 0; i < tallies.size(); ++i) {
        h.record_n(static_cast<double>(i), tallies[i]);
    }
}

namespace {

void collect_kernel_tree(registry& reg, kernel::kernel& k, std::size_t& kernels)
{
    ++kernels;
    reg.get_counter("kernel.api_calls").inc(k.api_calls());
    reg.get_counter("kernel.events_dispatched").inc(k.events_dispatched());
    reg.get_counter("kernel.journal_entries").inc(k.dispatch_journal().size());
    reg.get_counter("kernel.policy_checks").inc(k.policy_checks());
    reg.get_counter("kernel.policy_denials").inc(k.policy_denials());
    reg.get_counter("kernel.fetch_retries").inc(k.fetch_retries());
    reg.get_counter("kernel.policies_quarantined").inc(k.policies_quarantined());
    reg.get_counter("kernel.watchdog_fires").inc(k.disp().watchdog_fires());
    reg.get_counter("kernel.dispatch_exceptions").inc(k.disp().callback_exceptions());

    kernel::event_queue& q = k.queue();
    reg.get_counter("kernel.queue.pushes").inc(q.pushes());
    reg.get_counter("kernel.queue.compactions").inc(q.compactions());
    // Peaks don't sum across kernels; keep the max over the tree.
    counter& peak = reg.get_counter("kernel.queue.peak_size");
    if (q.peak_size() > peak.value()) peak.set(q.peak_size());
    gauge& depth = reg.get_gauge("kernel.queue.depth");
    depth.set(depth.value() + static_cast<double>(q.size()));

    for (const auto& child : k.children()) collect_kernel_tree(reg, *child, kernels);
}

}  // namespace

void collect_kernel(registry& reg, kernel::kernel& k)
{
    std::size_t kernels = 0;
    collect_kernel_tree(reg, k, kernels);
    reg.get_gauge("kernel.instances").set(static_cast<double>(kernels));
}

void collect_vulns(registry& reg, const rt::vuln_registry& vulns)
{
    reg.get_gauge("attack.monitors").set(static_cast<double>(vulns.monitors().size()));
    reg.get_counter("attack.triggered").set(vulns.triggered_ids().size());
}

void collect_faults(registry& reg, const faults::injector& inj)
{
    reg.get_counter("faults.decisions").set(inj.decisions());
    reg.get_counter("faults.injected").set(inj.injected());
    reg.get_counter("faults.fetch_timeouts").set(inj.fetch_timeouts());
    reg.get_counter("faults.fetch_resets").set(inj.fetch_resets());
    reg.get_counter("faults.fetch_partials").set(inj.fetch_partials());
    reg.get_counter("faults.fetch_spikes").set(inj.fetch_spikes());
    reg.get_counter("faults.worker_spawn_fails").set(inj.worker_spawn_fails());
    reg.get_counter("faults.worker_crashes").set(inj.worker_crashes());
    reg.get_counter("faults.msg_drops").set(inj.msg_drops());
    reg.get_counter("faults.msg_duplicates").set(inj.msg_duplicates());
    reg.get_counter("faults.msg_delays").set(inj.msg_delays());
}

void collect_core(registry& reg, const core::fork_stats& st)
{
    reg.get_counter("core.snapshots").set(st.snapshots);
    reg.get_counter("core.forks").set(st.forks);
    reg.get_counter("core.restores").set(st.restores);
    reg.get_counter("core.pages_scanned").set(st.pages_scanned);
    reg.get_counter("core.pages_restored").set(st.pages_restored);
    reg.get_counter("core.bytes_restored").set(st.bytes_restored);
    reg.get_counter("core.cow_faults").set(st.cow_faults);
    reg.get_counter("core.image_bytes").set(st.image_bytes);
}

void collect_explore(registry& reg, const sim::explore::result& r)
{
    reg.get_counter("explore.schedules_run").set(r.schedules_run);
    reg.get_counter("explore.pruned").set(r.pruned);
    reg.get_counter("explore.witness_found").set(r.failing.has_value() ? 1 : 0);
    reg.get_counter("explore.exhausted").set(r.exhausted ? 1 : 0);
    reg.get_counter("explore.coverage_classes").set(r.coverage_classes);
    reg.get_counter("explore.coverage_novel").set(r.coverage_novel);
}

namespace {

struct kind_mapping {
    category cat;
    const char* name;
};

kind_mapping map_kind(rt::rt_event_kind kind)
{
    using k = rt::rt_event_kind;
    switch (kind) {
        case k::worker_created: return {category::worker, "worker:created"};
        case k::worker_script_imported: return {category::worker, "worker:script_imported"};
        case k::worker_terminated: return {category::worker, "worker:terminated"};
        case k::worker_self_closed: return {category::worker, "worker:self_closed"};
        case k::worker_onmessage_assigned:
            return {category::worker, "worker:onmessage_assigned"};
        case k::message_posted: return {category::message, "postMessage:send"};
        case k::message_delivered: return {category::message, "postMessage:recv"};
        case k::transferable_received:
            return {category::message, "postMessage:transferable"};
        case k::fetch_started: return {category::fetch, "fetch:issue"};
        case k::fetch_completed: return {category::fetch, "fetch:complete"};
        case k::fetch_aborted: return {category::fetch, "fetch:abort"};
        case k::fetch_freed: return {category::fetch, "fetch:freed"};
        case k::xhr_request: return {category::fetch, "xhr:request"};
        case k::import_scripts_error: return {category::worker, "importScripts:error"};
        case k::cross_origin_script_imported:
            return {category::worker, "importScripts:cross_origin"};
        case k::worker_error_event: return {category::worker, "worker:error"};
        case k::indexeddb_access: return {category::storage, "idb:access"};
        case k::indexeddb_persisted_private:
            return {category::storage, "idb:persisted_private"};
        case k::page_reload: return {category::page, "page:reload"};
        case k::worker_double_termination:
            return {category::worker, "worker:double_termination"};
        case k::message_after_termination:
            return {category::message, "postMessage:after_termination"};
        case k::terminate_during_dispatch:
            return {category::worker, "worker:terminate_during_dispatch"};
        case k::fetch_failed: return {category::fault, "fetch:failed"};
        case k::message_dropped: return {category::fault, "postMessage:dropped"};
        case k::worker_crashed: return {category::fault, "worker:crashed"};
    }
    return {category::page, "rt:unknown"};
}

constexpr std::size_t mapped_kinds = 25;

}  // namespace

std::size_t wire_runtime(sink& s, rt::browser& b)
{
    b.bus().subscribe([&s](const rt::rt_event& ev) {
        const kind_mapping m = map_kind(ev.kind);
        std::vector<arg> args;
        args.push_back(num("id", ev.subject_id));
        if (!ev.url.empty()) args.push_back(text("url", ev.url));
        if (!ev.origin.empty()) args.push_back(text("origin", ev.origin));
        if (ev.detail_flag) args.push_back(num("flag", 1));
        s.instant(m.cat, ev.thread, ev.at, m.name, std::move(args));
    });
    return mapped_kinds;
}

}  // namespace jsk::obs
