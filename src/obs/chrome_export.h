// Chrome trace-event export for jsk::obs sinks.
//
// Renders the recorded event stream as the JSON object form of the Chrome
// trace-event format — loadable in Perfetto (ui.perfetto.dev) and
// chrome://tracing. The rendering is byte-deterministic: timestamps come
// from virtual nanoseconds formatted as fixed-point microseconds, fields are
// emitted in a fixed order, and floating-point args use round-trip %.17g
// (identical bits -> identical text). Two same-seed runs export identical
// bytes; tests/obs/test_trace_determinism.cpp pins this.
#pragma once

#include <string>

#include "obs/trace.h"

namespace jsk::obs {

/// The complete trace document:
///   {"traceEvents":[...],"displayTimeUnit":"ms"}
/// with process/thread metadata events first, then the event stream in
/// emission order, one event per line (diff- and golden-test-friendly).
/// `other_data_json`, when non-empty, must be a rendered JSON value and is
/// embedded verbatim as the top-level "otherData" field (trace_cli puts the
/// metrics snapshot there).
std::string to_chrome_trace(const sink& s, const std::string& other_data_json = {});

/// Write to_chrome_trace() to `path`. Returns false (and prints to stderr)
/// when the file cannot be written.
bool write_chrome_trace(const sink& s, const std::string& path,
                        const std::string& other_data_json = {});

}  // namespace jsk::obs
