// jsk::obs — the unified observability subsystem: trace sink.
//
// The kernel's claim is that determinism comes from routing all platform
// behaviour through one place; this sink is the window into what that place
// actually did. Components emit typed span ('X') and instant ('i') events —
// task begin/end, kernel register/confirm/cancel/dispatch, timer fires,
// postMessage send/recv, fetch issue/complete, policy decisions, explore
// branch points — stamped exclusively with *virtual* time (sim nanoseconds),
// never a physical clock. Recording is therefore deterministic: two
// same-seed runs emit byte-identical event streams, which makes an exported
// trace a determinism oracle alongside the kernel journal (see
// tests/obs/test_trace_determinism.cpp).
//
// Cost model: every instrumentation point is guarded by a null-pointer check
// on the attached sink, with all argument construction behind the branch, so
// an un-traced run pays one predictable branch per site (the obs-off guard in
// bench_hotpath pins this). The sink itself is header-only so the
// instrumented libraries (sim, kernel, runtime) never link against jsk_obs —
// only consumers of the export/metrics layers do.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace jsk::obs {

/// Event taxonomy. Rendered as the Chrome trace-event `cat` field, so
/// Perfetto can filter per subsystem.
enum class category : std::uint8_t {
    task,     // simulator task spans (the event-loop occupancy timeline)
    kernel,   // scheduler register/confirm/cancel + dispatcher spans
    timer,    // native timer fires
    message,  // postMessage send/recv
    fetch,    // network issue/complete/abort (+ xhr)
    worker,   // worker lifecycle
    storage,  // indexedDB access
    page,     // page-level events (reload)
    policy,   // kernel policy decisions
    attack,   // CVE monitor triggers
    explore,  // schedule-exploration branch points
    fault,    // injected faults + kernel recovery (watchdog, retries)
};

inline const char* to_string(category c)
{
    switch (c) {
        case category::task: return "task";
        case category::kernel: return "kernel";
        case category::timer: return "timer";
        case category::message: return "message";
        case category::fetch: return "fetch";
        case category::worker: return "worker";
        case category::storage: return "storage";
        case category::page: return "page";
        case category::policy: return "policy";
        case category::attack: return "attack";
        case category::explore: return "explore";
        case category::fault: return "fault";
    }
    return "?";
}

/// One typed argument. Values stay typed until export (the trace recorder
/// reads them back; rendering happens only in chrome_export).
struct arg {
    enum class kind : std::uint8_t { i64, f64, text };

    const char* key = "";  // static-duration string at every call site
    kind k = kind::i64;
    std::int64_t i = 0;
    double d = 0;
    std::string s;
};

template <typename T>
    requires std::is_integral_v<T>
arg num(const char* key, T value)
{
    return arg{key, arg::kind::i64, static_cast<std::int64_t>(value), 0, {}};
}

inline arg num(const char* key, double value)
{
    return arg{key, arg::kind::f64, 0, value, {}};
}

inline arg text(const char* key, std::string value)
{
    return arg{key, arg::kind::text, 0, 0, std::move(value)};
}

/// One recorded event. `ph` follows the Chrome trace-event phase letters:
/// 'X' complete span (ts + dur), 'i' instant.
struct trace_event {
    category cat = category::task;
    char ph = 'i';
    std::int32_t tid = 0;
    sim::time_ns ts = 0;
    sim::time_ns dur = 0;  // 'X' only
    std::string name;
    std::vector<arg> args;
};

/// Append-only event store. Attach to a world with
/// `simulation::set_trace_sink(&sink)` (kernel and runtime instrumentation
/// read the sink through their simulation); emission order is the
/// deterministic execution order of the run.
class sink {
public:
    void complete(category cat, std::int32_t tid, sim::time_ns ts, sim::time_ns dur,
                  std::string name, std::vector<arg> args = {})
    {
        events_.push_back(trace_event{cat, 'X', tid, ts, dur < 0 ? 0 : dur,
                                      std::move(name), std::move(args)});
    }

    void instant(category cat, std::int32_t tid, sim::time_ns ts, std::string name,
                 std::vector<arg> args = {})
    {
        events_.push_back(trace_event{cat, 'i', tid, ts, 0, std::move(name),
                                      std::move(args)});
    }

    /// Register (or rename) a thread for the export's metadata events.
    void set_thread_name(std::int32_t tid, std::string name)
    {
        for (auto& [id, existing] : thread_names_) {
            if (id == tid) {
                existing = std::move(name);
                return;
            }
        }
        thread_names_.emplace_back(tid, std::move(name));
    }

    /// Append every event (and any new thread names) from a per-shard sink.
    /// Sinks are single-world objects — parallel sweeps give each job its
    /// own sink and fold them in canonical job order after the join, so the
    /// merged stream is deterministic and never interleaves mid-run.
    /// Existing thread names win on tid collisions (shards of one sweep name
    /// their threads identically anyway).
    void append(const sink& other)
    {
        events_.insert(events_.end(), other.events_.begin(), other.events_.end());
        for (const auto& [tid, name] : other.thread_names_) {
            bool known = false;
            for (const auto& [existing_tid, existing] : thread_names_) {
                if (existing_tid == tid) {
                    known = true;
                    break;
                }
            }
            if (!known) thread_names_.emplace_back(tid, name);
        }
    }

    [[nodiscard]] const std::vector<trace_event>& events() const { return events_; }
    [[nodiscard]] const std::vector<std::pair<std::int32_t, std::string>>&
    thread_names() const
    {
        return thread_names_;
    }
    [[nodiscard]] std::size_t size() const { return events_.size(); }
    [[nodiscard]] bool empty() const { return events_.empty(); }

    void clear()
    {
        events_.clear();
        thread_names_.clear();
    }

private:
    std::vector<trace_event> events_;
    std::vector<std::pair<std::int32_t, std::string>> thread_names_;
};

/// First argument with `key`, or nullptr (trace-consumer queries).
inline const arg* find_arg(const trace_event& ev, const char* key)
{
    for (const arg& a : ev.args) {
        if (std::string_view(a.key) == key) return &a;
    }
    return nullptr;
}

}  // namespace jsk::obs
