#include "attacks/attack.h"

#include "runtime/vuln.h"
#include "sim/stats.h"

namespace jsk::attacks {

attack_outcome timing_attack::run(const run_config& config)
{
    attack_outcome out;
    out.attack = name();
    out.defense = defenses::to_string(config.defense);
    for (int trial = 0; trial < config.trials; ++trial) {
        for (const bool variant : {false, true}) {
            rt::browser b(config.profile,
                          config.seed + static_cast<std::uint64_t>(trial) * 2 + variant);
            auto def = defenses::make_defense(
                config.defense, config.seed + 1'000 + static_cast<std::uint64_t>(trial));
            def->install(b);
            const double m = measure(b, variant);
            (variant ? out.secret_b : out.secret_a).push_back(m);
        }
    }
    out.accuracy = sim::classification_accuracy(out.secret_a, out.secret_b);
    out.prevented = out.accuracy < config.accuracy_threshold;
    return out;
}

attack_outcome cve_attack::run(const run_config& config)
{
    attack_outcome out;
    out.attack = name();
    out.defense = defenses::to_string(config.defense);
    out.is_cve = true;
    rt::browser b(config.profile, config.seed);
    rt::vuln_registry vulns(b.bus());
    auto def = defenses::make_defense(config.defense, config.seed);
    def->install(b);
    exploit(b);
    b.run_until(60 * sim::sec);
    const rt::cve_monitor* monitor = vulns.find(cve_id_);
    out.cve_triggered = monitor != nullptr && monitor->triggered();
    out.prevented = !out.cve_triggered;
    return out;
}

}  // namespace jsk::attacks
