// Implicit-clock measurement helpers shared by the timing attacks.
#pragma once

#include <functional>
#include <memory>

#include "runtime/browser.h"

namespace jsk::attacks {

/// An async operation the adversary measures: it receives a `done` callback
/// it must invoke (from inside the browser) on completion.
using async_op = std::function<void(rt::browser& b, std::function<void()> done)>;

/// Count setTimeout(0)-chain ticks between starting `op` and its completion
/// (the van-Goethem pattern). Runs the browser; returns the tick count.
double count_timeout_ticks_during(rt::browser& b, const async_op& op);

/// Poll performance.now() in chunked loops (64 polls per chunk) until `op`
/// completes; return the number of polls (clock-edge pattern, §IV-A4).
double count_now_polls_during(rt::browser& b, const async_op& op);

/// Observe `frames` animation-frame timestamps while `on_frame(i)` injects
/// per-frame work; return the mean timestamp delta in reported ms.
double mean_raf_interval(rt::browser& b, int frames, const std::function<void(int)>& on_frame);

/// Count media cue events between starting `op` and its completion.
double count_video_cues_during(rt::browser& b, const async_op& op);

}  // namespace jsk::attacks
