#include "attacks/wm_litmus.h"

#include <memory>

#include "defenses/defense.h"
#include "runtime/browser.h"
#include "sim/time.h"

namespace jsk::attacks {

namespace {

namespace explore = sim::explore;

constexpr sim::time_ns k_step = 5 * sim::ms;

/// Shared world assembly: attach the controller first (every task runs under
/// the controlled schedule), switch the memory model, then optionally boot
/// JSKernel — the same order drive_cve_trial uses.
std::unique_ptr<defenses::defense> arm_world(rt::browser& b,
                                             explore::controller& ctl,
                                             wm::mode model, bool with_jskernel,
                                             std::uint64_t browser_seed)
{
    ctl.attach(b.sim());
    b.set_memory_model(model);
    std::unique_ptr<defenses::defense> def;
    if (with_jskernel) {
        def = defenses::make_defense(defenses::defense_id::jskernel, browser_seed);
        def->install(b);
    }
    return def;
}

}  // namespace

explore::program sb_litmus_program(wm::mode model, std::uint64_t browser_seed)
{
    return [model, browser_seed](explore::controller& ctl) {
        rt::browser b{rt::chrome_profile(), browser_seed};
        rt::context& wa = b.create_context("wa", rt::context_kind::worker);
        rt::context& wb = b.create_context("wb", rt::context_kind::worker);
        const auto def = arm_world(b, ctl, model, /*with_jskernel=*/false,
                                   browser_seed);
        auto buf = b.main().apis().create_shared_buffer(2);
        double ra = -1.0;
        double rb = -1.0;
        wa.post_task(k_step, [&] {
            wa.apis().sab_store(buf, 0, 1.0, {});
            ra = wa.apis().sab_load(buf, 1, {});
        });
        wb.post_task(k_step, [&] {
            wb.apis().sab_store(buf, 1, 1.0, {});
            rb = wb.apis().sab_load(buf, 0, {});
        });
        b.run();
        const bool weak = ra == 0.0 && rb == 0.0;
        return explore::run_outcome{weak, "SB: both loads observed 0"};
    };
}

explore::program mp_litmus_program(wm::mode model, bool with_jskernel,
                                   std::uint64_t browser_seed)
{
    return [model, with_jskernel, browser_seed](explore::controller& ctl) {
        rt::browser b{rt::chrome_profile(), browser_seed};
        rt::context& writer = b.create_context("writer", rt::context_kind::worker);
        const auto def = arm_world(b, ctl, model, with_jskernel, browser_seed);
        auto buf = b.main().apis().create_shared_buffer(2);  // [data, flag]
        writer.post_task(k_step, [&] {
            writer.apis().sab_store(buf, 0, 42.0, {});  // data
            writer.apis().sab_store(buf, 1, 1.0, {});   // flag announcement
        });
        double flag = -1.0;
        double data = -1.0;
        b.main().post_task(k_step, [&] {
            flag = b.main().apis().sab_load(buf, 1, {});
            data = b.main().apis().sab_load(buf, 0, {});
        });
        b.run();
        const bool weak = flag == 1.0 && data == 0.0;
        return explore::run_outcome{weak, "MP: flag seen, data stale"};
    };
}

explore::program torn_counter_program(wm::mode model, bool with_jskernel,
                                      std::uint64_t browser_seed)
{
    return [model, with_jskernel, browser_seed](explore::controller& ctl) {
        rt::browser b{rt::chrome_profile(), browser_seed};
        rt::context& ticker = b.create_context("ticker", rt::context_kind::worker);
        const auto def = arm_world(b, ctl, model, with_jskernel, browser_seed);
        auto buf = b.main().apis().create_shared_buffer(1);
        // Two ticks of the 64-bit counter, each as a mixed-size lo/hi half
        // pair — the access shape that makes tearing candidates legal.
        ticker.post_task(k_step, [&] {
            for (double tick = 1.0; tick <= 2.0; tick += 1.0) {
                ticker.apis().sab_store(
                    buf, 0, tick, {wm::ordering::unordered, wm::part::lo});
                ticker.apis().sab_store(
                    buf, 0, tick, {wm::ordering::unordered, wm::part::hi});
            }
        });
        double lo = -1.0;
        double hi = -1.0;
        b.main().post_task(k_step, [&] {
            lo = b.main().apis().sab_load(buf, 0,
                                          {wm::ordering::unordered, wm::part::lo});
            hi = b.main().apis().sab_load(buf, 0,
                                          {wm::ordering::unordered, wm::part::hi});
        });
        b.run();
        const bool torn = lo != hi;
        return explore::run_outcome{torn, "torn counter sample"};
    };
}

}  // namespace jsk::attacks
