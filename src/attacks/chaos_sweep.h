// Chaos-sweep entry points: the CVE matrix and random programs re-run under
// injected faults (jsk::faults).
//
// The robustness claim the sweep backs, per (seed, fault-plan) pair:
//
//   1. Determinism survives chaos — same seed + same plan produce a
//      byte-identical kernel journal and obs trace (faults are part of the
//      deterministic world, not noise on top of it).
//   2. No CVE false negatives under faults — every monitor that fires on the
//      fault-free run still fires when the exploit limps through timeouts,
//      resets, crashes and dropped messages; and under JSKernel no
//      non-destructive plan makes a monitor fire that the kernel blocks.
//   3. No hangs — runs either quiesce before the deadline or show journaled
//      watchdog cancellations; none exhaust the task cap.
//
// A trial here is one fully-assembled world: browser + monitors + injector
// (+ optionally the kernel with its watchdog armed and the retry policy
// installed), run to quiescence with every oracle exported.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/world.h"
#include "faults/plan.h"
#include "obs/metrics.h"
#include "par/cache.h"
#include "sim/time.h"
#include "wm/model.h"

namespace jsk::attacks {

/// Kernel-side hardening knobs for a chaos trial (all active only when the
/// trial boots JSKernel).
struct chaos_options {
    double watchdog_budget_ms = 150.0;  // 0 disables the dispatcher watchdog
    int fetch_retry_attempts = 3;       // 0 disables the retry policy
    double fetch_retry_base_ms = 25.0;
    sim::time_ns deadline = 60 * sim::sec;
    std::uint64_t task_cap = 400'000;  // liveness backstop, never legitimately hit
    /// SAB memory model the trial world runs under (applied per trial, like
    /// the injector — never part of the snapshot recipe). Chaos trials run
    /// uncontrolled, so `relaxed` here exercises the default rf choice
    /// (candidate 0 = committed memory) plus the event-recording overhead;
    /// weak-memory *search* lives in the explore sweep.
    wm::mode model = wm::mode::seqcst;
};

/// Everything a chaos trial yields: the oracle strings (byte-compared across
/// replays) plus the fault/recovery telemetry the invariants assert over.
struct chaos_trial_result {
    bool triggered = false;     // the named CVE monitor fired
    bool hit_task_cap = false;  // liveness violation: simulated work never drained
    std::uint64_t tasks_executed = 0;
    std::uint64_t faults_injected = 0;
    std::uint64_t watchdog_fires = 0;   // summed over the kernel tree
    std::uint64_t fetch_retries = 0;    // summed over the kernel tree
    std::string journal_json;  // root kernel journal ("" when no kernel booted)
    std::string trace_json;    // full Chrome trace of the run
    std::string observations;  // random-program trials only
    /// Per-trial metrics registry (sim + kernel + vuln + fault collectors).
    /// Explicitly per-shard: a parallel sweep folds these with
    /// obs::registry::merge in canonical job order — no shared registry.
    obs::registry metrics;
};

/// One chaos trial of a Table I CVE exploit under `p`. Fresh browser
/// (optionally with JSKernel), monitors attached, injector installed, the
/// documented exploit, run to quiescence. Throws on unknown ids.
chaos_trial_result run_chaos_trial(const std::string& cve_id, bool with_jskernel,
                                   const faults::plan& p,
                                   std::uint64_t browser_seed = 17,
                                   const chaos_options& opt = {});

/// One chaos trial of a seeded random program (workloads::random_program)
/// under `p` — the liveness/determinism half of the sweep, where no monitor
/// is expected to fire but the journal/trace/observation oracles must still
/// replay byte-for-byte.
chaos_trial_result run_chaos_program(std::uint64_t program_seed, bool with_jskernel,
                                     const faults::plan& p,
                                     std::uint64_t browser_seed = 17,
                                     const chaos_options& opt = {});

/// The snapshot recipe a chaos trial's world forks from: browser + monitors
/// + wired trace sink (+ booted kernel with the retry policy when
/// `with_jskernel`). The injector and the program are per-fork — they carry
/// the trial's witness, not the world's.
core::world_recipe chaos_world_recipe(bool with_jskernel, std::uint64_t browser_seed,
                                      const chaos_options& opt);

/// run_chaos_trial against a fork of a sealed chaos_world_recipe snapshot
/// (same with_jskernel/browser_seed/options as the recipe). Must be
/// byte-indistinguishable — journal, trace, metrics, outcome — from the
/// fresh run; tests/sim/test_snapshot_fork.cpp enforces it.
chaos_trial_result run_chaos_trial_forked(core::world_snapshot& snap,
                                          const std::string& cve_id,
                                          const faults::plan& p,
                                          const chaos_options& opt = {},
                                          core::fork_stats* stats = nullptr);

/// run_chaos_program against a fork (see run_chaos_trial_forked).
chaos_trial_result run_chaos_program_forked(core::world_snapshot& snap,
                                            std::uint64_t program_seed,
                                            const faults::plan& p,
                                            const chaos_options& opt = {},
                                            core::fork_stats* stats = nullptr);

// --- sharded chaos matrix (jsk::par) ---------------------------------------

/// One cell of the (CVE x defense x plan) product.
struct chaos_cell {
    std::string cve;
    bool with_jskernel = false;
    faults::plan fault_plan;
    std::uint64_t browser_seed = 17;
};

/// Compact per-cell record: telemetry plus FNV-1a digests of the oracle
/// strings (journal/trace), so a whole matrix fits in memory and the
/// aggregate JSON byte-compares across --jobs counts.
struct chaos_cell_result {
    bool triggered = false;
    bool hit_task_cap = false;
    std::uint64_t tasks_executed = 0;
    std::uint64_t faults_injected = 0;
    std::uint64_t watchdog_fires = 0;
    std::uint64_t fetch_retries = 0;
    std::uint64_t journal_digest = 0;  // fnv1a(journal_json)
    std::uint64_t trace_digest = 0;    // fnv1a(trace_json)
    obs::registry metrics;             // per-shard registry (merged after join)
};

struct chaos_matrix_result {
    std::vector<chaos_cell> cells;          // canonical order, as passed in
    std::vector<chaos_cell_result> results; // results[i] belongs to cells[i]
    obs::registry merged_metrics;           // per-shard registries, folded in order
};

struct chaos_matrix_options {
    std::size_t jobs = 1;  // worker count; 0 = par::default_jobs()
    chaos_options trial;
    /// Optional witness-keyed cache (key: browser seed + plan string +
    /// defense id): repeated sweeps recall finished cells.
    par::result_cache<chaos_cell_result>* cache = nullptr;
    /// Serve cells from per-worker world snapshots (one per defense shape)
    /// instead of assembling a world per cell. Byte-identical output either
    /// way; throughput knob only. Ignored without arena support.
    bool snapshots = true;
    /// Optional fork/restore telemetry (merged over workers after the
    /// join). Never folded into merged_metrics — those are part of the
    /// byte-compared matrix JSON, and fork counts depend on claim order.
    core::fork_stats* fork_stats = nullptr;
};

/// The canonical cell product the sweep and the determinism suite share:
/// first `cves` Table-I rows x {plain, jskernel} x plan::sample(0..plans).
std::vector<chaos_cell> default_chaos_cells(std::size_t cves, std::size_t plans);

/// Run every cell as an isolated job (own browser, injector, trace sink and
/// metrics registry) on the jsk::par driver, then merge in canonical cell
/// order. Byte-identical output for every jobs count.
chaos_matrix_result run_chaos_matrix(const std::vector<chaos_cell>& cells,
                                     const chaos_matrix_options& opt = {});

/// Canonical aggregate serialization (kernel::json dump): per-cell rows in
/// order plus the merged metrics snapshot. A root "memory_model" field is
/// emitted only when `model` is relaxed, keeping seqcst goldens byte-stable.
std::string chaos_matrix_json(const chaos_matrix_result& m,
                              wm::mode model = wm::mode::seqcst);

}  // namespace jsk::attacks
