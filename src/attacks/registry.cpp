#include "attacks/attacks_impl.h"

namespace jsk::attacks {

std::vector<std::unique_ptr<attack>> all_attacks()
{
    std::vector<std::unique_ptr<attack>> out;
    // Table I order: setTimeout-clock rows...
    out.push_back(std::make_unique<cache_attack>());
    out.push_back(std::make_unique<script_parsing>());
    out.push_back(std::make_unique<image_decoding>());
    out.push_back(std::make_unique<clock_edge>());
    // ...rAF/animation rows...
    out.push_back(std::make_unique<history_sniffing>());
    out.push_back(std::make_unique<svg_filtering>());
    out.push_back(std::make_unique<floating_point>());
    out.push_back(std::make_unique<loopscan>());
    out.push_back(std::make_unique<css_animation>());
    out.push_back(std::make_unique<video_vtt>());
    // ...and the CVE rows.
    for (auto& cve : all_cve_attacks()) out.push_back(std::move(cve));
    return out;
}

}  // namespace jsk::attacks
