// The rAF / CSS-animation implicit-clock rows of Table I: history sniffing
// [9], SVG filtering [9], floating point [10], loopscan [11], CSS animation
// [12], video/WebVTT [6].
#include "attacks/attacks_impl.h"
#include "attacks/clocks.h"

namespace jsk::attacks {

namespace sim = jsk::sim;

// --- history sniffing [9]: :visited repaint time ---------------------------------

std::string history_sniffing::name() const { return "History Sniffing"; }
std::string history_sniffing::family() const { return "rAF clock"; }

double history_sniffing::measure(rt::browser& b, bool secret_b)
{
    const std::string target = "https://bank.example/login";
    if (!secret_b) b.history().mark_visited(target);  // A: the user visited it
    // Paint 220 probe links each frame; :visited links take the slow path.
    std::vector<rt::element_ptr> links;
    rt::browser* bp = &b;
    b.main().post_task(0, [bp, &links, target] {
        auto& apis = bp->main().apis();
        for (int i = 0; i < 220; ++i) {
            auto a = apis.create_element("a");
            a->set_attribute_raw("href", target);
            apis.append_child(bp->doc().root(), a);
            links.push_back(a);
        }
    });
    return mean_raf_interval(b, 8, [bp, &links](int) {
        for (const auto& a : links) bp->painter().mark_dirty(a);
    });
}

// --- SVG filtering [9][14]: erode cost depends on the filtered surface -------------

std::string svg_filtering::name() const { return "SVG Filtering"; }
std::string svg_filtering::family() const { return "rAF clock"; }

double svg_filtering::measure_resolution(rt::browser& b, std::uint32_t dim)
{
    const std::string url = "https://victim.example/secret.png";
    b.net().serve(rt::resource{url, "https://victim.example", rt::resource_kind::image,
                               static_cast<std::size_t>(dim) * dim / 4, dim, dim, 0});
    auto img = std::make_shared<rt::element>("img");
    rt::browser* bp = &b;
    b.main().post_task(0, [bp, img, url] {
        auto& apis = bp->main().apis();
        img->set_attribute_raw("src", url);
        img->set_attribute_raw("filter", "erode");
        img->set_attribute_raw("filter-iterations", "24");
        apis.append_child(bp->doc().root(), img);
    });
    return mean_raf_interval(b, 8, [bp, img](int) { bp->painter().mark_dirty(img); });
}

double svg_filtering::measure(rt::browser& b, bool secret_b)
{
    return measure_resolution(b, secret_b ? 512 : 64);
}

// --- floating point [10]: subnormal operands are slow ------------------------------

std::string floating_point::name() const { return "Floating Point"; }
std::string floating_point::family() const { return "rAF clock"; }

double floating_point::measure(rt::browser& b, bool secret_b)
{
    // A filter pipeline processes 90k pixels per frame; when the secret pixel
    // makes operands subnormal, each op pays the subnormal penalty.
    const sim::time_ns per_op =
        secret_b ? b.profile().subnormal_op_penalty + b.profile().cheap_op_cost
                 : b.profile().cheap_op_cost;
    const sim::time_ns frame_work = 90'000 * per_op;
    rt::browser* bp = &b;
    return mean_raf_interval(b, 8,
                             [bp, frame_work](int) { bp->painter().add_paint_work(frame_work); });
}

// --- loopscan [11]: event-loop usage pattern of the victim origin -------------------

std::string loopscan::name() const { return "Loopscan"; }
std::string loopscan::family() const { return "rAF clock"; }

namespace {

struct loopscan_probe {
    long ticks = 0;
    double max_gap = 0.0;
    double last_now = -1.0;
    double start_now = -1.0;
    bool done = false;
};

/// Run the monitoring chain until the *reported* clock advanced 400 ms;
/// records tick count and the largest reported inter-tick gap.
std::shared_ptr<loopscan_probe> run_probe(rt::browser& b,
                                          const workloads::event_profile& victim)
{
    workloads::run_event_profile(b, victim);
    auto probe = std::make_shared<loopscan_probe>();
    rt::browser* bp = &b;
    b.main().post_task(0, [bp, probe] {
        // A 1 ms monitoring interval (the original attack uses a fast
        // self-message loop; the setTimeout nested clamp would blur the
        // victim's task durations).
        auto id = std::make_shared<std::int64_t>(0);
        *id = bp->main().apis().set_interval(
            [bp, probe, id] {
                if (probe->done) return;
                const double now = bp->main().apis().performance_now();
                if (probe->start_now < 0) probe->start_now = now;
                if (probe->last_now >= 0) {
                    probe->max_gap = std::max(probe->max_gap, now - probe->last_now);
                }
                probe->last_now = now;
                ++probe->ticks;
                if (now - probe->start_now >= 400.0) {
                    probe->done = true;
                    bp->main().apis().clear_interval(*id);
                }
            },
            1 * sim::ms);
    });
    b.run_until(120 * sim::sec);
    return probe;
}

}  // namespace

double loopscan::max_event_interval(rt::browser& b, const workloads::event_profile& victim)
{
    return run_probe(b, victim)->max_gap;
}

double loopscan::measure(rt::browser& b, bool secret_b)
{
    // Classification signal: tick throughput inside a clock-delimited window
    // (robust even under coarse explicit clocks).
    const auto victim =
        secret_b ? workloads::youtube_event_profile() : workloads::google_event_profile();
    return static_cast<double>(run_probe(b, victim)->ticks);
}

// --- CSS animation [12]: animation progress as an implicit clock --------------------

std::string css_animation::name() const { return "CSS Animation"; }
std::string css_animation::family() const { return "rAF clock"; }

double css_animation::measure(rt::browser& b, bool secret_b)
{
    // Secret-dependent paint load janks frames; the adversary reads the
    // animation's progress after a fixed number of timer ticks.
    const sim::time_ns frame_work = secret_b ? 30 * sim::ms : 1 * sim::ms;
    struct state {
        double progress = 0.0;
        int ticks_left = 25;
    };
    auto st = std::make_shared<state>();
    auto target = std::make_shared<rt::element>("div");
    rt::browser* bp = &b;
    b.main().post_task(0, [bp, st, target, frame_work] {
        bp->painter().start_animation(target, 600);
        auto tick = std::make_shared<std::function<void()>>();
        *tick = [bp, st, target, frame_work, tick] {
            bp->painter().add_paint_work(frame_work);
            if (--st->ticks_left <= 0) {
                st->progress =
                    std::stod(bp->main().apis().get_attribute(target, "animation-progress"));
                return;
            }
            bp->main().apis().set_timeout([tick] { (*tick)(); }, 10 * sim::ms);
        };
        bp->main().apis().set_timeout([tick] { (*tick)(); }, 10 * sim::ms);
    });
    b.run_until(120 * sim::sec);
    return st->progress;
}

// --- video/WebVTT [6]: cue events as an implicit clock --------------------------------

std::string video_vtt::name() const { return "Video/WebVTT"; }
std::string video_vtt::family() const { return "rAF clock"; }

double video_vtt::measure(rt::browser& b, bool secret_b)
{
    const std::string url = "https://victim.example/probe";
    b.net().serve(rt::resource{url, "https://victim.example", rt::resource_kind::data, 2'048,
                               0, 0, secret_b ? 300 * sim::ms : 50 * sim::ms});
    return count_video_cues_during(b, [url](rt::browser& bb, std::function<void()> done) {
        bb.main().apis().fetch(
            url, {}, [done](const rt::fetch_result&) { done(); },
            [done](const rt::fetch_result&) { done(); });
    });
}

}  // namespace jsk::attacks
