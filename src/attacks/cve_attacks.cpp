// The twelve CVE rows of Table I: exploit drivers encoding the documented
// trigger sequences (§IV-B). Each driver is written against the interposable
// API surface, exactly as page JavaScript would be.
#include "attacks/attacks_impl.h"

#include "runtime/vuln.h"

namespace jsk::attacks {

namespace sim = jsk::sim;

namespace {

using exploit_fn = void (*)(rt::browser&);

class scripted_cve final : public cve_attack {
public:
    scripted_cve(std::string id, exploit_fn fn) : cve_attack(std::move(id)), fn_(fn) {}

protected:
    void exploit(rt::browser& b) override { fn_(b); }

private:
    exploit_fn fn_;
};

void exploit_2018_5092(rt::browser& b)
{
    // Listing 2: fetch in a worker + false termination + abort on teardown.
    b.net().serve(rt::resource{"https://attacker.example/fetchedfile0.html",
                               "https://attacker.example", rt::resource_kind::data, 100'000,
                               0, 0, 0});
    b.register_worker_script("uaf-worker.js", [](rt::context& ctx) {
        rt::abort_controller ctl;
        rt::fetch_options opts;
        opts.signal = ctl.signal;
        ctx.apis().fetch("https://attacker.example/fetchedfile0.html", opts, nullptr,
                         nullptr);
    });
    b.main().post_task(0, [&b] {
        auto w = b.main().apis().create_worker("uaf-worker.js");
        b.main().apis().set_timeout([w] { w->terminate(); }, 5 * sim::ms);
        b.main().apis().set_timeout([&b] { b.main().apis().reload(); }, 10 * sim::ms);
    });
}

void exploit_2017_7843(rt::browser& b)
{
    b.set_private_browsing(true);
    b.main().post_task(0, [&b] {
        b.main().apis().indexeddb_put("fingerprint-db", "uid", rt::js_value{"track-me"});
        (void)b.main().apis().indexeddb_get("fingerprint-db", "uid");
    });
    // End the private session after the page settled.
    b.main().post_task(50 * sim::ms, [&b] { b.end_private_session(); });
}

void exploit_2015_7215(rt::browser& b)
{
    b.set_page_origin("https://attacker.example");
    b.register_worker_script("prober.js", [](rt::context& ctx) {
        ctx.apis().import_scripts({"https://victim.example/302-redirect-target"});
    });
    b.main().post_task(0, [&b] { b.main().apis().create_worker("prober.js"); });
}

void exploit_2014_3194(rt::browser& b)
{
    b.register_worker_script("sink.js", [](rt::context& ctx) {
        ctx.apis().set_self_onmessage([](const rt::message_event&) {});
    });
    b.main().post_task(0, [&b] {
        auto w = b.main().apis().create_worker("sink.js");
        b.main().apis().set_timeout(
            [w] {
                w->post_message(rt::js_value{"in-flight"});
                w->terminate();  // race the delivery
            },
            5 * sim::ms);
    });
}

void exploit_2014_1719(rt::browser& b)
{
    b.register_worker_script("cruncher.js",
                             [](rt::context& ctx) { ctx.consume(200 * sim::ms); });
    b.main().post_task(0, [&b] {
        auto w = b.main().apis().create_worker("cruncher.js");
        b.main().apis().set_timeout([w] { w->terminate(); }, 50 * sim::ms);
    });
}

void exploit_2014_1488(rt::browser& b)
{
    b.register_worker_script("asm-transfer.js", [](rt::context& ctx) {
        auto buf = std::make_shared<rt::array_buffer>();
        buf->data.assign(4'096, 0xab);
        ctx.apis().post_message_to_parent(rt::js_value{buf}, {buf});
        ctx.apis().close_self();  // tear down before delivery
    });
    b.main().post_task(0, [&b] {
        auto w = b.main().apis().create_worker("asm-transfer.js");
        w->set_onmessage([](const rt::message_event&) {});
    });
}

void exploit_2014_1487(rt::browser& b)
{
    b.set_page_origin("https://attacker.example");
    b.main().post_task(0, [&b] {
        auto w = b.main().apis().create_worker("https://victim.example/private.js");
        w->set_onerror([](const std::string&) {});
    });
}

void exploit_2013_6646(rt::browser& b)
{
    b.register_worker_script("chatty.js", [](rt::context& ctx) {
        for (int i = 0; i < 24; ++i) ctx.apis().post_message_to_parent(rt::js_value{i}, {});
    });
    b.main().post_task(0, [&b] {
        auto w = b.main().apis().create_worker("chatty.js");
        w->set_onmessage([&b](const rt::message_event&) { b.main().apis().reload(); });
    });
}

void exploit_2013_5602(rt::browser& b)
{
    b.register_worker_script("sink.js", [](rt::context&) {});
    b.main().post_task(0, [&b] {
        auto w = b.main().apis().create_worker("sink.js");
        w->set_onmessage(nullptr);  // the null-handler assignment
    });
}

void exploit_2013_1714(rt::browser& b)
{
    b.set_page_origin("https://attacker.example");
    b.net().serve(rt::resource{"https://victim.example/mailbox", "https://victim.example",
                               rt::resource_kind::data, 4'096, 0, 0, 0});
    b.register_worker_script("sop-bypass.js", [](rt::context& ctx) {
        ctx.apis().xhr("https://victim.example/mailbox", [](const rt::fetch_result&) {});
    });
    b.main().post_task(0, [&b] { b.main().apis().create_worker("sop-bypass.js"); });
}

void exploit_2011_1190(rt::browser& b)
{
    b.set_page_origin("https://attacker.example");
    b.net().serve(rt::resource{"https://victim.example/internal-lib.js",
                               "https://victim.example", rt::resource_kind::script, 9'000, 0,
                               0, 0});
    b.register_worker_script("source-steal.js", [](rt::context& ctx) {
        ctx.apis().import_scripts({"https://victim.example/internal-lib.js"});
    });
    b.main().post_task(0, [&b] { b.main().apis().create_worker("source-steal.js"); });
}

void exploit_2010_4576(rt::browser& b)
{
    b.register_worker_script("quit.js", [](rt::context& ctx) { ctx.apis().close_self(); });
    b.main().post_task(0, [&b] {
        auto w = b.main().apis().create_worker("quit.js");
        b.main().apis().set_timeout([w] { w->terminate(); }, 50 * sim::ms);
    });
}

constexpr std::pair<const char*, exploit_fn> cve_table[] = {
    {"CVE-2018-5092", exploit_2018_5092}, {"CVE-2017-7843", exploit_2017_7843},
    {"CVE-2015-7215", exploit_2015_7215}, {"CVE-2014-3194", exploit_2014_3194},
    {"CVE-2014-1719", exploit_2014_1719}, {"CVE-2014-1488", exploit_2014_1488},
    {"CVE-2014-1487", exploit_2014_1487}, {"CVE-2013-6646", exploit_2013_6646},
    {"CVE-2013-5602", exploit_2013_5602}, {"CVE-2013-1714", exploit_2013_1714},
    {"CVE-2011-1190", exploit_2011_1190}, {"CVE-2010-4576", exploit_2010_4576},
};

}  // namespace

const std::vector<std::pair<std::string, cve_exploit_fn>>& cve_exploit_table()
{
    static const std::vector<std::pair<std::string, cve_exploit_fn>> table(
        std::begin(cve_table), std::end(cve_table));
    return table;
}

int run_cve_suite_with_kernel(const jsk::kernel::kernel_options& opts)
{
    int triggered = 0;
    for (const auto& [id, fn] : cve_table) {
        rt::browser b(rt::chrome_profile(), 17);
        rt::vuln_registry vulns(b.bus());
        auto def = defenses::make_jskernel_defense(opts);
        def->install(b);
        fn(b);
        b.run_until(60 * sim::sec);
        const rt::cve_monitor* monitor = vulns.find(id);
        if (monitor != nullptr && monitor->triggered()) ++triggered;
    }
    return triggered;
}

std::vector<std::unique_ptr<attack>> all_cve_attacks()
{
    std::vector<std::unique_ptr<attack>> out;
    out.push_back(std::make_unique<scripted_cve>("CVE-2018-5092", exploit_2018_5092));
    out.push_back(std::make_unique<scripted_cve>("CVE-2017-7843", exploit_2017_7843));
    out.push_back(std::make_unique<scripted_cve>("CVE-2015-7215", exploit_2015_7215));
    out.push_back(std::make_unique<scripted_cve>("CVE-2014-3194", exploit_2014_3194));
    out.push_back(std::make_unique<scripted_cve>("CVE-2014-1719", exploit_2014_1719));
    out.push_back(std::make_unique<scripted_cve>("CVE-2014-1488", exploit_2014_1488));
    out.push_back(std::make_unique<scripted_cve>("CVE-2014-1487", exploit_2014_1487));
    out.push_back(std::make_unique<scripted_cve>("CVE-2013-6646", exploit_2013_6646));
    out.push_back(std::make_unique<scripted_cve>("CVE-2013-5602", exploit_2013_5602));
    out.push_back(std::make_unique<scripted_cve>("CVE-2013-1714", exploit_2013_1714));
    out.push_back(std::make_unique<scripted_cve>("CVE-2011-1190", exploit_2011_1190));
    out.push_back(std::make_unique<scripted_cve>("CVE-2010-4576", exploit_2010_4576));
    return out;
}

}  // namespace jsk::attacks
