// The "setTimeout as the implicit clock" rows of Table I: cache attack [7],
// script parsing [8], image decoding [8], clock edge [6].
#include "attacks/attacks_impl.h"
#include "attacks/clocks.h"

namespace jsk::attacks {

namespace sim = jsk::sim;

// --- cache attack [7]: cached vs flushed access latency --------------------------

std::string cache_attack::name() const { return "Cache Attack"; }
std::string cache_attack::family() const { return "setTimeout clock"; }

double cache_attack::measure(rt::browser& b, bool secret_b)
{
    const std::string url = "https://victim.example/shared-asset";
    b.net().serve(rt::resource{url, "https://victim.example", rt::resource_kind::data,
                               262'144, 0, 0, 0});
    if (!secret_b) b.net().prime_cache(url);  // A: content still cached
    return count_timeout_ticks_during(b, [url](rt::browser& bb, std::function<void()> done) {
        bb.main().apis().fetch(
            url, {}, [done](const rt::fetch_result&) { done(); },
            [done](const rt::fetch_result&) { done(); });
    });
}

// --- script parsing [8]: cross-origin resource size via parse time ----------------

std::string script_parsing::name() const { return "Script Parsing"; }
std::string script_parsing::family() const { return "setTimeout clock"; }

double script_parsing::measure_size(rt::browser& b, std::size_t bytes)
{
    const std::string url = "https://victim.example/resource.js";
    b.net().serve(rt::resource{url, "https://victim.example", rt::resource_kind::script,
                               bytes, 0, 0, 0});
    // Uncached: the adversary measures the full download+parse duration
    // (a synchronous parse alone would block the implicit clock entirely).
    return count_timeout_ticks_during(b, [url](rt::browser& bb, std::function<void()> done) {
        auto& apis = bb.main().apis();
        auto script = apis.create_element("script");
        script->set_attribute_raw("src", url);
        script->onload = done;
        script->onerror = [done](const std::string&) { done(); };
        apis.append_child(bb.doc().root(), script);
    });
}

double script_parsing::measure(rt::browser& b, bool secret_b)
{
    return measure_size(b, secret_b ? 5'000'000 : 1'000'000);
}

// --- image decoding [8] -------------------------------------------------------------

std::string image_decoding::name() const { return "Image Decoding"; }
std::string image_decoding::family() const { return "setTimeout clock"; }

double image_decoding::measure(rt::browser& b, bool secret_b)
{
    const std::string url = "https://victim.example/avatar.png";
    const std::uint32_t dim = secret_b ? 2048 : 256;
    b.net().serve(rt::resource{url, "https://victim.example", rt::resource_kind::image,
                               static_cast<std::size_t>(dim) * dim / 4, dim, dim, 0});
    return count_timeout_ticks_during(b, [url](rt::browser& bb, std::function<void()> done) {
        auto& apis = bb.main().apis();
        auto img = apis.create_element("img");
        img->set_attribute_raw("src", url);
        img->onload = done;
        img->onerror = [done](const std::string&) { done(); };
        apis.append_child(bb.doc().root(), img);
    });
}

// --- clock edge [6]: performance.now polling builds a fine clock --------------------

std::string clock_edge::name() const { return "Clock Edge"; }
std::string clock_edge::family() const { return "setTimeout clock"; }

double clock_edge::measure(rt::browser& b, bool secret_b)
{
    // §IV-A4: measure a *cheap* synchronous operation by interpolating
    // within one tick of the coarse explicit clock. The adversary (i) counts
    // polls per clock edge to calibrate, (ii) aligns to an edge, (iii) runs
    // the secret op, (iv) counts polls to the next edge; the deficit is the
    // op's duration in poll units.
    const sim::time_ns secret = secret_b ? 100 * sim::us : 20 * sim::us;
    double estimated_ms = 0.0;
    rt::browser* bp = &b;
    b.main().post_task(0, [bp, secret, &estimated_ms] {
        auto& apis = bp->main().apis();
        const sim::time_ns op_cost = bp->profile().cheap_op_cost;
        constexpr long max_polls = 6'000'000;  // safety bound
        long safety = max_polls;
        const auto poll = [&]() -> double {
            bp->main().consume(op_cost);
            --safety;
            return apis.performance_now();
        };
        const auto next_edge = [&](double from) -> double {
            double cur = from;
            while (cur == from && safety > 0) cur = poll();
            return cur;
        };
        // Calibration: average polls per edge over several edges.
        double edge_value = next_edge(poll());
        long calib_polls = 0;
        double calib_start = edge_value;
        const int calib_edges = 2;
        for (int e = 0; e < calib_edges && safety > 0; ++e) {
            const double base = edge_value;
            while (edge_value == base && safety > 0) {
                edge_value = poll();
                ++calib_polls;
            }
        }
        const double polls_per_edge =
            std::max(1.0, static_cast<double>(calib_polls) / calib_edges);
        const double edge_ms =
            std::max(1e-9, (edge_value - calib_start) / calib_edges);
        // Align to an edge, run the secret op, count polls to the next edge.
        const double aligned = next_edge(edge_value);
        bp->main().consume(secret);
        double cur = aligned;
        long q = 0;
        while (cur == aligned && safety > 0) {
            cur = poll();
            ++q;
        }
        // Poll deficit -> estimated duration (modulo full edges, which the
        // adversary recovers by also diffing the displayed values).
        const double whole_edges = std::max(0.0, (cur - aligned) / edge_ms - 1.0);
        estimated_ms =
            whole_edges * edge_ms +
            (1.0 - static_cast<double>(q) / polls_per_edge) * edge_ms;
    });
    b.run();
    return estimated_ms;
}

}  // namespace jsk::attacks
