// Concrete attack classes (internal header shared by the per-family
// translation units, the registry, and the benchmark harnesses — some
// benches need direct access to parameterized measurements, e.g. Figure 2's
// size sweep or Table II's raw values).
#pragma once

#include "attacks/attack.h"
#include "workloads/sites.h"

namespace jsk::attacks {

// --- setTimeout-clock family (timing_attacks.cpp) ---

class cache_attack final : public timing_attack {
public:
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::string family() const override;

protected:
    double measure(rt::browser& b, bool secret_b) override;
};

class script_parsing final : public timing_attack {
public:
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::string family() const override;
    /// Figure 2: reported parsing time for an arbitrary file size, in ticks.
    double measure_size(rt::browser& b, std::size_t bytes);

protected:
    double measure(rt::browser& b, bool secret_b) override;
};

class image_decoding final : public timing_attack {
public:
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::string family() const override;

protected:
    double measure(rt::browser& b, bool secret_b) override;
};

class clock_edge final : public timing_attack {
public:
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::string family() const override;

protected:
    double measure(rt::browser& b, bool secret_b) override;
};

// --- rAF/animation-clock family (raf_attacks.cpp) ---

class history_sniffing final : public timing_attack {
public:
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::string family() const override;

protected:
    double measure(rt::browser& b, bool secret_b) override;
};

class svg_filtering final : public timing_attack {
public:
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::string family() const override;
    /// Table II: averaged measured image-load (frame) time in reported ms.
    double measure_resolution(rt::browser& b, std::uint32_t dim);

protected:
    double measure(rt::browser& b, bool secret_b) override;
};

class floating_point final : public timing_attack {
public:
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::string family() const override;

protected:
    double measure(rt::browser& b, bool secret_b) override;
};

class loopscan final : public timing_attack {
public:
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::string family() const override;
    /// Table II: maximum measured event interval (reported ms) while the
    /// given victim profile runs.
    double max_event_interval(rt::browser& b, const workloads::event_profile& victim);

protected:
    double measure(rt::browser& b, bool secret_b) override;
};

class css_animation final : public timing_attack {
public:
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::string family() const override;

protected:
    double measure(rt::browser& b, bool secret_b) override;
};

class video_vtt final : public timing_attack {
public:
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::string family() const override;

protected:
    double measure(rt::browser& b, bool secret_b) override;
};

// --- CVE exploits (cve_attacks.cpp) ---

/// Exploit driver type: runs the documented trigger sequence on a prepared
/// browser.
std::vector<std::unique_ptr<attack>> all_cve_attacks();

/// Ablation hook: run every CVE exploit against a kernel configured with
/// `opts` (instead of the default jskernel defense) and return how many
/// triggered.
int run_cve_suite_with_kernel(const jsk::kernel::kernel_options& opts);

/// The documented exploit drivers keyed by CVE id, paper order — direct
/// access for harnesses that must control the browser themselves (the
/// schedule-exploration sweep in explore_sweep.h).
using cve_exploit_fn = void (*)(rt::browser&);
const std::vector<std::pair<std::string, cve_exploit_fn>>& cve_exploit_table();

}  // namespace jsk::attacks
