#include "attacks/chaos_sweep.h"

#include <memory>
#include <stdexcept>
#include <utility>

#include "attacks/attacks_impl.h"
#include "faults/injector.h"
#include "kernel/kernel.h"
#include "obs/chrome_export.h"
#include "obs/collect.h"
#include "obs/trace.h"
#include "runtime/browser.h"
#include "runtime/vuln.h"
#include "workloads/random_program.h"

namespace jsk::attacks {

namespace {

cve_exploit_fn find_exploit(const std::string& cve_id)
{
    for (const auto& [id, fn] : cve_exploit_table()) {
        if (id == cve_id) return fn;
    }
    throw std::invalid_argument("unknown CVE id: " + cve_id);
}

void sum_kernel_tree(kernel::kernel& k, chaos_trial_result& r)
{
    r.watchdog_fires += k.disp().watchdog_fires();
    r.fetch_retries += k.fetch_retries();
    for (const auto& child : k.children()) sum_kernel_tree(*child, r);
}

/// The shared trial body: assemble the world, run `drive`, harvest oracles.
chaos_trial_result run_trial(const std::string& cve_id, std::uint64_t program_seed,
                             bool random_program, bool with_jskernel,
                             const faults::plan& p, std::uint64_t browser_seed,
                             const chaos_options& opt)
{
    rt::browser b(rt::chrome_profile(), browser_seed);
    rt::vuln_registry vulns(b.bus());

    obs::sink sink;
    b.sim().set_trace_sink(&sink);
    obs::wire_runtime(sink, b);
    vulns.set_trace_sink(&sink);

    faults::injector inj(p);
    b.set_fault_injector(&inj);

    std::unique_ptr<kernel::kernel> kern;
    if (with_jskernel) {
        kernel::kernel_options ko;
        ko.watchdog_budget_ms = opt.watchdog_budget_ms;
        kern = kernel::kernel::boot(b, ko);
        if (opt.fetch_retry_attempts > 0) {
            kern->add_policy(kernel::make_policy_fetch_retry(
                opt.fetch_retry_attempts, opt.fetch_retry_base_ms));
        }
    }

    auto log = std::make_shared<workloads::observation_log>();
    if (random_program) {
        workloads::install_random_program(b, program_seed, log);
    } else {
        find_exploit(cve_id)(b);
    }
    b.run_until(opt.deadline, opt.task_cap);

    chaos_trial_result r;
    r.tasks_executed = b.sim().tasks_executed();
    r.hit_task_cap = r.tasks_executed >= opt.task_cap;
    r.faults_injected = inj.injected();
    if (!random_program) {
        const rt::cve_monitor* monitor = vulns.find(cve_id);
        r.triggered = monitor != nullptr && monitor->triggered();
    }
    if (kern) {
        sum_kernel_tree(*kern, r);
        r.journal_json = kern->dispatch_journal().to_json();
    }
    r.trace_json = obs::to_chrome_trace(sink);
    if (random_program) r.observations = log->str();

    // The sink dies with this frame; detach before the browser's teardown
    // tasks could touch it.
    b.sim().set_trace_sink(nullptr);
    vulns.set_trace_sink(nullptr);
    return r;
}

}  // namespace

chaos_trial_result run_chaos_trial(const std::string& cve_id, bool with_jskernel,
                                   const faults::plan& p, std::uint64_t browser_seed,
                                   const chaos_options& opt)
{
    return run_trial(cve_id, 0, /*random_program=*/false, with_jskernel, p,
                     browser_seed, opt);
}

chaos_trial_result run_chaos_program(std::uint64_t program_seed, bool with_jskernel,
                                     const faults::plan& p, std::uint64_t browser_seed,
                                     const chaos_options& opt)
{
    return run_trial({}, program_seed, /*random_program=*/true, with_jskernel, p,
                     browser_seed, opt);
}

}  // namespace jsk::attacks
