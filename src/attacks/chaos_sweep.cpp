#include "attacks/chaos_sweep.h"

#include <memory>
#include <stdexcept>
#include <utility>

#include "attacks/attacks_impl.h"
#include "faults/injector.h"
#include "kernel/json.h"
#include "kernel/kernel.h"
#include "obs/chrome_export.h"
#include "obs/collect.h"
#include "obs/trace.h"
#include "par/sweep.h"
#include "par/worker_local.h"
#include "runtime/browser.h"
#include "runtime/vuln.h"
#include "workloads/random_program.h"

namespace jsk::attacks {

namespace {

cve_exploit_fn find_exploit(const std::string& cve_id)
{
    for (const auto& [id, fn] : cve_exploit_table()) {
        if (id == cve_id) return fn;
    }
    throw std::invalid_argument("unknown CVE id: " + cve_id);
}

void sum_kernel_tree(kernel::kernel& k, chaos_trial_result& r)
{
    r.watchdog_fires += k.disp().watchdog_fires();
    r.fetch_retries += k.fetch_retries();
    for (const auto& child : k.children()) sum_kernel_tree(*child, r);
}

/// Per-trial state the harvest still needs after the run: the injector (a
/// raw pointer — arena-owned on the forked path, deleted by the fresh path)
/// and the observation log (held as a shared_ptr so it survives until
/// harvest even when every task closure that co-owned it has run and
/// released its copy). On the forked path both land in the arena; a fork's
/// trial_refs must therefore be destroyed before the fork restores.
struct trial_refs {
    faults::injector* inj = nullptr;
    std::shared_ptr<workloads::observation_log> log;
};

/// The mutation half of a chaos trial, shared verbatim by the fresh and the
/// forked paths: attach the injector, install the program, run to the
/// deadline (relative to now() — zero on bare worlds, matching the
/// historical absolute deadline). The exploit pointer is resolved by the
/// caller, outside any arena scope.
trial_refs drive_chaos_trial(core::world& w, cve_exploit_fn exploit,
                             std::uint64_t program_seed, bool random_program,
                             const faults::plan& p, const chaos_options& opt)
{
    trial_refs refs;
    refs.inj = new faults::injector(p);
    w.browser.set_fault_injector(refs.inj);
    // Memory model is per-trial world state, like the injector: set inside
    // the (rolled-back) fork on the snapshot path, so one snapshot serves
    // both models.
    w.browser.set_memory_model(opt.model);
    if (random_program) {
        refs.log = std::make_shared<workloads::observation_log>();
        workloads::install_random_program(w.browser, program_seed, refs.log);
    } else {
        exploit(w.browser);
    }
    w.browser.run_until(w.browser.sim().now() + opt.deadline, opt.task_cap);
    return refs;
}

/// The harvest half: everything here allocates into the caller's heap, so
/// forked callers run it with the arena scope off (world bytes still live).
chaos_trial_result harvest_chaos_trial(core::world& w, const trial_refs& refs,
                                       const std::string& cve_id,
                                       bool random_program, const chaos_options& opt)
{
    chaos_trial_result r;
    r.tasks_executed = w.browser.sim().tasks_executed();
    r.hit_task_cap = r.tasks_executed >= opt.task_cap;
    r.faults_injected = refs.inj->injected();
    if (!random_program) {
        const rt::cve_monitor* monitor = w.vulns.find(cve_id);
        r.triggered = monitor != nullptr && monitor->triggered();
    }
    if (w.kern) {
        sum_kernel_tree(*w.kern, r);
        r.journal_json = w.kern->dispatch_journal().to_json();
    }
    r.trace_json = obs::to_chrome_trace(w.sink);
    if (random_program) r.observations = refs.log->str();

    // Per-trial (= per-shard) metrics: collected here, into this trial's own
    // registry, while the world is still alive. Sweeps fold these after the
    // parallel join; nothing obs-shaped is ever shared across jobs. Fork
    // telemetry (obs::collect_core) deliberately never lands here — these
    // registries feed the byte-compared matrix JSON.
    obs::collect_sim(r.metrics, w.browser.sim());
    if (w.kern) obs::collect_kernel(r.metrics, *w.kern);
    obs::collect_vulns(r.metrics, w.vulns);
    obs::collect_faults(r.metrics, *refs.inj);
    return r;
}

chaos_trial_result run_trial(const std::string& cve_id, std::uint64_t program_seed,
                             bool random_program, bool with_jskernel,
                             const faults::plan& p, std::uint64_t browser_seed,
                             const chaos_options& opt)
{
    const cve_exploit_fn exploit = random_program ? nullptr : find_exploit(cve_id);
    core::world w(chaos_world_recipe(with_jskernel, browser_seed, opt));
    const trial_refs refs = drive_chaos_trial(w, exploit, program_seed,
                                              random_program, p, opt);
    chaos_trial_result r = harvest_chaos_trial(w, refs, cve_id, random_program, opt);
    delete refs.inj;
    return r;
}

chaos_trial_result run_trial_forked(core::world_snapshot& snap,
                                    const std::string& cve_id,
                                    std::uint64_t program_seed, bool random_program,
                                    const faults::plan& p, const chaos_options& opt,
                                    core::fork_stats* stats)
{
    // Resolve everything that lazily initializes process state before the
    // arena scope opens: the exploit table and the fault-plan field table
    // are function-local statics whose first-touch must not be rolled back.
    const cve_exploit_fn exploit = random_program ? nullptr : find_exploit(cve_id);
    (void)p.str();

    core::fork fk(snap, stats);
    core::world& w = core::snapshot_anchor(snap);
    trial_refs refs;
    fk.step([&] {
        refs = drive_chaos_trial(w, exploit, program_seed, random_program, p, opt);
    });
    return harvest_chaos_trial(w, refs, cve_id, random_program, opt);
}

}  // namespace

core::world_recipe chaos_world_recipe(bool with_jskernel, std::uint64_t browser_seed,
                                      const chaos_options& opt)
{
    core::world_recipe recipe;
    recipe.browser_seed = browser_seed;
    recipe.with_trace = true;
    recipe.boot_kernel = with_jskernel;
    recipe.watchdog_budget_ms = opt.watchdog_budget_ms;
    recipe.fetch_retry_attempts = opt.fetch_retry_attempts;
    recipe.fetch_retry_base_ms = opt.fetch_retry_base_ms;
    return recipe;
}

chaos_trial_result run_chaos_trial(const std::string& cve_id, bool with_jskernel,
                                   const faults::plan& p, std::uint64_t browser_seed,
                                   const chaos_options& opt)
{
    return run_trial(cve_id, 0, /*random_program=*/false, with_jskernel, p,
                     browser_seed, opt);
}

chaos_trial_result run_chaos_program(std::uint64_t program_seed, bool with_jskernel,
                                     const faults::plan& p, std::uint64_t browser_seed,
                                     const chaos_options& opt)
{
    return run_trial({}, program_seed, /*random_program=*/true, with_jskernel, p,
                     browser_seed, opt);
}

chaos_trial_result run_chaos_trial_forked(core::world_snapshot& snap,
                                          const std::string& cve_id,
                                          const faults::plan& p,
                                          const chaos_options& opt,
                                          core::fork_stats* stats)
{
    return run_trial_forked(snap, cve_id, 0, /*random_program=*/false, p, opt, stats);
}

chaos_trial_result run_chaos_program_forked(core::world_snapshot& snap,
                                            std::uint64_t program_seed,
                                            const faults::plan& p,
                                            const chaos_options& opt,
                                            core::fork_stats* stats)
{
    return run_trial_forked(snap, {}, program_seed, /*random_program=*/true, p, opt,
                            stats);
}

// --- sharded chaos matrix ---------------------------------------------------

std::vector<chaos_cell> default_chaos_cells(std::size_t cves, std::size_t plans)
{
    std::vector<std::string> ids;
    for (const auto& [id, fn] : cve_exploit_table()) ids.push_back(id);
    if (cves < ids.size()) ids.resize(cves);

    std::vector<chaos_cell> cells;
    for (const auto& id : ids) {
        for (const bool with_kernel : {false, true}) {
            for (std::size_t plan_index = 0; plan_index < plans; ++plan_index) {
                chaos_cell cell;
                cell.cve = id;
                cell.with_jskernel = with_kernel;
                cell.fault_plan = faults::plan::sample(plan_index);
                cells.push_back(std::move(cell));
            }
        }
    }
    return cells;
}

chaos_matrix_result run_chaos_matrix(const std::vector<chaos_cell>& cells,
                                     const chaos_matrix_options& opt)
{
    const bool use_snapshots = opt.snapshots && core::arena::supported();
    const std::size_t workers = opt.jobs == 0 ? par::default_jobs() : opt.jobs;
    par::worker_local<core::snapshot_cache> snaps(workers);
    par::worker_local<core::fork_stats> fork_stats(workers);

    const auto run_cell = [&](std::size_t job,
                              const par::worker_context& ctx) -> chaos_cell_result {
        const chaos_cell& cell = cells[job];
        par::witness_key key;
        if (opt.cache != nullptr) {
            key.seed = cell.browser_seed;
            key.plan = cell.fault_plan.str();
            key.defense = cell.with_jskernel ? "jskernel" : "plain";
            key.program = cell.cve + wm::program_tag(opt.trial.model);
            if (const auto hit = opt.cache->lookup(key)) return *hit;
        }

        chaos_trial_result trial;
        if (use_snapshots) {
            core::fork_stats& st = fork_stats.get(ctx.worker_id);
            core::world_snapshot& snap = snaps.get(ctx.worker_id)
                .get(chaos_world_recipe(cell.with_jskernel, cell.browser_seed, opt.trial),
                     &st);
            trial = run_chaos_trial_forked(snap, cell.cve, cell.fault_plan, opt.trial,
                                           &st);
        } else {
            trial = run_chaos_trial(cell.cve, cell.with_jskernel, cell.fault_plan,
                                    cell.browser_seed, opt.trial);
        }
        chaos_cell_result r;
        r.triggered = trial.triggered;
        r.hit_task_cap = trial.hit_task_cap;
        r.tasks_executed = trial.tasks_executed;
        r.faults_injected = trial.faults_injected;
        r.watchdog_fires = trial.watchdog_fires;
        r.fetch_retries = trial.fetch_retries;
        r.journal_digest = par::fnv1a(trial.journal_json);
        r.trace_digest = par::fnv1a(trial.trace_json);
        r.metrics = trial.metrics;
        if (opt.cache != nullptr) opt.cache->insert(key, r);
        return r;
    };

    par::sweep_options sopt;
    sopt.jobs = opt.jobs;
    chaos_matrix_result m;
    m.cells = cells;
    m.results = par::sweep<chaos_cell_result>(cells.size(), run_cell, sopt);
    if (opt.fork_stats != nullptr) {
        fork_stats.for_each([&](const core::fork_stats& st) { opt.fork_stats->merge(st); });
    }
    // Canonical-order fold of the per-shard registries.
    for (const auto& r : m.results) m.merged_metrics.merge(r.metrics);
    return m;
}

std::string chaos_matrix_json(const chaos_matrix_result& m, wm::mode model)
{
    namespace json = kernel::json;
    json::array rows;
    for (std::size_t i = 0; i < m.results.size(); ++i) {
        const chaos_cell& cell = m.cells[i];
        const chaos_cell_result& r = m.results[i];
        json::object rec;
        rec.emplace("cve", json::value{cell.cve});
        rec.emplace("defense",
                    json::value{std::string(cell.with_jskernel ? "jskernel" : "plain")});
        rec.emplace("plan", json::value{cell.fault_plan.str()});
        rec.emplace("triggered", json::value{r.triggered});
        rec.emplace("hit_task_cap", json::value{r.hit_task_cap});
        rec.emplace("tasks_executed", json::value{static_cast<double>(r.tasks_executed)});
        rec.emplace("faults_injected",
                    json::value{static_cast<double>(r.faults_injected)});
        rec.emplace("watchdog_fires", json::value{static_cast<double>(r.watchdog_fires)});
        rec.emplace("fetch_retries", json::value{static_cast<double>(r.fetch_retries)});
        rec.emplace("journal_digest", json::value{std::to_string(r.journal_digest)});
        rec.emplace("trace_digest", json::value{std::to_string(r.trace_digest)});
        rows.push_back(json::value{std::move(rec)});
    }
    json::object root;
    root.emplace("cells", json::value{std::move(rows)});
    if (model == wm::mode::relaxed) {
        root.emplace("memory_model", json::value{std::string(wm::to_string(model))});
    }
    root.emplace("metrics", m.merged_metrics.snapshot());
    return json::dump(json::value{std::move(root)});
}

}  // namespace jsk::attacks
