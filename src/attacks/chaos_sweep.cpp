#include "attacks/chaos_sweep.h"

#include <memory>
#include <stdexcept>
#include <utility>

#include "attacks/attacks_impl.h"
#include "faults/injector.h"
#include "kernel/json.h"
#include "kernel/kernel.h"
#include "obs/chrome_export.h"
#include "obs/collect.h"
#include "obs/trace.h"
#include "par/sweep.h"
#include "runtime/browser.h"
#include "runtime/vuln.h"
#include "workloads/random_program.h"

namespace jsk::attacks {

namespace {

cve_exploit_fn find_exploit(const std::string& cve_id)
{
    for (const auto& [id, fn] : cve_exploit_table()) {
        if (id == cve_id) return fn;
    }
    throw std::invalid_argument("unknown CVE id: " + cve_id);
}

void sum_kernel_tree(kernel::kernel& k, chaos_trial_result& r)
{
    r.watchdog_fires += k.disp().watchdog_fires();
    r.fetch_retries += k.fetch_retries();
    for (const auto& child : k.children()) sum_kernel_tree(*child, r);
}

/// The shared trial body: assemble the world, run `drive`, harvest oracles.
chaos_trial_result run_trial(const std::string& cve_id, std::uint64_t program_seed,
                             bool random_program, bool with_jskernel,
                             const faults::plan& p, std::uint64_t browser_seed,
                             const chaos_options& opt)
{
    rt::browser b(rt::chrome_profile(), browser_seed);
    rt::vuln_registry vulns(b.bus());

    obs::sink sink;
    b.sim().set_trace_sink(&sink);
    obs::wire_runtime(sink, b);
    vulns.set_trace_sink(&sink);

    faults::injector inj(p);
    b.set_fault_injector(&inj);

    std::unique_ptr<kernel::kernel> kern;
    if (with_jskernel) {
        kernel::kernel_options ko;
        ko.watchdog_budget_ms = opt.watchdog_budget_ms;
        kern = kernel::kernel::boot(b, ko);
        if (opt.fetch_retry_attempts > 0) {
            kern->add_policy(kernel::make_policy_fetch_retry(
                opt.fetch_retry_attempts, opt.fetch_retry_base_ms));
        }
    }

    auto log = std::make_shared<workloads::observation_log>();
    if (random_program) {
        workloads::install_random_program(b, program_seed, log);
    } else {
        find_exploit(cve_id)(b);
    }
    b.run_until(opt.deadline, opt.task_cap);

    chaos_trial_result r;
    r.tasks_executed = b.sim().tasks_executed();
    r.hit_task_cap = r.tasks_executed >= opt.task_cap;
    r.faults_injected = inj.injected();
    if (!random_program) {
        const rt::cve_monitor* monitor = vulns.find(cve_id);
        r.triggered = monitor != nullptr && monitor->triggered();
    }
    if (kern) {
        sum_kernel_tree(*kern, r);
        r.journal_json = kern->dispatch_journal().to_json();
    }
    r.trace_json = obs::to_chrome_trace(sink);
    if (random_program) r.observations = log->str();

    // Per-trial (= per-shard) metrics: collected here, into this trial's own
    // registry, while the world is still alive. Sweeps fold these after the
    // parallel join; nothing obs-shaped is ever shared across jobs.
    obs::collect_sim(r.metrics, b.sim());
    if (kern) obs::collect_kernel(r.metrics, *kern);
    obs::collect_vulns(r.metrics, vulns);
    obs::collect_faults(r.metrics, inj);

    // The sink dies with this frame; detach before the browser's teardown
    // tasks could touch it.
    b.sim().set_trace_sink(nullptr);
    vulns.set_trace_sink(nullptr);
    return r;
}

}  // namespace

chaos_trial_result run_chaos_trial(const std::string& cve_id, bool with_jskernel,
                                   const faults::plan& p, std::uint64_t browser_seed,
                                   const chaos_options& opt)
{
    return run_trial(cve_id, 0, /*random_program=*/false, with_jskernel, p,
                     browser_seed, opt);
}

chaos_trial_result run_chaos_program(std::uint64_t program_seed, bool with_jskernel,
                                     const faults::plan& p, std::uint64_t browser_seed,
                                     const chaos_options& opt)
{
    return run_trial({}, program_seed, /*random_program=*/true, with_jskernel, p,
                     browser_seed, opt);
}

// --- sharded chaos matrix ---------------------------------------------------

std::vector<chaos_cell> default_chaos_cells(std::size_t cves, std::size_t plans)
{
    std::vector<std::string> ids;
    for (const auto& [id, fn] : cve_exploit_table()) ids.push_back(id);
    if (cves < ids.size()) ids.resize(cves);

    std::vector<chaos_cell> cells;
    for (const auto& id : ids) {
        for (const bool with_kernel : {false, true}) {
            for (std::size_t plan_index = 0; plan_index < plans; ++plan_index) {
                chaos_cell cell;
                cell.cve = id;
                cell.with_jskernel = with_kernel;
                cell.fault_plan = faults::plan::sample(plan_index);
                cells.push_back(std::move(cell));
            }
        }
    }
    return cells;
}

chaos_matrix_result run_chaos_matrix(const std::vector<chaos_cell>& cells,
                                     const chaos_matrix_options& opt)
{
    const auto run_cell = [&](std::size_t job,
                              const par::worker_context&) -> chaos_cell_result {
        const chaos_cell& cell = cells[job];
        par::witness_key key;
        if (opt.cache != nullptr) {
            key.seed = cell.browser_seed;
            key.plan = cell.fault_plan.str();
            key.defense = cell.with_jskernel ? "jskernel" : "plain";
            key.program = cell.cve;
            if (const auto hit = opt.cache->lookup(key)) return *hit;
        }

        const chaos_trial_result trial = run_chaos_trial(
            cell.cve, cell.with_jskernel, cell.fault_plan, cell.browser_seed, opt.trial);
        chaos_cell_result r;
        r.triggered = trial.triggered;
        r.hit_task_cap = trial.hit_task_cap;
        r.tasks_executed = trial.tasks_executed;
        r.faults_injected = trial.faults_injected;
        r.watchdog_fires = trial.watchdog_fires;
        r.fetch_retries = trial.fetch_retries;
        r.journal_digest = par::fnv1a(trial.journal_json);
        r.trace_digest = par::fnv1a(trial.trace_json);
        r.metrics = trial.metrics;
        if (opt.cache != nullptr) opt.cache->insert(key, r);
        return r;
    };

    par::sweep_options sopt;
    sopt.jobs = opt.jobs;
    chaos_matrix_result m;
    m.cells = cells;
    m.results = par::sweep<chaos_cell_result>(cells.size(), run_cell, sopt);
    // Canonical-order fold of the per-shard registries.
    for (const auto& r : m.results) m.merged_metrics.merge(r.metrics);
    return m;
}

std::string chaos_matrix_json(const chaos_matrix_result& m)
{
    namespace json = kernel::json;
    json::array rows;
    for (std::size_t i = 0; i < m.results.size(); ++i) {
        const chaos_cell& cell = m.cells[i];
        const chaos_cell_result& r = m.results[i];
        json::object rec;
        rec.emplace("cve", json::value{cell.cve});
        rec.emplace("defense",
                    json::value{std::string(cell.with_jskernel ? "jskernel" : "plain")});
        rec.emplace("plan", json::value{cell.fault_plan.str()});
        rec.emplace("triggered", json::value{r.triggered});
        rec.emplace("hit_task_cap", json::value{r.hit_task_cap});
        rec.emplace("tasks_executed", json::value{static_cast<double>(r.tasks_executed)});
        rec.emplace("faults_injected",
                    json::value{static_cast<double>(r.faults_injected)});
        rec.emplace("watchdog_fires", json::value{static_cast<double>(r.watchdog_fires)});
        rec.emplace("fetch_retries", json::value{static_cast<double>(r.fetch_retries)});
        rec.emplace("journal_digest", json::value{std::to_string(r.journal_digest)});
        rec.emplace("trace_digest", json::value{std::to_string(r.trace_digest)});
        rows.push_back(json::value{std::move(rec)});
    }
    json::object root;
    root.emplace("cells", json::value{std::move(rows)});
    root.emplace("metrics", m.merged_metrics.snapshot());
    return json::dump(json::value{std::move(root)});
}

}  // namespace jsk::attacks
