// The expected Table I prevention matrix.
//
// The ✓/✗ glyphs of Table I did not survive in our copy of the paper, so the
// matrix is reconstructed from the prose of §IV (see DESIGN.md). It serves
// two purposes: the integration tests assert the simulation reproduces it,
// and bench_table1 prints measured-vs-expected.
#pragma once

#include <string>

#include "defenses/defense.h"

namespace jsk::attacks {

/// True when `defense` is expected to prevent `attack_name` (Table I row
/// labels / CVE ids as produced by all_attacks()).
inline bool expected_prevented(const std::string& attack_name,
                               defenses::defense_id defense)
{
    using defenses::defense_id;
    const bool is_cve = attack_name.rfind("CVE-", 0) == 0;

    switch (defense) {
        case defense_id::jskernel:
            return true;  // §IV: JSKernel defends every row
        case defense_id::legacy:
        case defense_id::tor_browser:
            return false;  // no row defended
        case defense_id::deterfox:
            // Determinism covers the DOM-based / cache rows (§IV-A1 prose:
            // "...except for JSKERNEL and DeterFox"); nothing else.
            return attack_name == "Cache Attack" || attack_name == "Script Parsing" ||
                   attack_name == "Image Decoding";
        case defense_id::fuzzyfox:
            // "Fuzzyfox does defend against the clock edge attack as claimed."
            return attack_name == "Clock Edge";
        case defense_id::chrome_zero:
            // Chrome Zero's 100 µs fuzzy clock cannot hide a secret of its
            // own grain size, so every implicit-clock row stays exploitable.
            // The worker polyfill removes the engine-level worker races (at
            // the price of true parallelism) but not the storage/error-
            // message leaks.
            if (!is_cve) return false;
            return attack_name == "CVE-2018-5092" || attack_name == "CVE-2014-3194" ||
                   attack_name == "CVE-2014-1719" || attack_name == "CVE-2014-1488" ||
                   attack_name == "CVE-2013-6646" || attack_name == "CVE-2010-4576" ||
                   attack_name == "CVE-2013-1714" || attack_name == "CVE-2013-5602";
    }
    return false;
}

}  // namespace jsk::attacks
