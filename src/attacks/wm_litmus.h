// Weak-memory litmus and attack workloads for the jsk::wm relaxed SAB model.
//
// Each factory returns a sim::explore::program whose "violation" is an
// outcome the *repaired ECMAScript relaxed model* allows but sequential
// consistency provably forbids. Tasks are atomic in the DES, so under
// mode::seqcst schedule exploration alone exhausts every observable outcome
// — explore_dfs terminating with no violation on the seqcst variant, while
// the relaxed variant yields a witness, is the machine-checked statement
// that the outcome is relaxed-only (tests/wm/test_wm.cpp pins both halves).
//
// The kernel-mediated variants model §III-E2: JSKernel redirects every SAB
// access on the protected context to a kernel-private shadow, so the
// enumerator's reads-from candidates never reach the protected reader and
// the weak outcome is structurally unreachable even under mode::relaxed.
#pragma once

#include <cstdint>

#include "sim/explore.h"
#include "wm/model.h"

namespace jsk::attacks {

/// Store buffering (SB): two workers each store their own flag (unordered)
/// then load the other's, all in one task per worker. Violation: both loads
/// observe 0 — forbidden under seq-cst (the second task always sees the
/// first's store), reachable under relaxed (the later load may read-from
/// the initial write because no happens-before edge obscures it).
sim::explore::program sb_litmus_program(wm::mode model,
                                        std::uint64_t browser_seed = 23);

/// Message passing (MP): a worker stores data then a flag (both unordered,
/// one task); the protected reader — the main context — loads flag then
/// data. Violation: flag == 1 with data == 0, i.e. the reader saw the
/// announcement but stale data. Forbidden under seq-cst; reachable under
/// relaxed (no synchronizes-with edge orders the two unordered stores for
/// the reader). With `with_jskernel` the main context's loads go through
/// the kernel SAB shadow, so the flag read returns 0 on every schedule and
/// rf choice — the violation is unreachable under *either* model.
sim::explore::program mp_litmus_program(wm::mode model, bool with_jskernel = false,
                                        std::uint64_t browser_seed = 23);

/// Tearing-amplified counter timer: a worker ticks a 64-bit SAB counter
/// with two unordered 32-bit half stores per tick (the mixed-size accesses
/// that make tearing candidates legal); the main context samples both
/// halves. Violation: a torn sample (lo half != hi half) — the signal a
/// web concurrency attacker amplifies a SAB clock with. Forbidden under
/// seq-cst (tasks are atomic, halves always advance together); reachable
/// under relaxed. With `with_jskernel` the sampler reads the kernel shadow
/// and never observes the worker's counter at all.
sim::explore::program torn_counter_program(wm::mode model, bool with_jskernel = false,
                                           std::uint64_t browser_seed = 23);

}  // namespace jsk::attacks
