#include "attacks/clocks.h"

namespace jsk::attacks {

namespace sim = jsk::sim;

double count_timeout_ticks_during(rt::browser& b, const async_op& op)
{
    struct state {
        long ticks = 0;
        bool done = false;
    };
    auto st = std::make_shared<state>();
    rt::browser* bp = &b;
    b.main().post_task(0, [bp, st, &op] {
        auto tick = std::make_shared<std::function<void()>>();
        *tick = [bp, st, tick] {
            if (st->done) return;
            ++st->ticks;
            bp->main().apis().set_timeout([tick] { (*tick)(); }, 0);
        };
        bp->main().apis().set_timeout([tick] { (*tick)(); }, 0);
        op(*bp, [st] { st->done = true; });
    });
    b.run_until(60 * sim::sec);
    return static_cast<double>(st->ticks);
}

double count_now_polls_during(rt::browser& b, const async_op& op)
{
    struct state {
        long polls = 0;
        bool done = false;
    };
    auto st = std::make_shared<state>();
    rt::browser* bp = &b;
    b.main().post_task(0, [bp, st, &op] {
        op(*bp, [st] { st->done = true; });
        auto spin = std::make_shared<std::function<void()>>();
        *spin = [bp, st, spin] {
            if (st->done) return;
            for (int i = 0; i < 64; ++i) {
                (void)bp->main().apis().performance_now();
                bp->main().consume(bp->profile().cheap_op_cost);
                ++st->polls;
            }
            bp->main().apis().set_timeout([spin] { (*spin)(); }, 0);
        };
        (*spin)();
    });
    b.run_until(60 * sim::sec);
    return static_cast<double>(st->polls);
}

double mean_raf_interval(rt::browser& b, int frames, const std::function<void(int)>& on_frame)
{
    struct state {
        std::vector<double> stamps;
    };
    auto st = std::make_shared<state>();
    rt::browser* bp = &b;
    b.main().post_task(0, [bp, st, frames, &on_frame] {
        auto frame = std::make_shared<std::function<void(double)>>();
        *frame = [bp, st, frames, frame, &on_frame](double ts) {
            st->stamps.push_back(ts);
            const int i = static_cast<int>(st->stamps.size());
            if (i < frames) {
                on_frame(i);
                bp->main().apis().request_animation_frame([frame](double t) { (*frame)(t); });
            }
        };
        on_frame(0);
        bp->main().apis().request_animation_frame([frame](double t) { (*frame)(t); });
    });
    b.run_until(60 * sim::sec);
    if (st->stamps.size() < 2) return 0.0;
    double acc = 0.0;
    for (std::size_t i = 1; i < st->stamps.size(); ++i) {
        acc += st->stamps[i] - st->stamps[i - 1];
    }
    return acc / static_cast<double>(st->stamps.size() - 1);
}

double count_video_cues_during(rt::browser& b, const async_op& op)
{
    struct state {
        long cues = 0;
        bool done = false;
    };
    auto st = std::make_shared<state>();
    rt::browser* bp = &b;
    b.main().post_task(0, [bp, st, &op] {
        auto& apis = bp->main().apis();
        auto video = apis.create_element("video");
        apis.set_cue_callback(video, [st] {
            if (!st->done) ++st->cues;
        });
        apis.play_video(video, 20 * sim::ms);
        op(*bp, [st, bp, video] {
            st->done = true;
            bp->painter().stop_video(video);
        });
    });
    b.run_until(60 * sim::sec);
    return static_cast<double>(st->cues);
}

}  // namespace jsk::attacks
