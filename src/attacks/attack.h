// Attack framework: one implementation per row of Table I.
//
// Timing attacks measure a two-valued secret through an implicit clock over
// repeated trials; the adversary's distinguishing power is the nearest-mean
// classification accuracy over the two measurement samples. CVE attacks run
// the documented exploit sequence and check the trigger state machine.
//
// An attack is *prevented* when the accuracy stays below the threshold
// (timing) or the trigger never fires (CVE).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "defenses/defense.h"
#include "runtime/browser.h"

namespace jsk::attacks {

struct run_config {
    rt::browser_profile profile = rt::chrome_profile();
    defenses::defense_id defense = defenses::defense_id::legacy;
    int trials = 9;
    std::uint64_t seed = 1;
    double accuracy_threshold = 0.75;
};

struct attack_outcome {
    std::string attack;
    std::string defense;
    bool is_cve = false;
    std::vector<double> secret_a;  // per-trial measurements, secret variant A
    std::vector<double> secret_b;  // per-trial measurements, secret variant B
    double accuracy = 0.5;
    bool cve_triggered = false;
    bool prevented = false;
};

class attack {
public:
    virtual ~attack() = default;
    [[nodiscard]] virtual std::string name() const = 0;
    /// Table I grouping: "setTimeout clock", "rAF clock" or "cve".
    [[nodiscard]] virtual std::string family() const = 0;
    virtual attack_outcome run(const run_config& config) = 0;
};

/// Base for timing rows: runs `measure` once per fresh browser+defense and
/// classifies the two samples.
class timing_attack : public attack {
public:
    attack_outcome run(const run_config& config) final;

protected:
    /// One measurement of the given secret variant on a fresh browser (the
    /// defense is already installed). Larger usually means slower.
    virtual double measure(rt::browser& b, bool secret_b) = 0;
};

/// Base for CVE rows: runs `exploit` on a fresh browser+defense with the
/// vulnerability monitors attached.
class cve_attack : public attack {
public:
    explicit cve_attack(std::string cve_id) : cve_id_(std::move(cve_id)) {}
    [[nodiscard]] std::string family() const final { return "cve"; }
    [[nodiscard]] std::string name() const final { return cve_id_; }
    attack_outcome run(const run_config& config) final;

protected:
    virtual void exploit(rt::browser& b) = 0;

private:
    std::string cve_id_;
};

/// Every Table I row, in paper order (10 timing rows + 12 CVE rows).
std::vector<std::unique_ptr<attack>> all_attacks();

}  // namespace jsk::attacks
