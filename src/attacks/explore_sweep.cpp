#include "attacks/explore_sweep.h"

#include <memory>
#include <stdexcept>
#include <utility>

#include "attacks/attacks_impl.h"
#include "defenses/defense.h"
#include "kernel/json.h"
#include "par/sweep.h"
#include "par/worker_local.h"
#include "runtime/vuln.h"
#include "sim/por.h"
#include "sim/rng.h"

namespace jsk::attacks {

namespace {

cve_exploit_fn find_exploit(const std::string& cve_id)
{
    for (const auto& [id, fn] : cve_exploit_table()) {
        if (id == cve_id) return fn;
    }
    throw std::invalid_argument("unknown CVE id: " + cve_id);
}

/// The one trial body both the fresh and the forked paths share, so the
/// differential guarantee is structural: attach the controller, install the
/// defense, run the exploit, read the monitor. The exploit is resolved by
/// the caller (outside any arena scope — the exploit table is a function-
/// local static whose first initialization must not land in a fork).
/// Deadlines are relative to sim().now(): zero for bare worlds (identical
/// to the historical absolute 60 s), nonzero after site preloads.
bool drive_cve_trial(core::world& w, const cve_exploit_fn& exploit,
                     const std::string& cve_id,
                     const std::optional<defenses::defense_id>& defense,
                     std::uint64_t browser_seed, sim::explore::controller& ctl,
                     wm::mode model = wm::mode::seqcst)
{
    // Attach before the defense installs so every task — including kernel
    // bookkeeping — runs under the controlled schedule.
    ctl.attach(w.browser.sim());
    // Memory model is per-world state like the defense install: set after the
    // controller attaches (rf choices must be steered) and restored by the
    // fork rollback on the snapshot path.
    w.browser.set_memory_model(model);
    std::unique_ptr<defenses::defense> def;
    if (defense) {
        def = defenses::make_defense(*defense, browser_seed);
        def->install(w.browser);
    }
    exploit(w.browser);
    w.browser.run_until(w.browser.sim().now() + 60 * sim::sec);
    const rt::cve_monitor* monitor = w.vulns.find(cve_id);
    return monitor != nullptr && monitor->triggered();
}

std::string harvested_decisions(const sim::explore::controller& ctl)
{
    sim::explore::schedule recorded = ctl.decisions();
    recorded.trim();
    return recorded.str();
}

}  // namespace

std::vector<std::string> cve_ids()
{
    std::vector<std::string> out;
    for (const auto& [id, fn] : cve_exploit_table()) out.push_back(id);
    return out;
}

core::world_recipe cve_world_recipe(const cve_trial_spec& spec)
{
    core::world_recipe recipe;
    recipe.browser_seed = spec.browser_seed;
    recipe.site_ranks = spec.site_ranks;
    recipe.site_seed = spec.site_seed;
    return recipe;
}

bool run_cve_trial(const std::string& cve_id, bool with_jskernel,
                   sim::explore::controller& ctl, std::uint64_t browser_seed,
                   wm::mode model)
{
    const cve_exploit_fn exploit = find_exploit(cve_id);
    core::world_recipe recipe;
    recipe.browser_seed = browser_seed;
    core::world w(recipe);
    const std::optional<defenses::defense_id> defense =
        with_jskernel ? std::optional(defenses::defense_id::jskernel) : std::nullopt;
    return drive_cve_trial(w, exploit, cve_id, defense, browser_seed, ctl, model);
}

cve_trial_outcome run_cve_trial_fresh(const cve_trial_spec& spec,
                                      const cve_walk_spec& walk)
{
    const cve_exploit_fn exploit = find_exploit(spec.cve);
    core::world w(cve_world_recipe(spec));
    sim::explore::controller ctl(walk.prefix, walk.tail, walk.walk_seed);
    ctl.set_window(walk.window);
    cve_trial_outcome out;
    out.triggered = drive_cve_trial(w, exploit, spec.cve, spec.defense,
                                    spec.browser_seed, ctl, spec.model);
    out.decisions = harvested_decisions(ctl);
    return out;
}

cve_trial_outcome run_cve_trial_forked(core::world_snapshot& snap,
                                       const cve_trial_spec& spec,
                                       const cve_walk_spec& walk,
                                       core::fork_stats* stats)
{
    const cve_exploit_fn exploit = find_exploit(spec.cve);  // before any scope
    cve_trial_outcome out;
    core::fork fk(snap, stats);
    core::world& w = core::snapshot_anchor(snap);
    sim::explore::controller* ctl = nullptr;
    bool triggered = false;
    fk.step([&] {
        // The controller is a per-trial object: built in the arena, gone
        // with the restore, never destructed (kernel-style teardown).
        ctl = new sim::explore::controller(walk.prefix, walk.tail, walk.walk_seed);
        ctl->set_window(walk.window);
        triggered = drive_cve_trial(w, exploit, spec.cve, spec.defense,
                                    spec.browser_seed, *ctl, spec.model);
    });
    // Harvest with the scope off (allocations go to the caller's heap) but
    // before ~fork restores (the controller's arena storage is still live).
    out.triggered = triggered;
    out.decisions = harvested_decisions(*ctl);
    return out;
}

sim::explore::program cve_trigger_program(std::string cve_id, bool with_jskernel,
                                          std::uint64_t browser_seed, wm::mode model)
{
    return [cve_id = std::move(cve_id), with_jskernel, browser_seed,
            model](sim::explore::controller& ctl) {
        sim::explore::run_outcome out;
        out.violated = run_cve_trial(cve_id, with_jskernel, ctl, browser_seed, model);
        if (out.violated) out.detail = cve_id + " triggered";
        return out;
    };
}

namespace {

/// Snapshot store for cve_trigger_program_snap: thread-local because
/// explore drivers (and par::explore_dfs's wave workers) call the program
/// from arbitrary pool threads, and worlds are thread-confined.
thread_local core::snapshot_cache tl_program_snaps;

/// How many decisions an external controller's buffers are pre-sized for.
/// CVE trial decision strings are far shorter; the margin keeps recording
/// allocation-free inside the fork (growth there would be rolled back with
/// the world — run_snapshot_program verifies and fails loudly).
constexpr std::size_t k_reserve_decisions = 1 << 16;

}  // namespace

sim::explore::program cve_trigger_program_snap(std::string cve_id, bool with_jskernel,
                                               std::uint64_t browser_seed, wm::mode model)
{
    return [cve_id = std::move(cve_id), with_jskernel, browser_seed,
            model](sim::explore::controller& ctl) {
        sim::explore::run_outcome out;
        if (!core::arena::supported()) {
            out.violated = run_cve_trial(cve_id, with_jskernel, ctl, browser_seed, model);
            if (out.violated) out.detail = cve_id + " triggered";
            return out;
        }
        const cve_exploit_fn exploit = find_exploit(cve_id);
        cve_trial_spec spec;
        spec.cve = cve_id;
        if (with_jskernel) spec.defense = defenses::defense_id::jskernel;
        spec.browser_seed = browser_seed;
        spec.model = model;
        core::world_snapshot& snap = tl_program_snaps.get(cve_world_recipe(spec));
        ctl.reserve(k_reserve_decisions);
        bool triggered = false;
        {
            core::fork fk(snap);
            core::world& w = core::snapshot_anchor(snap);
            fk.step([&] {
                triggered = drive_cve_trial(w, exploit, cve_id, spec.defense,
                                            browser_seed, ctl, spec.model);
            });
            if (ctl.storage_within(
                    [](const void* p) { return core::arena::contains(p); })) {
                throw std::runtime_error(
                    "cve_trigger_program_snap: controller recording outgrew its "
                    "reservation inside a fork — raise the reserve");
            }
        }
        out.violated = triggered;
        if (out.violated) out.detail = cve_id + " triggered";
        return out;
    };
}

sim::explore::program needle_search_program(int noise)
{
    return [noise](sim::explore::controller& ctl) {
        sim::simulation s;
        const auto ta = s.create_thread("a");
        const auto tb = s.create_thread("b");
        std::vector<sim::thread_id> nt;
        nt.reserve(static_cast<std::size_t>(noise));
        for (int i = 0; i < noise; ++i) {
            nt.push_back(s.create_thread("n" + std::to_string(i)));
        }
        ctl.attach(s);
        auto order = std::make_shared<std::string>();
        constexpr std::uint64_t w1 = sim::por::sab_key(1, 0);
        constexpr std::uint64_t w2 = sim::por::sab_key(2, 0);
        constexpr sim::time_ns ms = 1'000'000;
        // The needle: two dependent pairs at the *shallow* decision points.
        // Both must run reversed (Y before X, V before U) to violate.
        s.post(ta, 1 * ms, [&s, order] {
            s.note_access(w1, /*write=*/true);
            order->push_back('X');
        }, "X");
        s.post(tb, 1 * ms, [&s, order] {
            s.note_access(w1, /*write=*/true);
            order->push_back('Y');
        }, "Y");
        s.post(ta, 2 * ms, [&s, order] {
            s.note_access(w2, /*write=*/true);
            order->push_back('U');
        }, "U");
        s.post(tb, 2 * ms, [&s, order] {
            s.note_access(w2, /*write=*/true);
            order->push_back('V');
        }, "V");
        // The haystack: later, deeper decision points whose alternatives all
        // commute (one task per thread, disjoint keys). Depth-first search
        // explores deepest children first, so these bury the needle flips at
        // the bottom of the unreduced work list.
        for (int i = 0; i < noise; ++i) {
            const std::uint64_t k =
                sim::por::sab_key(20 + static_cast<std::uint64_t>(i), 0);
            s.post(nt[static_cast<std::size_t>(i)], 5 * ms,
                   [&s, k] { s.note_access(k, /*write=*/true); },
                   "noise" + std::to_string(i));
        }
        s.run();
        const bool bad = order->find("YX") != std::string::npos &&
                         order->find("VU") != std::string::npos;
        return sim::explore::run_outcome{bad, "both pairs reversed"};
    };
}

std::vector<cve_schedule_row> explore_cve_matrix(std::uint64_t walks_per_cell,
                                                 const matrix_options& opt)
{
    const std::vector<std::string> ids = cve_ids();
    const std::uint64_t walks = walks_per_cell;
    // Canonical job enumeration: job = ((cve * 2) + kernel) * walks + walk.
    // The merge below iterates results in this exact order, which is what
    // makes every aggregate independent of worker scheduling.
    const std::size_t job_count = ids.size() * 2 * static_cast<std::size_t>(walks);

    const bool use_snapshots = opt.snapshots && core::arena::supported();
    const std::size_t workers = opt.jobs == 0 ? par::default_jobs() : opt.jobs;
    par::worker_local<core::snapshot_cache> snaps(workers);
    par::worker_local<core::fork_stats> fork_stats(workers);

    const auto run_job = [&](std::size_t job,
                             const par::worker_context& ctx) -> cve_trial_outcome {
        const std::uint64_t walk = job % walks;
        const std::size_t cell = job / walks;
        const bool with_kernel = cell % 2 == 1;
        const std::string& id = ids[cell / 2];

        // The walk seed derives from the job index, never the worker: the
        // trial is a pure function of its job.
        const std::uint64_t walk_seed = sim::split(opt.explore.seed, job);
        par::witness_key key;
        if (opt.cache != nullptr) {
            // Walk 0 replays the default schedule (decisions ""); seeded
            // walks are named by their generator seed (the decision string
            // is an output, but the seed pins the same interleaving).
            key.seed = walk == 0 ? opt.browser_seed
                                 : sim::split(opt.browser_seed, walk_seed);
            key.defense = with_kernel ? "jskernel" : "plain";
            key.program = id + wm::program_tag(opt.model);
            if (const auto hit = opt.cache->lookup(key)) return *hit;
        }

        cve_trial_spec spec;
        spec.cve = id;
        if (with_kernel) spec.defense = defenses::defense_id::jskernel;
        spec.browser_seed = opt.browser_seed;
        spec.site_ranks = opt.site_ranks;
        spec.site_seed = opt.site_seed;
        spec.model = opt.model;
        cve_walk_spec wspec;
        wspec.tail = walk == 0 ? sim::explore::controller::tail_policy::first
                               : sim::explore::controller::tail_policy::random;
        wspec.walk_seed = walk_seed;
        wspec.window = opt.explore.window;

        cve_trial_outcome out;
        if (use_snapshots) {
            core::fork_stats& st = fork_stats.get(ctx.worker_id);
            core::world_snapshot& snap =
                snaps.get(ctx.worker_id).get(cve_world_recipe(spec), &st);
            out = run_cve_trial_forked(snap, spec, wspec, &st);
        } else {
            out = run_cve_trial_fresh(spec, wspec);
        }
        if (opt.cache != nullptr) {
            opt.cache->insert(key, out);
            // Also file the replayable witness itself, so a tail-first
            // replay of the printed decision string is a hit too.
            par::witness_key replay_key;
            replay_key.seed = opt.browser_seed;
            replay_key.decisions = out.decisions;
            replay_key.defense = key.defense;
            replay_key.program = id + wm::program_tag(opt.model);
            opt.cache->insert(replay_key, out);
        }
        return out;
    };

    par::sweep_options sopt;
    sopt.jobs = opt.jobs;
    const auto outcomes = par::sweep<cve_trial_outcome>(job_count, run_job, sopt);

    if (opt.fork_stats != nullptr) {
        fork_stats.for_each([&](const core::fork_stats& st) { opt.fork_stats->merge(st); });
    }

    // Deterministic merge, canonical job order.
    std::vector<cve_schedule_row> rows;
    for (std::size_t cve = 0; cve < ids.size(); ++cve) {
        cve_schedule_row row;
        row.cve = ids[cve];
        for (const bool with_kernel : {false, true}) {
            const std::size_t cell = cve * 2 + (with_kernel ? 1 : 0);
            for (std::uint64_t walk = 0; walk < walks; ++walk) {
                const cve_trial_outcome& out =
                    outcomes[cell * static_cast<std::size_t>(walks) + walk];
                if (with_kernel) {
                    ++row.kernel_schedules;
                    if (out.triggered) ++row.kernel_triggered;
                } else {
                    ++row.plain_schedules;
                    if (out.triggered) {
                        ++row.plain_triggered;
                        if (!row.witness) {
                            row.witness = sim::explore::schedule::parse(out.decisions);
                        }
                    }
                }
            }
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

std::vector<cve_schedule_row> explore_cve_matrix(std::uint64_t walks_per_cell,
                                                 const sim::explore::options& opt)
{
    matrix_options mopt;
    mopt.explore = opt;
    mopt.jobs = 1;
    return explore_cve_matrix(walks_per_cell, mopt);
}

std::string cve_matrix_json(const std::vector<cve_schedule_row>& rows, wm::mode model)
{
    namespace json = kernel::json;
    json::array out;
    for (const auto& row : rows) {
        json::object rec;
        rec.emplace("cve", json::value{row.cve});
        if (model == wm::mode::relaxed) {
            rec.emplace("memory_model", json::value{std::string(wm::to_string(model))});
        }
        rec.emplace("plain_schedules", json::value{static_cast<double>(row.plain_schedules)});
        rec.emplace("plain_triggered", json::value{static_cast<double>(row.plain_triggered)});
        rec.emplace("kernel_schedules",
                    json::value{static_cast<double>(row.kernel_schedules)});
        rec.emplace("kernel_triggered",
                    json::value{static_cast<double>(row.kernel_triggered)});
        rec.emplace("witness",
                    json::value{row.witness ? row.witness->str() : std::string()});
        out.push_back(json::value{std::move(rec)});
    }
    return json::dump(json::value{std::move(out)});
}

}  // namespace jsk::attacks
