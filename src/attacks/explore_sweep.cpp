#include "attacks/explore_sweep.h"

#include <stdexcept>
#include <utility>

#include "attacks/attacks_impl.h"
#include "defenses/defense.h"
#include "kernel/json.h"
#include "par/sweep.h"
#include "runtime/vuln.h"
#include "sim/rng.h"

namespace jsk::attacks {

namespace {

cve_exploit_fn find_exploit(const std::string& cve_id)
{
    for (const auto& [id, fn] : cve_exploit_table()) {
        if (id == cve_id) return fn;
    }
    throw std::invalid_argument("unknown CVE id: " + cve_id);
}

}  // namespace

std::vector<std::string> cve_ids()
{
    std::vector<std::string> out;
    for (const auto& [id, fn] : cve_exploit_table()) out.push_back(id);
    return out;
}

bool run_cve_trial(const std::string& cve_id, bool with_jskernel,
                   sim::explore::controller& ctl, std::uint64_t browser_seed)
{
    const cve_exploit_fn exploit = find_exploit(cve_id);
    rt::browser b(rt::chrome_profile(), browser_seed);
    rt::vuln_registry vulns(b.bus());
    // Attach before the defense installs so every task — including kernel
    // bookkeeping — runs under the controlled schedule.
    ctl.attach(b.sim());
    std::unique_ptr<defenses::defense> def;
    if (with_jskernel) {
        def = defenses::make_defense(defenses::defense_id::jskernel, browser_seed);
        def->install(b);
    }
    exploit(b);
    b.run_until(60 * sim::sec);
    const rt::cve_monitor* monitor = vulns.find(cve_id);
    return monitor != nullptr && monitor->triggered();
}

sim::explore::program cve_trigger_program(std::string cve_id, bool with_jskernel,
                                          std::uint64_t browser_seed)
{
    return [cve_id = std::move(cve_id), with_jskernel,
            browser_seed](sim::explore::controller& ctl) {
        sim::explore::run_outcome out;
        out.violated = run_cve_trial(cve_id, with_jskernel, ctl, browser_seed);
        if (out.violated) out.detail = cve_id + " triggered";
        return out;
    };
}

std::vector<cve_schedule_row> explore_cve_matrix(std::uint64_t walks_per_cell,
                                                 const matrix_options& opt)
{
    const std::vector<std::string> ids = cve_ids();
    const std::uint64_t walks = walks_per_cell;
    // Canonical job enumeration: job = ((cve * 2) + kernel) * walks + walk.
    // The merge below iterates results in this exact order, which is what
    // makes every aggregate independent of worker scheduling.
    const std::size_t job_count = ids.size() * 2 * static_cast<std::size_t>(walks);

    const auto run_job = [&](std::size_t job,
                             const par::worker_context&) -> cve_trial_outcome {
        const std::uint64_t walk = job % walks;
        const std::size_t cell = job / walks;
        const bool with_kernel = cell % 2 == 1;
        const std::string& id = ids[cell / 2];

        // The walk seed derives from the job index, never the worker: the
        // trial is a pure function of its job.
        const std::uint64_t walk_seed = sim::split(opt.explore.seed, job);
        par::witness_key key;
        if (opt.cache != nullptr) {
            // Walk 0 replays the default schedule (decisions ""); seeded
            // walks are named by their generator seed (the decision string
            // is an output, but the seed pins the same interleaving).
            key.seed = walk == 0 ? opt.browser_seed
                                 : sim::split(opt.browser_seed, walk_seed);
            key.defense = with_kernel ? "jskernel" : "plain";
            key.program = id;
            if (const auto hit = opt.cache->lookup(key)) return *hit;
        }

        sim::explore::controller ctl(
            {},
            walk == 0 ? sim::explore::controller::tail_policy::first
                      : sim::explore::controller::tail_policy::random,
            walk_seed);
        ctl.set_window(opt.explore.window);
        cve_trial_outcome out;
        out.triggered = run_cve_trial(id, with_kernel, ctl, opt.browser_seed);
        auto recorded = ctl.decisions();
        recorded.trim();
        out.decisions = recorded.str();
        if (opt.cache != nullptr) {
            opt.cache->insert(key, out);
            // Also file the replayable witness itself, so a tail-first
            // replay of the printed decision string is a hit too.
            par::witness_key replay_key;
            replay_key.seed = opt.browser_seed;
            replay_key.decisions = out.decisions;
            replay_key.defense = key.defense;
            replay_key.program = id;
            opt.cache->insert(replay_key, out);
        }
        return out;
    };

    par::sweep_options sopt;
    sopt.jobs = opt.jobs;
    const auto outcomes = par::sweep<cve_trial_outcome>(job_count, run_job, sopt);

    // Deterministic merge, canonical job order.
    std::vector<cve_schedule_row> rows;
    for (std::size_t cve = 0; cve < ids.size(); ++cve) {
        cve_schedule_row row;
        row.cve = ids[cve];
        for (const bool with_kernel : {false, true}) {
            const std::size_t cell = cve * 2 + (with_kernel ? 1 : 0);
            for (std::uint64_t walk = 0; walk < walks; ++walk) {
                const cve_trial_outcome& out =
                    outcomes[cell * static_cast<std::size_t>(walks) + walk];
                if (with_kernel) {
                    ++row.kernel_schedules;
                    if (out.triggered) ++row.kernel_triggered;
                } else {
                    ++row.plain_schedules;
                    if (out.triggered) {
                        ++row.plain_triggered;
                        if (!row.witness) {
                            row.witness = sim::explore::schedule::parse(out.decisions);
                        }
                    }
                }
            }
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

std::vector<cve_schedule_row> explore_cve_matrix(std::uint64_t walks_per_cell,
                                                 const sim::explore::options& opt)
{
    matrix_options mopt;
    mopt.explore = opt;
    mopt.jobs = 1;
    return explore_cve_matrix(walks_per_cell, mopt);
}

std::string cve_matrix_json(const std::vector<cve_schedule_row>& rows)
{
    namespace json = kernel::json;
    json::array out;
    for (const auto& row : rows) {
        json::object rec;
        rec.emplace("cve", json::value{row.cve});
        rec.emplace("plain_schedules", json::value{static_cast<double>(row.plain_schedules)});
        rec.emplace("plain_triggered", json::value{static_cast<double>(row.plain_triggered)});
        rec.emplace("kernel_schedules",
                    json::value{static_cast<double>(row.kernel_schedules)});
        rec.emplace("kernel_triggered",
                    json::value{static_cast<double>(row.kernel_triggered)});
        rec.emplace("witness",
                    json::value{row.witness ? row.witness->str() : std::string()});
        out.push_back(json::value{std::move(rec)});
    }
    return json::dump(json::value{std::move(out)});
}

}  // namespace jsk::attacks
