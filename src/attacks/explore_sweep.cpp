#include "attacks/explore_sweep.h"

#include <stdexcept>

#include "attacks/attacks_impl.h"
#include "defenses/defense.h"
#include "runtime/vuln.h"

namespace jsk::attacks {

namespace {

cve_exploit_fn find_exploit(const std::string& cve_id)
{
    for (const auto& [id, fn] : cve_exploit_table()) {
        if (id == cve_id) return fn;
    }
    throw std::invalid_argument("unknown CVE id: " + cve_id);
}

}  // namespace

std::vector<std::string> cve_ids()
{
    std::vector<std::string> out;
    for (const auto& [id, fn] : cve_exploit_table()) out.push_back(id);
    return out;
}

bool run_cve_trial(const std::string& cve_id, bool with_jskernel,
                   sim::explore::controller& ctl, std::uint64_t browser_seed)
{
    const cve_exploit_fn exploit = find_exploit(cve_id);
    rt::browser b(rt::chrome_profile(), browser_seed);
    rt::vuln_registry vulns(b.bus());
    // Attach before the defense installs so every task — including kernel
    // bookkeeping — runs under the controlled schedule.
    ctl.attach(b.sim());
    std::unique_ptr<defenses::defense> def;
    if (with_jskernel) {
        def = defenses::make_defense(defenses::defense_id::jskernel, browser_seed);
        def->install(b);
    }
    exploit(b);
    b.run_until(60 * sim::sec);
    const rt::cve_monitor* monitor = vulns.find(cve_id);
    return monitor != nullptr && monitor->triggered();
}

sim::explore::program cve_trigger_program(std::string cve_id, bool with_jskernel,
                                          std::uint64_t browser_seed)
{
    return [cve_id = std::move(cve_id), with_jskernel,
            browser_seed](sim::explore::controller& ctl) {
        sim::explore::run_outcome out;
        out.violated = run_cve_trial(cve_id, with_jskernel, ctl, browser_seed);
        if (out.violated) out.detail = cve_id + " triggered";
        return out;
    };
}

std::vector<cve_schedule_row> explore_cve_matrix(std::uint64_t walks_per_cell,
                                                 const sim::explore::options& opt)
{
    std::vector<cve_schedule_row> rows;
    for (const auto& id : cve_ids()) {
        cve_schedule_row row;
        row.cve = id;
        for (const bool with_kernel : {false, true}) {
            for (std::uint64_t walk = 0; walk < walks_per_cell; ++walk) {
                // Walk 0 is the default schedule; the rest are seeded walks.
                sim::explore::controller ctl(
                    {},
                    walk == 0 ? sim::explore::controller::tail_policy::first
                              : sim::explore::controller::tail_policy::random,
                    opt.seed + walk);
                ctl.set_window(opt.window);
                const bool triggered = run_cve_trial(id, with_kernel, ctl);
                if (with_kernel) {
                    ++row.kernel_schedules;
                    if (triggered) ++row.kernel_triggered;
                } else {
                    ++row.plain_schedules;
                    if (triggered) {
                        ++row.plain_triggered;
                        if (!row.witness) {
                            auto witness = ctl.decisions();
                            witness.trim();
                            row.witness = std::move(witness);
                        }
                    }
                }
            }
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

}  // namespace jsk::attacks
