// Schedule-exploration entry points for the Table I CVE matrix.
//
// The trustworthiness claim the explorer backs: each CVE state machine
// reports `triggered` under *some* plain-browser schedule, and under *no*
// JSKernel schedule — not just under the one interleaving the scripted
// exploit happens to produce. A trial here is one controlled-schedule run of
// the documented exploit with the vulnerability monitors attached.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "par/cache.h"
#include "sim/explore.h"

namespace jsk::attacks {

/// Ids of the modelled CVE rows, paper order.
std::vector<std::string> cve_ids();

/// One controlled-schedule trial: fresh browser (optionally with JSKernel
/// booted), monitors attached, the documented exploit, run to quiescence.
/// Returns whether `cve_id`'s state machine fired. Throws on unknown ids.
bool run_cve_trial(const std::string& cve_id, bool with_jskernel,
                   sim::explore::controller& ctl, std::uint64_t browser_seed = 17);

/// An explore::program wrapping run_cve_trial whose "violation" is the CVE
/// firing — explore_random/explore_dfs/shrink then search for (or minimize)
/// a triggering schedule.
sim::explore::program cve_trigger_program(std::string cve_id, bool with_jskernel,
                                          std::uint64_t browser_seed = 17);

struct cve_schedule_row {
    std::string cve;
    std::uint64_t plain_schedules = 0;
    std::uint64_t plain_triggered = 0;
    std::uint64_t kernel_schedules = 0;
    std::uint64_t kernel_triggered = 0;  // any nonzero value falsifies Table I
    std::optional<sim::explore::schedule> witness;  // a triggering plain schedule
};

/// One matrix cell-walk outcome — the unit the sweep shards and the witness
/// cache stores. `decisions` is the recorded (trimmed) schedule, replayable
/// under a tail-first controller.
struct cve_trial_outcome {
    bool triggered = false;
    std::string decisions;
};

struct matrix_options {
    sim::explore::options explore;  // window + walk-seed root
    std::size_t jobs = 1;           // worker count; 0 = par::default_jobs()
    /// Optional witness-keyed cache: repeated sweeps recall instead of
    /// re-simulating. Aggregates stay byte-identical either way (trials are
    /// pure functions of their witness).
    par::result_cache<cve_trial_outcome>* cache = nullptr;
    std::uint64_t browser_seed = 17;
};

/// Random-walk schedule sweep over every CVE row, plain and under JSKernel,
/// sharded over (CVE x defense x walk) on the jsk::par driver and merged in
/// canonical job order — output is byte-identical for every jobs count.
/// Per-walk controller seeds derive via sim::split(opt.explore.seed, job).
std::vector<cve_schedule_row> explore_cve_matrix(std::uint64_t walks_per_cell,
                                                 const matrix_options& opt);

/// Serial-compatible overload (jobs = 1).
std::vector<cve_schedule_row> explore_cve_matrix(std::uint64_t walks_per_cell,
                                                 const sim::explore::options& opt = {});

/// Canonical aggregate serialization of matrix rows (kernel::json dump —
/// compact, key-ordered): the byte-comparison oracle for the --jobs
/// determinism suite and the CLI's --json output.
std::string cve_matrix_json(const std::vector<cve_schedule_row>& rows);

}  // namespace jsk::attacks
