// Schedule-exploration entry points for the Table I CVE matrix.
//
// The trustworthiness claim the explorer backs: each CVE state machine
// reports `triggered` under *some* plain-browser schedule, and under *no*
// JSKernel schedule — not just under the one interleaving the scripted
// exploit happens to produce. A trial here is one controlled-schedule run of
// the documented exploit with the vulnerability monitors attached.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/explore.h"

namespace jsk::attacks {

/// Ids of the modelled CVE rows, paper order.
std::vector<std::string> cve_ids();

/// One controlled-schedule trial: fresh browser (optionally with JSKernel
/// booted), monitors attached, the documented exploit, run to quiescence.
/// Returns whether `cve_id`'s state machine fired. Throws on unknown ids.
bool run_cve_trial(const std::string& cve_id, bool with_jskernel,
                   sim::explore::controller& ctl, std::uint64_t browser_seed = 17);

/// An explore::program wrapping run_cve_trial whose "violation" is the CVE
/// firing — explore_random/explore_dfs/shrink then search for (or minimize)
/// a triggering schedule.
sim::explore::program cve_trigger_program(std::string cve_id, bool with_jskernel,
                                          std::uint64_t browser_seed = 17);

struct cve_schedule_row {
    std::string cve;
    std::uint64_t plain_schedules = 0;
    std::uint64_t plain_triggered = 0;
    std::uint64_t kernel_schedules = 0;
    std::uint64_t kernel_triggered = 0;  // any nonzero value falsifies Table I
    std::optional<sim::explore::schedule> witness;  // a triggering plain schedule
};

/// Random-walk schedule sweep over every CVE row, plain and under JSKernel.
std::vector<cve_schedule_row> explore_cve_matrix(std::uint64_t walks_per_cell,
                                                 const sim::explore::options& opt = {});

}  // namespace jsk::attacks
