// Schedule-exploration entry points for the Table I CVE matrix.
//
// The trustworthiness claim the explorer backs: each CVE state machine
// reports `triggered` under *some* plain-browser schedule, and under *no*
// JSKernel schedule — not just under the one interleaving the scripted
// exploit happens to produce. A trial here is one controlled-schedule run of
// the documented exploit with the vulnerability monitors attached.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/world.h"
#include "defenses/defense.h"
#include "par/cache.h"
#include "sim/explore.h"
#include "wm/model.h"

namespace jsk::attacks {

/// Ids of the modelled CVE rows, paper order.
std::vector<std::string> cve_ids();

/// One controlled-schedule trial: fresh browser (optionally with JSKernel
/// booted), monitors attached, the documented exploit, run to quiescence.
/// Returns whether `cve_id`'s state machine fired. Throws on unknown ids.
bool run_cve_trial(const std::string& cve_id, bool with_jskernel,
                   sim::explore::controller& ctl, std::uint64_t browser_seed = 17,
                   wm::mode model = wm::mode::seqcst);

/// One matrix cell-walk outcome — the unit the sweep shards and the witness
/// cache stores. `decisions` is the recorded (trimmed) schedule, replayable
/// under a tail-first controller.
struct cve_trial_outcome {
    bool triggered = false;
    std::string decisions;
};

/// World shape of one matrix trial: which exploit, against which defense,
/// in which browser world — optionally one with synthetic page sessions
/// preloaded to quiescence (the paper's Alexa-style site worlds, and the
/// state a snapshot amortizes across trials).
struct cve_trial_spec {
    std::string cve;
    /// Defense installed per trial (after the controller attaches); nullopt
    /// is the "plain" column — no defense at all.
    std::optional<defenses::defense_id> defense;
    std::uint64_t browser_seed = 17;
    std::vector<std::uint64_t> site_ranks;
    std::uint64_t site_seed = 101;
    /// SAB memory model the trial world runs under. Applied per fork, right
    /// after the controller attaches (like the defense install) — never part
    /// of the snapshot recipe, so one snapshot serves both models.
    wm::mode model = wm::mode::seqcst;
};

/// Schedule-drive shape of one trial: the controller run_cve_trial_fresh /
/// run_cve_trial_forked construct internally. (Forked trials must own their
/// controller — an external one would record into storage that the fork's
/// restore rolls back.)
struct cve_walk_spec {
    sim::explore::schedule prefix;  // replay prefix ({} = tail policy only)
    sim::explore::controller::tail_policy tail =
        sim::explore::controller::tail_policy::first;
    std::uint64_t walk_seed = 0;
    sim::time_ns window = 0;
};

/// The snapshot recipe a spec's world forks from: seed + page sessions.
/// Defense install is *not* part of the recipe — it happens per fork, after
/// the controller attaches, exactly as on the fresh path — so one snapshot
/// serves every (CVE x defense) cell of a matrix.
core::world_recipe cve_world_recipe(const cve_trial_spec& spec);

/// One trial in a from-scratch world (the differential baseline).
cve_trial_outcome run_cve_trial_fresh(const cve_trial_spec& spec,
                                      const cve_walk_spec& walk);

/// The same trial forked from a sealed snapshot of cve_world_recipe(spec):
/// attach controller, install defense, run exploit, harvest, restore. Must
/// be byte-indistinguishable from run_cve_trial_fresh — enforced by
/// tests/sim/test_snapshot_fork.cpp.
cve_trial_outcome run_cve_trial_forked(core::world_snapshot& snap,
                                       const cve_trial_spec& spec,
                                       const cve_walk_spec& walk,
                                       core::fork_stats* stats = nullptr);

/// An explore::program wrapping run_cve_trial whose "violation" is the CVE
/// firing — explore_random/explore_dfs/shrink then search for (or minimize)
/// a triggering schedule.
sim::explore::program cve_trigger_program(std::string cve_id, bool with_jskernel,
                                          std::uint64_t browser_seed = 17,
                                          wm::mode model = wm::mode::seqcst);

struct cve_schedule_row {
    std::string cve;
    std::uint64_t plain_schedules = 0;
    std::uint64_t plain_triggered = 0;
    std::uint64_t kernel_schedules = 0;
    std::uint64_t kernel_triggered = 0;  // any nonzero value falsifies Table I
    std::optional<sim::explore::schedule> witness;  // a triggering plain schedule
};

struct matrix_options {
    sim::explore::options explore;  // window + walk-seed root
    std::size_t jobs = 1;           // worker count; 0 = par::default_jobs()
    /// Optional witness-keyed cache: repeated sweeps recall instead of
    /// re-simulating. Aggregates stay byte-identical either way (trials are
    /// pure functions of their witness).
    par::result_cache<cve_trial_outcome>* cache = nullptr;
    std::uint64_t browser_seed = 17;
    /// Serve trials from per-worker world snapshots (fork + restore)
    /// instead of building a browser per trial. Output is byte-identical
    /// either way — the differential suites enforce it — so this is purely
    /// a throughput knob. Ignored when the platform has no arena support.
    bool snapshots = true;
    /// Page sessions preloaded into every trial world (and its snapshot).
    std::vector<std::uint64_t> site_ranks;
    std::uint64_t site_seed = 101;
    /// Optional fork/restore telemetry sink (merged over workers after the
    /// join). Telemetry only: counts depend on worker claim order, so they
    /// never enter the matrix JSON.
    core::fork_stats* fork_stats = nullptr;
    /// SAB memory model every trial runs under. `relaxed` turns unordered SAB
    /// reads into explorer-steered reads-from choices; witness keys gain a
    /// "+relaxed" program tag so cached seqcst results are never recalled for
    /// relaxed trials (or vice versa).
    wm::mode model = wm::mode::seqcst;
};

/// Snapshot-backed sibling of cve_trigger_program: same witness contract,
/// but each run forks a thread-local sealed snapshot instead of building a
/// browser. DPOR metadata recording works through forks too — the
/// controller's logs are flat and pre-reserved (controller::reserve), with
/// controller::storage_within guarding against reservation overflow inside
/// the (rolled-back-on-exit) arena. Falls back to a fresh world only when
/// the platform has no arena support — safe to hand to any explore driver,
/// including par::explore_dfs's wave workers.
sim::explore::program cve_trigger_program_snap(std::string cve_id, bool with_jskernel,
                                               std::uint64_t browser_seed = 17,
                                               wm::mode model = wm::mode::seqcst);

/// Synthetic search-hard fixture for the DPOR differential and bench: a
/// "needle" witness needing two specific order flips (two dependent write
/// pairs on threads a/b, violation only when both pairs run reversed) hidden
/// behind `noise` later single-task threads touching disjoint keys. The
/// scripted CVE exploits win their race under the very first schedule, so
/// they exercise witness *preservation* but not search; this family is where
/// reduction is measurable. The noise tasks commute with everything, so
/// sleep-set DPOR reaches the needle in a constant number of runs while the
/// unreduced DFS wades through the noise interleavings first — the gap grows
/// with `noise`.
sim::explore::program needle_search_program(int noise);

/// Random-walk schedule sweep over every CVE row, plain and under JSKernel,
/// sharded over (CVE x defense x walk) on the jsk::par driver and merged in
/// canonical job order — output is byte-identical for every jobs count.
/// Per-walk controller seeds derive via sim::split(opt.explore.seed, job).
std::vector<cve_schedule_row> explore_cve_matrix(std::uint64_t walks_per_cell,
                                                 const matrix_options& opt);

/// Serial-compatible overload (jobs = 1).
std::vector<cve_schedule_row> explore_cve_matrix(std::uint64_t walks_per_cell,
                                                 const sim::explore::options& opt = {});

/// Canonical aggregate serialization of matrix rows (kernel::json dump —
/// compact, key-ordered): the byte-comparison oracle for the --jobs
/// determinism suite and the CLI's --json output. `model` records the memory
/// model the sweep ran under; rows gain a "memory_model" field only when it
/// is relaxed, so historical seqcst goldens are byte-identical.
std::string cve_matrix_json(const std::vector<cve_schedule_row>& rows,
                            wm::mode model = wm::mode::seqcst);

}  // namespace jsk::attacks
