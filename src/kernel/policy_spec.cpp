#include "kernel/policy_spec.h"

#include <stdexcept>
#include <vector>

#include "kernel/json.h"

namespace jsk::kernel {

namespace {

enum class hook_kind {
    fetch,
    xhr,
    import_scripts,
    indexeddb,
    onmessage_assign,
    worker_error,
    fetch_failure,
};

enum class action_kind {
    block,                  // fetch (with optional url_prefix)
    block_cross_origin,     // xhr / import_scripts
    mediate_cross_origin,   // import_scripts
    deny_private,           // indexeddb
    reject_invalid,         // onmessage_assign
    sanitize,               // worker_error (with replacement)
    retry,                  // fetch_failure (max_attempts, backoff_base_ms)
};

hook_kind parse_hook(const std::string& name)
{
    if (name == "fetch") return hook_kind::fetch;
    if (name == "xhr") return hook_kind::xhr;
    if (name == "import_scripts") return hook_kind::import_scripts;
    if (name == "indexeddb") return hook_kind::indexeddb;
    if (name == "onmessage_assign") return hook_kind::onmessage_assign;
    if (name == "worker_error") return hook_kind::worker_error;
    if (name == "fetch_failure") return hook_kind::fetch_failure;
    throw std::invalid_argument("policy spec: unknown hook '" + name + "'");
}

action_kind parse_action(const std::string& name)
{
    if (name == "block") return action_kind::block;
    if (name == "block-cross-origin") return action_kind::block_cross_origin;
    if (name == "mediate-cross-origin") return action_kind::mediate_cross_origin;
    if (name == "deny-private") return action_kind::deny_private;
    if (name == "reject-invalid") return action_kind::reject_invalid;
    if (name == "sanitize") return action_kind::sanitize;
    if (name == "retry") return action_kind::retry;
    throw std::invalid_argument("policy spec: unknown action '" + name + "'");
}

struct rule {
    hook_kind hook;
    action_kind action;
    std::string url_prefix;   // for fetch block
    std::string replacement;  // for sanitize
    int max_attempts = 3;     // for retry
    double backoff_base_ms = 25.0;
};

void validate_rule(const rule& r)
{
    const auto ok = [&] {
        switch (r.hook) {
            case hook_kind::fetch: return r.action == action_kind::block;
            case hook_kind::xhr: return r.action == action_kind::block_cross_origin;
            case hook_kind::import_scripts:
                return r.action == action_kind::mediate_cross_origin ||
                       r.action == action_kind::block_cross_origin;
            case hook_kind::indexeddb: return r.action == action_kind::deny_private;
            case hook_kind::onmessage_assign:
                return r.action == action_kind::reject_invalid;
            case hook_kind::worker_error: return r.action == action_kind::sanitize;
            case hook_kind::fetch_failure: return r.action == action_kind::retry;
        }
        return false;
    }();
    if (!ok) throw std::invalid_argument("policy spec: action not valid for this hook");
    if (r.action == action_kind::retry && (r.max_attempts < 1 || r.backoff_base_ms < 0)) {
        throw std::invalid_argument(
            "policy spec: retry needs max_attempts >= 1 and backoff_base_ms >= 0");
    }
}

/// Policy backed by a parsed rule list.
class spec_policy final : public policy {
public:
    spec_policy(std::string name, std::vector<rule> rules)
        : name_(std::move(name)), rules_(std::move(rules))
    {
    }

    [[nodiscard]] const char* name() const override { return name_.c_str(); }

    bool on_fetch(kernel&, const std::string& url) override
    {
        for (const auto& r : rules_) {
            if (r.hook != hook_kind::fetch) continue;
            if (r.url_prefix.empty() || url.rfind(r.url_prefix, 0) == 0) return true;
        }
        return false;
    }

    bool on_xhr(kernel&, const std::string&, bool cross_origin) override
    {
        for (const auto& r : rules_) {
            if (r.hook == hook_kind::xhr && cross_origin) return true;
        }
        return false;
    }

    bool on_import(kernel&, const std::string&, bool cross_origin) override
    {
        for (const auto& r : rules_) {
            if (r.hook == hook_kind::import_scripts && cross_origin) return true;
        }
        return false;
    }

    bool on_indexeddb(kernel&, bool private_mode) override
    {
        for (const auto& r : rules_) {
            if (r.hook == hook_kind::indexeddb && private_mode) return true;
        }
        return false;
    }

    bool on_onmessage_assign(kernel&, bool valid) override
    {
        for (const auto& r : rules_) {
            if (r.hook == hook_kind::onmessage_assign && !valid) return true;
        }
        return false;
    }

    std::string on_worker_error(kernel&, const std::string& raw) override
    {
        for (const auto& r : rules_) {
            if (r.hook == hook_kind::worker_error) return r.replacement;
        }
        return raw;
    }

    retry_decision on_fetch_failure(kernel&, const std::string&, int attempt,
                                    bool retryable) override
    {
        for (const auto& r : rules_) {
            if (r.hook != hook_kind::fetch_failure) continue;
            if (!retryable || attempt >= r.max_attempts) return {};
            return {true,
                    r.backoff_base_ms * static_cast<double>(1 << (attempt - 1))};
        }
        return {};
    }

private:
    std::string name_;
    std::vector<rule> rules_;
};

}  // namespace

std::unique_ptr<policy> load_policy_spec(const std::string& json_text)
{
    const json::value doc = json::parse(json_text);
    if (!doc.is_object()) throw std::invalid_argument("policy spec: document must be an object");
    const std::string name = doc.get_string("name", "unnamed-policy");
    const json::value rules_value = doc.get("rules");
    if (!rules_value.is_array()) {
        throw std::invalid_argument("policy spec: 'rules' must be an array");
    }

    std::vector<rule> rules;
    for (const auto& entry : rules_value.as_array()) {
        if (!entry.is_object()) {
            throw std::invalid_argument("policy spec: each rule must be an object");
        }
        rule r;
        r.hook = parse_hook(entry.get_string("hook"));
        r.action = parse_action(entry.get_string("action"));
        r.url_prefix = entry.get_string("url_prefix");
        r.replacement = entry.get_string("replacement", "Script error.");
        if (const json::value& attempts = entry.get("max_attempts"); attempts.is_number()) {
            r.max_attempts = static_cast<int>(attempts.as_number());
        }
        if (const json::value& base = entry.get("backoff_base_ms"); base.is_number()) {
            r.backoff_base_ms = base.as_number();
        }
        validate_rule(r);
        rules.push_back(std::move(r));
    }
    if (rules.empty()) throw std::invalid_argument("policy spec: no rules");
    return std::make_unique<spec_policy>(name, std::move(rules));
}

std::string default_policy_spec_json()
{
    return R"({
  "name": "jskernel-default-bundle",
  "rules": [
    {"hook": "xhr",              "action": "block-cross-origin"},
    {"hook": "onmessage_assign", "action": "reject-invalid"},
    {"hook": "indexeddb",        "action": "deny-private"},
    {"hook": "worker_error",     "action": "sanitize", "replacement": "Script error."},
    {"hook": "import_scripts",   "action": "mediate-cross-origin"}
  ]
})";
}

}  // namespace jsk::kernel
