// The kernel journal: an append-only record of every dispatched kernel event.
//
// Determinism is JSKernel's core claim; the journal makes it *checkable*.
// Two runs of the same program must produce identical journals — regardless
// of physical timing, cost models, or secrets. Tests compare journals across
// perturbed runs; operators can dump one as JSON to diff timelines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/kevent.h"

namespace jsk::kernel {

struct journal_entry {
    std::uint64_t seq = 0;        // dispatch order
    std::uint64_t event_id = 0;   // scheduler id (diagnostic only: ids are
                                  // assigned at registration, which for
                                  // confirmed-at-arrival events is physical)
    kevent_type type = kevent_type::generic;
    ktime predicted_time = 0.0;   // the slot it dispatched into
    std::string label;

    /// Timeline equality deliberately ignores event_id (see above).
    bool operator==(const journal_entry& other) const
    {
        return seq == other.seq && type == other.type &&
               predicted_time == other.predicted_time && label == other.label;
    }
};

class journal {
public:
    void record(const kevent& ev)
    {
        entries_.push_back(
            journal_entry{next_seq_++, ev.id, ev.type, ev.predicted_time, ev.label});
    }

    [[nodiscard]] const std::vector<journal_entry>& entries() const { return entries_; }
    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    void clear()
    {
        entries_.clear();
        next_seq_ = 0;
    }

    /// Deterministic JSON dump (one object per line inside an array).
    [[nodiscard]] std::string to_json() const;

    /// Identical timelines? (The determinism check used by tests.)
    bool operator==(const journal& other) const { return entries_ == other.entries_; }

    /// First index where two journals diverge, or npos when equal/prefix.
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    [[nodiscard]] std::size_t first_divergence(const journal& other) const;

    /// Human-readable account of the first divergence against `other`
    /// ("" when the timelines are identical). The schedule-exploration
    /// harness surfaces this next to a failing decision string.
    [[nodiscard]] std::string diff_description(const journal& other) const;

    /// Order-sensitive FNV-1a fingerprint of the timeline (type, predicted
    /// slot, label per entry; event_id excluded, like operator==). The
    /// harness-layer analogue of por::analysis::class_hash(): equal journals
    /// hash equal, so coverage tooling can bucket runs by kernel-visible
    /// interleaving class without keeping whole journals around.
    [[nodiscard]] std::uint64_t class_hash() const;

private:
    std::vector<journal_entry> entries_;
    std::uint64_t next_seq_ = 0;
};

}  // namespace jsk::kernel
