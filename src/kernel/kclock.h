// The kernel clock (§III-C2): a counter that ticks on certain information —
// here, interposed API calls and event dispatches — and *displays* the
// current kernel time when a kernel function asks.
//
// Crucially, the clock never reads physical time. performance.now and rAF
// timestamps under JSKernel show this counter, so the interval between two
// observable readings is determined by the number of API calls and dispatched
// events, not by how long anything physically took (the §IV-A4 argument
// against clock-edge attacks).
#pragma once

#include <algorithm>
#include <cstdint>

#include "kernel/kevent.h"

namespace jsk::kernel {

class kclock {
public:
    /// `tick_ms` is the kernel time granted per tick (per interposed API
    /// call); dispatches advance the clock to the event's predicted time.
    explicit kclock(ktime tick_ms = 0.05) : tick_ms_(tick_ms) {}

    /// Ticking API: advance by n ticks.
    void tick(std::uint64_t n = 1)
    {
        ticks_ += n;
        ticks_since_base_ += n;
    }

    /// Ticking API: advance *to* a specific kernel time (dispatch advances
    /// to the event's predicted time; never moves backwards).
    void tick_to(ktime t)
    {
        if (t > display()) {
            base_ = t;
            ticks_since_base_ = 0;
        }
    }

    /// Displaying API: the current kernel time in kernel milliseconds.
    /// Derived from the integer tick count, never accumulated in floating
    /// point: the same (dispatch frontier, tick count) pair displays the
    /// bit-identical time on every run, regardless of how the ticks were
    /// batched or interleaved. Journal comparison across explored schedules
    /// depends on this.
    [[nodiscard]] ktime display() const
    {
        return base_ + static_cast<ktime>(ticks_since_base_) * tick_ms_;
    }

    [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
    [[nodiscard]] ktime tick_length() const { return tick_ms_; }

private:
    ktime tick_ms_;
    ktime base_ = 0.0;                   // last dominating dispatch time
    std::uint64_t ticks_since_base_ = 0; // ticks displayed on top of it
    std::uint64_t ticks_ = 0;
};

}  // namespace jsk::kernel
