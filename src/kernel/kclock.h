// The kernel clock (§III-C2): a counter that ticks on certain information —
// here, interposed API calls and event dispatches — and *displays* the
// current kernel time when a kernel function asks.
//
// Crucially, the clock never reads physical time. performance.now and rAF
// timestamps under JSKernel show this counter, so the interval between two
// observable readings is determined by the number of API calls and dispatched
// events, not by how long anything physically took (the §IV-A4 argument
// against clock-edge attacks).
#pragma once

#include <algorithm>
#include <cstdint>

#include "kernel/kevent.h"

namespace jsk::kernel {

class kclock {
public:
    /// `tick_ms` is the kernel time granted per tick (per interposed API
    /// call); dispatches advance the clock to the event's predicted time.
    explicit kclock(ktime tick_ms = 0.05) : tick_ms_(tick_ms) {}

    /// Ticking API: advance by n ticks.
    void tick(std::uint64_t n = 1)
    {
        ticks_ += n;
        now_ += static_cast<ktime>(n) * tick_ms_;
    }

    /// Ticking API: advance *to* a specific kernel time (dispatch advances
    /// to the event's predicted time; never moves backwards).
    void tick_to(ktime t) { now_ = std::max(now_, t); }

    /// Displaying API: the current kernel time in kernel milliseconds.
    [[nodiscard]] ktime display() const { return now_; }

    [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
    [[nodiscard]] ktime tick_length() const { return tick_ms_; }

private:
    ktime tick_ms_;
    ktime now_ = 0.0;
    std::uint64_t ticks_ = 0;
};

}  // namespace jsk::kernel
