// Automatic policy extraction (§VI: "We leave it as a future work to
// automatically extract policies for a new vulnerability" — implemented here
// as an extension).
//
// Methodology: run the exploit once on an *instrumented, vulnerable* browser
// while a synthesizer records the runtime event trace. The dangerous events
// (the ones whose detail flags mark an engine-level violation) identify the
// interposition point the kernel must cover; the synthesizer emits the
// corresponding JSON policy rules. Worker-lifecycle races carry no API-level
// rule — they are prevented structurally by the thread manager's termination
// protocol — so the synthesizer reports that the kernel's scheduling core is
// required instead.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kernel/policy.h"
#include "runtime/events.h"

namespace jsk::kernel {

struct synthesis_result {
    /// Dangerous event kinds observed in the trace, in first-seen order.
    std::vector<rt::rt_event_kind> trigger_kinds;
    /// True when the trace contains worker-lifecycle races: no JSON rule
    /// exists for those; installing the kernel (thread manager) is the fix.
    bool requires_thread_manager = false;
    /// JSON policy document covering the API-level triggers; empty when the
    /// trace only contains structural (lifecycle) triggers.
    std::string policy_json;
    /// The loaded policy object for `policy_json` (null when empty).
    std::unique_ptr<policy> synthesized;
};

/// Records runtime events and derives a policy from the observed triggers.
class policy_synthesizer {
public:
    /// Subscribe to the browser's event bus. Call before running the exploit.
    void attach(rt::event_bus& bus);

    [[nodiscard]] const std::vector<rt::rt_event>& trace() const { return trace_; }
    void clear() { trace_.clear(); }

    /// Analyse the recorded trace. Throws std::logic_error when the trace
    /// contains no dangerous event at all (nothing to synthesize from).
    [[nodiscard]] synthesis_result synthesize() const;

private:
    std::vector<rt::rt_event> trace_;
};

}  // namespace jsk::kernel
