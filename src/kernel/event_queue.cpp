#include "kernel/event_queue.h"

#include <stdexcept>
#include <utility>

namespace jsk::kernel {

void event_queue::push(kevent event)
{
    if (index_.contains(event.id)) {
        throw std::invalid_argument("event_queue::push: duplicate event id");
    }
    const key k{event.predicted_time, event.id};
    index_.emplace(event.id, k);
    order_.emplace(k, std::move(event));
}

kevent* event_queue::top()
{
    if (order_.empty()) return nullptr;
    return &order_.begin()->second;
}

kevent event_queue::pop()
{
    if (order_.empty()) throw std::logic_error("event_queue::pop: empty queue");
    auto it = order_.begin();
    kevent out = std::move(it->second);
    index_.erase(out.id);
    order_.erase(it);
    return out;
}

bool event_queue::remove(std::uint64_t id)
{
    auto it = index_.find(id);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
}

kevent* event_queue::lookup(std::uint64_t id)
{
    auto it = index_.find(id);
    if (it == index_.end()) return nullptr;
    return &order_.at(it->second);
}

}  // namespace jsk::kernel
