#include "kernel/event_queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace jsk::kernel {

namespace {

// splitmix64 finalizer: event ids are sequential, so the index needs a mixer
// to avoid clustering runs of probes.
std::uint64_t mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

}  // namespace

// --- id index ------------------------------------------------------------------

std::uint32_t event_queue::index_find(std::uint64_t id) const
{
    if (idx_keys_.empty()) return npos;
    const std::size_t mask = idx_keys_.size() - 1;
    std::size_t pos = mix(id) & mask;
    while (idx_state_[pos] != 0) {
        if (idx_state_[pos] == 1 && idx_keys_[pos] == id) return idx_slots_[pos];
        pos = (pos + 1) & mask;
    }
    return npos;
}

void event_queue::index_insert(std::uint64_t id, std::uint32_t slot)
{
    if (idx_keys_.empty() || (idx_filled_ + 1) * 4 > idx_keys_.size() * 3) {
        index_rehash(std::max<std::size_t>(64, (idx_used_ + 1) * 2));
    }
    const std::size_t mask = idx_keys_.size() - 1;
    std::size_t pos = mix(id) & mask;
    while (idx_state_[pos] == 1) pos = (pos + 1) & mask;
    if (idx_state_[pos] == 0) ++idx_filled_;  // reusing a tombstone keeps filled_
    idx_keys_[pos] = id;
    idx_slots_[pos] = slot;
    idx_state_[pos] = 1;
    ++idx_used_;
}

void event_queue::index_erase(std::uint64_t id)
{
    const std::size_t mask = idx_keys_.size() - 1;
    std::size_t pos = mix(id) & mask;
    while (idx_state_[pos] != 0) {
        if (idx_state_[pos] == 1 && idx_keys_[pos] == id) {
            idx_state_[pos] = 2;  // tombstone: keeps probe chains intact
            --idx_used_;
            return;
        }
        pos = (pos + 1) & mask;
    }
}

void event_queue::index_rehash(std::size_t min_capacity)
{
    std::size_t cap = 64;
    while (cap < min_capacity) cap *= 2;
    std::vector<std::uint64_t> keys(cap);
    std::vector<std::uint32_t> slots(cap);
    std::vector<std::uint8_t> state(cap, 0);
    const std::size_t mask = cap - 1;
    for (std::size_t i = 0; i < idx_keys_.size(); ++i) {
        if (idx_state_[i] != 1) continue;
        std::size_t pos = mix(idx_keys_[i]) & mask;
        while (state[pos] != 0) pos = (pos + 1) & mask;
        keys[pos] = idx_keys_[i];
        slots[pos] = idx_slots_[i];
        state[pos] = 1;
    }
    idx_keys_ = std::move(keys);
    idx_slots_ = std::move(slots);
    idx_state_ = std::move(state);
    idx_filled_ = idx_used_;
}

// --- slot arena ----------------------------------------------------------------

std::uint32_t event_queue::acquire_slot()
{
    if (!free_.empty()) {
        const std::uint32_t slot = free_.back();
        free_.pop_back();
        return slot;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void event_queue::release_slot(std::uint32_t slot)
{
    slot_rec& rec = slots_[slot];
    index_erase(rec.ev.id);
    rec.ev = kevent{};
    rec.alive = false;
    ++rec.gen;  // every outstanding heap_ref for this slot is now a tombstone
    free_.push_back(slot);
    --size_;
}

// --- heap maintenance ----------------------------------------------------------

void event_queue::purge_top()
{
    while (!heap_.empty() && !valid(heap_.front())) {
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
        heap_.pop_back();
    }
}

void event_queue::maybe_compact()
{
    // Tombstones may outnumber live entries by at most the live count (plus a
    // floor so small queues never bother); past that, rebuild in O(n).
    if (heap_.size() > 2 * size_ + 64) {
        std::erase_if(heap_, [this](const heap_ref& r) { return !valid(r); });
        std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
        ++compactions_;
    }
    if (live_heap_.size() > 2 * size_ + 64) {
        std::erase_if(live_heap_, [this](const heap_ref& r) {
            return !valid(r) || slots_[r.slot].ev.status == kevent_status::cancelled;
        });
        std::make_heap(live_heap_.begin(), live_heap_.end(), std::greater<>{});
        ++compactions_;
    }
    // The stage only drains on a probe; bound it the same way so a workload
    // that never probes still keeps bookkeeping within a constant factor of
    // the live size (at most one valid ref per event survives the filter).
    if (live_stage_.size() > 2 * size_ + 64) {
        std::erase_if(live_stage_, [this](const heap_ref& r) {
            return !valid(r) || slots_[r.slot].ev.status == kevent_status::cancelled;
        });
    }
}

// --- public API ----------------------------------------------------------------

void event_queue::push(kevent event)
{
    if (index_find(event.id) != npos) {
        throw std::invalid_argument("event_queue::push: duplicate event id");
    }
    const std::uint32_t slot = acquire_slot();
    slot_rec& rec = slots_[slot];
    rec.ev = std::move(event);
    rec.alive = true;
    index_insert(rec.ev.id, slot);
    const heap_ref ref{rec.ev.predicted_time, rec.ev.id, slot, rec.gen};
    heap_.push_back(ref);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    live_stage_.push_back(ref);  // heapified lazily by the next horizon probe
    ++size_;
    ++pushes_;
    if (size_ > peak_size_) peak_size_ = size_;
    maybe_compact();
}

kevent* event_queue::top()
{
    purge_top();
    if (heap_.empty()) return nullptr;
    return &slots_[heap_.front().slot].ev;
}

kevent event_queue::pop()
{
    purge_top();
    if (heap_.empty()) throw std::logic_error("event_queue::pop: empty queue");
    const heap_ref head = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
    kevent out = std::move(slots_[head.slot].ev);
    release_slot(head.slot);
    return out;
}

bool event_queue::remove(std::uint64_t id)
{
    const std::uint32_t slot = index_find(id);
    if (slot == npos) return false;
    release_slot(slot);  // heap entries become tombstones via the gen bump
    maybe_compact();
    return true;
}

kevent* event_queue::lookup(std::uint64_t id)
{
    const std::uint32_t slot = index_find(id);
    if (slot == npos) return nullptr;
    return &slots_[slot].ev;
}

void event_queue::cancel_all()
{
    for (slot_rec& rec : slots_) {
        if (!rec.alive) continue;
        rec.ev.status = kevent_status::cancelled;
        rec.ev.callback = nullptr;
    }
    live_heap_.clear();  // nothing non-cancelled remains
    live_stage_.clear();
}

bool event_queue::mark_cancelled(std::uint64_t id)
{
    const std::uint32_t slot = index_find(id);
    if (slot == npos) return false;
    slots_[slot].ev.status = kevent_status::cancelled;
    slots_[slot].ev.callback = nullptr;
    // Stale live_heap_ entries self-correct in next_pending_time().
    return true;
}

bool event_queue::update_predicted(std::uint64_t id, ktime predicted)
{
    const std::uint32_t slot = index_find(id);
    if (slot == npos) return false;
    slot_rec& rec = slots_[slot];
    if (rec.ev.predicted_time == predicted) return true;
    rec.ev.predicted_time = predicted;
    ++rec.gen;  // outdated ordering entries become tombstones
    const heap_ref ref{predicted, id, slot, rec.gen};
    heap_.push_back(ref);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    live_stage_.push_back(ref);  // drained (and status-filtered) at probe time
    maybe_compact();
    return true;
}

ktime event_queue::next_pending_time()
{
    // Drain the stage: only refs still valid and non-cancelled are worth
    // heap maintenance — everything popped/removed/re-predicted/cancelled
    // since the last probe is skipped outright.
    for (const heap_ref& ref : live_stage_) {
        if (!valid(ref) || slots_[ref.slot].ev.status == kevent_status::cancelled) {
            continue;
        }
        live_heap_.push_back(ref);
        std::push_heap(live_heap_.begin(), live_heap_.end(), std::greater<>{});
    }
    live_stage_.clear();
    while (!live_heap_.empty()) {
        const heap_ref& head = live_heap_.front();
        if (valid(head) && slots_[head.slot].ev.status != kevent_status::cancelled) {
            return head.predicted;
        }
        // Tombstone, or cancelled behind the queue API's back (scheduler
        // writes through lookup()); cancellation is permanent, so dropping
        // the entry is safe.
        std::pop_heap(live_heap_.begin(), live_heap_.end(), std::greater<>{});
        live_heap_.pop_back();
    }
    return -1.0;
}

}  // namespace jsk::kernel
