// Security policies (§II-B).
//
// A JSKernel policy specifies what the kernel does when user-space code calls
// an interposable function. The general deterministic-scheduling policy of
// Listing 3 is built into the scheduler/prediction machinery; the manually
// written, vulnerability-specific policies of Listing 4 / §IV-B live here as
// small objects consulted at each interposition point.
//
// Hook convention: a hook returns true when the policy *handled* the call
// (blocked or replaced it); the kernel then skips the native path. Policies
// are consulted in registration order, first handler wins.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace jsk::kernel {

class kernel;

/// Outcome of consulting on_fetch_failure: retry=true re-issues the fetch
/// after `delay_ms` of kernel-time backoff.
struct retry_decision {
    bool retry = false;
    double delay_ms = 0.0;
};

class policy {
public:
    virtual ~policy() = default;

    [[nodiscard]] virtual const char* name() const = 0;
    [[nodiscard]] virtual const char* cve() const { return ""; }

    /// JSKernel_Fetch: a fetch is being registered. Returning true blocks it.
    virtual bool on_fetch(kernel&, const std::string& url)
    {
        (void)url;
        return false;
    }

    /// Worker-thread XMLHttpRequest. `cross_origin` is the kernel's own
    /// origin comparison. Returning true blocks the request.
    virtual bool on_xhr(kernel&, const std::string& url, bool cross_origin)
    {
        (void)url;
        (void)cross_origin;
        return false;
    }

    /// importScripts() of one URL. Returning true means the kernel mediates
    /// the import itself (no native path, no leaky error objects).
    virtual bool on_import(kernel&, const std::string& url, bool cross_origin)
    {
        (void)url;
        (void)cross_origin;
        return false;
    }

    /// indexedDB access. Returning true denies the access.
    virtual bool on_indexeddb(kernel&, bool private_mode)
    {
        (void)private_mode;
        return false;
    }

    /// worker.onmessage assignment through the kernel trap. `valid` is false
    /// for null/invalid handlers. Returning true rejects the assignment.
    virtual bool on_onmessage_assign(kernel&, bool valid)
    {
        (void)valid;
        return false;
    }

    /// Error text about to reach a user handler; return the sanitized form.
    virtual std::string on_worker_error(kernel&, const std::string& raw) { return raw; }

    /// A mediated fetch failed. `attempt` is the 1-based attempt that just
    /// failed; `retryable` distinguishes transient network failures
    /// (timeout/reset/partial) from final ones (abort, policy block). The
    /// first policy returning retry=true wins and the kernel re-issues the
    /// fetch after the backoff — the kernel event stays pending throughout,
    /// so retries never reorder the predicted timeline.
    virtual retry_decision on_fetch_failure(kernel&, const std::string& url, int attempt,
                                            bool retryable)
    {
        (void)url;
        (void)attempt;
        (void)retryable;
        return {};
    }
};

/// The policy set shipped by default: one policy per manually analysed CVE
/// (§IV-B). The worker-lifecycle CVEs (2018-5092, 2014-3194, 2014-1719,
/// 2014-1488, 2013-6646, 2010-4576) need no policy object — the thread
/// manager's termination protocol (the kernel-level half of Listing 4)
/// prevents their trigger sequences structurally.
std::vector<std::unique_ptr<policy>> default_policies();

/// Individual factories (tests and ablations compose their own sets).
std::unique_ptr<policy> make_policy_worker_xhr_origin_check();   // CVE-2013-1714
std::unique_ptr<policy> make_policy_onmessage_validation();      // CVE-2013-5602
std::unique_ptr<policy> make_policy_private_idb_deny();          // CVE-2017-7843
std::unique_ptr<policy> make_policy_error_sanitizer();           // CVE-2014-1487 / 2015-7215
std::unique_ptr<policy> make_policy_mediated_import();           // CVE-2011-1190 / 2015-7215

/// Fault hardening (not CVE-bound): retry transient fetch failures up to
/// `max_attempts` total attempts with delay base_ms * 2^(attempt-1).
std::unique_ptr<policy> make_policy_fetch_retry(int max_attempts, double backoff_base_ms);

}  // namespace jsk::kernel
