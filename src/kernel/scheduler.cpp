#include "kernel/scheduler.h"

#include "kernel/kernel.h"
#include "obs/trace.h"

namespace jsk::kernel {

std::uint64_t scheduler::register_event(kevent_type type, ktime hint_ms, std::string label,
                                        std::function<void()> callback)
{
    const ktime predicted = k_->prediction().predict(k_->clock(), type, hint_ms);
    return register_at(type, predicted, std::move(label), std::move(callback));
}

std::uint64_t scheduler::register_at(kevent_type type, ktime predicted, std::string label,
                                     std::function<void()> callback)
{
    k_->charge_queue_op();
    kevent ev;
    ev.id = next_id_++;
    ev.type = type;
    ev.status = kevent_status::pending;
    ev.predicted_time = predicted;
    ev.callback = std::move(callback);
    ev.label = std::move(label);
    if (obs::sink* ts = k_->tsink()) {
        ts->instant(obs::category::kernel, k_->ctx().thread(),
                    k_->browser().sim().now(), "register",
                    {obs::num("event", ev.id), obs::text("type", to_string(type)),
                     obs::num("predicted", predicted)});
    }
    k_->queue().push(std::move(ev));
    ++registered_;
    // A pending event may be the only thing left in the world (its confirmer
    // died, or the channel carrying the confirmation drops everything). Arm
    // the watchdog now — no later scheduler call is guaranteed to come.
    k_->disp().watch_head();
    return next_id_ - 1;
}

void scheduler::confirm(std::uint64_t id, std::function<void()> callback)
{
    k_->charge_queue_op();
    kevent* ev = k_->queue().lookup(id);
    if (ev == nullptr) {
        // Already dispatched or removed; the native trigger raced a cancel.
        k_->disp().pump();
        return;
    }
    if (ev->status == kevent_status::cancelled) {
        k_->queue().remove(id);
        k_->disp().pump();
        return;
    }
    if (callback) ev->callback = std::move(callback);
    ev->status = kevent_status::ready;
    if (obs::sink* ts = k_->tsink()) {
        ts->instant(obs::category::kernel, k_->ctx().thread(),
                    k_->browser().sim().now(), "confirm", {obs::num("event", id)});
    }
    k_->disp().pump();
}

std::uint64_t scheduler::register_ready(kevent_type type, ktime predicted,
                                        std::function<void()> callback, std::string label)
{
    const std::uint64_t id =
        register_at(type, predicted, std::move(label), std::move(callback));
    kevent* ev = k_->queue().lookup(id);
    ev->status = kevent_status::ready;
    k_->disp().pump();
    return id;
}

bool scheduler::cancel(std::uint64_t id)
{
    k_->charge_queue_op();
    // cases 1 & 2: tombstone-aware in-place cancel (the event stays queued
    // so the dispatcher discards it in predicted order); case 3 (already
    // dispatched) returns false and is ignored.
    if (!k_->queue().mark_cancelled(id)) return false;
    if (obs::sink* ts = k_->tsink()) {
        ts->instant(obs::category::kernel, k_->ctx().thread(),
                    k_->browser().sim().now(), "cancel", {obs::num("event", id)});
    }
    k_->disp().pump();  // a cancelled head must not block the queue
    return true;
}

}  // namespace jsk::kernel
