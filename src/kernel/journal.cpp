#include "kernel/journal.h"

#include <bit>
#include <cstring>
#include <sstream>

namespace jsk::kernel {

namespace {

constexpr std::uint64_t fnv_offset = 14695981039346656037ULL;
constexpr std::uint64_t fnv_prime = 1099511628211ULL;

std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t n)
{
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= fnv_prime;
    }
    return h;
}

}  // namespace

std::string journal::to_json() const
{
    std::ostringstream os;
    os << "[\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const auto& e = entries_[i];
        os << "  {\"seq\": " << e.seq << ", \"event\": " << e.event_id << ", \"type\": \""
           << to_string(e.type) << "\", \"predicted\": " << e.predicted_time
           << ", \"label\": \"" << e.label << "\"}";
        if (i + 1 < entries_.size()) os << ",";
        os << "\n";
    }
    os << "]";
    return os.str();
}

std::size_t journal::first_divergence(const journal& other) const
{
    const std::size_t n = std::min(entries_.size(), other.entries_.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (!(entries_[i] == other.entries_[i])) return i;
    }
    if (entries_.size() != other.entries_.size()) return n;
    return npos;
}

std::string journal::diff_description(const journal& other) const
{
    const std::size_t at = first_divergence(other);
    if (at == npos) return {};

    const auto describe = [](const std::vector<journal_entry>& entries, std::size_t i) {
        if (i >= entries.size()) return std::string("<end of journal>");
        const auto& e = entries[i];
        std::ostringstream os;
        os << to_string(e.type) << " \"" << e.label << "\" @" << e.predicted_time;
        return os.str();
    };

    std::ostringstream os;
    os << "journals diverge at seq " << at << ": " << describe(entries_, at) << " vs "
       << describe(other.entries_, at) << " (sizes " << entries_.size() << "/"
       << other.entries_.size() << ")";
    return os.str();
}

std::uint64_t journal::class_hash() const
{
    std::uint64_t h = fnv_offset;
    for (const auto& e : entries_) {
        const auto type = static_cast<std::uint64_t>(e.type);
        h = fnv_bytes(h, &type, sizeof type);
        const auto slot = std::bit_cast<std::uint64_t>(e.predicted_time);
        h = fnv_bytes(h, &slot, sizeof slot);
        h = fnv_bytes(h, e.label.data(), e.label.size());
        h = fnv_bytes(h, "\x1f", 1);  // label separator: no concat collisions
    }
    return h;
}

}  // namespace jsk::kernel
