#include "kernel/journal.h"

#include <sstream>

namespace jsk::kernel {

std::string journal::to_json() const
{
    std::ostringstream os;
    os << "[\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const auto& e = entries_[i];
        os << "  {\"seq\": " << e.seq << ", \"event\": " << e.event_id << ", \"type\": \""
           << to_string(e.type) << "\", \"predicted\": " << e.predicted_time
           << ", \"label\": \"" << e.label << "\"}";
        if (i + 1 < entries_.size()) os << ",";
        os << "\n";
    }
    os << "]";
    return os.str();
}

std::size_t journal::first_divergence(const journal& other) const
{
    const std::size_t n = std::min(entries_.size(), other.entries_.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (!(entries_[i] == other.entries_[i])) return i;
    }
    if (entries_.size() != other.entries_.size()) return n;
    return npos;
}

std::string journal::diff_description(const journal& other) const
{
    const std::size_t at = first_divergence(other);
    if (at == npos) return {};

    const auto describe = [](const std::vector<journal_entry>& entries, std::size_t i) {
        if (i >= entries.size()) return std::string("<end of journal>");
        const auto& e = entries[i];
        std::ostringstream os;
        os << to_string(e.type) << " \"" << e.label << "\" @" << e.predicted_time;
        return os.str();
    };

    std::ostringstream os;
    os << "journals diverge at seq " << at << ": " << describe(entries_, at) << " vs "
       << describe(other.entries_, at) << " (sizes " << entries_.size() << "/"
       << other.entries_.size() << ")";
    return os.str();
}

}  // namespace jsk::kernel
