// JSKernel (§III): the kernel installed into one execution context.
//
// Installation snapshots the context's native API table (the kernel's
// private, attacker-unreachable copies), replaces every interposable entry
// with a kernel version, and locks the trap slots. From then on every
// asynchronous observable goes through registration -> confirmation ->
// predicted-order dispatch, and every clock displays kernel time.
//
// One kernel instance exists per thread: the main kernel additionally runs
// the thread manager; worker kernels hold a channel back to their parent.
// Each kernel has its *own* event queue and clock (§III-E1).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/dispatcher.h"
#include "kernel/event_queue.h"
#include "kernel/kclock.h"
#include "kernel/journal.h"
#include "kernel/kevent.h"
#include "kernel/policy.h"
#include "kernel/prediction.h"
#include "kernel/scheduler.h"
#include "kernel/thread_manager.h"
#include "runtime/browser.h"

namespace jsk::kernel {

struct kernel_options {
    ktime tick_ms = 0.05;  // kernel clock granularity per API call
    prediction_intervals intervals;
    bool fuzzy_prediction = false;  // ablation: fuzzy instead of deterministic
    std::uint64_t fuzz_seed = 1;
    bool enable_cve_policies = true;
    sim::time_ns interpose_cost = 50;   // ns of kernel code per wrapped call
    sim::time_ns queue_op_cost = 150;   // ns per scheduler queue operation
    sim::time_ns dom_interpose_cost = 35;  // extra ns on DOM attribute traps
    double date_epoch_ms = 1'580'000'000'000.0;
    /// Dispatcher watchdog: a head may stay pending at most this many kernel
    /// milliseconds before the dispatcher cancels it (journaled as a
    /// watchdog_cancel entry) and moves on. 0 disables the watchdog — the
    /// default, so fault-free configurations are untouched.
    ktime watchdog_budget_ms = 0.0;
};

class kernel {
public:
    enum class role { main, worker };

    /// Boot a kernel onto the browser's main context. The returned object
    /// owns every child kernel it later creates for workers.
    static std::unique_ptr<kernel> boot(rt::browser& b, kernel_options opts = {});

    kernel(rt::context& ctx, kernel_options opts, role r, kernel* parent);
    ~kernel();

    kernel(const kernel&) = delete;
    kernel& operator=(const kernel&) = delete;

    // --- component access (used by scheduler/dispatcher/thread manager) ---
    [[nodiscard]] rt::context& ctx() { return *ctx_; }
    [[nodiscard]] rt::browser& browser() { return ctx_->owner(); }
    [[nodiscard]] event_queue& queue() { return queue_; }
    [[nodiscard]] kclock& clock() { return clock_; }
    [[nodiscard]] prediction_strategy& prediction() { return *prediction_; }
    [[nodiscard]] scheduler& sched() { return sched_; }
    [[nodiscard]] dispatcher& disp() { return disp_; }
    [[nodiscard]] thread_manager& threads() { return threads_; }
    [[nodiscard]] const kernel_options& options() const { return opts_; }
    [[nodiscard]] role kind() const { return role_; }
    [[nodiscard]] kernel* parent() { return parent_; }
    [[nodiscard]] const rt::api_table& natives() const { return natives_; }
    [[nodiscard]] const std::vector<std::unique_ptr<kernel>>& children() const
    {
        return children_;
    }

    /// The world's observability sink, reached through the simulation (the
    /// single attach point); nullptr when no sink is attached. Every kernel
    /// instrumentation site guards on this pointer, with all argument
    /// construction behind the branch.
    [[nodiscard]] obs::sink* tsink() { return ctx_->owner().sim().trace_sink(); }

    // --- policies ---
    void add_policy(std::unique_ptr<policy> p) { policies_.push_back(std::move(p)); }
    [[nodiscard]] const std::vector<std::unique_ptr<policy>>& policies() const
    {
        return policies_;
    }
    bool policy_block_fetch(const std::string& url);
    bool policy_block_xhr(const std::string& url, bool cross_origin);
    bool policy_mediate_import(const std::string& url, bool cross_origin);
    bool policy_deny_idb(bool private_mode);
    bool policy_reject_onmessage(bool valid);
    std::string policy_sanitize_error(const std::string& raw);
    /// Consult policies about re-issuing a failed fetch (first retry wins).
    retry_decision policy_fetch_retry(const std::string& url, int attempt, bool retryable);

    /// Graceful degradation: a policy whose hook threw is quarantined — it is
    /// never consulted again on this kernel, mediation falls back to
    /// pass-through for it, and the CVE monitors (which live on the runtime
    /// bus, not in policies) stay armed. Each quarantine is traced.
    [[nodiscard]] bool is_quarantined(const policy* p) const;
    [[nodiscard]] std::uint64_t policies_quarantined() const
    {
        return quarantined_.size();
    }

    // --- worker-side plumbing ---
    /// Store the user's self.onmessage handler (trap target).
    void set_user_self_onmessage(rt::message_cb cb) { user_self_onmessage_ = std::move(cb); }
    /// Native self.onmessage of a kernel worker lands here.
    void on_parent_message(const rt::message_event& event);
    void send_sys_to_parent(const std::string& cmd, rt::js_value payload = {});
    [[nodiscard]] bool user_closed() const { return user_closed_; }
    /// User-level closure: user events stop; the native thread stays until
    /// the termination handshake completes.
    void enter_user_closed();
    /// Send ready-to-die / flush-ack once nothing is outstanding.
    void maybe_signal_drained();

    /// Null-message protocol (worker kernels): certify to the parent the
    /// earliest kernel time at which this thread could still send a user
    /// message (-1 = never, unless prompted by new input). The parent's
    /// channel guard blocks its dispatch frontier at that horizon, which is
    /// what makes cross-thread message arrival *order-independent* — see
    /// DESIGN.md §4 and tests/properties/test_program_fuzz.cpp.
    void send_horizon();

    /// Called by the dispatcher after every dispatched event.
    void after_dispatch();

    /// Adopt a child kernel (main kernel owns worker kernels).
    kernel& adopt_child(std::unique_ptr<kernel> child);

    // --- bookkeeping shared with components ---
    void charge_interpose() { ctx_->consume(opts_.interpose_cost); }
    void charge_queue_op() { ctx_->consume(opts_.queue_op_cost); }
    [[nodiscard]] int outstanding_fetches() const { return outstanding_fetches_; }

    // --- instrumentation for benches/tests ---
    [[nodiscard]] std::uint64_t api_calls() const { return api_calls_; }
    [[nodiscard]] std::uint64_t events_dispatched() const { return disp_.dispatched(); }
    /// Policy evaluations / denials across all policy_* entry points.
    [[nodiscard]] std::uint64_t policy_checks() const { return policy_checks_; }
    [[nodiscard]] std::uint64_t policy_denials() const { return policy_denials_; }
    /// Failed fetches re-issued by a retry policy (kernel-side hardening).
    [[nodiscard]] std::uint64_t fetch_retries() const { return fetch_retries_; }
    /// Append-only record of every dispatched kernel event (determinism
    /// evidence; see kernel/journal.h).
    [[nodiscard]] const journal& dispatch_journal() const { return journal_; }
    [[nodiscard]] journal& dispatch_journal() { return journal_; }

    /// Pending flags consumed by the worker-side drain handshake.
    bool awaiting_ready_to_die = false;
    bool awaiting_flush_ack = false;

private:
    friend class thread_manager;
    friend class dispatcher;
    friend class scheduler;

    void install();

    // Kernel API implementations (replacing the api_table entries).
    std::int64_t k_set_timeout(rt::timer_cb cb, sim::time_ns delay);
    void k_clear_timeout(std::int64_t id);
    std::int64_t k_set_interval(rt::timer_cb cb, sim::time_ns period);
    void k_clear_interval(std::int64_t id);
    std::int64_t k_request_animation_frame(rt::frame_cb cb);
    void k_cancel_animation_frame(std::int64_t id);
    double k_performance_now();
    double k_date_now();
    rt::worker_ptr k_create_worker(const std::string& src);
    rt::context* k_create_iframe(const std::string& name);
    void k_post_message_to_parent(rt::js_value data, rt::transfer_list transfer);
    void k_set_self_onmessage(rt::message_cb cb);
    void k_close_self();
    void k_import_scripts(const std::vector<std::string>& urls);
    void k_fetch(const std::string& url, rt::fetch_options options, rt::fetch_cb then,
                 rt::fetch_cb fail);
    void k_abort_fetch(const rt::abort_signal& signal);
    void k_xhr(const std::string& url, rt::fetch_cb done);
    void k_reload();
    void k_append_child(const rt::element_ptr& parent, const rt::element_ptr& child);
    std::string k_get_attribute(const rt::element_ptr& el, const std::string& name);
    void k_set_attribute(const rt::element_ptr& el, const std::string& name,
                         const std::string& value);
    void k_set_cue_callback(const rt::element_ptr& el, rt::timer_cb cb);
    double k_sab_load(const rt::shared_buffer_ptr& buf, std::size_t index, wm::access acc);
    void k_sab_store(const rt::shared_buffer_ptr& buf, std::size_t index, double value,
                     wm::access acc);
    double k_atomics_load(const rt::shared_buffer_ptr& buf, std::size_t index);
    void k_atomics_store(const rt::shared_buffer_ptr& buf, std::size_t index, double value);
    double k_atomics_add(const rt::shared_buffer_ptr& buf, std::size_t index, double delta);
    double k_atomics_compare_exchange(const rt::shared_buffer_ptr& buf, std::size_t index,
                                      double expected, double desired);
    bool k_indexeddb_put(const std::string& db, const std::string& key, rt::js_value value);
    rt::js_value k_indexeddb_get(const std::string& db, const std::string& key);

    [[nodiscard]] bool is_cross_origin(const std::string& url) const;

    /// Walk this kernel's policy chain (self -> parent), skipping quarantined
    /// policies and quarantining any whose hook throws. `hook` receives the
    /// policy and returns true to deny/handle (first hit wins).
    template <typename Hook>
    bool consult_policies(Hook&& hook);
    void quarantine_policy(const policy* p);

    /// Issue attempt `attempt` of the fetch behind kernel event `event`. The
    /// failure path consults policy_fetch_retry and may re-issue after
    /// backoff; the kernel event stays registered (and outstanding_fetches_
    /// held) across attempts, so retries are invisible on the predicted
    /// timeline.
    void start_fetch_attempt(std::uint64_t event, const std::string& url,
                             rt::fetch_options options, rt::fetch_cb then, rt::fetch_cb fail,
                             int attempt);

    /// Count a policy evaluation and, when a sink is attached, emit a
    /// category::policy instant named `decision` ("policy:fetch", ...).
    void note_policy(const char* decision, bool denied, const std::string* url = nullptr);

    rt::context* ctx_;
    kernel_options opts_;
    role role_;
    kernel* parent_;

    rt::api_table natives_;  // private copies taken before replacement
    event_queue queue_;
    kclock clock_;
    journal journal_;
    std::unique_ptr<prediction_strategy> prediction_;
    scheduler sched_;
    dispatcher disp_;
    thread_manager threads_;
    std::vector<std::unique_ptr<policy>> policies_;
    std::vector<std::unique_ptr<kernel>> children_;

    // timers: kernel id -> (kevent id, native id)
    struct timer_binding {
        std::uint64_t event = 0;
        std::int64_t native = 0;
    };
    std::unordered_map<std::int64_t, timer_binding> timers_;
    std::int64_t next_timer_id_ = 1;

    struct interval_binding {
        std::int64_t native = 0;
        ktime base = 0.0;
        ktime period_ms = 0.0;
        std::uint64_t seq = 0;
        std::uint64_t pending_event = 0;  // the next tick, registered ahead
        std::vector<std::uint64_t> live_events;  // all undispatched ticks
        rt::timer_cb cb;
    };
    std::unordered_map<std::int64_t, interval_binding> intervals_;

    std::unordered_map<std::int64_t, timer_binding> rafs_;
    std::int64_t next_raf_id_ = 1;

    struct cue_binding {
        ktime base = 0.0;
        std::uint64_t seq = 0;
    };
    std::unordered_map<rt::element*, cue_binding> cues_;
    std::unordered_map<rt::element*, ktime> anim_reads_;  // first-read clock base
    std::unordered_map<rt::shared_buffer*, std::vector<double>> sab_shadow_;
    std::vector<double>& sab_shadow(const rt::shared_buffer_ptr& buf);

    // worker-side state
    rt::message_cb user_self_onmessage_;
    std::uint64_t self_onmessage_seq_ = 0;
    ktime self_onmessage_base_ = 0.0;
    bool user_closed_ = false;
    ktime last_horizon_sent_ = -2.0;  // -2 = never sent; -1 = "infinity"
    std::uint64_t last_horizon_seen_ = static_cast<std::uint64_t>(-1);

    int outstanding_fetches_ = 0;
    std::uint64_t api_calls_ = 0;
    std::uint64_t policy_checks_ = 0;
    std::uint64_t policy_denials_ = 0;
    std::uint64_t fetch_retries_ = 0;
    std::vector<const policy*> quarantined_;
};

}  // namespace jsk::kernel
