#include "kernel/dispatcher.h"

#include <utility>

#include "kernel/kernel.h"
#include "obs/trace.h"
#include "sim/time.h"

namespace jsk::kernel {

void dispatcher::pump()
{
    if (dispatch_scheduled_) return;  // the running dispatch task re-pumps
    event_queue& q = k_->queue();
    // Discard cancelled heads eagerly (§III-D3).
    while (kevent* head = q.top()) {
        if (head->status != kevent_status::cancelled) break;
        q.pop();
    }
    kevent* head = q.top();
    if (head == nullptr) return;
    if (head->status != kevent_status::ready) {  // pending: wait (bounded)
        arm_watchdog(*head);
        return;
    }

    // One ready event per macrotask. The head is re-examined when the task
    // actually runs: an event registered later in the current task with an
    // earlier predicted time must dispatch first.
    dispatch_scheduled_ = true;
    k_->ctx().post_task(
        0,
        [this] {
            dispatch_scheduled_ = false;
            event_queue& queue = k_->queue();
            while (kevent* h = queue.top()) {
                if (h->status == kevent_status::cancelled) {
                    queue.pop();
                    continue;
                }
                if (h->status != kevent_status::ready) {
                    arm_watchdog(*h);
                    return;
                }
                kevent ev = queue.pop();
                k_->clock().tick_to(ev.predicted_time);
                k_->dispatch_journal().record(ev);
                ++dispatched_;
                obs::sink* ts = k_->tsink();
                sim::time_ns t0 = 0;
                if (ts != nullptr) t0 = k_->browser().sim().now();
                if (ev.callback) {
                    try {
                        ev.callback();
                    } catch (...) {
                        // An uncaught exception in a page callback: a real
                        // event loop reports it and moves on. The kernel's
                        // dispatch frontier must not stall (after_dispatch +
                        // pump below still run), so contain it here.
                        ++callback_exceptions_;
                        if (obs::sink* es = k_->tsink()) {
                            es->instant(obs::category::kernel, k_->ctx().thread(),
                                        k_->browser().sim().now(), "dispatch:exception",
                                        {obs::num("event", ev.id)});
                        }
                    }
                }
                if (ts != nullptr) {
                    std::vector<obs::arg> args{obs::num("event", ev.id),
                                               obs::num("predicted", ev.predicted_time)};
                    if (!ev.label.empty()) args.push_back(obs::text("label", ev.label));
                    ts->complete(obs::category::kernel, k_->ctx().thread(), t0,
                                 k_->browser().sim().now() - t0,
                                 std::string("dispatch:") + to_string(ev.type),
                                 std::move(args));
                }
                k_->after_dispatch();  // worker kernels certify their horizon
                pump();                // next event gets its own macrotask
                return;
            }
        },
        "kdispatch");
}

void dispatcher::watch_head()
{
    kevent* head = k_->queue().top();
    if (head != nullptr && head->status == kevent_status::pending) arm_watchdog(*head);
}

void dispatcher::arm_watchdog(const kevent& head)
{
    const ktime budget_ms = k_->options().watchdog_budget_ms;
    if (budget_ms <= 0) return;
    if (watchdog_armed_for_ == head.id && watchdog_armed_predicted_ == head.predicted_time)
        return;  // the live timer already covers this exact frontier
    watchdog_armed_for_ = head.id;
    watchdog_armed_predicted_ = head.predicted_time;
    const std::uint64_t gen = ++watchdog_generation_;
    k_->ctx().post_task(
        sim::from_ms(budget_ms), [this, gen] { watchdog_expire(gen); }, "kwatchdog");
}

void dispatcher::watchdog_expire(std::uint64_t generation)
{
    // A later arm (head change, or the same head's certificate advancing —
    // i.e. progress) supersedes this timer.
    if (generation != watchdog_generation_) return;
    const std::uint64_t head_id = watchdog_armed_for_;
    const ktime armed_predicted = watchdog_armed_predicted_;
    watchdog_armed_for_ = 0;
    event_queue& q = k_->queue();
    kevent* head = q.top();
    if (head == nullptr || head->id != head_id || head->status != kevent_status::pending) {
        // Confirmed (or cancelled, or overtaken by an earlier registration)
        // within the budget: the timer has nothing to rescue.
        return;
    }
    if (head->predicted_time != armed_predicted) {
        // The certificate moved while the timer ran: the world is making
        // progress on this head, so grant it a fresh budget instead of firing.
        arm_watchdog(*head);
        return;
    }
    // The confirmation never arrived: the native completion was lost to a
    // dropped channel message, a dead worker, or a timed-out fetch nobody
    // retried. Cancel the head so the frontier moves, and journal the
    // cancellation — recovery is part of the deterministic record.
    kevent note;
    note.id = head->id;
    note.type = kevent_type::watchdog_cancel;
    note.status = kevent_status::cancelled;
    note.predicted_time = head->predicted_time;
    note.label = "watchdog:" + head->label;
    k_->dispatch_journal().record(note);
    ++watchdog_fires_;
    if (obs::sink* ts = k_->tsink()) {
        ts->instant(obs::category::fault, k_->ctx().thread(), k_->browser().sim().now(),
                    "watchdog:cancel",
                    {obs::num("event", head->id), obs::num("predicted", head->predicted_time)});
    }
    q.mark_cancelled(head_id);
    pump();
}

}  // namespace jsk::kernel
