#include "kernel/dispatcher.h"

#include <utility>

#include "kernel/kernel.h"
#include "obs/trace.h"

namespace jsk::kernel {

void dispatcher::pump()
{
    if (dispatch_scheduled_) return;  // the running dispatch task re-pumps
    event_queue& q = k_->queue();
    // Discard cancelled heads eagerly (§III-D3).
    while (kevent* head = q.top()) {
        if (head->status != kevent_status::cancelled) break;
        q.pop();
    }
    kevent* head = q.top();
    if (head == nullptr || head->status != kevent_status::ready) return;  // pending: wait

    // One ready event per macrotask. The head is re-examined when the task
    // actually runs: an event registered later in the current task with an
    // earlier predicted time must dispatch first.
    dispatch_scheduled_ = true;
    k_->ctx().post_task(
        0,
        [this] {
            dispatch_scheduled_ = false;
            event_queue& queue = k_->queue();
            while (kevent* h = queue.top()) {
                if (h->status == kevent_status::cancelled) {
                    queue.pop();
                    continue;
                }
                if (h->status != kevent_status::ready) return;
                kevent ev = queue.pop();
                k_->clock().tick_to(ev.predicted_time);
                k_->dispatch_journal().record(ev);
                ++dispatched_;
                obs::sink* ts = k_->tsink();
                sim::time_ns t0 = 0;
                if (ts != nullptr) t0 = k_->browser().sim().now();
                if (ev.callback) ev.callback();
                if (ts != nullptr) {
                    std::vector<obs::arg> args{obs::num("event", ev.id),
                                               obs::num("predicted", ev.predicted_time)};
                    if (!ev.label.empty()) args.push_back(obs::text("label", ev.label));
                    ts->complete(obs::category::kernel, k_->ctx().thread(), t0,
                                 k_->browser().sim().now() - t0,
                                 std::string("dispatch:") + to_string(ev.type),
                                 std::move(args));
                }
                k_->after_dispatch();  // worker kernels certify their horizon
                pump();                // next event gets its own macrotask
                return;
            }
        },
        "kdispatch");
}

}  // namespace jsk::kernel
