#include "kernel/policy_synthesis.h"

#include <algorithm>
#include <stdexcept>

#include "kernel/policy_spec.h"

namespace jsk::kernel {

namespace {

/// Is this event, with its detail flag, an engine-level violation?
bool is_dangerous(const rt::rt_event& event)
{
    using k = rt::rt_event_kind;
    switch (event.kind) {
        case k::fetch_aborted:
        case k::transferable_received:
        case k::message_after_termination:
        case k::terminate_during_dispatch:
        case k::worker_double_termination:
        case k::xhr_request:
        case k::import_scripts_error:
        case k::cross_origin_script_imported:
        case k::worker_error_event:
        case k::worker_onmessage_assigned:
        case k::indexeddb_access:
        case k::page_reload:
            return event.detail_flag;
        case k::indexeddb_persisted_private:
        case k::fetch_freed:
            return true;
        default:
            return false;
    }
}

/// JSON rule for an API-level trigger; empty for structural ones.
std::string rule_for(rt::rt_event_kind kind)
{
    using k = rt::rt_event_kind;
    switch (kind) {
        case k::xhr_request:
            return R"({"hook": "xhr", "action": "block-cross-origin"})";
        case k::worker_onmessage_assigned:
            return R"({"hook": "onmessage_assign", "action": "reject-invalid"})";
        case k::indexeddb_access:
        case k::indexeddb_persisted_private:
            return R"({"hook": "indexeddb", "action": "deny-private"})";
        case k::worker_error_event:
            return R"({"hook": "worker_error", "action": "sanitize", "replacement": "Script error."})";
        case k::import_scripts_error:
        case k::cross_origin_script_imported:
            return R"({"hook": "import_scripts", "action": "mediate-cross-origin"})";
        default:
            return {};  // structural: thread-manager territory
    }
}

bool is_structural(rt::rt_event_kind kind)
{
    using k = rt::rt_event_kind;
    switch (kind) {
        case k::fetch_aborted:
        case k::fetch_freed:
        case k::transferable_received:
        case k::message_after_termination:
        case k::terminate_during_dispatch:
        case k::worker_double_termination:
        case k::page_reload:
            return true;
        default:
            return false;
    }
}

}  // namespace

void policy_synthesizer::attach(rt::event_bus& bus)
{
    bus.subscribe([this](const rt::rt_event& event) { trace_.push_back(event); });
}

synthesis_result policy_synthesizer::synthesize() const
{
    synthesis_result result;
    std::vector<std::string> rules;
    for (const auto& event : trace_) {
        if (!is_dangerous(event)) continue;
        if (std::find(result.trigger_kinds.begin(), result.trigger_kinds.end(), event.kind) !=
            result.trigger_kinds.end()) {
            continue;  // one rule per kind
        }
        result.trigger_kinds.push_back(event.kind);
        if (is_structural(event.kind)) {
            result.requires_thread_manager = true;
            continue;
        }
        const std::string rule = rule_for(event.kind);
        if (!rule.empty()) rules.push_back(rule);
    }
    if (result.trigger_kinds.empty()) {
        throw std::logic_error(
            "policy synthesis: trace contains no dangerous event to learn from");
    }
    if (!rules.empty()) {
        std::string json = "{\n  \"name\": \"synthesized-policy\",\n  \"rules\": [\n";
        for (std::size_t i = 0; i < rules.size(); ++i) {
            json += "    " + rules[i];
            if (i + 1 < rules.size()) json += ",";
            json += "\n";
        }
        json += "  ]\n}";
        result.policy_json = json;
        result.synthesized = load_policy_spec(json);
    }
    return result;
}

}  // namespace jsk::kernel
