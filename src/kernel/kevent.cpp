#include "kernel/kevent.h"

namespace jsk::kernel {

const char* to_string(kevent_type type)
{
    switch (type) {
        case kevent_type::timeout: return "timeout";
        case kevent_type::interval_tick: return "interval_tick";
        case kevent_type::animation_frame: return "animation_frame";
        case kevent_type::self_onmessage: return "self_onmessage";
        case kevent_type::worker_onmessage: return "worker_onmessage";
        case kevent_type::worker_onerror: return "worker_onerror";
        case kevent_type::fetch_then: return "fetch_then";
        case kevent_type::fetch_fail: return "fetch_fail";
        case kevent_type::xhr_done: return "xhr_done";
        case kevent_type::load: return "load";
        case kevent_type::video_cue: return "video_cue";
        case kevent_type::sys: return "sys";
        case kevent_type::generic: return "generic";
        case kevent_type::watchdog_cancel: return "watchdog_cancel";
    }
    return "unknown";
}

const char* to_string(kevent_status status)
{
    switch (status) {
        case kevent_status::pending: return "pending";
        case kevent_status::ready: return "ready";
        case kevent_status::cancelled: return "cancelled";
        case kevent_status::done: return "done";
    }
    return "unknown";
}

}  // namespace jsk::kernel
