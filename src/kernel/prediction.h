// Prediction strategies (§III-D1).
//
// At registration the scheduler predicts each event's kernel time. The
// prediction must be a pure function of program-visible state (kernel clock,
// per-type sequence counters, requested delays) — never of physical timing —
// or the predicted timeline itself would leak the secret.
//
// Two strategies ship:
//  * deterministic — the paper's Listing-3 policy: fixed expected interval
//    per event type (the values JSKernel reports in Table II: 1 ms message
//    cadence, 10 ms frame/load cadence).
//  * fuzzy — an ablation: deterministic base plus seeded noise, mirroring the
//    fuzzy-time family (Fuzzyfox / JavaScript Zero) inside the kernel. The
//    evaluation shows why determinism is the right choice.
#pragma once

#include <cstdint>
#include <memory>

#include "kernel/kclock.h"
#include "kernel/kevent.h"
#include "sim/rng.h"

namespace jsk::kernel {

/// Fixed expected durations per event type, in kernel ms.
struct prediction_intervals {
    ktime timeout_min = 1.0;       // floor on setTimeout predictions
    ktime onmessage = 1.0;         // postMessage delivery cadence (Table II)
    ktime animation_frame = 10.0;  // rAF cadence under the kernel (Table II)
    ktime fetch = 10.0;            // network completion estimate
    ktime load = 10.0;             // DOM resource load estimate
    ktime video_cue = 10.0;
    ktime error = 5.0;
    ktime sys = 0.5;
    ktime generic = 1.0;
};

class prediction_strategy {
public:
    virtual ~prediction_strategy() = default;

    /// Predict the kernel time for an event of `type` registered now.
    /// `hint_ms` carries the user-requested delay for timers (<= 0 for
    /// types without one).
    virtual ktime predict(const kclock& clock, kevent_type type, ktime hint_ms) = 0;

    /// Counter-based prediction for event streams (messages, interval ticks,
    /// media cues): the n-th event of a stream anchored at `base`.
    virtual ktime sequence_predict(ktime base, std::uint64_t n, ktime interval)
    {
        return base + static_cast<ktime>(n) * interval;
    }

    [[nodiscard]] virtual const char* name() const = 0;

    /// Base expected interval for `type` (shared by both strategies).
    [[nodiscard]] ktime expected(kevent_type type, ktime hint_ms) const;

    prediction_intervals intervals;
};

/// Listing-3 deterministic scheduling: predicted = clock.display() + expected.
class deterministic_prediction final : public prediction_strategy {
public:
    ktime predict(const kclock& clock, kevent_type type, ktime hint_ms) override
    {
        return clock.display() + expected(type, hint_ms);
    }
    [[nodiscard]] const char* name() const override { return "deterministic"; }
};

/// Ablation: deterministic base plus seeded jitter. Weaker by design — the
/// bench_ablation harness quantifies how much.
class fuzzy_prediction final : public prediction_strategy {
public:
    explicit fuzzy_prediction(std::uint64_t seed, double jitter_ms = 2.0)
        : rng_(seed), jitter_ms_(jitter_ms)
    {
    }

    ktime predict(const kclock& clock, kevent_type type, ktime hint_ms) override
    {
        const double noise = rng_.next_double() * jitter_ms_;
        return clock.display() + expected(type, hint_ms) + noise;
    }
    ktime sequence_predict(ktime base, std::uint64_t n, ktime interval) override
    {
        return base + static_cast<ktime>(n) * interval + rng_.next_double() * jitter_ms_;
    }
    [[nodiscard]] const char* name() const override { return "fuzzy"; }

private:
    sim::rng rng_;
    double jitter_ms_;
};

std::unique_ptr<prediction_strategy> make_prediction(bool fuzzy, std::uint64_t seed);

}  // namespace jsk::kernel
