// Kernel event objects (§III-C1).
//
// Every asynchronous occurrence a user script can observe — a timer firing,
// an animation frame, a message arriving, a fetch resolving — becomes a
// kernel event with a *predicted time* on the kernel's virtual timeline. The
// dispatcher replays events strictly in predicted order, so the observable
// interleaving is a pure function of the program, not of physical timing.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace jsk::kernel {

/// Kernel virtual time, in kernel milliseconds. Kernel time only ever moves
/// through clock ticks and dispatch advances — it is never read from a
/// physical clock.
using ktime = double;

enum class kevent_status {
    pending,    // registered; waiting for the native trigger (confirmation)
    ready,      // confirmed; waiting for its turn in predicted order
    cancelled,  // user cancelled before dispatch
    done,       // dispatched
};

enum class kevent_type {
    timeout,
    interval_tick,
    animation_frame,
    self_onmessage,    // message delivered into a worker scope
    worker_onmessage,  // message delivered to the parent-side handler
    worker_onerror,
    fetch_then,
    fetch_fail,
    xhr_done,
    load,          // DOM resource load callbacks
    video_cue,
    sys,           // kernel-internal bookkeeping events
    generic,
    watchdog_cancel,  // journal-only: a pending head cancelled by the watchdog
};

const char* to_string(kevent_type type);
const char* to_string(kevent_status status);

struct kevent {
    std::uint64_t id = 0;
    kevent_type type = kevent_type::generic;
    kevent_status status = kevent_status::pending;
    ktime predicted_time = 0.0;
    std::function<void()> callback;  // bound with this/args at confirmation
    std::string label;
};

}  // namespace jsk::kernel
