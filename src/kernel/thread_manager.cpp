#include "kernel/thread_manager.h"

#include <utility>

#include "kernel/kernel.h"

namespace jsk::kernel {

namespace {

/// The user-space stub for Worker objects (§III-B): a proxy whose every
/// method calls into the kernel. User code never touches the native worker.
class kernel_worker_stub final : public rt::worker_handle {
public:
    kernel_worker_stub(thread_manager& manager, std::uint64_t tid)
        : manager_(&manager), tid_(tid)
    {
    }

    void post_message(rt::js_value data, rt::transfer_list transfer) override
    {
        manager_->stub_post_message(tid_, std::move(data), std::move(transfer));
    }
    void set_onmessage(rt::message_cb cb) override
    {
        manager_->stub_set_onmessage(tid_, std::move(cb));
    }
    void set_onerror(rt::error_cb cb) override
    {
        manager_->stub_set_onerror(tid_, std::move(cb));
    }
    void terminate() override { manager_->stub_terminate(tid_); }
    [[nodiscard]] bool alive() const override { return manager_->stub_alive(tid_); }
    [[nodiscard]] std::uint64_t id() const override { return manager_->stub_native_id(tid_); }

private:
    thread_manager* manager_;
    std::uint64_t tid_;
};

}  // namespace

kthread* thread_manager::find(std::uint64_t tid)
{
    for (auto& kt : threads_) {
        if (kt->id == tid) return kt.get();
    }
    return nullptr;
}

rt::worker_ptr thread_manager::create_user_thread(const std::string& src)
{
    auto kt = std::make_unique<kthread>();
    kt->id = next_tid_++;
    kt->src = src;
    kt->onmessage_base = k_->clock().display();
    kthread* raw = kt.get();
    threads_.push_back(std::move(kt));
    // Arm the channel guard before the kernel worker can say anything.
    guard_create(*raw, raw->onmessage_base + k_->prediction().intervals.onmessage);

    // Register the kernel bootstrap the native worker will import. It
    // installs a child kernel (own queue + clock) and only then imports the
    // user source under that kernel (§III-E1).
    const std::string kernel_src =
        "__jskernel__/" + src + "#" + std::to_string(raw->id);
    kernel* mk = k_;
    const std::uint64_t tid = raw->id;
    k_->browser().register_worker_script(
        kernel_src, [mk, src, tid](rt::context& child_ctx) {
            auto child = std::make_unique<kernel>(child_ctx, mk->options(),
                                                  kernel::role::worker, mk);
            kernel& child_ref = mk->adopt_child(std::move(child));
            if (kthread* kt2 = mk->threads().find(tid)) {
                kt2->child_kernel = &child_ref;
                kt2->status = "ready";
            }
            if (const auto* body = mk->browser().find_worker_script(src)) {
                (*body)(child_ctx);
            } else {
                child_ref.send_sys_to_parent("worker-error",
                                             rt::js_value{"Script error."});
            }
            child_ref.send_horizon();  // certify the post-import send horizon
        });

    raw->native = k_->natives().create_worker(kernel_src);
    raw->native->set_onmessage([this, tid](const rt::message_event& event) {
        const rt::js_value type = event.data.get("__jsk");
        if (!type.is_string()) return;
        if (type.as_string() == "sys") {
            handle_sys_from_child(tid, event.data.get("cmd").as_string(),
                                  event.data.get("payload"));
        } else if (type.as_string() == "user") {
            handle_user_from_child(tid, event.data.get("data"));
        }
    });
    raw->native->set_onerror([this, tid](const std::string& raw_message) {
        kthread* kt2 = find(tid);
        if (kt2 == nullptr) return;
        const std::string msg = k_->policy_sanitize_error(raw_message);
        const ktime predicted =
            k_->prediction().predict(k_->clock(), kevent_type::worker_onerror, 0);
        k_->sched().register_ready(
            kevent_type::worker_onerror, predicted,
            [this, tid, msg] {
                kthread* kt3 = find(tid);
                if (kt3 != nullptr && kt3->user_onerror) kt3->user_onerror(msg);
            },
            "worker.onerror");
    });

    return std::make_shared<kernel_worker_stub>(*this, tid);
}

void thread_manager::stub_post_message(std::uint64_t tid, rt::js_value data,
                                       rt::transfer_list transfer)
{
    k_->clock().tick();
    k_->charge_interpose();
    kthread* kt = find(tid);
    if (kt == nullptr || !kt->user_alive) return;
    ++kt->user_sent_seq;
    if (!kt->guard_active) {
        // The child certified "reactive only"; our send may wake it, so the
        // guard returns before any response can arrive (causality + FIFO).
        guard_create(*kt, k_->clock().display() + k_->prediction().intervals.onmessage);
    }
    kt->native->post_message(
        rt::make_object({{"__jsk", "user"}, {"data", std::move(data)}}), std::move(transfer));
}

void thread_manager::stub_set_onmessage(std::uint64_t tid, rt::message_cb cb)
{
    k_->clock().tick();
    k_->charge_interpose();
    kthread* kt = find(tid);
    if (kt == nullptr) return;
    // Kernel trap: the assignment is validated, never handed to the native
    // setter (CVE-2013-5602's null-handler dereference cannot happen).
    if (k_->policy_reject_onmessage(static_cast<bool>(cb))) return;
    kt->user_onmessage = std::move(cb);
}

void thread_manager::stub_set_onerror(std::uint64_t tid, rt::error_cb cb)
{
    k_->clock().tick();
    k_->charge_interpose();
    if (kthread* kt = find(tid)) kt->user_onerror = std::move(cb);
}

void thread_manager::stub_terminate(std::uint64_t tid)
{
    k_->clock().tick();
    k_->charge_interpose();
    kthread* kt = find(tid);
    if (kt == nullptr || !kt->user_alive) return;
    kt->user_alive = false;  // immediate at the user level
    guard_clear(*kt);        // no user deliveries can dispatch anymore
    begin_termination(*kt);
}

bool thread_manager::stub_alive(std::uint64_t tid) const
{
    for (const auto& kt : threads_) {
        if (kt->id == tid) return kt->user_alive;
    }
    return false;
}

std::uint64_t thread_manager::stub_native_id(std::uint64_t tid) const
{
    for (const auto& kt : threads_) {
        if (kt->id == tid) return kt->native ? kt->native->id() : 0;
    }
    return 0;
}

void thread_manager::begin_termination(kthread& kt)
{
    if (kt.status == "closing" || kt.status == "closed") return;
    kt.status = "closing";
    // The native thread dies only after the child drained (ready-to-die).
    send_sys_to_child(kt, "prepare-terminate");
}

void thread_manager::send_sys_to_child(kthread& kt, const std::string& cmd,
                                       rt::js_value payload)
{
    if (!kt.native || kt.native_terminated) return;
    kt.native->post_message(
        rt::make_object({{"__jsk", "sys"}, {"cmd", cmd}, {"payload", std::move(payload)}}),
        {});
}

void thread_manager::handle_sys_from_child(std::uint64_t tid, const std::string& cmd,
                                           const rt::js_value& payload)
{
    kthread* kt = find(tid);
    if (kt == nullptr) return;
    if (cmd == "horizon") {
        const rt::js_value t = payload.get("t");
        const rt::js_value seen = payload.get("seen");
        guard_advance(*kt, t.is_number() ? t.as_number() : -1.0,
                      seen.is_number() ? static_cast<std::uint64_t>(seen.as_number()) : 0);
    } else if (cmd == "self-closed") {
        kt->user_alive = false;
        guard_clear(*kt);
        begin_termination(*kt);
    } else if (cmd == "ready-to-die") {
        if (!kt->native_terminated && kt->native) {
            kt->native->terminate();  // child is idle: exactly one native kill
            kt->native_terminated = true;
            kt->status = "closed";
        }
        barrier_release(*kt);  // a dying thread satisfies any pending barrier
    } else if (cmd == "flush-ack") {
        if (kt->flush_ack_pending) {
            kt->flush_ack_pending = false;
            barrier_dec();
        }
    } else if (cmd == "worker-error") {
        const std::string msg =
            k_->policy_sanitize_error(payload.is_string() ? payload.as_string() : "error");
        const ktime predicted =
            k_->prediction().predict(k_->clock(), kevent_type::worker_onerror, 0);
        k_->sched().register_ready(
            kevent_type::worker_onerror, predicted,
            [this, tid, msg] {
                kthread* kt2 = find(tid);
                if (kt2 != nullptr && kt2->user_onerror) kt2->user_onerror(msg);
            },
            "worker.onerror");
    }
}

void thread_manager::handle_user_from_child(std::uint64_t tid, const rt::js_value& data)
{
    kthread* kt = find(tid);
    if (kt == nullptr || !kt->user_alive) return;
    ++kt->onmessage_seq;
    // Clamp to the channel guard: the guard is the dispatch frontier, so the
    // delivery can never be ordered behind something that only dispatched
    // because the message was physically late.
    const ktime floor_time = kt->guard_active ? kt->guard_predicted : k_->clock().display();
    const ktime predicted =
        std::max(floor_time,
                 k_->prediction().sequence_predict(kt->onmessage_base, kt->onmessage_seq,
                                                   k_->prediction().intervals.onmessage));
    k_->sched().register_ready(
        kevent_type::worker_onmessage, predicted,
        [this, tid, data] {
            kthread* kt2 = find(tid);
            if (kt2 != nullptr && kt2->user_alive && kt2->user_onmessage) {
                kt2->user_onmessage(rt::message_event{data, k_->ctx().origin(), false});
            }
        },
        "worker.onmessage");
}

void thread_manager::flush_all_then(std::function<void()> done)
{
    for (auto& kt : threads_) {
        if (kt->native_terminated || kt->status == "closed") continue;
        if (kt->status == "closing") {
            // Mid-termination: the barrier waits for the handshake to finish
            // (its in-flight fetches must not be freed by a reload).
            if (!kt->barrier_waiting) {
                kt->barrier_waiting = true;
                ++barrier_remaining_;
            }
            continue;
        }
        if (!kt->flush_ack_pending) {
            kt->flush_ack_pending = true;
            ++barrier_remaining_;
            send_sys_to_child(*kt, "flush");
        }
    }
    if (barrier_remaining_ == 0) {
        done();
        return;
    }
    flush_done_.push_back(std::move(done));
}

void thread_manager::barrier_release(kthread& kt)
{
    if (kt.barrier_waiting) {
        kt.barrier_waiting = false;
        barrier_dec();
    }
    if (kt.flush_ack_pending) {
        kt.flush_ack_pending = false;
        barrier_dec();
    }
}

// --- channel guards (null-message protocol) ---------------------------------

void thread_manager::guard_create(kthread& kt, ktime predicted)
{
    if (kt.guard_active) return;
    kt.guard_event = k_->sched().register_at(kevent_type::sys, predicted,
                                             "channel-guard:" + kt.src);
    kt.guard_active = true;
    kt.guard_predicted = predicted;
}

void thread_manager::guard_advance(kthread& kt, ktime horizon, std::uint64_t seen)
{
    if (horizon < 0) {
        // "Reactive only" — honour it only if the certificate covers every
        // user message we have sent; otherwise it crossed with an in-flight
        // message and a fresher horizon will follow once the child sees it.
        if (seen >= kt.user_sent_seq) guard_clear(kt);
        return;
    }
    if (!kt.guard_active) {
        // Spontaneous horizon while unguarded (child still draining a
        // previous round): re-arm at the certified time.
        guard_create(kt, std::max(horizon, kt.guard_predicted));
        k_->disp().pump();
        return;
    }
    const ktime next = std::max(kt.guard_predicted, horizon);
    kt.guard_predicted = next;
    k_->queue().update_predicted(kt.guard_event, next);
    k_->disp().pump();  // the frontier moved; waiting events may now run
}

void thread_manager::guard_clear(kthread& kt)
{
    if (!kt.guard_active) return;
    kt.guard_active = false;
    k_->sched().cancel(kt.guard_event);
    kt.guard_event = 0;
}

void thread_manager::barrier_dec()
{
    if (barrier_remaining_ <= 0) return;
    if (--barrier_remaining_ == 0) {
        auto done = std::move(flush_done_);
        flush_done_.clear();
        for (auto& fn : done) fn();
    }
}

}  // namespace jsk::kernel
