// A minimal JSON reader for policy specifications.
//
// The paper represents security policies in JSON (§II-B). This is a small,
// dependency-free parser covering the subset policies need: objects, arrays,
// strings, numbers, booleans and null. Strict enough to reject malformed
// input with a useful message; not a general-purpose JSON library.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace jsk::kernel::json {

class value;

using array = std::vector<value>;
using object = std::map<std::string, value>;

class value {
public:
    using storage =
        std::variant<std::nullptr_t, bool, double, std::string, std::shared_ptr<array>,
                     std::shared_ptr<object>>;

    value() : v_(nullptr) {}
    value(std::nullptr_t) : v_(nullptr) {}
    value(bool b) : v_(b) {}
    value(double d) : v_(d) {}
    value(std::string s) : v_(std::move(s)) {}
    value(array a) : v_(std::make_shared<array>(std::move(a))) {}
    value(object o) : v_(std::make_shared<object>(std::move(o))) {}

    [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
    [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
    [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(v_); }
    [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
    [[nodiscard]] bool is_array() const
    {
        return std::holds_alternative<std::shared_ptr<array>>(v_);
    }
    [[nodiscard]] bool is_object() const
    {
        return std::holds_alternative<std::shared_ptr<object>>(v_);
    }

    [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
    [[nodiscard]] double as_number() const { return std::get<double>(v_); }
    [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(v_); }
    [[nodiscard]] const array& as_array() const { return *std::get<std::shared_ptr<array>>(v_); }
    [[nodiscard]] const object& as_object() const
    {
        return *std::get<std::shared_ptr<object>>(v_);
    }

    /// Object field access; returns null for missing keys / non-objects.
    [[nodiscard]] value get(const std::string& key) const
    {
        if (!is_object()) return value{};
        auto it = as_object().find(key);
        return it == as_object().end() ? value{} : it->second;
    }

    /// String field with default.
    [[nodiscard]] std::string get_string(const std::string& key,
                                         const std::string& fallback = {}) const
    {
        const value v = get(key);
        return v.is_string() ? v.as_string() : fallback;
    }

private:
    storage v_;
};

/// Parse error with position information.
class parse_error : public std::runtime_error {
public:
    parse_error(const std::string& what, std::size_t offset)
        : std::runtime_error(what + " (at offset " + std::to_string(offset) + ")"),
          offset_(offset)
    {
    }
    [[nodiscard]] std::size_t offset() const { return offset_; }

private:
    std::size_t offset_;
};

/// Parse a complete JSON document; trailing non-whitespace is an error.
value parse(const std::string& text);

/// Serialize a value back to compact JSON. Deterministic: objects iterate in
/// std::map key order, numbers that hold exact integers print without a
/// fraction, and everything else uses round-trip %.17g — identical values
/// dump identical bytes (the jsk::obs metrics snapshot relies on this).
std::string dump(const value& v);

}  // namespace jsk::kernel::json
