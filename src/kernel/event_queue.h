// The kernel event queue (§III-C1): events ordered by predicted time, with
// the push / pop / top / remove / lookup API the paper describes.
//
// Storage layout (hot-path overhaul): events live in a flat slot arena and
// are ordered by a binary min-heap of (predicted, id) references. Removal and
// re-prediction never restructure the heap; they bump the slot's generation
// counter so stale heap entries become *tombstones* that are discarded when
// they surface at the heap top (lazy deletion). A compaction pass rebuilds a
// heap once its tombstones outnumber the live events (threshold below), so
// the arrays stay within a constant factor of the live size. push/pop are
// allocation-free in steady state: slots and heap storage are recycled
// through a free list, and the id index is open-addressed (amortized
// allocation only on growth/rehash).
//
// A second lazy heap over non-cancelled events makes next_pending_time() —
// the worker-horizon probe, previously a linear scan — O(1) amortized. New
// ordering refs are staged in a plain buffer and heapified only when a probe
// actually runs, so events that are popped or cancelled between probes never
// pay live-heap maintenance at all.
//
// Pointer stability: pointers returned by top()/lookup() are invalidated by
// any mutating call (push/pop/remove/update_predicted and the compactions
// they may trigger). All kernel call sites consume the pointer immediately.
#pragma once

#include <cstdint>
#include <vector>

#include "kernel/kevent.h"

namespace jsk::kernel {

/// Priority queue keyed by (predicted_time, id). The id tiebreak makes
/// same-instant events dispatch in registration order, which keeps the whole
/// timeline deterministic.
class event_queue {
public:
    /// Insert an event. Throws std::invalid_argument on duplicate id.
    void push(kevent event);

    /// The event with the smallest predictedTime, without removing it.
    /// nullptr when empty.
    [[nodiscard]] kevent* top();

    /// Remove and return the event with the smallest predictedTime.
    /// Throws std::logic_error when empty.
    kevent pop();

    /// Remove an event by id regardless of its predictedTime (§III-C1).
    /// Returns true if it was present.
    bool remove(std::uint64_t id);

    /// Find an event by id; nullptr when absent.
    [[nodiscard]] kevent* lookup(std::uint64_t id);

    [[nodiscard]] bool empty() const { return size_ == 0; }
    [[nodiscard]] std::size_t size() const { return size_; }

    // Lifetime telemetry (obs/collect.h copies these into metrics).
    [[nodiscard]] std::uint64_t pushes() const { return pushes_; }
    [[nodiscard]] std::size_t peak_size() const { return peak_size_; }
    [[nodiscard]] std::uint64_t compactions() const { return compactions_; }

    /// Mark every queued event cancelled (worker shutdown: user-observable
    /// events must stop). The dispatcher discards them on its next pass;
    /// they stay visible through top()/lookup() until then.
    void cancel_all();

    /// Cancel one event in place: status := cancelled, callback dropped.
    /// Returns false if the id is unknown (already dispatched). Unlike
    /// remove(), the event stays queued so the dispatcher can observe and
    /// discard it in predicted order.
    bool mark_cancelled(std::uint64_t id);

    /// Move a live event to a new predicted time (channel-guard advances).
    /// Returns false if the id is unknown.
    bool update_predicted(std::uint64_t id, ktime predicted);

    /// Predicted time of the earliest non-cancelled event; negative when the
    /// queue holds none (the worker-side horizon computation). Amortized
    /// O(1): reads the head of the live heap, discarding stale entries.
    [[nodiscard]] ktime next_pending_time();

private:
    /// Heap entry: an ordering reference into the slot arena. Stale once the
    /// slot's generation moves past `gen`.
    struct heap_ref {
        ktime predicted;
        std::uint64_t id;
        std::uint32_t slot;
        std::uint32_t gen;
        bool operator>(const heap_ref& other) const
        {
            if (predicted != other.predicted) return predicted > other.predicted;
            return id > other.id;
        }
    };

    struct slot_rec {
        kevent ev;
        std::uint32_t gen = 0;  // bumped on release and re-prediction
        bool alive = false;
    };

    static constexpr std::uint32_t npos = ~std::uint32_t{0};

    [[nodiscard]] bool valid(const heap_ref& ref) const
    {
        const slot_rec& rec = slots_[ref.slot];
        return rec.alive && rec.gen == ref.gen;
    }

    void purge_top();                       // drop tombstoned heads of heap_
    void maybe_compact();                   // rebuild heaps past the tombstone threshold
    std::uint32_t acquire_slot();
    void release_slot(std::uint32_t slot);  // also erases the id index entry

    // Open-addressing id -> slot index (linear probing, tombstoned erase).
    [[nodiscard]] std::uint32_t index_find(std::uint64_t id) const;
    void index_insert(std::uint64_t id, std::uint32_t slot);
    void index_erase(std::uint64_t id);
    void index_rehash(std::size_t min_capacity);

    std::vector<slot_rec> slots_;
    std::vector<std::uint32_t> free_;      // released slot numbers, LIFO
    std::vector<heap_ref> heap_;           // all queued events
    std::vector<heap_ref> live_heap_;      // non-cancelled events (horizon probe)
    std::vector<heap_ref> live_stage_;     // refs awaiting live_heap_ insertion
    std::vector<std::uint64_t> idx_keys_;  // open-addressing table
    std::vector<std::uint32_t> idx_slots_;
    std::vector<std::uint8_t> idx_state_;  // 0 empty, 1 full, 2 tombstone
    std::size_t idx_used_ = 0;             // full entries
    std::size_t idx_filled_ = 0;           // full + tombstone entries
    std::size_t size_ = 0;                 // live (queued) events
    std::uint64_t pushes_ = 0;             // lifetime pushes
    std::size_t peak_size_ = 0;            // high-water mark of size_
    std::uint64_t compactions_ = 0;        // heap rebuilds (lazy-deletion GC)
};

}  // namespace jsk::kernel
