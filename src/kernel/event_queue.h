// The kernel event queue (§III-C1): events ordered by predicted time, with
// the push / pop / top / remove / lookup API the paper describes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>

#include "kernel/kevent.h"

namespace jsk::kernel {

/// Priority queue keyed by (predicted_time, id). The id tiebreak makes
/// same-instant events dispatch in registration order, which keeps the whole
/// timeline deterministic.
class event_queue {
public:
    /// Insert an event. Throws std::invalid_argument on duplicate id.
    void push(kevent event);

    /// The event with the smallest predictedTime, without removing it.
    /// nullptr when empty.
    [[nodiscard]] kevent* top();

    /// Remove and return the event with the smallest predictedTime.
    /// Throws std::logic_error when empty.
    kevent pop();

    /// Remove an event by id regardless of its predictedTime (§III-C1).
    /// Returns true if it was present.
    bool remove(std::uint64_t id);

    /// Find an event by id; nullptr when absent.
    [[nodiscard]] kevent* lookup(std::uint64_t id);

    [[nodiscard]] bool empty() const { return order_.empty(); }
    [[nodiscard]] std::size_t size() const { return order_.size(); }

    /// Mark every queued event cancelled (worker shutdown: user-observable
    /// events must stop). The dispatcher discards them on its next pass.
    void cancel_all()
    {
        for (auto& [k, ev] : order_) {
            ev.status = kevent_status::cancelled;
            ev.callback = nullptr;
        }
    }

    /// Move a live event to a new predicted time (channel-guard advances).
    /// Returns false if the id is unknown.
    bool update_predicted(std::uint64_t id, ktime predicted)
    {
        auto it = index_.find(id);
        if (it == index_.end()) return false;
        auto node = order_.extract(it->second);
        node.mapped().predicted_time = predicted;
        node.key() = key{predicted, id};
        it->second = node.key();
        order_.insert(std::move(node));
        return true;
    }

    /// Predicted time of the earliest non-cancelled event; negative when the
    /// queue holds none (the worker-side horizon computation).
    [[nodiscard]] ktime next_pending_time() const
    {
        for (const auto& [k, ev] : order_) {
            if (ev.status != kevent_status::cancelled) return ev.predicted_time;
        }
        return -1.0;
    }

private:
    struct key {
        ktime predicted;
        std::uint64_t id;
        bool operator<(const key& other) const
        {
            if (predicted != other.predicted) return predicted < other.predicted;
            return id < other.id;
        }
    };

    std::map<key, kevent> order_;
    std::unordered_map<std::uint64_t, key> index_;
};

}  // namespace jsk::kernel
