// The kernel scheduler (§III-D1, §III-D2).
//
// Events go through two stages: *registration* — typically at the user's API
// call, where the event gets a predicted kernel time and enters the queue
// pending — and *confirmation*, when the native trigger fires and the event
// becomes ready for the dispatcher. Cancellation implements the three cases
// of §III-D2 (not happened / confirmed-but-not-dispatched / already
// dispatched).
//
// For event streams whose per-event registration point is on another thread
// (worker messages) or inside the engine (interval ticks, video cues), the
// scheduler offers counter-based registration: predicted_n = base + n *
// interval, where n is the stream sequence number. Both forms keep the
// predicted timeline a pure function of the program.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "kernel/kevent.h"

namespace jsk::kernel {

class kernel;

class scheduler {
public:
    explicit scheduler(kernel& k) : k_(&k) {}

    /// Registration stage: create a pending event predicted by the active
    /// prediction strategy. `callback` may be bound now (timers know their
    /// callback up front) or later at confirmation.
    std::uint64_t register_event(kevent_type type, ktime hint_ms, std::string label,
                                 std::function<void()> callback = nullptr);

    /// Registration with an explicit (counter-based) predicted time.
    std::uint64_t register_at(kevent_type type, ktime predicted, std::string label,
                              std::function<void()> callback = nullptr);

    /// Confirmation stage: the native trigger fired. Marks the event ready
    /// (binding `callback` if given) and pumps the dispatcher. Confirming a
    /// cancelled or unknown event is a no-op (the trigger raced a cancel).
    void confirm(std::uint64_t id, std::function<void()> callback = nullptr);

    /// Register + confirm in one step, for triggers whose registration point
    /// is the arrival itself but whose predicted time is counter-based.
    std::uint64_t register_ready(kevent_type type, ktime predicted,
                                 std::function<void()> callback, std::string label);

    /// Cancellation (§III-D2): pending or ready events are marked cancelled;
    /// already-dispatched ids are ignored. Returns true if a live event was
    /// cancelled.
    bool cancel(std::uint64_t id);

    [[nodiscard]] std::uint64_t registered() const { return registered_; }

private:
    kernel* k_;
    std::uint64_t next_id_ = 1;
    std::uint64_t registered_ = 0;
};

}  // namespace jsk::kernel
