#include "kernel/prediction.h"

#include <algorithm>

namespace jsk::kernel {

ktime prediction_strategy::expected(kevent_type type, ktime hint_ms) const
{
    switch (type) {
        case kevent_type::timeout:
        case kevent_type::interval_tick:
            return std::max(hint_ms, intervals.timeout_min);
        case kevent_type::self_onmessage:
        case kevent_type::worker_onmessage:
            return intervals.onmessage;
        case kevent_type::animation_frame:
            return intervals.animation_frame;
        case kevent_type::fetch_then:
        case kevent_type::fetch_fail:
        case kevent_type::xhr_done:
            return intervals.fetch;
        case kevent_type::load:
            return intervals.load;
        case kevent_type::video_cue:
            return intervals.video_cue;
        case kevent_type::worker_onerror:
            return intervals.error;
        case kevent_type::sys:
            return intervals.sys;
        case kevent_type::generic:
            return intervals.generic;
        case kevent_type::watchdog_cancel:
            // Journal-only marker: never registered, so never predicted.
            return intervals.generic;
    }
    return intervals.generic;
}

std::unique_ptr<prediction_strategy> make_prediction(bool fuzzy, std::uint64_t seed)
{
    if (fuzzy) return std::make_unique<fuzzy_prediction>(seed);
    return std::make_unique<deterministic_prediction>();
}

}  // namespace jsk::kernel
