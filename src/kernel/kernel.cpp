#include "kernel/kernel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"

namespace jsk::kernel {

std::unique_ptr<kernel> kernel::boot(rt::browser& b, kernel_options opts)
{
    auto k = std::make_unique<kernel>(b.main(), opts, role::main, nullptr);
    // The extension also scrubs error text on native paths it does not fully
    // mediate (worker spawn failures) — §IV-B, CVE-2014-1487.
    kernel* raw = k.get();
    b.set_error_sanitizer([raw](const std::string& msg) {
        return raw->policy_sanitize_error(msg);
    });
    return k;
}

kernel::kernel(rt::context& ctx, kernel_options opts, role r, kernel* parent)
    : ctx_(&ctx),
      opts_(opts),
      role_(r),
      parent_(parent),
      natives_(ctx.apis()),  // private copies, taken before replacement
      clock_(opts.tick_ms),
      prediction_(make_prediction(opts.fuzzy_prediction, opts.fuzz_seed)),
      sched_(*this),
      disp_(*this),
      threads_(*this)
{
    prediction_->intervals = opts.intervals;
    if (opts.enable_cve_policies) {
        for (auto& p : default_policies()) policies_.push_back(std::move(p));
    }
    install();
}

kernel::~kernel() = default;

kernel& kernel::adopt_child(std::unique_ptr<kernel> child)
{
    children_.push_back(std::move(child));
    return *children_.back();
}

// --- policy consultation -----------------------------------------------------
// A policy installed on the main kernel governs the whole kernel, worker and
// frame kernels included (§II-B policies have per-thread sections; one
// document covers all threads) — consultation walks up the parent chain.

void kernel::note_policy(const char* decision, bool denied, const std::string* url)
{
    ++policy_checks_;
    if (denied) ++policy_denials_;
    if (obs::sink* ts = tsink()) {
        std::vector<obs::arg> args{obs::num("denied", denied ? 1 : 0)};
        if (url != nullptr) args.push_back(obs::text("url", *url));
        ts->instant(obs::category::policy, ctx_->thread(), ctx_->owner().sim().now(),
                    decision, std::move(args));
    }
}

bool kernel::is_quarantined(const policy* p) const
{
    return std::find(quarantined_.begin(), quarantined_.end(), p) != quarantined_.end();
}

void kernel::quarantine_policy(const policy* p)
{
    if (is_quarantined(p)) return;
    quarantined_.push_back(p);
    if (obs::sink* ts = tsink()) {
        ts->instant(obs::category::policy, ctx_->thread(), ctx_->owner().sim().now(),
                    "policy:quarantined", {obs::text("policy", p->name())});
    }
}

template <typename Hook>
bool kernel::consult_policies(Hook&& hook)
{
    for (kernel* k = this; k != nullptr; k = k->parent_) {
        for (auto& p : k->policies_) {
            if (k->is_quarantined(p.get())) continue;
            try {
                if (hook(*p)) return true;
            } catch (...) {
                // Graceful degradation: a throwing policy is quarantined (on
                // the kernel that owns it) and treated as not handling the
                // call — pass-through mediation, CVE monitors stay armed.
                k->quarantine_policy(p.get());
            }
        }
    }
    return false;
}

bool kernel::policy_block_fetch(const std::string& url)
{
    const bool denied =
        consult_policies([&](policy& p) { return p.on_fetch(*this, url); });
    note_policy("policy:fetch", denied, &url);
    return denied;
}

bool kernel::policy_block_xhr(const std::string& url, bool cross_origin)
{
    const bool denied =
        consult_policies([&](policy& p) { return p.on_xhr(*this, url, cross_origin); });
    note_policy("policy:xhr", denied, &url);
    return denied;
}

bool kernel::policy_mediate_import(const std::string& url, bool cross_origin)
{
    const bool denied =
        consult_policies([&](policy& p) { return p.on_import(*this, url, cross_origin); });
    note_policy("policy:import", denied, &url);
    return denied;
}

bool kernel::policy_deny_idb(bool private_mode)
{
    const bool denied =
        consult_policies([&](policy& p) { return p.on_indexeddb(*this, private_mode); });
    note_policy("policy:idb", denied);
    return denied;
}

bool kernel::policy_reject_onmessage(bool valid)
{
    const bool denied =
        consult_policies([&](policy& p) { return p.on_onmessage_assign(*this, valid); });
    note_policy("policy:onmessage", denied);
    return denied;
}

std::string kernel::policy_sanitize_error(const std::string& raw)
{
    std::string msg = raw;
    consult_policies([&](policy& p) {
        msg = p.on_worker_error(*this, msg);
        return false;  // sanitizers chain; nobody "handles" the call
    });
    note_policy("policy:error_sanitize", msg != raw);
    return msg;
}

retry_decision kernel::policy_fetch_retry(const std::string& url, int attempt, bool retryable)
{
    retry_decision out;
    consult_policies([&](policy& p) {
        const retry_decision d = p.on_fetch_failure(*this, url, attempt, retryable);
        if (d.retry) out = d;
        return d.retry;  // first retry grant wins
    });
    return out;
}

// --- installation -------------------------------------------------------------

void kernel::install()
{
    auto& apis = ctx_->apis();

    apis.set_timeout = [this](rt::timer_cb cb, sim::time_ns delay) {
        return k_set_timeout(std::move(cb), delay);
    };
    apis.clear_timeout = [this](std::int64_t id) { k_clear_timeout(id); };
    apis.set_interval = [this](rt::timer_cb cb, sim::time_ns period) {
        return k_set_interval(std::move(cb), period);
    };
    apis.clear_interval = [this](std::int64_t id) { k_clear_interval(id); };
    apis.performance_now = [this] { return k_performance_now(); };
    apis.date_now = [this] { return k_date_now(); };
    apis.fetch = [this](const std::string& url, rt::fetch_options options, rt::fetch_cb then,
                        rt::fetch_cb fail) {
        k_fetch(url, std::move(options), std::move(then), std::move(fail));
    };
    apis.abort_fetch = [this](const rt::abort_signal& signal) { k_abort_fetch(signal); };
    apis.xhr = [this](const std::string& url, rt::fetch_cb done) {
        k_xhr(url, std::move(done));
    };
    apis.indexeddb_put = [this](const std::string& db, const std::string& key,
                                rt::js_value value) {
        return k_indexeddb_put(db, key, std::move(value));
    };
    apis.indexeddb_get = [this](const std::string& db, const std::string& key) {
        return k_indexeddb_get(db, key);
    };
    apis.sab_load = [this](const rt::shared_buffer_ptr& buf, std::size_t index,
                           wm::access acc) { return k_sab_load(buf, index, acc); };
    apis.sab_store = [this](const rt::shared_buffer_ptr& buf, std::size_t index,
                            double value, wm::access acc) {
        k_sab_store(buf, index, value, acc);
    };
    apis.atomics_load = [this](const rt::shared_buffer_ptr& buf, std::size_t index) {
        return k_atomics_load(buf, index);
    };
    apis.atomics_store = [this](const rt::shared_buffer_ptr& buf, std::size_t index,
                                double value) { k_atomics_store(buf, index, value); };
    apis.atomics_add = [this](const rt::shared_buffer_ptr& buf, std::size_t index,
                              double delta) { return k_atomics_add(buf, index, delta); };
    apis.atomics_compare_exchange = [this](const rt::shared_buffer_ptr& buf,
                                           std::size_t index, double expected,
                                           double desired) {
        return k_atomics_compare_exchange(buf, index, expected, desired);
    };

    if (role_ == role::main) {
        apis.request_animation_frame = [this](rt::frame_cb cb) {
            return k_request_animation_frame(std::move(cb));
        };
        apis.cancel_animation_frame = [this](std::int64_t id) {
            k_cancel_animation_frame(id);
        };
        apis.create_worker = [this](const std::string& src) { return k_create_worker(src); };
        apis.create_iframe = [this](const std::string& name) { return k_create_iframe(name); };
        apis.reload = [this] { k_reload(); };
        apis.append_child = [this](const rt::element_ptr& parent,
                                   const rt::element_ptr& child) {
            k_append_child(parent, child);
        };
        apis.get_attribute = [this](const rt::element_ptr& el, const std::string& name) {
            return k_get_attribute(el, name);
        };
        apis.set_attribute = [this](const rt::element_ptr& el, const std::string& name,
                                    const std::string& value) {
            k_set_attribute(el, name, value);
        };
        apis.set_cue_callback = [this](const rt::element_ptr& el, rt::timer_cb cb) {
            k_set_cue_callback(el, std::move(cb));
        };
    } else {
        // Worker scope: route the channel through the kernel overlay.
        natives_.set_self_onmessage(
            [this](const rt::message_event& event) { on_parent_message(event); });
        apis.set_self_onmessage = [this](rt::message_cb cb) {
            k_set_self_onmessage(std::move(cb));
        };
        apis.post_message_to_parent = [this](rt::js_value data, rt::transfer_list transfer) {
            k_post_message_to_parent(std::move(data), std::move(transfer));
        };
        apis.close_self = [this] { k_close_self(); };
        apis.import_scripts = [this](const std::vector<std::string>& urls) {
            k_import_scripts(urls);
        };
        self_onmessage_base_ = clock_.display();
    }

    // The kernel's traps are non-configurable (§III-B): adversarial
    // redefinition attempts fail from here on.
    ctx_->lock_traps();
}

// --- shared helpers ----------------------------------------------------------

namespace {
/// Wrap a user message payload in the channel overlay (§III-E2).
rt::js_value wrap_user(rt::js_value data)
{
    return rt::make_object({{"__jsk", "user"}, {"data", std::move(data)}});
}

rt::js_value wrap_sys(const std::string& cmd, rt::js_value payload)
{
    return rt::make_object({{"__jsk", "sys"}, {"cmd", cmd}, {"payload", std::move(payload)}});
}
}  // namespace

bool kernel::is_cross_origin(const std::string& url) const
{
    const rt::resource* res = ctx_->owner().net().find(url);
    return res != nullptr && res->origin != ctx_->origin();
}

// --- timers -------------------------------------------------------------------

std::int64_t kernel::k_set_timeout(rt::timer_cb cb, sim::time_ns delay)
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    const ktime hint = sim::to_ms(delay);
    const std::uint64_t event = sched_.register_event(
        kevent_type::timeout, hint, "timeout",
        [this, cb = std::move(cb)] {
            if (!user_closed_ && cb) cb();
        });
    const std::int64_t native =
        natives_.set_timeout([this, event] { sched_.confirm(event); }, delay);
    const std::int64_t id = next_timer_id_++;
    timers_.emplace(id, timer_binding{event, native});
    return id;
}

void kernel::k_clear_timeout(std::int64_t id)
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    auto it = timers_.find(id);
    if (it == timers_.end()) return;
    natives_.clear_timeout(it->second.native);
    sched_.cancel(it->second.event);
    timers_.erase(it);
}

std::int64_t kernel::k_set_interval(rt::timer_cb cb, sim::time_ns period)
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    const std::int64_t id = next_timer_id_++;
    const ktime period_ms = std::max(sim::to_ms(period), opts_.intervals.timeout_min);
    interval_binding binding;
    binding.base = clock_.display();
    binding.period_ms = period_ms;
    binding.cb = std::move(cb);
    // Two-stage per tick (§III-D1): the *next* tick is always registered
    // pending ahead of time, so nothing predicted after it can dispatch
    // before the tick confirms — ticks can never be reordered against other
    // events by physical arrival.
    binding.pending_event = sched_.register_at(
        kevent_type::interval_tick, binding.base + period_ms, "interval",
        [this, id] {
            auto it2 = intervals_.find(id);
            if (!user_closed_ && it2 != intervals_.end() && it2->second.cb) it2->second.cb();
        });
    binding.live_events.push_back(binding.pending_event);
    binding.native = natives_.set_interval(
        [this, id] {
            auto it = intervals_.find(id);
            if (it == intervals_.end()) return;
            auto& bind = it->second;
            sched_.confirm(bind.pending_event);
            ++bind.seq;
            const ktime next = prediction_->sequence_predict(bind.base, bind.seq + 1,
                                                             bind.period_ms);
            bind.pending_event = sched_.register_at(
                kevent_type::interval_tick, next, "interval", [this, id] {
                    auto it2 = intervals_.find(id);
                    if (!user_closed_ && it2 != intervals_.end() && it2->second.cb) {
                        it2->second.cb();
                    }
                });
            bind.live_events.push_back(bind.pending_event);
        },
        period);
    intervals_.emplace(id, std::move(binding));
    return id;
}

void kernel::k_clear_interval(std::int64_t id)
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    auto it = intervals_.find(id);
    if (it == intervals_.end()) return;
    natives_.clear_interval(it->second.native);
    // Cancel every tick that has not dispatched yet — including ticks that
    // already confirmed while the dispatcher lagged behind the native timer
    // (dispatching them would make the tick count physically dependent).
    for (const std::uint64_t ev : it->second.live_events) sched_.cancel(ev);
    intervals_.erase(it);
}

// --- animation & clocks --------------------------------------------------------

std::int64_t kernel::k_request_animation_frame(rt::frame_cb cb)
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    const std::uint64_t event =
        sched_.register_event(kevent_type::animation_frame, 0, "raf");
    kevent* ev = queue_.lookup(event);
    const ktime timestamp = ev->predicted_time;  // kernel time shown to the callback
    ev->callback = [this, cb = std::move(cb), timestamp] {
        if (!user_closed_ && cb) cb(timestamp);
    };
    const std::int64_t native =
        natives_.request_animation_frame([this, event](double) { sched_.confirm(event); });
    const std::int64_t id = next_raf_id_++;
    rafs_.emplace(id, timer_binding{event, native});
    return id;
}

void kernel::k_cancel_animation_frame(std::int64_t id)
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    auto it = rafs_.find(id);
    if (it == rafs_.end()) return;
    natives_.cancel_animation_frame(it->second.native);
    sched_.cancel(it->second.event);
    rafs_.erase(it);
}

double kernel::k_performance_now()
{
    ++api_calls_;
    clock_.tick();  // the clock ticks on API calls, never on physical time
    charge_interpose();
    return clock_.display();
}

double kernel::k_date_now()
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    return opts_.date_epoch_ms + std::floor(clock_.display());
}

// --- workers --------------------------------------------------------------------

rt::worker_ptr kernel::k_create_worker(const std::string& src)
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    if (role_ != role::main) {
        throw std::logic_error("jskernel: nested workers are not supported");
    }
    return threads_.create_user_thread(src);
}

rt::context* kernel::k_create_iframe(const std::string& name)
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    // Section VI(iii): the kernel is injected into every new JavaScript
    // context, iframes included, before any frame script runs.
    rt::context* frame = natives_.create_iframe(name);
    adopt_child(std::make_unique<kernel>(*frame, opts_, role::main, this));
    return frame;
}

void kernel::k_post_message_to_parent(rt::js_value data, rt::transfer_list transfer)
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    if (user_closed_) return;
    natives_.post_message_to_parent(wrap_user(std::move(data)), std::move(transfer));
}

void kernel::k_set_self_onmessage(rt::message_cb cb)
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    user_self_onmessage_ = std::move(cb);
}

void kernel::k_close_self()
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    if (user_closed_) return;
    enter_user_closed();
    send_sys_to_parent("self-closed");
}

void kernel::k_import_scripts(const std::vector<std::string>& urls)
{
    for (const auto& url : urls) {
        ++api_calls_;
        clock_.tick();
        charge_interpose();
        const rt::resource* res = ctx_->owner().net().find(url);
        const bool risky = res == nullptr || res->origin != ctx_->origin();
        if (policy_mediate_import(url, risky)) {
            // Kernel-mediated import: no native error objects, no source
            // exposure (CVE-2015-7215, CVE-2011-1190).
            if (res == nullptr || res->kind != rt::resource_kind::script) {
                send_sys_to_parent("worker-error", rt::js_value{"Script error."});
                continue;
            }
            ctx_->consume(ctx_->owner().net().request_latency(url));
            ctx_->consume(static_cast<sim::time_ns>(
                static_cast<double>(res->bytes) * ctx_->owner().profile().parse_ns_per_byte));
            if (const auto* body = ctx_->owner().find_worker_script(url)) (*body)(*ctx_);
            continue;
        }
        natives_.import_scripts({url});
    }
}

// --- network ----------------------------------------------------------------------

void kernel::k_fetch(const std::string& url, rt::fetch_options options, rt::fetch_cb then,
                     rt::fetch_cb fail)
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    if (policy_block_fetch(url)) {
        const ktime predicted =
            prediction_->predict(clock_, kevent_type::fetch_fail, 0);
        sched_.register_ready(
            kevent_type::fetch_fail, predicted,
            [this, fail, url] {
                if (!user_closed_ && fail) {
                    fail(rt::fetch_result{false, false, url, "blocked by kernel policy", 0,
                                          rt::fetch_error::blocked});
                }
            },
            "fetch-blocked");
        return;
    }
    const std::uint64_t event =
        sched_.register_event(kevent_type::fetch_then, 0, "fetch:" + url);
    ++outstanding_fetches_;
    start_fetch_attempt(event, url, std::move(options), std::move(then), std::move(fail), 1);
}

void kernel::start_fetch_attempt(std::uint64_t event, const std::string& url,
                                 rt::fetch_options options, rt::fetch_cb then,
                                 rt::fetch_cb fail, int attempt)
{
    natives_.fetch(
        url, options,
        [this, event, then](const rt::fetch_result& result) {
            --outstanding_fetches_;
            if (user_closed_) {
                sched_.cancel(event);
            } else {
                sched_.confirm(event, [this, then, result] {
                    if (!user_closed_ && then) then(result);
                });
            }
            maybe_signal_drained();
        },
        [this, event, url, options, then, fail, attempt](const rt::fetch_result& result) {
            if (!user_closed_) {
                const retry_decision rd =
                    policy_fetch_retry(url, attempt, result.retryable());
                if (rd.retry) {
                    // Re-issue after backoff. The kernel event stays pending
                    // and outstanding_fetches_ stays held, so the predicted
                    // timeline (and the drain handshake) are untouched — a
                    // survived fault is invisible to the page.
                    ++fetch_retries_;
                    if (obs::sink* ts = tsink()) {
                        ts->instant(obs::category::fault, ctx_->thread(),
                                    ctx_->owner().sim().now(), "kernel:fetch_retry",
                                    {obs::num("attempt", attempt),
                                     obs::num("delay_ms", rd.delay_ms),
                                     obs::text("url", url)});
                    }
                    natives_.set_timeout(
                        [this, event, url, options, then, fail, attempt] {
                            start_fetch_attempt(event, url, options, then, fail,
                                                attempt + 1);
                        },
                        sim::from_ms(rd.delay_ms));
                    return;
                }
            }
            --outstanding_fetches_;
            if (user_closed_) {
                sched_.cancel(event);
            } else {
                sched_.confirm(event, [this, fail, result] {
                    if (!user_closed_ && fail) fail(result);
                });
            }
            maybe_signal_drained();
        });
}

void kernel::k_abort_fetch(const rt::abort_signal& signal)
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    // Safe: the termination protocol guarantees no fetch record is ever
    // freed, so the abort cannot hit freed memory (CVE-2018-5092).
    natives_.abort_fetch(signal);
}

void kernel::k_xhr(const std::string& url, rt::fetch_cb done)
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    const bool cross = is_cross_origin(url);
    if (role_ == role::worker && policy_block_xhr(url, cross)) {
        const ktime predicted = prediction_->predict(clock_, kevent_type::xhr_done, 0);
        sched_.register_ready(
            kevent_type::xhr_done, predicted,
            [this, done, url] {
                if (!user_closed_ && done) {
                    done(rt::fetch_result{false, false, url, "blocked by kernel policy", 0});
                }
            },
            "xhr-blocked");
        return;
    }
    const std::uint64_t event = sched_.register_event(kevent_type::xhr_done, 0, "xhr:" + url);
    natives_.xhr(url, [this, event, done](const rt::fetch_result& result) {
        sched_.confirm(event, [this, done, result] {
            if (!user_closed_ && done) done(result);
        });
    });
}

void kernel::k_reload()
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    threads_.flush_all_then([this] {
        // Channels are drained and children idle: tear workers down cleanly,
        // then run the native reload (CVE-2013-6646, CVE-2018-5092).
        for (const auto& kt : threads_.threads()) {
            if (!kt->native_terminated && kt->native) {
                kt->native->terminate();
                kt->native_terminated = true;
                kt->status = "closed";
                kt->user_alive = false;
            }
        }
        natives_.reload();
    });
}

// --- DOM -----------------------------------------------------------------------------

void kernel::k_append_child(const rt::element_ptr& parent, const rt::element_ptr& child)
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    const std::string src = child->attribute("src");
    const std::string& tag = child->tag();
    if ((tag == "script" || tag == "img") && !src.empty()) {
        // The load outcome becomes a kernel event: the scheduler holds both
        // possible callbacks; confirmation picks the one that fired (§III-D1).
        auto user_onload = child->onload;
        auto user_onerror = child->onerror;
        const std::uint64_t event =
            sched_.register_event(kevent_type::load, 0, "load:" + src);
        child->onload = [this, event, user_onload] {
            sched_.confirm(event, [this, user_onload] {
                if (!user_closed_ && user_onload) user_onload();
            });
        };
        child->onerror = [this, event, user_onerror](const std::string& raw) {
            const std::string msg = policy_sanitize_error(raw);
            sched_.confirm(event, [this, user_onerror, msg] {
                if (!user_closed_ && user_onerror) user_onerror(msg);
            });
        };
    }
    natives_.append_child(parent, child);
}

std::string kernel::k_get_attribute(const rt::element_ptr& el, const std::string& name)
{
    ++api_calls_;
    clock_.tick();
    ctx_->consume(opts_.interpose_cost + opts_.dom_interpose_cost);
    if (name == "animation-progress" && el->has_attribute("animation-total-frames")) {
        // Animation progress is rendering state driven by physical frame
        // timing — an implicit clock [12]. The kernel virtualizes reads: the
        // value advances with kernel time from the first read, so jank caused
        // by secret-dependent paint work is unobservable.
        auto [it, inserted] = anim_reads_.try_emplace(el.get(), clock_.display());
        const double total_frames =
            std::stod(natives_.get_attribute(el, "animation-total-frames"));
        const double duration = total_frames * opts_.intervals.animation_frame;
        const double progress =
            duration <= 0.0
                ? 1.0
                : std::min(1.0, (clock_.display() - it->second) / duration);
        return std::to_string(progress);
    }
    return natives_.get_attribute(el, name);
}

void kernel::k_set_attribute(const rt::element_ptr& el, const std::string& name,
                             const std::string& value)
{
    ++api_calls_;
    clock_.tick();
    ctx_->consume(opts_.interpose_cost + opts_.dom_interpose_cost);
    natives_.set_attribute(el, name, value);
}

void kernel::k_set_cue_callback(const rt::element_ptr& el, rt::timer_cb cb)
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    cues_[el.get()] = cue_binding{clock_.display(), 0};
    natives_.set_cue_callback(el, [this, raw = el.get(), cb = std::move(cb)] {
        auto& binding = cues_[raw];
        ++binding.seq;
        const ktime predicted = prediction_->sequence_predict(
            binding.base, binding.seq, opts_.intervals.video_cue);
        sched_.register_ready(
            kevent_type::video_cue, predicted,
            [this, cb] {
                if (!user_closed_ && cb) cb();
            },
            "cue");
    });
}

// --- shared memory ---------------------------------------------------------------------
// §III-E2: every SharedArrayBuffer access is redirected to the kernel. A
// free-running cross-thread counter is the finest timer the web platform
// offers [12]; no quantisation of *when* you read can hide *what* you read,
// because the value itself encodes physical time. The kernel therefore gives
// SAB acquire-at-message semantics: reads observe a kernel shadow that only
// this kernel's own stores update — cross-thread values must travel through
// postMessage, which the kernel schedules deterministically. (Browsers of
// the paper's era disabled SAB outright post-Spectre; this keeps same-thread
// uses working instead.)

std::vector<double>& kernel::sab_shadow(const rt::shared_buffer_ptr& buf)
{
    auto [it, inserted] = sab_shadow_.try_emplace(buf.get());
    if (inserted) it->second.assign(buf->slots.size(), 0.0);
    if (it->second.size() < buf->slots.size()) it->second.resize(buf->slots.size(), 0.0);
    return it->second;
}

double kernel::k_sab_load(const rt::shared_buffer_ptr& buf, std::size_t index, wm::access acc)
{
    ++api_calls_;
    clock_.tick();  // every access is a kernel-mediated, clock-ticking event
    charge_interpose();
    if (!buf || index >= buf->slots.size()) {
        throw std::out_of_range("SharedArrayBuffer read out of range");
    }
    // Reads never touch the native path, so under a relaxed memory model the
    // candidate-execution enumerator has nothing to enumerate here: the shadow
    // is kernel-private per-thread state, not shared memory.
    return wm::read_part(wm::slot_bits(sab_shadow(buf)[index]), acc.p);
}

void kernel::k_sab_store(const rt::shared_buffer_ptr& buf, std::size_t index, double value,
                         wm::access acc)
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    if (buf && index < buf->slots.size()) {
        double& cell = sab_shadow(buf)[index];
        cell = wm::slot_value(wm::apply_write(wm::slot_bits(cell), value, acc.p));
    }
    // Mirror into the real buffer so non-kernel observers keep working.
    natives_.sab_store(buf, index, value, acc);
}

// Atomics.* under the kernel keep the same shadow semantics: seq-cst ordering
// within the thread's own view, mirrored to the native buffer for non-kernel
// observers. Read-modify-write operates on the shadow so a worker's counter
// still increments locally while staying invisible cross-thread.

double kernel::k_atomics_load(const rt::shared_buffer_ptr& buf, std::size_t index)
{
    return k_sab_load(buf, index, wm::seqcst_access);
}

void kernel::k_atomics_store(const rt::shared_buffer_ptr& buf, std::size_t index, double value)
{
    k_sab_store(buf, index, value, wm::seqcst_access);
}

double kernel::k_atomics_add(const rt::shared_buffer_ptr& buf, std::size_t index, double delta)
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    if (!buf || index >= buf->slots.size()) {
        throw std::out_of_range("SharedArrayBuffer write out of range");
    }
    double& cell = sab_shadow(buf)[index];
    const double old = cell;
    cell = old + delta;
    natives_.sab_store(buf, index, cell, wm::seqcst_access);
    return old;
}

double kernel::k_atomics_compare_exchange(const rt::shared_buffer_ptr& buf, std::size_t index,
                                          double expected, double desired)
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    if (!buf || index >= buf->slots.size()) {
        throw std::out_of_range("SharedArrayBuffer write out of range");
    }
    double& cell = sab_shadow(buf)[index];
    const double old = cell;
    if (old == expected) {
        cell = desired;
        natives_.sab_store(buf, index, desired, wm::seqcst_access);
    }
    return old;
}

// --- storage ------------------------------------------------------------------------------

bool kernel::k_indexeddb_put(const std::string& db, const std::string& key, rt::js_value value)
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    if (policy_deny_idb(ctx_->owner().private_browsing())) return false;
    return natives_.indexeddb_put(db, key, std::move(value));
}

rt::js_value kernel::k_indexeddb_get(const std::string& db, const std::string& key)
{
    ++api_calls_;
    clock_.tick();
    charge_interpose();
    if (policy_deny_idb(ctx_->owner().private_browsing())) return rt::js_value{};
    return natives_.indexeddb_get(db, key);
}

// --- worker-side kernel plumbing --------------------------------------------------------------

void kernel::on_parent_message(const rt::message_event& event)
{
    const rt::js_value type = event.data.get("__jsk");
    if (!type.is_string()) return;  // unknown traffic: drop
    if (type.as_string() == "sys") {
        const std::string cmd = event.data.get("cmd").as_string();
        if (cmd == "prepare-terminate") {
            enter_user_closed();
            awaiting_ready_to_die = true;
            maybe_signal_drained();
        } else if (cmd == "flush") {
            awaiting_flush_ack = true;
            maybe_signal_drained();
        }
        return;
    }
    if (type.as_string() == "user") {
        if (user_closed_) return;
        ++self_onmessage_seq_;
        const ktime predicted = prediction_->sequence_predict(
            self_onmessage_base_, self_onmessage_seq_, opts_.intervals.onmessage);
        sched_.register_ready(
            kevent_type::self_onmessage, predicted,
            [this, data = event.data.get("data"), origin = event.origin] {
                if (!user_closed_ && user_self_onmessage_) {
                    user_self_onmessage_(rt::message_event{data, origin, false});
                }
            },
            "self.onmessage");
    }
}

void kernel::send_sys_to_parent(const std::string& cmd, rt::js_value payload)
{
    natives_.post_message_to_parent(wrap_sys(cmd, std::move(payload)), {});
}

void kernel::enter_user_closed()
{
    if (user_closed_) return;
    user_closed_ = true;
    // User-observable events stop immediately.
    queue_.cancel_all();
    for (const auto& [id, binding] : timers_) natives_.clear_timeout(binding.native);
    timers_.clear();
    for (const auto& [id, binding] : intervals_) natives_.clear_interval(binding.native);
    intervals_.clear();
    disp_.pump();  // discard the cancelled backlog
}

void kernel::send_horizon()
{
    if (role_ != role::worker || user_closed_) return;
    // Earliest kernel time a user send could still happen: the next queued
    // event (user code only runs inside dispatched events). An empty queue
    // with no outstanding fetch means "reactive only" (-1): the parent may
    // run free until it sends us something.
    ktime horizon = queue_.next_pending_time();
    if (outstanding_fetches_ > 0 && horizon < 0) {
        horizon = clock_.display() + prediction_->intervals.fetch;
    }
    // The certificate also states how many user messages this kernel has
    // seen; the parent ignores a stale "reactive only" cert that crossed
    // with a message still in flight.
    if (horizon == last_horizon_sent_ && self_onmessage_seq_ == last_horizon_seen_) return;
    last_horizon_sent_ = horizon;
    last_horizon_seen_ = self_onmessage_seq_;
    send_sys_to_parent("horizon",
                       rt::make_object({{"t", horizon},
                                        {"seen", static_cast<double>(self_onmessage_seq_)}}));
}

void kernel::after_dispatch()
{
    if (role_ == role::worker) send_horizon();
}

void kernel::maybe_signal_drained()
{
    if (outstanding_fetches_ > 0) return;
    if (awaiting_ready_to_die) {
        awaiting_ready_to_die = false;
        send_sys_to_parent("ready-to-die");
    }
    if (awaiting_flush_ack) {
        awaiting_flush_ack = false;
        send_sys_to_parent("flush-ack");
    }
}

}  // namespace jsk::kernel
