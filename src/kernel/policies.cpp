// The manually specified, vulnerability-specific policies of §IV-B.
#include "kernel/policy.h"

#include <memory>

#include "kernel/kernel.h"

namespace jsk::kernel {

namespace {

/// CVE-2013-1714: "JSKernel enforces a policy to check the origins for all
/// the requests coming from a web worker."
class worker_xhr_origin_check final : public policy {
public:
    [[nodiscard]] const char* name() const override { return "worker-xhr-origin-check"; }
    [[nodiscard]] const char* cve() const override { return "CVE-2013-1714"; }
    bool on_xhr(kernel&, const std::string&, bool cross_origin) override
    {
        return cross_origin;  // block: same-origin policy enforced in the kernel
    }
};

/// CVE-2013-5602: "JSKernel enforces a policy to avoid assigning an
/// onmessage callback by hooking both the setter function of onmessage and
/// setEventListener."
class onmessage_validation final : public policy {
public:
    [[nodiscard]] const char* name() const override { return "onmessage-validation"; }
    [[nodiscard]] const char* cve() const override { return "CVE-2013-5602"; }
    bool on_onmessage_assign(kernel&, bool valid) override
    {
        return !valid;  // reject null/invalid handlers at the trap
    }
};

/// CVE-2017-7843: "avoid access to indexedDB during private browsing mode to
/// obey the mode's specification."
class private_idb_deny final : public policy {
public:
    [[nodiscard]] const char* name() const override { return "private-idb-deny"; }
    [[nodiscard]] const char* cve() const override { return "CVE-2017-7843"; }
    bool on_indexeddb(kernel&, bool private_mode) override { return private_mode; }
};

/// CVE-2014-1487 / CVE-2015-7215: "sanitizes the error message ... by
/// throwing a new message without the cross-origin information."
class error_sanitizer final : public policy {
public:
    [[nodiscard]] const char* name() const override { return "error-sanitizer"; }
    [[nodiscard]] const char* cve() const override { return "CVE-2014-1487"; }
    std::string on_worker_error(kernel&, const std::string&) override
    {
        return "Script error.";  // the standard cross-origin-safe message
    }
};

/// CVE-2011-1190 / CVE-2015-7215: the kernel mediates cross-origin (or
/// unresolvable) importScripts itself — native error objects and source
/// exposure never reach user space.
class mediated_import final : public policy {
public:
    [[nodiscard]] const char* name() const override { return "mediated-import"; }
    [[nodiscard]] const char* cve() const override { return "CVE-2011-1190"; }
    bool on_import(kernel&, const std::string&, bool cross_origin) override
    {
        return cross_origin;
    }
};

}  // namespace

std::unique_ptr<policy> make_policy_worker_xhr_origin_check()
{
    return std::make_unique<worker_xhr_origin_check>();
}
std::unique_ptr<policy> make_policy_onmessage_validation()
{
    return std::make_unique<onmessage_validation>();
}
std::unique_ptr<policy> make_policy_private_idb_deny()
{
    return std::make_unique<private_idb_deny>();
}
std::unique_ptr<policy> make_policy_error_sanitizer()
{
    return std::make_unique<error_sanitizer>();
}
std::unique_ptr<policy> make_policy_mediated_import()
{
    return std::make_unique<mediated_import>();
}

namespace {

/// Bounded retry with exponential backoff for transient fetch failures —
/// kernel-side hardening that turns injected network faults (jsk::faults)
/// into survived requests instead of user-visible errors. Not part of
/// default_policies(): fault tolerance is opt-in configuration, per
/// policy_spec hook "fetch_failure" / action "retry".
class fetch_retry_backoff final : public policy {
public:
    fetch_retry_backoff(int max_attempts, double base_ms)
        : max_attempts_(max_attempts), base_ms_(base_ms)
    {
    }
    [[nodiscard]] const char* name() const override { return "fetch-retry-backoff"; }
    retry_decision on_fetch_failure(kernel&, const std::string&, int attempt,
                                    bool retryable) override
    {
        if (!retryable || attempt >= max_attempts_) return {};
        return {true, base_ms_ * static_cast<double>(1 << (attempt - 1))};
    }

private:
    int max_attempts_;
    double base_ms_;
};

}  // namespace

std::unique_ptr<policy> make_policy_fetch_retry(int max_attempts, double backoff_base_ms)
{
    return std::make_unique<fetch_retry_backoff>(max_attempts, backoff_base_ms);
}

std::vector<std::unique_ptr<policy>> default_policies()
{
    std::vector<std::unique_ptr<policy>> out;
    out.push_back(make_policy_worker_xhr_origin_check());
    out.push_back(make_policy_onmessage_validation());
    out.push_back(make_policy_private_idb_deny());
    out.push_back(make_policy_error_sanitizer());
    out.push_back(make_policy_mediated_import());
    return out;
}

}  // namespace jsk::kernel
