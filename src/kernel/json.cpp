#include "kernel/json.h"

#include <cctype>
#include <cstdlib>

namespace jsk::kernel::json {

namespace {

class parser {
public:
    explicit parser(const std::string& text) : text_(text) {}

    value parse_document()
    {
        skip_ws();
        value v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters after JSON value");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const { throw parse_error(what, pos_); }

    void skip_ws()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char peek() const
    {
        if (pos_ >= text_.size()) throw parse_error("unexpected end of input", pos_);
        return text_[pos_];
    }

    char next()
    {
        const char c = peek();
        ++pos_;
        return c;
    }

    void expect(char c)
    {
        if (next() != c) {
            --pos_;
            fail(std::string("expected '") + c + "'");
        }
    }

    bool consume_literal(const char* literal)
    {
        const std::size_t len = std::char_traits<char>::length(literal);
        if (text_.compare(pos_, len, literal) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    value parse_value()
    {
        skip_ws();
        const char c = peek();
        switch (c) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return value{parse_string()};
            case 't':
                if (consume_literal("true")) return value{true};
                fail("invalid literal");
            case 'f':
                if (consume_literal("false")) return value{false};
                fail("invalid literal");
            case 'n':
                if (consume_literal("null")) return value{nullptr};
                fail("invalid literal");
            default: return parse_number();
        }
    }

    value parse_object()
    {
        expect('{');
        object out;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return value{std::move(out)};
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            value v = parse_value();
            if (out.contains(key)) fail("duplicate key: " + key);
            out.emplace(std::move(key), std::move(v));
            skip_ws();
            const char c = next();
            if (c == '}') break;
            if (c != ',') {
                --pos_;
                fail("expected ',' or '}' in object");
            }
        }
        return value{std::move(out)};
    }

    value parse_array()
    {
        expect('[');
        array out;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return value{std::move(out)};
        }
        while (true) {
            out.push_back(parse_value());
            skip_ws();
            const char c = next();
            if (c == ']') break;
            if (c != ',') {
                --pos_;
                fail("expected ',' or ']' in array");
            }
        }
        return value{std::move(out)};
    }

    std::string parse_string()
    {
        expect('"');
        std::string out;
        while (true) {
            const char c = next();
            if (c == '"') break;
            if (c == '\\') {
                const char esc = next();
                switch (esc) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 't': out += '\t'; break;
                    case 'r': out += '\r'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    default: fail("unsupported escape sequence");
                }
            } else {
                out += c;
            }
        }
        return out;
    }

    value parse_number()
    {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
                text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
            fail("invalid number");
        }
        const std::string token = text_.substr(start, pos_ - start);
        char* end = nullptr;
        const double d = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') fail("invalid number: " + token);
        return value{d};
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

value parse(const std::string& text) { return parser(text).parse_document(); }

}  // namespace jsk::kernel::json
