#include "kernel/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace jsk::kernel::json {

namespace {

class parser {
public:
    explicit parser(const std::string& text) : text_(text) {}

    value parse_document()
    {
        skip_ws();
        value v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters after JSON value");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const { throw parse_error(what, pos_); }

    void skip_ws()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char peek() const
    {
        if (pos_ >= text_.size()) throw parse_error("unexpected end of input", pos_);
        return text_[pos_];
    }

    char next()
    {
        const char c = peek();
        ++pos_;
        return c;
    }

    void expect(char c)
    {
        if (next() != c) {
            --pos_;
            fail(std::string("expected '") + c + "'");
        }
    }

    bool consume_literal(const char* literal)
    {
        const std::size_t len = std::char_traits<char>::length(literal);
        if (text_.compare(pos_, len, literal) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    value parse_value()
    {
        skip_ws();
        const char c = peek();
        switch (c) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return value{parse_string()};
            case 't':
                if (consume_literal("true")) return value{true};
                fail("invalid literal");
            case 'f':
                if (consume_literal("false")) return value{false};
                fail("invalid literal");
            case 'n':
                if (consume_literal("null")) return value{nullptr};
                fail("invalid literal");
            default: return parse_number();
        }
    }

    value parse_object()
    {
        expect('{');
        object out;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return value{std::move(out)};
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            value v = parse_value();
            if (out.contains(key)) fail("duplicate key: " + key);
            out.emplace(std::move(key), std::move(v));
            skip_ws();
            const char c = next();
            if (c == '}') break;
            if (c != ',') {
                --pos_;
                fail("expected ',' or '}' in object");
            }
        }
        return value{std::move(out)};
    }

    value parse_array()
    {
        expect('[');
        array out;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return value{std::move(out)};
        }
        while (true) {
            out.push_back(parse_value());
            skip_ws();
            const char c = next();
            if (c == ']') break;
            if (c != ',') {
                --pos_;
                fail("expected ',' or ']' in array");
            }
        }
        return value{std::move(out)};
    }

    std::string parse_string()
    {
        expect('"');
        std::string out;
        while (true) {
            const char c = next();
            if (c == '"') break;
            if (c == '\\') {
                const char esc = next();
                switch (esc) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 't': out += '\t'; break;
                    case 'r': out += '\r'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'u': append_utf8(out, parse_codepoint()); break;
                    default: fail("unsupported escape sequence");
                }
            } else {
                out += c;
            }
        }
        return out;
    }

    /// The code point of a \uXXXX escape (the 'u' already consumed),
    /// combining UTF-16 surrogate pairs.
    std::uint32_t parse_codepoint()
    {
        std::uint32_t cp = parse_hex4();
        if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
                fail("unpaired UTF-16 surrogate");
            }
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
        } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired UTF-16 surrogate");
        }
        return cp;
    }

    std::uint32_t parse_hex4()
    {
        std::uint32_t cp = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = next();
            cp <<= 4;
            if (c >= '0' && c <= '9') cp |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f') cp |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') cp |= static_cast<std::uint32_t>(c - 'A' + 10);
            else fail("invalid \\u escape");
        }
        return cp;
    }

    static void append_utf8(std::string& out, std::uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    value parse_number()
    {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
                text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
            fail("invalid number");
        }
        const std::string token = text_.substr(start, pos_ - start);
        char* end = nullptr;
        const double d = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') fail("invalid number: " + token);
        return value{d};
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

value parse(const std::string& text) { return parser(text).parse_document(); }

namespace {

void append_escaped(std::string& out, const std::string& s)
{
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
}

void dump_into(std::string& out, const value& v)
{
    if (v.is_null()) {
        out += "null";
    } else if (v.is_bool()) {
        out += v.as_bool() ? "true" : "false";
    } else if (v.is_number()) {
        const double d = v.as_number();
        char buf[64];
        // Exact integers (counter values) print without a fraction.
        if (d == static_cast<double>(static_cast<long long>(d)) && d >= -9.0e15 &&
            d <= 9.0e15) {
            std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
        } else {
            std::snprintf(buf, sizeof(buf), "%.17g", d);
        }
        out += buf;
    } else if (v.is_string()) {
        out += '"';
        append_escaped(out, v.as_string());
        out += '"';
    } else if (v.is_array()) {
        out += '[';
        const array& a = v.as_array();
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (i > 0) out += ',';
            dump_into(out, a[i]);
        }
        out += ']';
    } else {
        out += '{';
        bool first = true;
        for (const auto& [key, field] : v.as_object()) {
            if (!first) out += ',';
            first = false;
            out += '"';
            append_escaped(out, key);
            out += "\":";
            dump_into(out, field);
        }
        out += '}';
    }
}

}  // namespace

std::string dump(const value& v)
{
    std::string out;
    dump_into(out, v);
    return out;
}

}  // namespace jsk::kernel::json
