// The kernel dispatcher (§III-D3): an event loop that drains the event queue
// strictly in predicted-time order.
//
//  * ready head  -> advance the kernel clock to its predicted time and run
//                   the callback as a fresh macrotask;
//  * pending head-> wait (nothing later may overtake it, even if confirmed);
//  * cancelled   -> discard.
//
// The pending-head wait is the heart of the defense: an attacker counting
// events between two observations counts positions on the predicted timeline,
// which the secret cannot influence.
//
// Two hardening features bound that wait against a faulty world:
//  * watchdog — when kernel_options.watchdog_budget_ms > 0 and the head stays
//    pending past the budget (its confirmation was lost: dead worker, dropped
//    channel message, timed-out fetch), the dispatcher cancels it, journals a
//    watchdog_cancel entry, and pumps on. Off by default (budget 0).
//  * exception containment — a user callback that throws out of its dispatch
//    macrotask is contained (counted + traced), the same way a real event
//    loop reports an uncaught error and keeps going; the dispatch frontier
//    never stalls on a throwing page.
#pragma once

#include <cstdint>

#include "kernel/kevent.h"
#include "sim/time.h"

namespace jsk::kernel {

class kernel;

class dispatcher {
public:
    explicit dispatcher(kernel& k) : k_(&k) {}

    /// Dispatch as far as the queue allows. Called after every registration,
    /// confirmation and cancellation. One event is dispatched per macrotask;
    /// the dispatch task re-pumps.
    void pump();

    [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

    /// True while a dispatch macrotask is queued but has not run yet.
    [[nodiscard]] bool dispatch_in_flight() const { return dispatch_scheduled_; }

    /// Re-examine the queue head after a registration and start the pending
    /// wait bound if needed. Unlike pump(), never schedules a dispatch — a
    /// registration must not advance the frontier, but a pending head that
    /// nothing else will ever touch still needs its watchdog armed.
    void watch_head();

    /// Pending heads the watchdog cancelled (each is journaled).
    [[nodiscard]] std::uint64_t watchdog_fires() const { return watchdog_fires_; }

    /// User callbacks that threw out of their dispatch macrotask.
    [[nodiscard]] std::uint64_t callback_exceptions() const { return callback_exceptions_; }

private:
    /// Post the watchdog timer for a pending head (no-op when the budget is
    /// zero or a live timer already covers this exact frontier). A head whose
    /// predicted time advanced since the last arm counts as progress and gets
    /// a fresh budget — the watchdog bounds *stalls*, not total wait time.
    void arm_watchdog(const kevent& head);
    void watchdog_expire(std::uint64_t generation);

    kernel* k_;
    bool dispatch_scheduled_ = false;
    std::uint64_t dispatched_ = 0;
    std::uint64_t watchdog_fires_ = 0;
    std::uint64_t callback_exceptions_ = 0;
    std::uint64_t watchdog_armed_for_ = 0;   // head id covered by a live timer
    ktime watchdog_armed_predicted_ = 0.0;   // its predicted time at arm
    std::uint64_t watchdog_generation_ = 0;  // only the newest timer is live
};

}  // namespace jsk::kernel
