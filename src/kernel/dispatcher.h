// The kernel dispatcher (§III-D3): an event loop that drains the event queue
// strictly in predicted-time order.
//
//  * ready head  -> advance the kernel clock to its predicted time and run
//                   the callback as a fresh macrotask;
//  * pending head-> wait (nothing later may overtake it, even if confirmed);
//  * cancelled   -> discard.
//
// The pending-head wait is the heart of the defense: an attacker counting
// events between two observations counts positions on the predicted timeline,
// which the secret cannot influence.
#pragma once

#include <cstdint>

namespace jsk::kernel {

class kernel;

class dispatcher {
public:
    explicit dispatcher(kernel& k) : k_(&k) {}

    /// Dispatch as far as the queue allows. Called after every registration,
    /// confirmation and cancellation. One event is dispatched per macrotask;
    /// the dispatch task re-pumps.
    void pump();

    [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

    /// True while a dispatch macrotask is queued but has not run yet.
    [[nodiscard]] bool dispatch_in_flight() const { return dispatch_scheduled_; }

private:
    kernel* k_;
    bool dispatch_scheduled_ = false;
    std::uint64_t dispatched_ = 0;
};

}  // namespace jsk::kernel
