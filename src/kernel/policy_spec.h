// JSON policy specifications (§II-B: "A security policy in JSKERNEL,
// represented in a JSON format and specifies the corresponding functions to
// be invoked for a user-space function call").
//
// Spec shape:
//
//   {
//     "name": "policy_cve-2018-5092",
//     "rules": [
//       {"hook": "fetch",            "action": "block", "url_prefix": "https://tracker."},
//       {"hook": "xhr",              "action": "block-cross-origin"},
//       {"hook": "import_scripts",   "action": "mediate-cross-origin"},
//       {"hook": "indexeddb",        "action": "deny-private"},
//       {"hook": "onmessage_assign", "action": "reject-invalid"},
//       {"hook": "worker_error",     "action": "sanitize", "replacement": "Script error."},
//       {"hook": "fetch_failure",    "action": "retry", "max_attempts": 3,
//        "backoff_base_ms": 25}
//     ]
//   }
//
// Unknown hooks/actions are rejected at load time with a descriptive error —
// a policy that silently does nothing is worse than no policy.
#pragma once

#include <memory>
#include <string>

#include "kernel/policy.h"

namespace jsk::kernel {

/// Parse a JSON policy document into an installable policy object.
/// Throws std::invalid_argument (or json::parse_error) on malformed specs.
std::unique_ptr<policy> load_policy_spec(const std::string& json_text);

/// Serialise the spec equivalent of the built-in default policy set —
/// what the paper's extension ships as its JSON policy bundle.
std::string default_policy_spec_json();

}  // namespace jsk::kernel
