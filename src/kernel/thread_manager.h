// Thread management (§III-E).
//
// The kernel owns worker lifecycle. `new Worker(src)` returns a kernel stub
// (the paper's Proxy); the real native worker runs a kernel bootstrap that
// installs a child kernel — with its own event queue and clock — before
// importing the user script. All traffic between the threads flows over the
// single postMessage channel as an overlay: a type field distinguishes
// kernel-space from user-space messages (§III-E2).
//
// Termination protocol (the kernel-level half of the Listing-4 policy):
// user-level terminate() takes effect immediately for user code, but the
// native thread dies only after a prepare-terminate / ready-to-die handshake
// that drains in-flight messages and outstanding fetches. This structurally
// prevents the trigger sequences of CVE-2018-5092, -2014-3194, -2014-1719,
// -2014-1488 and -2010-4576; the pre-reload flush handshake covers
// CVE-2013-6646.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kernel/kevent.h"
#include "runtime/api.h"

namespace jsk::kernel {

class kernel;

/// The paper's kernel thread object: status, ID, src and the kernel worker
/// (§III-E1), plus the user-side handler slots the stub traps.
struct kthread {
    std::uint64_t id = 0;
    std::string status = "started";  // started -> ready -> closing -> closed
    std::string src;
    rt::worker_ptr native;           // the kernelWorker field
    kernel* child_kernel = nullptr;  // owned by the main kernel
    bool user_alive = true;          // what stub.alive() reports
    bool native_terminated = false;
    std::uint64_t onmessage_seq = 0;  // counter-based onmessage predictions
    ktime onmessage_base = 0.0;       // main kernel clock at creation
    rt::message_cb user_onmessage;
    rt::error_cb user_onerror;
    bool flush_ack_pending = false;   // flushed; waiting for its flush-ack
    bool barrier_waiting = false;     // mid-termination; barrier waits for death

    // Channel guard (null-message protocol): a standing pending event in the
    // parent's queue that caps the dispatch frontier at the child's certified
    // send horizon. Without it, a message arriving after the parent dispatched
    // past its predicted slot would be ordered by *arrival* — a physical-time
    // leak (found by tests/properties/test_program_fuzz.cpp).
    std::uint64_t guard_event = 0;
    bool guard_active = false;
    ktime guard_predicted = 0.0;
    std::uint64_t user_sent_seq = 0;  // user messages sent to the child
};

class thread_manager {
public:
    explicit thread_manager(kernel& k) : k_(&k) {}

    /// Kernel replacement for `new Worker(src)`. Boots a kernel worker that
    /// imports the user script, and returns the user-facing stub.
    rt::worker_ptr create_user_thread(const std::string& src);

    // --- stub entry points (user -> kernel communication, §III-B) ---
    void stub_post_message(std::uint64_t tid, rt::js_value data, rt::transfer_list transfer);
    void stub_set_onmessage(std::uint64_t tid, rt::message_cb cb);
    void stub_set_onerror(std::uint64_t tid, rt::error_cb cb);
    void stub_terminate(std::uint64_t tid);
    [[nodiscard]] bool stub_alive(std::uint64_t tid) const;
    [[nodiscard]] std::uint64_t stub_native_id(std::uint64_t tid) const;

    /// Kernel-space message from a child kernel, already unwrapped.
    void handle_sys_from_child(std::uint64_t tid, const std::string& cmd,
                               const rt::js_value& payload);

    /// User-space message from a child, already unwrapped.
    void handle_user_from_child(std::uint64_t tid, const rt::js_value& data);

    /// Pre-reload barrier: flush every live channel (and let children drain
    /// outstanding fetches), then run `done`.
    void flush_all_then(std::function<void()> done);

    [[nodiscard]] kthread* find(std::uint64_t tid);
    [[nodiscard]] const std::vector<std::unique_ptr<kthread>>& threads() const
    {
        return threads_;
    }

private:
    void begin_termination(kthread& kt);
    void send_sys_to_child(kthread& kt, const std::string& cmd, rt::js_value payload = {});
    void barrier_release(kthread& kt);
    void barrier_dec();
    void guard_create(kthread& kt, ktime predicted);
    void guard_advance(kthread& kt, ktime horizon, std::uint64_t seen);
    void guard_clear(kthread& kt);

    kernel* k_;
    std::vector<std::unique_ptr<kthread>> threads_;
    std::uint64_t next_tid_ = 1;
    int barrier_remaining_ = 0;
    std::vector<std::function<void()>> flush_done_;
};

}  // namespace jsk::kernel
