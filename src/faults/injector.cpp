#include "faults/injector.h"

#include <algorithm>

namespace jsk::faults {
namespace {

std::uint64_t mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

constexpr std::uint32_t tag_fetch = 0xF37C0001u;
constexpr std::uint32_t tag_spawn = 0xF37C0002u;
constexpr std::uint32_t tag_crash = 0xF37C0003u;
constexpr std::uint32_t tag_msg = 0xF37C0004u;
constexpr std::uint32_t tag_clock = 0xF37C0005u;

}  // namespace

std::uint32_t injector::roll(std::uint32_t tag, std::uint64_t seq, std::uint32_t salt) const
{
    const std::uint64_t key =
        plan_.seed ^ (static_cast<std::uint64_t>(tag) << 32) ^ (seq * 0x10001ULL) ^ salt;
    return static_cast<std::uint32_t>(mix64(key) % 10'000u);
}

injector::fetch_decision injector::on_fetch(sim::time_ns base_latency)
{
    const std::uint64_t seq = fetch_seq_++;
    ++decisions_;
    fetch_decision d;
    if (roll(tag_fetch, seq, 1) < plan_.fetch_timeout_bp) {
        d.kind = fetch_fault::timeout;
        d.fail_after = plan_.fetch_timeout_after;
        ++fetch_timeouts_;
    } else if (roll(tag_fetch, seq, 2) < plan_.fetch_reset_bp) {
        d.kind = fetch_fault::reset;
        d.fail_after = std::max<sim::time_ns>(base_latency / 2, 1);
        ++fetch_resets_;
    } else if (roll(tag_fetch, seq, 3) < plan_.fetch_partial_bp) {
        d.kind = fetch_fault::partial;
        ++fetch_partials_;
    } else if (roll(tag_fetch, seq, 4) < plan_.fetch_spike_bp) {
        d.kind = fetch_fault::spike;
        d.extra_latency = plan_.fetch_spike;
        ++fetch_spikes_;
    }
    if (d.kind != fetch_fault::none) ++injected_;
    return d;
}

bool injector::on_worker_spawn()
{
    const std::uint64_t seq = spawn_seq_++;
    ++decisions_;
    if (roll(tag_spawn, seq, 1) < plan_.worker_spawn_fail_bp) {
        ++worker_spawn_fails_;
        ++injected_;
        return true;
    }
    return false;
}

sim::time_ns injector::worker_crash_delay()
{
    const std::uint64_t seq = crash_seq_++;
    ++decisions_;
    if (roll(tag_crash, seq, 1) < plan_.worker_crash_bp) {
        ++worker_crashes_;
        ++injected_;
        // Stagger crashes across the decision stream so two doomed workers
        // do not die in lockstep.
        const sim::time_ns jitter = static_cast<sim::time_ns>(roll(tag_crash, seq, 2)) *
                                    (plan_.worker_crash_after / 10'000 + 1);
        return plan_.worker_crash_after + jitter;
    }
    return 0;
}

injector::msg_decision injector::on_message()
{
    const std::uint64_t seq = msg_seq_++;
    ++decisions_;
    msg_decision d;
    if (roll(tag_msg, seq, 1) < plan_.msg_drop_bp) {
        d.kind = msg_fault::drop;
        ++msg_drops_;
    } else if (roll(tag_msg, seq, 2) < plan_.msg_duplicate_bp) {
        d.kind = msg_fault::duplicate;
        ++msg_duplicates_;
    } else if (roll(tag_msg, seq, 3) < plan_.msg_delay_bp) {
        d.kind = msg_fault::delay;
        d.delay = plan_.msg_delay;
        ++msg_delays_;
    }
    if (d.kind != msg_fault::none) ++injected_;
    return d;
}

sim::time_ns injector::clock_skew(sim::time_ns t) const
{
    if (plan_.clock_skew_amplitude <= 0 || t < 0) return 0;
    const sim::time_ns period = std::max<sim::time_ns>(plan_.clock_skew_period, 1);
    // |offset| <= period/2 bounds the interpolated slope below by -1, so the
    // skewed clock t + skew(t) is non-decreasing.
    const sim::time_ns amp = std::min(plan_.clock_skew_amplitude, period / 2);
    if (amp <= 0) return 0;
    const std::uint64_t seg = static_cast<std::uint64_t>(t) / static_cast<std::uint64_t>(period);
    const auto offset = [&](std::uint64_t k) -> sim::time_ns {
        const std::uint64_t h =
            mix64(plan_.seed ^ (static_cast<std::uint64_t>(tag_clock) << 32) ^ k);
        const std::uint64_t span = 2 * static_cast<std::uint64_t>(amp) + 1;
        return static_cast<sim::time_ns>(h % span) - amp;
    };
    const sim::time_ns a = offset(seg);
    const sim::time_ns b = offset(seg + 1);
    const sim::time_ns into = t - static_cast<sim::time_ns>(seg) * period;
    return a + (b - a) * into / period;
}

}  // namespace jsk::faults
