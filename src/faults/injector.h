// jsk::faults — the deterministic fault oracle.
//
// The injector answers "does this interposition point fault, and how?" for
// every site the runtime exposes (fetch issue, worker spawn/terminate,
// postMessage, performance.now). Every answer is a pure function of
// (plan.seed, site tag, per-site sequence number): there is no shared RNG
// whose state could be perturbed by unrelated sites, so a run that issues
// the same calls in the same per-site order gets the same faults — which is
// exactly what schedule record/replay guarantees. (seed, plan, decision
// string) therefore reproduces a chaotic run byte-for-byte.
#pragma once

#include <cstdint>
#include <string>

#include "faults/plan.h"
#include "sim/time.h"

namespace jsk::faults {

class injector {
public:
    explicit injector(plan p) : plan_(p), enabled_(!plan_.null_plan()) {}

    [[nodiscard]] const plan& spec() const { return plan_; }

    /// Null-plan fast path: when false, no site consults the injector at all
    /// (browser::active_faults() returns nullptr), so the fault-free path
    /// costs one branch — the same discipline as the obs null-sink guard,
    /// and pinned by the bench_hotpath faults guard.
    [[nodiscard]] bool enabled() const { return enabled_; }

    // --- network -----------------------------------------------------------
    enum class fetch_fault : std::uint8_t { none, timeout, reset, partial, spike };
    struct fetch_decision {
        fetch_fault kind = fetch_fault::none;
        sim::time_ns extra_latency = 0;  // spike only
        sim::time_ns fail_after = 0;     // timeout/reset: when the failure lands
    };
    /// Consulted once per fetch issue, with the latency the network model
    /// computed (resets fail at half of it).
    fetch_decision on_fetch(sim::time_ns base_latency);

    // --- workers -----------------------------------------------------------
    /// True: the spawn fails (script never runs); decided at spawn time.
    [[nodiscard]] bool on_worker_spawn();
    /// >0: the worker's engine crashes that long after spawn; decided at
    /// spawn time so the crash task can be scheduled deterministically.
    [[nodiscard]] sim::time_ns worker_crash_delay();
    /// Extra virtual time between terminate() and the engine-side teardown.
    [[nodiscard]] sim::time_ns termination_delay() const
    {
        return plan_.worker_termination_delay;
    }

    // --- channels ----------------------------------------------------------
    enum class msg_fault : std::uint8_t { none, drop, duplicate, delay };
    struct msg_decision {
        msg_fault kind = msg_fault::none;
        sim::time_ns delay = 0;
    };
    /// Consulted once per postMessage (either direction). The browser keeps
    /// per-direction delivery floors so whatever this returns stays within
    /// FIFO-realizable bounds.
    msg_decision on_message();

    // --- clocks ------------------------------------------------------------
    /// Skew added to a performance.now reading at virtual time `t`. Pure in
    /// (seed, t); piecewise-linear between hashed per-period offsets with
    /// amplitude clamped to period/2, so t + skew(t) is monotone — a skewed
    /// clock never runs backwards.
    [[nodiscard]] sim::time_ns clock_skew(sim::time_ns t) const;

    // --- telemetry (read by obs::collect_faults) ---------------------------
    [[nodiscard]] std::uint64_t decisions() const { return decisions_; }
    [[nodiscard]] std::uint64_t injected() const { return injected_; }
    [[nodiscard]] std::uint64_t fetch_timeouts() const { return fetch_timeouts_; }
    [[nodiscard]] std::uint64_t fetch_resets() const { return fetch_resets_; }
    [[nodiscard]] std::uint64_t fetch_partials() const { return fetch_partials_; }
    [[nodiscard]] std::uint64_t fetch_spikes() const { return fetch_spikes_; }
    [[nodiscard]] std::uint64_t worker_spawn_fails() const { return worker_spawn_fails_; }
    [[nodiscard]] std::uint64_t worker_crashes() const { return worker_crashes_; }
    [[nodiscard]] std::uint64_t msg_drops() const { return msg_drops_; }
    [[nodiscard]] std::uint64_t msg_duplicates() const { return msg_duplicates_; }
    [[nodiscard]] std::uint64_t msg_delays() const { return msg_delays_; }

private:
    /// Uniform roll in [0, 10'000) for (site tag, sequence, salt).
    [[nodiscard]] std::uint32_t roll(std::uint32_t tag, std::uint64_t seq,
                                     std::uint32_t salt) const;

    plan plan_;
    bool enabled_;

    // Per-site sequence counters — each site consumes its own stream.
    std::uint64_t fetch_seq_ = 0;
    std::uint64_t spawn_seq_ = 0;
    std::uint64_t crash_seq_ = 0;
    std::uint64_t msg_seq_ = 0;

    std::uint64_t decisions_ = 0;
    std::uint64_t injected_ = 0;
    std::uint64_t fetch_timeouts_ = 0;
    std::uint64_t fetch_resets_ = 0;
    std::uint64_t fetch_partials_ = 0;
    std::uint64_t fetch_spikes_ = 0;
    std::uint64_t worker_spawn_fails_ = 0;
    std::uint64_t worker_crashes_ = 0;
    std::uint64_t msg_drops_ = 0;
    std::uint64_t msg_duplicates_ = 0;
    std::uint64_t msg_delays_ = 0;
};

}  // namespace jsk::faults
