// jsk::faults — the deterministic I/O fault domain.
//
// PR 4's injector answers "does this *runtime* interposition point fault?"
// for the simulated browser; this file asks the same question for the
// *service's own* disk and wire I/O. An `io_plan` is a serializable
// description of the adversities a file-operation stream is exposed to —
// short writes, EINTR, ENOSPC, flush/fsync failure, rename failure — plus
// seeded process crash points; an `io_injector` turns the plan into
// decisions that are a pure function of (plan.seed, site tag, per-site
// sequence number), the splitmix64-per-site scheme the runtime injector
// established. A null plan costs one branch per operation (the obs
// null-sink discipline), and the svc::vfs seam is the only consumer, so
// the real-filesystem path is untouched when no plan is armed.
//
// Crash points are the exception to the basis-point model: every durable
// boundary (around each write, flush, fsync, rename, directory sync)
// increments a global operation counter, and `crash_at = k` makes the k-th
// boundary throw `crash_error` — the in-process equivalent of SIGKILL at
// exactly that instruction. Because the counter is deterministic, a harness
// can run once with an unreachable crash_at to *count* the boundaries, then
// enumerate k = 1..N to kill the process at every one of them — the
// exhaustive crash matrix svc::run_crash_matrix sweeps.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace jsk::faults {

/// Serializable I/O fault configuration. All-zero rates and crash_at == 0
/// make `null_plan()` true, which the vfs treats as "faults compiled out".
struct io_plan {
    /// Seed for the per-site decision streams.
    std::uint64_t seed = 1;

    // --- transient faults (retried by the vfs; latency only, never bytes) --
    std::uint32_t write_eintr_bp = 0;  // write fails once with EINTR
    std::uint32_t write_short_bp = 0;  // write makes partial progress

    // --- persistent faults (surface as io_error; stores degrade) -----------
    std::uint32_t write_enospc_bp = 0;  // write fails with ENOSPC
    std::uint32_t flush_fail_bp = 0;    // fflush fails with EIO
    std::uint32_t fsync_fail_bp = 0;    // fsync fails with EIO
    std::uint32_t rename_fail_bp = 0;   // rename fails with EIO

    // --- crash points -------------------------------------------------------
    /// 0 = off; k = the k-th crash-point boundary throws crash_error. Use
    /// crash_count_only (never reached) to count boundaries without dying.
    std::uint64_t crash_at = 0;

    bool operator==(const io_plan&) const = default;

    /// True when no rate is armed and no crash point is set — the vfs takes
    /// the one-branch passthrough on every operation.
    [[nodiscard]] bool null_plan() const;

    /// True when the plan can surface persistent errors (as opposed to
    /// transparently-retried transients and crash points).
    [[nodiscard]] bool persistent() const;

    /// Exact `key=value;` serialization (every field, fixed order).
    [[nodiscard]] std::string str() const;

    /// Inverse of str(). Throws std::invalid_argument on unknown keys or
    /// malformed input.
    static io_plan parse(const std::string& text);

    // Deterministic plan families, mirroring faults::plan's factories.
    static io_plan transient_only(std::uint64_t seed);  // EINTR + short writes
    static io_plan disk_pressure(std::uint64_t seed);   // + ENOSPC
    static io_plan sync_failures(std::uint64_t seed);   // + flush/fsync EIO
    static io_plan full_io_chaos(std::uint64_t seed);   // everything at once

    /// Deterministic family walk over the factories above, distinct seeds
    /// per index — the io-plan axis of the crash matrix.
    static io_plan sample(std::uint64_t index);
};

/// A crash_at value no real run reaches: arms the injector (so crash-point
/// boundaries are counted) without ever firing.
inline constexpr std::uint64_t crash_count_only = ~0ULL;

/// Thrown by a crash point: the in-process stand-in for SIGKILL. This is
/// NOT an I/O error — nothing on the durability path may catch it; it must
/// unwind through store/service/serve so the harness can "reopen the
/// process". Deliberately not derived from io related errors.
class crash_error : public std::runtime_error {
public:
    explicit crash_error(const std::string& site)
        : std::runtime_error("faults::crash_point: process died at " + site)
    {
    }
};

/// The deterministic oracle for one process incarnation's file operations.
/// Single-threaded by design (the svc store/wire layers serialize their I/O
/// around parallel waves, so one injector sees one well-ordered op stream).
class io_injector {
public:
    explicit io_injector(io_plan p) : plan_(p), enabled_(!plan_.null_plan()) {}

    [[nodiscard]] const io_plan& spec() const { return plan_; }

    /// Null-plan fast path: when false the vfs performs the real operation
    /// with zero extra work beyond this one branch.
    [[nodiscard]] bool enabled() const { return enabled_; }

    // --- writes ------------------------------------------------------------
    enum class write_fault : std::uint8_t { none, eintr, short_write, enospc };
    struct write_decision {
        write_fault kind = write_fault::none;
        std::size_t progress = 0;  // short_write: bytes that do land
    };
    /// Consulted once per fwrite of `n` bytes.
    write_decision on_write(std::size_t n);

    /// Consulted once per fflush / per fsync / per rename; true = it fails.
    [[nodiscard]] bool on_flush();
    [[nodiscard]] bool on_fsync();
    [[nodiscard]] bool on_rename();

    // --- crash points -------------------------------------------------------
    /// One durable boundary. Increments the op counter; throws crash_error
    /// when the counter reaches plan.crash_at.
    void crash_point(const char* site);
    [[nodiscard]] std::uint64_t crash_points_seen() const { return crash_ops_; }

    // --- telemetry ----------------------------------------------------------
    [[nodiscard]] std::uint64_t decisions() const { return decisions_; }
    [[nodiscard]] std::uint64_t injected() const { return injected_; }
    [[nodiscard]] std::uint64_t eintrs() const { return eintrs_; }
    [[nodiscard]] std::uint64_t short_writes() const { return short_writes_; }
    [[nodiscard]] std::uint64_t enospcs() const { return enospcs_; }
    [[nodiscard]] std::uint64_t flush_failures() const { return flush_failures_; }
    [[nodiscard]] std::uint64_t fsync_failures() const { return fsync_failures_; }
    [[nodiscard]] std::uint64_t rename_failures() const { return rename_failures_; }

private:
    /// Uniform roll in [0, 10'000) for (site tag, sequence, salt) — the same
    /// pure splitmix64 scheme as the runtime injector.
    [[nodiscard]] std::uint32_t roll(std::uint32_t tag, std::uint64_t seq,
                                     std::uint32_t salt) const;

    io_plan plan_;
    bool enabled_;

    // Per-site sequence counters — each site consumes its own stream.
    std::uint64_t write_seq_ = 0;
    std::uint64_t flush_seq_ = 0;
    std::uint64_t fsync_seq_ = 0;
    std::uint64_t rename_seq_ = 0;
    std::uint64_t crash_ops_ = 0;

    std::uint64_t decisions_ = 0;
    std::uint64_t injected_ = 0;
    std::uint64_t eintrs_ = 0;
    std::uint64_t short_writes_ = 0;
    std::uint64_t enospcs_ = 0;
    std::uint64_t flush_failures_ = 0;
    std::uint64_t fsync_failures_ = 0;
    std::uint64_t rename_failures_ = 0;
};

}  // namespace jsk::faults
