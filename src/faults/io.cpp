#include "faults/io.h"

#include <cstdlib>
#include <sstream>
#include <vector>

namespace jsk::faults {
namespace {

std::uint64_t mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

// Disjoint from the runtime injector's 0xF37Cxxxx site tags.
constexpr std::uint32_t tag_write = 0x10F50001u;
constexpr std::uint32_t tag_flush = 0x10F50002u;
constexpr std::uint32_t tag_fsync = 0x10F50003u;
constexpr std::uint32_t tag_rename = 0x10F50004u;

// The same flat key=value codec as faults::plan — one table shared by
// str() and parse() so field order and names cannot drift.
struct field_ref {
    const char* key;
    std::uint64_t (*get)(const io_plan&);
    void (*set)(io_plan&, std::uint64_t);
};

template <typename T, T io_plan::* M>
field_ref make_field(const char* key)
{
    return field_ref{
        key,
        [](const io_plan& p) { return static_cast<std::uint64_t>(p.*M); },
        [](io_plan& p, std::uint64_t v) { p.*M = static_cast<T>(v); },
    };
}

const std::vector<field_ref>& fields()
{
    static const std::vector<field_ref> f = {
        make_field<std::uint64_t, &io_plan::seed>("seed"),
        make_field<std::uint32_t, &io_plan::write_eintr_bp>("write_eintr_bp"),
        make_field<std::uint32_t, &io_plan::write_short_bp>("write_short_bp"),
        make_field<std::uint32_t, &io_plan::write_enospc_bp>("write_enospc_bp"),
        make_field<std::uint32_t, &io_plan::flush_fail_bp>("flush_fail_bp"),
        make_field<std::uint32_t, &io_plan::fsync_fail_bp>("fsync_fail_bp"),
        make_field<std::uint32_t, &io_plan::rename_fail_bp>("rename_fail_bp"),
        make_field<std::uint64_t, &io_plan::crash_at>("crash_at"),
    };
    return f;
}

}  // namespace

bool io_plan::null_plan() const
{
    return write_eintr_bp == 0 && write_short_bp == 0 && write_enospc_bp == 0 &&
           flush_fail_bp == 0 && fsync_fail_bp == 0 && rename_fail_bp == 0 &&
           crash_at == 0;
}

bool io_plan::persistent() const
{
    return write_enospc_bp > 0 || flush_fail_bp > 0 || fsync_fail_bp > 0 ||
           rename_fail_bp > 0;
}

std::string io_plan::str() const
{
    std::ostringstream out;
    for (const field_ref& f : fields()) out << f.key << "=" << f.get(*this) << ";";
    return out.str();
}

io_plan io_plan::parse(const std::string& text)
{
    io_plan out;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t semi = text.find(';', pos);
        if (semi == std::string::npos) {
            throw std::invalid_argument("faults::io_plan::parse: missing ';' terminator");
        }
        const std::string entry = text.substr(pos, semi - pos);
        pos = semi + 1;
        if (entry.empty()) continue;
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos) {
            throw std::invalid_argument("faults::io_plan::parse: entry without '=': " +
                                        entry);
        }
        const std::string key = entry.substr(0, eq);
        const std::string value = entry.substr(eq + 1);
        const field_ref* field = nullptr;
        for (const field_ref& f : fields()) {
            if (key == f.key) {
                field = &f;
                break;
            }
        }
        if (field == nullptr) {
            throw std::invalid_argument("faults::io_plan::parse: unknown key: " + key);
        }
        char* end = nullptr;
        const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0') {
            throw std::invalid_argument("faults::io_plan::parse: bad number for " + key +
                                        ": " + value);
        }
        field->set(out, static_cast<std::uint64_t>(parsed));
    }
    return out;
}

io_plan io_plan::transient_only(std::uint64_t seed)
{
    io_plan p;
    p.seed = mix64(seed ^ 0x10AD0001ULL);
    p.write_eintr_bp = 1'500;
    p.write_short_bp = 2'000;
    return p;
}

io_plan io_plan::disk_pressure(std::uint64_t seed)
{
    io_plan p = transient_only(seed);
    p.seed = mix64(seed ^ 0x10AD0002ULL);
    p.write_enospc_bp = 800;
    return p;
}

io_plan io_plan::sync_failures(std::uint64_t seed)
{
    io_plan p;
    p.seed = mix64(seed ^ 0x10AD0003ULL);
    p.flush_fail_bp = 600;
    p.fsync_fail_bp = 1'200;
    return p;
}

io_plan io_plan::full_io_chaos(std::uint64_t seed)
{
    io_plan p;
    p.seed = mix64(seed ^ 0x10AD0004ULL);
    p.write_eintr_bp = 1'000;
    p.write_short_bp = 1'500;
    p.write_enospc_bp = 500;
    p.flush_fail_bp = 400;
    p.fsync_fail_bp = 800;
    p.rename_fail_bp = 300;
    return p;
}

io_plan io_plan::sample(std::uint64_t index)
{
    const std::uint64_t seed = mix64(index * 0x9E3779B97F4A7C15ULL + 1);
    switch (index % 4) {
        case 0: return transient_only(seed);
        case 1: return disk_pressure(seed);
        case 2: return sync_failures(seed);
        default: return full_io_chaos(seed);
    }
}

std::uint32_t io_injector::roll(std::uint32_t tag, std::uint64_t seq,
                                std::uint32_t salt) const
{
    const std::uint64_t key =
        plan_.seed ^ (static_cast<std::uint64_t>(tag) << 32) ^ (seq * 0x10001ULL) ^ salt;
    return static_cast<std::uint32_t>(mix64(key) % 10'000u);
}

io_injector::write_decision io_injector::on_write(std::size_t n)
{
    const std::uint64_t seq = write_seq_++;
    ++decisions_;
    write_decision d;
    if (roll(tag_write, seq, 1) < plan_.write_enospc_bp) {
        d.kind = write_fault::enospc;
        ++enospcs_;
    } else if (roll(tag_write, seq, 2) < plan_.write_eintr_bp) {
        d.kind = write_fault::eintr;
        ++eintrs_;
    } else if (n > 1 && roll(tag_write, seq, 3) < plan_.write_short_bp) {
        d.kind = write_fault::short_write;
        // 1 <= progress < n: the write lands a deterministic strict prefix.
        d.progress = 1 + roll(tag_write, seq, 4) % (n - 1);
        ++short_writes_;
    }
    if (d.kind != write_fault::none) ++injected_;
    return d;
}

bool io_injector::on_flush()
{
    const std::uint64_t seq = flush_seq_++;
    ++decisions_;
    if (roll(tag_flush, seq, 1) < plan_.flush_fail_bp) {
        ++flush_failures_;
        ++injected_;
        return true;
    }
    return false;
}

bool io_injector::on_fsync()
{
    const std::uint64_t seq = fsync_seq_++;
    ++decisions_;
    if (roll(tag_fsync, seq, 1) < plan_.fsync_fail_bp) {
        ++fsync_failures_;
        ++injected_;
        return true;
    }
    return false;
}

bool io_injector::on_rename()
{
    const std::uint64_t seq = rename_seq_++;
    ++decisions_;
    if (roll(tag_rename, seq, 1) < plan_.rename_fail_bp) {
        ++rename_failures_;
        ++injected_;
        return true;
    }
    return false;
}

void io_injector::crash_point(const char* site)
{
    ++crash_ops_;
    if (crash_ops_ == plan_.crash_at) throw crash_error(site);
}

}  // namespace jsk::faults
