// jsk::faults — deterministic fault plans.
//
// A `plan` is a small, fully-serializable description of which adversities a
// simulated run is exposed to: network faults (fetch timeout / connection
// reset / truncated body / latency spikes), worker faults (spawn failure,
// mid-task crash, delayed termination), channel faults (postMessage drop /
// duplicate / delay, always within FIFO-realizable bounds) and bounded skew
// on `performance.now`. Rates are integer basis points (1/10'000) and delays
// are integer virtual nanoseconds, so `str()`/`parse()` round-trip exactly —
// a (seed, plan) pair is a complete, replayable description of the chaos a
// run experienced. The plan itself makes no decisions; `injector` does.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace jsk::faults {

/// Serializable fault-injection configuration. All-zero rates (the default)
/// make `null_plan()` true, and every interposition site treats a null plan
/// as "faults compiled out" (one-branch fast path, mirroring the obs
/// null-sink guard).
struct plan {
    /// Seed for the injector's per-site decision streams. Two injectors with
    /// the same plan (seed included) make identical decisions forever.
    std::uint64_t seed = 1;

    // --- network (consulted once per fetch issue) --------------------------
    std::uint32_t fetch_timeout_bp = 0;  // request never completes; fails late
    std::uint32_t fetch_reset_bp = 0;    // connection reset; fails early
    std::uint32_t fetch_partial_bp = 0;  // truncated body at full latency
    std::uint32_t fetch_spike_bp = 0;    // success, but latency spikes
    sim::time_ns fetch_timeout_after = 250 * sim::ms;
    sim::time_ns fetch_spike = 60 * sim::ms;

    // --- workers (consulted at spawn / terminate) --------------------------
    std::uint32_t worker_spawn_fail_bp = 0;  // script never starts
    std::uint32_t worker_crash_bp = 0;       // engine dies mid-run
    sim::time_ns worker_crash_after = 20 * sim::ms;
    sim::time_ns worker_termination_delay = 0;  // terminate() lands late

    // --- channels (consulted once per postMessage) -------------------------
    std::uint32_t msg_drop_bp = 0;
    std::uint32_t msg_duplicate_bp = 0;
    std::uint32_t msg_delay_bp = 0;
    sim::time_ns msg_delay = 2 * sim::ms;

    // --- clocks ------------------------------------------------------------
    /// Bounded piecewise-linear skew added to performance.now readings.
    /// Amplitude is clamped to period/2 by the injector so the skewed clock
    /// stays monotone.
    sim::time_ns clock_skew_amplitude = 0;
    sim::time_ns clock_skew_period = 5 * sim::ms;

    bool operator==(const plan&) const = default;

    /// True when no rate and no skew is armed — the injector can never fire.
    [[nodiscard]] bool null_plan() const;

    /// True when the plan can destroy state outright (drop messages, kill or
    /// fail workers, time out fetches) rather than merely perturb timing.
    /// Destructive plans are outside the kernel's mediation boundary for
    /// some CVEs (an engine crash is not an API call), so the chaos sweep
    /// scopes its security assertions by this predicate.
    [[nodiscard]] bool destructive() const;

    /// Exact `key=value;` serialization (every field, fixed order).
    [[nodiscard]] std::string str() const;

    /// Inverse of str(). Throws std::invalid_argument on unknown keys or
    /// malformed input.
    static plan parse(const std::string& text);

    // Deterministic plan families, used by the chaos sweep and chaos_cli.
    static plan perturb_only(std::uint64_t seed);   // spikes/delays/dups/skew
    static plan network_chaos(std::uint64_t seed);  // + timeout/reset/partial
    static plan worker_chaos(std::uint64_t seed);   // + spawn-fail/crash/slow-term
    static plan channel_chaos(std::uint64_t seed);  // + drops
    static plan full_chaos(std::uint64_t seed);     // everything at once

    /// Deterministic family walk: index selects both the shape (cycling the
    /// five factories above) and the derived seed, so a sweep over indices
    /// 0..N-1 covers every fault class with distinct decision streams.
    static plan sample(std::uint64_t index);
};

}  // namespace jsk::faults
