#include "faults/plan.h"

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace jsk::faults {
namespace {

std::uint64_t mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

// The codec is a flat key=value list; this table is the single source of
// truth for field order and names, shared by str() and parse().
struct field_ref {
    const char* key;
    std::int64_t (*get)(const plan&);
    void (*set)(plan&, std::int64_t);
};

template <typename T, T plan::* M>
field_ref make_field(const char* key)
{
    return field_ref{
        key,
        [](const plan& p) { return static_cast<std::int64_t>(p.*M); },
        [](plan& p, std::int64_t v) { p.*M = static_cast<T>(v); },
    };
}

const std::vector<field_ref>& fields()
{
    static const std::vector<field_ref> f = {
        make_field<std::uint64_t, &plan::seed>("seed"),
        make_field<std::uint32_t, &plan::fetch_timeout_bp>("fetch_timeout_bp"),
        make_field<std::uint32_t, &plan::fetch_reset_bp>("fetch_reset_bp"),
        make_field<std::uint32_t, &plan::fetch_partial_bp>("fetch_partial_bp"),
        make_field<std::uint32_t, &plan::fetch_spike_bp>("fetch_spike_bp"),
        make_field<sim::time_ns, &plan::fetch_timeout_after>("fetch_timeout_after"),
        make_field<sim::time_ns, &plan::fetch_spike>("fetch_spike"),
        make_field<std::uint32_t, &plan::worker_spawn_fail_bp>("worker_spawn_fail_bp"),
        make_field<std::uint32_t, &plan::worker_crash_bp>("worker_crash_bp"),
        make_field<sim::time_ns, &plan::worker_crash_after>("worker_crash_after"),
        make_field<sim::time_ns, &plan::worker_termination_delay>("worker_termination_delay"),
        make_field<std::uint32_t, &plan::msg_drop_bp>("msg_drop_bp"),
        make_field<std::uint32_t, &plan::msg_duplicate_bp>("msg_duplicate_bp"),
        make_field<std::uint32_t, &plan::msg_delay_bp>("msg_delay_bp"),
        make_field<sim::time_ns, &plan::msg_delay>("msg_delay"),
        make_field<sim::time_ns, &plan::clock_skew_amplitude>("clock_skew_amplitude"),
        make_field<sim::time_ns, &plan::clock_skew_period>("clock_skew_period"),
    };
    return f;
}

}  // namespace

bool plan::null_plan() const
{
    return fetch_timeout_bp == 0 && fetch_reset_bp == 0 && fetch_partial_bp == 0 &&
           fetch_spike_bp == 0 && worker_spawn_fail_bp == 0 && worker_crash_bp == 0 &&
           worker_termination_delay == 0 && msg_drop_bp == 0 && msg_duplicate_bp == 0 &&
           msg_delay_bp == 0 && clock_skew_amplitude == 0;
}

bool plan::destructive() const
{
    return fetch_timeout_bp > 0 || fetch_reset_bp > 0 || fetch_partial_bp > 0 ||
           worker_spawn_fail_bp > 0 || worker_crash_bp > 0 || msg_drop_bp > 0;
}

std::string plan::str() const
{
    std::ostringstream out;
    for (const field_ref& f : fields()) out << f.key << "=" << f.get(*this) << ";";
    return out.str();
}

plan plan::parse(const std::string& text)
{
    plan out;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t semi = text.find(';', pos);
        if (semi == std::string::npos) {
            throw std::invalid_argument("faults::plan::parse: missing ';' terminator");
        }
        const std::string entry = text.substr(pos, semi - pos);
        pos = semi + 1;
        if (entry.empty()) continue;
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos) {
            throw std::invalid_argument("faults::plan::parse: entry without '=': " + entry);
        }
        const std::string key = entry.substr(0, eq);
        const std::string value = entry.substr(eq + 1);
        const field_ref* field = nullptr;
        for (const field_ref& f : fields()) {
            if (key == f.key) {
                field = &f;
                break;
            }
        }
        if (field == nullptr) {
            throw std::invalid_argument("faults::plan::parse: unknown key: " + key);
        }
        char* end = nullptr;
        const long long parsed = std::strtoll(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0') {
            throw std::invalid_argument("faults::plan::parse: bad number for " + key + ": " +
                                        value);
        }
        field->set(out, static_cast<std::int64_t>(parsed));
    }
    return out;
}

plan plan::perturb_only(std::uint64_t seed)
{
    plan p;
    p.seed = seed;
    p.fetch_spike_bp = 1500;
    p.fetch_spike = 40 * sim::ms;
    p.msg_duplicate_bp = 800;
    p.msg_delay_bp = 1500;
    p.msg_delay = 3 * sim::ms;
    p.clock_skew_amplitude = 400 * sim::us;
    p.clock_skew_period = 5 * sim::ms;
    return p;
}

plan plan::network_chaos(std::uint64_t seed)
{
    plan p = perturb_only(seed);
    p.fetch_timeout_bp = 800;
    p.fetch_reset_bp = 800;
    p.fetch_partial_bp = 500;
    p.fetch_timeout_after = 200 * sim::ms;
    return p;
}

plan plan::worker_chaos(std::uint64_t seed)
{
    plan p = perturb_only(seed);
    p.worker_spawn_fail_bp = 1000;
    p.worker_crash_bp = 1000;
    p.worker_crash_after = 15 * sim::ms;
    p.worker_termination_delay = 4 * sim::ms;
    return p;
}

plan plan::channel_chaos(std::uint64_t seed)
{
    plan p = perturb_only(seed);
    p.msg_drop_bp = 700;
    return p;
}

plan plan::full_chaos(std::uint64_t seed)
{
    plan p = network_chaos(seed);
    p.worker_spawn_fail_bp = 600;
    p.worker_crash_bp = 600;
    p.worker_crash_after = 15 * sim::ms;
    p.worker_termination_delay = 4 * sim::ms;
    p.msg_drop_bp = 500;
    return p;
}

plan plan::sample(std::uint64_t index)
{
    const std::uint64_t seed = mix64(index ^ 0xFA017C0DEULL);
    switch (index % 5) {
        case 0: return perturb_only(seed);
        case 1: return network_chaos(seed);
        case 2: return worker_chaos(seed);
        case 3: return channel_chaos(seed);
        default: return full_chaos(seed);
    }
}

}  // namespace jsk::faults
