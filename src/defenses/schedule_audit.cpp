#include "defenses/schedule_audit.h"

#include <stdexcept>

#include "kernel/kernel.h"
#include "workloads/random_program.h"

namespace jsk::defenses {

namespace {

struct audit_run {
    std::string observations;
    jsk::kernel::journal journal;
};

audit_run run_once(std::uint64_t program_seed, sim::explore::controller& ctl)
{
    rt::browser b(rt::chrome_profile());
    ctl.attach(b.sim());
    auto k = jsk::kernel::kernel::boot(b);
    auto log = std::make_shared<workloads::observation_log>();
    workloads::install_random_program(b, program_seed, log);
    b.run_until(60 * sim::sec, 5'000'000);
    // Bookkeeping bound: hooked runs must never feed the unhooked pop queue
    // (it is never drained while a hook is installed, so any entry here is a
    // leak that grows without bound over long explorations).
    if (b.sim().queued_entries() != 0) {
        throw std::logic_error("schedule audit: unhooked queue grew during a hooked run (" +
                               std::to_string(b.sim().queued_entries()) + " entries)");
    }
    return audit_run{log->str(), k->dispatch_journal()};
}

}  // namespace

audit_report audit_schedule_invariance(std::uint64_t program_seed,
                                       std::uint64_t schedules, std::uint64_t walk_seed,
                                       sim::time_ns window)
{
    audit_report report;

    sim::explore::controller reference_ctl({}, sim::explore::controller::tail_policy::first);
    reference_ctl.set_window(window);
    const audit_run reference = run_once(program_seed, reference_ctl);
    ++report.schedules_run;

    for (std::uint64_t walk = 1; walk < schedules; ++walk) {
        sim::explore::controller ctl({}, sim::explore::controller::tail_policy::random,
                                     walk_seed + walk);
        ctl.set_window(window);
        const audit_run run = run_once(program_seed, ctl);
        ++report.schedules_run;

        std::string detail;
        if (run.observations != reference.observations) {
            detail = "observation logs diverge:\n  reference: " + reference.observations +
                     "\n  explored:  " + run.observations;
        } else if (!(run.journal == reference.journal)) {
            detail = reference.journal.diff_description(run.journal);
        }
        if (!detail.empty()) {
            report.identical = false;
            report.detail = std::move(detail);
            auto failing = ctl.decisions();
            failing.trim();
            report.failing = std::move(failing);
            return report;
        }
    }
    return report;
}

}  // namespace jsk::defenses
