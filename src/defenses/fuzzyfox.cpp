#include "defenses/defenses_impl.h"

#include <cmath>

namespace jsk::defenses {

std::string fuzzyfox_defense::name() const { return "fuzzyfox"; }

void fuzzyfox_defense::install(rt::browser& b)
{
    // 1. Fuzz the event loop: every macrotask picks up a random pause.
    auto* rng = &rng_;
    const sim::time_ns max_pause = max_pause_;
    b.set_task_delay_hook([rng, max_pause](sim::time_ns delay, const std::string&) {
        return delay + rng->uniform(0, max_pause);
    });

    // 2. Degrade explicit clocks to a fuzzy grid: quantized, with a fresh
    //    random backdate per reading so edges carry no information (this is
    //    what breaks clock-edge calibration).
    auto& apis = b.main().apis();
    auto native_now = apis.performance_now;  // backup copies
    auto native_date = apis.date_now;
    const double grain_ms = sim::to_ms(clock_grain_);
    apis.performance_now = [rng, native_now, grain_ms] {
        const double t = native_now();
        const double quantized = std::floor(t / grain_ms) * grain_ms;
        return quantized - rng->next_double() * grain_ms;
    };
    apis.date_now = [rng, native_date, grain_ms] {
        const double t = native_date();
        return std::floor(t / grain_ms) * grain_ms - rng->next_double() * grain_ms;
    };
}

}  // namespace jsk::defenses
