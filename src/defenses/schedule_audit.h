// Schedule-invariance audit for the JSKernel defense.
//
// Invariant (a) of the exploration harness: under JSKernel, every explored
// schedule of a program yields an identical kernel journal and observation
// log. The audit runs one seeded random program (workloads/random_program.h)
// under N explored schedules — the default schedule first, then seeded random
// walks — and compares every run against the first. Any divergence comes
// back with the offending decision string, ready for explore::replay and
// explore::shrink.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sim/explore.h"
#include "sim/time.h"

namespace jsk::defenses {

struct audit_report {
    std::uint64_t schedules_run = 0;
    bool identical = true;
    std::string detail;  // journal/observation divergence description
    std::optional<sim::explore::schedule> failing;  // schedule that diverged
};

/// Run the random program `program_seed` under `schedules` explored
/// schedules with JSKernel booted; journals and observation logs must all
/// match the default-schedule reference run.
audit_report audit_schedule_invariance(std::uint64_t program_seed,
                                       std::uint64_t schedules,
                                       std::uint64_t walk_seed = 1,
                                       sim::time_ns window = 0);

}  // namespace jsk::defenses
