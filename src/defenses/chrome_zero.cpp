#include "defenses/defenses_impl.h"

#include <cmath>

namespace jsk::defenses {

std::string chrome_zero_defense::name() const { return "chrome-zero"; }

void chrome_zero_defense::install(rt::browser& b)
{
    // 1. Polyfill workers: the non-parallel replacement of the real Worker —
    //    the functionality price the paper calls out (§IV-B).
    b.set_polyfill_workers(true);

    // 2. Reduced clock precision with fuzz.
    auto& apis = b.main().apis();
    auto* rng = &rng_;
    auto native_now = apis.performance_now;
    auto native_date = apis.date_now;
    const double grain_ms = sim::to_ms(clock_grain_);
    apis.performance_now = [rng, native_now, grain_ms] {
        const double t = std::floor(native_now() / grain_ms) * grain_ms;
        return t - rng->next_double() * grain_ms;
    };
    apis.date_now = [native_date] { return std::floor(native_date() / 100.0) * 100.0; };

    // 3. Every redefined API pays the wrapper cost (closure + policy lookup);
    //    Chrome Zero's per-call overhead is visibly larger than JSKernel's
    //    (Figure 3 / Dromaeo).
    rt::context* ctx = &b.main();
    const sim::time_ns cost = wrapper_cost_;
    const auto charge = [ctx, cost] { ctx->consume(cost); };

    auto native_set_timeout = apis.set_timeout;
    apis.set_timeout = [charge, native_set_timeout](rt::timer_cb cb, sim::time_ns delay) {
        charge();
        return native_set_timeout(std::move(cb), delay);
    };
    auto native_clear_timeout = apis.clear_timeout;
    apis.clear_timeout = [charge, native_clear_timeout](std::int64_t id) {
        charge();
        native_clear_timeout(id);
    };
    auto native_raf = apis.request_animation_frame;
    apis.request_animation_frame = [charge, native_raf](rt::frame_cb cb) {
        charge();
        return native_raf(std::move(cb));
    };
    auto native_fetch = apis.fetch;
    apis.fetch = [charge, native_fetch](const std::string& url, rt::fetch_options options,
                                        rt::fetch_cb then, rt::fetch_cb fail) {
        charge();
        native_fetch(url, std::move(options), std::move(then), std::move(fail));
    };
    auto native_get_attr = apis.get_attribute;
    apis.get_attribute = [charge, native_get_attr](const rt::element_ptr& el,
                                                   const std::string& name) {
        charge();
        return native_get_attr(el, name);
    };
    auto native_set_attr = apis.set_attribute;
    apis.set_attribute = [charge, native_set_attr](const rt::element_ptr& el,
                                                   const std::string& name,
                                                   const std::string& value) {
        charge();
        native_set_attr(el, name, value);
    };
    auto native_create_worker = apis.create_worker;
    apis.create_worker = [charge, native_create_worker](const std::string& src) {
        charge();
        return native_create_worker(src);
    };
    auto native_append = apis.append_child;
    apis.append_child = [charge, native_append](const rt::element_ptr& parent,
                                                const rt::element_ptr& child) {
        charge();
        native_append(parent, child);
    };
}

}  // namespace jsk::defenses
