#include "defenses/defenses_impl.h"

namespace jsk::defenses {

std::string deterfox_defense::name() const { return "deterfox"; }

void deterfox_defense::install(rt::browser& b)
{
    auto st = state_;
    auto& apis = b.main().apis();

    auto native_set_timeout = apis.set_timeout;
    auto native_fetch = apis.fetch;
    auto native_append = apis.append_child;
    rt::browser* browser = &b;

    // Timer callbacks stall while cross-origin loads are in flight; they are
    // released in order once the reference frame quiesces.
    apis.set_timeout = [st, native_set_timeout](rt::timer_cb cb, sim::time_ns delay) {
        return native_set_timeout(
            [st, cb = std::move(cb)] {
                if (st->cross_origin_inflight > 0) {
                    st->stalled.push_back(cb);
                    return;
                }
                cb();
            },
            delay);
    };

    const auto release_if_quiescent = [st, native_set_timeout] {
        if (st->cross_origin_inflight > 0) return;
        auto stalled = std::move(st->stalled);
        st->stalled.clear();
        for (auto& cb : stalled) native_set_timeout(cb, 0);
    };

    apis.fetch = [st, native_fetch, browser, release_if_quiescent](
                     const std::string& url, rt::fetch_options options, rt::fetch_cb then,
                     rt::fetch_cb fail) {
        const rt::resource* res = browser->net().find(url);
        const bool cross = res != nullptr && res->origin != browser->page_origin();
        if (cross) ++st->cross_origin_inflight;
        auto wrap = [st, cross, release_if_quiescent](rt::fetch_cb inner) -> rt::fetch_cb {
            if (!inner && !cross) return inner;
            return [st, cross, release_if_quiescent, inner](const rt::fetch_result& r) {
                if (cross) {
                    --st->cross_origin_inflight;
                    release_if_quiescent();
                }
                if (inner) inner(r);
            };
        };
        native_fetch(url, std::move(options), wrap(std::move(then)), wrap(std::move(fail)));
    };

    apis.append_child = [st, native_append, browser, release_if_quiescent](
                            const rt::element_ptr& parent, const rt::element_ptr& child) {
        const std::string src = child->attribute("src");
        const std::string& tag = child->tag();
        if ((tag == "script" || tag == "img") && !src.empty()) {
            const rt::resource* res = browser->net().find(src);
            const bool cross = res == nullptr || res->origin != browser->page_origin();
            if (cross) {
                ++st->cross_origin_inflight;
                auto user_onload = child->onload;
                auto user_onerror = child->onerror;
                child->onload = [st, release_if_quiescent, user_onload] {
                    --st->cross_origin_inflight;
                    release_if_quiescent();
                    if (user_onload) user_onload();
                };
                child->onerror = [st, release_if_quiescent,
                                  user_onerror](const std::string& e) {
                    --st->cross_origin_inflight;
                    release_if_quiescent();
                    if (user_onerror) user_onerror(e);
                };
            }
        }
        native_append(parent, child);
    };
}

}  // namespace jsk::defenses
