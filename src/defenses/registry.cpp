#include "defenses/defenses_impl.h"

#include <stdexcept>

namespace jsk::defenses {

std::vector<defense_id> all_defense_ids()
{
    return {defense_id::legacy,      defense_id::fuzzyfox,    defense_id::deterfox,
            defense_id::tor_browser, defense_id::chrome_zero, defense_id::jskernel};
}

std::string to_string(defense_id id)
{
    switch (id) {
        case defense_id::legacy: return "legacy";
        case defense_id::fuzzyfox: return "fuzzyfox";
        case defense_id::deterfox: return "deterfox";
        case defense_id::tor_browser: return "tor-browser";
        case defense_id::chrome_zero: return "chrome-zero";
        case defense_id::jskernel: return "jskernel";
    }
    return "unknown";
}

std::unique_ptr<defense> make_defense(defense_id id, std::uint64_t seed)
{
    switch (id) {
        case defense_id::legacy: return std::make_unique<legacy_defense>();
        case defense_id::fuzzyfox: return std::make_unique<fuzzyfox_defense>(seed);
        case defense_id::deterfox: return std::make_unique<deterfox_defense>();
        case defense_id::tor_browser: return std::make_unique<tor_defense>();
        case defense_id::chrome_zero: return std::make_unique<chrome_zero_defense>(seed);
        case defense_id::jskernel: return std::make_unique<jskernel_defense>();
    }
    throw std::invalid_argument("unknown defense id");
}

std::unique_ptr<defense> make_jskernel_defense(jsk::kernel::kernel_options opts)
{
    return std::make_unique<jskernel_defense>(opts);
}

}  // namespace jsk::defenses
