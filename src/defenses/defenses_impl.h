// Concrete defense implementations (internal header shared by the per-
// defense translation units and the registry).
#pragma once

#include <memory>
#include <vector>

#include "defenses/defense.h"
#include "kernel/kernel.h"
#include "sim/rng.h"

namespace jsk::defenses {

class legacy_defense final : public defense {
public:
    [[nodiscard]] std::string name() const override;
    void install(rt::browser& b) override;
};

/// Fuzzyfox (Kohlbrenner & Shacham): fuzz the pace of the event loop with
/// randomized pause time, and degrade explicit clocks to a fuzzy 100 ms grid.
class fuzzyfox_defense final : public defense {
public:
    explicit fuzzyfox_defense(std::uint64_t seed) : rng_(seed) {}
    [[nodiscard]] std::string name() const override;
    void install(rt::browser& b) override;

private:
    sim::rng rng_;
    sim::time_ns max_pause_ = 8 * sim::ms;  // per-task pause fuzz
    sim::time_ns clock_grain_ = 1 * sim::ms;  // fuzzy-clock grain (with backdate)
};

/// DeterFox (Cao et al.): deterministic cross-origin interaction. Simplified
/// faithful mechanism: while a cross-origin resource load is in flight, timer
/// callbacks are stalled, so an implicit setTimeout clock observes a
/// load-size-independent tick count. rAF, the physical clock and the event
/// loop are untouched (its Table I profile).
class deterfox_defense final : public defense {
public:
    [[nodiscard]] std::string name() const override;
    void install(rt::browser& b) override;

private:
    struct state {
        int cross_origin_inflight = 0;
        std::vector<rt::timer_cb> stalled;
    };
    std::shared_ptr<state> state_ = std::make_shared<state>();
};

/// Tor Browser: 100 ms clamped explicit clocks; nothing else.
class tor_defense final : public defense {
public:
    [[nodiscard]] std::string name() const override;
    void install(rt::browser& b) override;

private:
    sim::time_ns clock_grain_ = 100 * sim::ms;
};

/// Chrome Zero (Schwarz et al., "JavaScript Zero"): extension-level API
/// redefinition — reduced clock precision with fuzz, a non-parallel polyfill
/// worker implementation, and a per-call wrapper cost noticeably higher than
/// JSKernel's (Figure 3).
class chrome_zero_defense final : public defense {
public:
    explicit chrome_zero_defense(std::uint64_t seed) : rng_(seed) {}
    [[nodiscard]] std::string name() const override;
    void install(rt::browser& b) override;

private:
    sim::rng rng_;
    sim::time_ns clock_grain_ = 100 * sim::us;
    sim::time_ns wrapper_cost_ = 2 * sim::us;
};

/// JSKernel: boots the kernel (owning it for the browser's lifetime).
class jskernel_defense final : public defense {
public:
    explicit jskernel_defense(jsk::kernel::kernel_options opts = {}) : opts_(opts) {}
    [[nodiscard]] std::string name() const override;
    void install(rt::browser& b) override;

    [[nodiscard]] jsk::kernel::kernel* installed_kernel() { return kernel_.get(); }

private:
    jsk::kernel::kernel_options opts_;
    std::unique_ptr<jsk::kernel::kernel> kernel_;
};

}  // namespace jsk::defenses
