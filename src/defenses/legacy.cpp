// Legacy browsers (Chrome / Firefox / Edge columns): no defense installed.
// The per-browser differences come from the browser_profile the harness
// constructs the browser with.
#include "defenses/defenses_impl.h"

namespace jsk::defenses {

std::string legacy_defense::name() const { return "legacy"; }

void legacy_defense::install(rt::browser&) {}

}  // namespace jsk::defenses
