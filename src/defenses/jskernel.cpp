#include "defenses/defenses_impl.h"

namespace jsk::defenses {

std::string jskernel_defense::name() const { return "jskernel"; }

void jskernel_defense::install(rt::browser& b)
{
    kernel_ = jsk::kernel::kernel::boot(b, opts_);
}

}  // namespace jsk::defenses
