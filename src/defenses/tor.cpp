#include "defenses/defenses_impl.h"

#include <cmath>

namespace jsk::defenses {

std::string tor_defense::name() const { return "tor-browser"; }

void tor_defense::install(rt::browser& b)
{
    auto& apis = b.main().apis();
    auto native_now = apis.performance_now;
    auto native_date = apis.date_now;
    const double grain_ms = sim::to_ms(clock_grain_);
    apis.performance_now = [native_now, grain_ms] {
        return std::floor(native_now() / grain_ms) * grain_ms;
    };
    apis.date_now = [native_date, grain_ms] {
        return std::floor(native_date() / grain_ms) * grain_ms;
    };
}

}  // namespace jsk::defenses
