// The defense comparators of Table I.
//
// Each defense mutates a freshly constructed browser the way the real system
// would: Fuzzyfox and Tor patch clocks/event pacing, DeterFox imposes
// deterministic cross-origin load delivery, Chrome Zero redefines APIs and
// polyfills workers, JSKernel boots the kernel. "Legacy" is the unmodified
// browser (the Chrome/Firefox/Edge columns — pick via browser_profile).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernel/kernel.h"
#include "runtime/browser.h"

namespace jsk::defenses {

enum class defense_id {
    legacy,
    fuzzyfox,
    deterfox,
    tor_browser,
    chrome_zero,
    jskernel,
};

class defense {
public:
    virtual ~defense() = default;
    [[nodiscard]] virtual std::string name() const = 0;

    /// Install onto a fresh browser. Must run before any page activity; a
    /// defense may keep per-browser state alive inside itself, so keep the
    /// defense object alive as long as the browser.
    virtual void install(rt::browser& b) = 0;
};

/// All columns of Table I, in paper order.
std::vector<defense_id> all_defense_ids();

std::string to_string(defense_id id);

/// `seed` feeds the randomized defenses (Fuzzyfox, Chrome Zero's fuzz).
std::unique_ptr<defense> make_defense(defense_id id, std::uint64_t seed = 7);

/// JSKernel with explicit kernel options (ablations).
std::unique_ptr<defense> make_jskernel_defense(jsk::kernel::kernel_options opts);

}  // namespace jsk::defenses
