#include "runtime/profile.h"

#include <stdexcept>

namespace jsk::rt {

browser_profile chrome_profile()
{
    browser_profile p;
    p.name = "chrome";
    p.now_precision = 5 * sim::us;
    p.timer_clamp = 1 * sim::ms;
    p.parse_ns_per_byte = 3.2;
    p.decode_ns_per_pixel = 1.8;
    p.erode_ns_per_pixel = 7.0;
    p.cheap_op_cost = 10 * sim::ns;
    p.worker_spawn_cost = 850 * sim::us;
    return p;
}

browser_profile firefox_profile()
{
    browser_profile p;
    p.name = "firefox";
    // Firefox of the era clamps performance.now to 1 ms (privacy.reduceTimerPrecision).
    p.now_precision = 1 * sim::ms;
    p.timer_clamp = 1 * sim::ms;
    p.parse_ns_per_byte = 3.6;
    p.decode_ns_per_pixel = 2.1;
    p.erode_ns_per_pixel = 6.6;
    p.cheap_op_cost = 12 * sim::ns;
    p.worker_spawn_cost = 1'000 * sim::us;
    p.task_dispatch_cost = 3 * sim::us;
    return p;
}

browser_profile edge_profile()
{
    browser_profile p;
    p.name = "edge";
    p.now_precision = 20 * sim::us;
    p.timer_clamp = 1 * sim::ms;
    p.parse_ns_per_byte = 4.4;
    p.decode_ns_per_pixel = 2.6;
    p.erode_ns_per_pixel = 10.4;  // Edge measures visibly slower in Table II
    p.cheap_op_cost = 14 * sim::ns;
    p.worker_spawn_cost = 1'200 * sim::us;
    p.task_dispatch_cost = 4 * sim::us;
    return p;
}

browser_profile profile_by_name(const std::string& name)
{
    if (name == "chrome") return chrome_profile();
    if (name == "firefox") return firefox_profile();
    if (name == "edge") return edge_profile();
    throw std::invalid_argument("unknown browser profile: " + name);
}

}  // namespace jsk::rt
