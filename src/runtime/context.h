// Execution context: one JavaScript global environment (the main window or a
// worker scope) bound to one simulated thread.
//
// The context owns the interposable api_table, the native implementations
// behind it, its timer table and microtask queue. All macrotask scheduling
// funnels through post_task(), which applies the browser-level task-delay
// hook (how Fuzzyfox injects pause tasks) and the profile's per-task dispatch
// cost.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/api.h"
#include "runtime/js_value.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace jsk::rt {

class browser;
struct worker_link;

enum class context_kind { main, worker, frame };

class context {
public:
    context(browser& owner, std::string name, context_kind kind, sim::thread_id thread);

    context(const context&) = delete;
    context& operator=(const context&) = delete;

    [[nodiscard]] browser& owner() { return *owner_; }
    [[nodiscard]] context_kind kind() const { return kind_; }
    [[nodiscard]] sim::thread_id thread() const { return thread_; }
    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] const std::string& origin() const;

    /// The redefinable API surface. Defenses mutate entries; user scripts may
    /// too (the backup-copy pattern keeps working because std::function
    /// copies capture the then-current definition).
    [[nodiscard]] api_table& apis() { return apis_; }

    /// Lock the trap slots (onmessage setters & friends). Mirrors the
    /// non-configurable properties of §III-B: once a kernel locks its traps,
    /// try_redefine_trap() refuses adversarial re-definition.
    void lock_traps() { traps_locked_ = true; }
    [[nodiscard]] bool traps_locked() const { return traps_locked_; }

    /// Adversarial redefinition attempt of a trap slot. Returns false (and
    /// leaves the slot alone) when traps are locked.
    bool try_redefine_self_onmessage_trap(std::function<void(message_cb)> setter);

    // --- event loop --------------------------------------------------------

    /// Schedule a macrotask `delay` from now on this context's thread.
    /// Microtasks queued during the task are drained at its end.
    sim::task_id post_task(sim::time_ns delay, std::function<void()> fn,
                           std::string label = {});
    void cancel_task(sim::task_id id);

    void queue_microtask(std::function<void()> fn);

    /// Model `cost` nanoseconds of computation (only valid inside a task on
    /// this context's thread).
    void consume(sim::time_ns cost);

    /// Unquantised physical time in ms — internal plumbing and defenses only;
    /// user scripts must go through apis().performance_now.
    [[nodiscard]] double now_ms_raw() const;

    // --- native API implementations -----------------------------------------
    // Stable entry points a defense can keep private copies of.

    std::int64_t native_set_timeout(timer_cb cb, sim::time_ns delay);
    void native_clear_timeout(std::int64_t id);
    std::int64_t native_set_interval(timer_cb cb, sim::time_ns period);
    void native_clear_interval(std::int64_t id);

    std::int64_t native_request_animation_frame(frame_cb cb);
    void native_cancel_animation_frame(std::int64_t id);
    double native_performance_now() const;  // quantised by profile precision
    double native_date_now() const;

    worker_ptr native_create_worker(const std::string& src);
    context* native_create_iframe(const std::string& name);

    void native_post_message_to_parent(js_value data, transfer_list transfer);
    void native_set_self_onmessage(message_cb cb);
    void native_close_self();
    void native_import_scripts(const std::vector<std::string>& urls);

    void native_fetch(const std::string& url, fetch_options options, fetch_cb then,
                      fetch_cb fail);
    void native_abort_fetch(const abort_signal& signal);
    void native_xhr(const std::string& url, fetch_cb done);

    void native_reload();
    void native_play_video(const element_ptr& el, sim::time_ns period);
    void native_set_cue_callback(const element_ptr& el, timer_cb cb);

    element_ptr native_create_element(const std::string& tag);
    void native_append_child(const element_ptr& parent, const element_ptr& child);
    std::string native_get_attribute(const element_ptr& el, const std::string& name);
    void native_set_attribute(const element_ptr& el, const std::string& name,
                              const std::string& value);

    shared_buffer_ptr native_create_shared_buffer(std::size_t slots);
    double native_sab_load(const shared_buffer_ptr& buf, std::size_t index,
                           wm::access acc = {});
    void native_sab_store(const shared_buffer_ptr& buf, std::size_t index, double value,
                          wm::access acc = {});
    double native_atomics_load(const shared_buffer_ptr& buf, std::size_t index);
    void native_atomics_store(const shared_buffer_ptr& buf, std::size_t index,
                              double value);
    double native_atomics_add(const shared_buffer_ptr& buf, std::size_t index,
                              double delta);
    double native_atomics_compare_exchange(const shared_buffer_ptr& buf,
                                           std::size_t index, double expected,
                                           double desired);

    bool native_indexeddb_put(const std::string& db, const std::string& key, js_value value);
    js_value native_indexeddb_get(const std::string& db, const std::string& key);

    // --- worker-side plumbing (used by browser/worker wiring) ---------------

    /// The link back to this context's parent, when kind()==worker.
    void bind_link(std::shared_ptr<worker_link> link) { link_ = std::move(link); }
    [[nodiscard]] const std::shared_ptr<worker_link>& link() const { return link_; }

    /// Deliver a message event to the self.onmessage handler (native path).
    void deliver_self_message(const message_event& event);

    [[nodiscard]] const message_cb& self_onmessage() const { return self_onmessage_; }

    /// Context shutdown (worker terminate / close). Posted tasks of a closed
    /// context no longer run (needed for polyfill workers sharing the main
    /// thread, where the simulated thread itself stays alive).
    void close() { closed_ = true; }
    [[nodiscard]] bool closed() const { return closed_; }

private:
    friend class browser;

    void install_natives();
    void drain_microtasks();

    struct timer_entry {
        sim::task_id task = 0;
        bool interval = false;
        sim::time_ns period = 0;
        timer_cb cb;
        int nesting = 0;
        bool cancelled = false;
    };

    void fire_timer(std::int64_t id);

    browser* owner_;
    std::string name_;
    context_kind kind_;
    sim::thread_id thread_;
    api_table apis_;
    bool traps_locked_ = false;

    std::deque<std::function<void()>> microtasks_;
    bool draining_microtasks_ = false;

    std::unordered_map<std::int64_t, timer_entry> timers_;
    std::int64_t next_timer_id_ = 1;
    int timer_nesting_ = 0;  // current callback's nesting depth

    message_cb self_onmessage_;      // worker scope handler
    std::shared_ptr<worker_link> link_;
    bool closed_ = false;
};

}  // namespace jsk::rt
