// Per-browser parameter sets.
//
// The paper evaluates against Chrome, Firefox and Edge. Their observable
// differences for our purposes are clock precision, timer clamping, and the
// cost coefficients of the operations the attacks time (script parsing, image
// decoding, SVG filtering). Coefficients are calibrated so the benchmark
// harnesses land in the same value ranges the paper's Table II / Table III
// report; the *shape* of results is what the reproduction preserves.
#pragma once

#include <string>

#include "sim/time.h"

namespace jsk::rt {

struct browser_profile {
    std::string name;

    // --- clocks ---
    sim::time_ns now_precision = 5 * sim::us;  // performance.now quantum
    sim::time_ns date_precision = 1 * sim::ms; // Date.now quantum

    // --- event loop / timers ---
    sim::time_ns timer_clamp = 1 * sim::ms;         // minimum setTimeout delay
    sim::time_ns nested_timer_clamp = 4 * sim::ms;  // clamp after 5 nested levels
    sim::time_ns task_dispatch_cost = 2 * sim::us;  // event-loop overhead per task
    sim::time_ns api_call_cost = 150 * sim::ns;     // base web-API invocation cost
    sim::time_ns frame_interval = 16'666'667;       // 60 Hz vsync

    // --- computation cost models ---
    double parse_ns_per_byte = 4.0;       // script parsing
    double decode_ns_per_pixel = 2.0;     // image decoding
    double erode_ns_per_pixel = 8.0;      // SVG feMorphology erode
    sim::time_ns cheap_op_cost = 12 * sim::ns;      // an `i++` in optimised JS
    sim::time_ns subnormal_op_penalty = 180 * sim::ns;  // extra cost per subnormal FLOP
    sim::time_ns dom_op_cost = 400 * sim::ns;       // attribute get/set, appendChild

    // --- workers & messaging ---
    sim::time_ns worker_spawn_cost = 900 * sim::us;
    sim::time_ns message_latency = 12 * sim::us;    // postMessage channel latency
    double message_ns_per_byte = 0.4;               // structured-clone cost

    // --- network ---
    sim::time_ns net_rtt = 18 * sim::ms;
    double net_ns_per_byte = 840.0;  // ~9.5 Mbit/s ADSL, as in the paper's setup
    sim::time_ns cache_hit_latency = 60 * sim::us;

    // --- rendering ---
    sim::time_ns style_layout_cost = 350 * sim::us;  // per frame with dirty layout
    sim::time_ns paint_base_cost = 500 * sim::us;
    sim::time_ns visited_link_paint_delta = 90 * sim::us;  // history-sniffing signal
};

/// The three browsers the JSKernel extension targets.
browser_profile chrome_profile();
browser_profile firefox_profile();
browser_profile edge_profile();

/// Look up by lowercase name ("chrome", "firefox", "edge").
browser_profile profile_by_name(const std::string& name);

}  // namespace jsk::rt
