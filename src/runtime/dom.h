// DOM-lite.
//
// Enough of a document model for the paper's needs: a node tree with
// attributes; <script> and <img> children trigger network loads with
// parse/decode cost models (the DOM-based side channels of van Goethem et
// al.); <a> elements paint differently when their href is a visited link
// (history sniffing); elements can carry an SVG filter whose repaint cost the
// SVG-filtering attack measures; and the whole tree serialises to a token bag
// for the §V-B2 cosine-similarity compatibility experiment.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace jsk::rt {

class element;
using element_ptr = std::shared_ptr<element>;

/// One DOM element. Attribute storage is an ordered map so serialisation is
/// deterministic.
class element {
public:
    explicit element(std::string tag) : tag_(std::move(tag)) {}

    [[nodiscard]] const std::string& tag() const { return tag_; }

    [[nodiscard]] std::string attribute(const std::string& name) const
    {
        auto it = attrs_.find(name);
        return it == attrs_.end() ? std::string{} : it->second;
    }
    void set_attribute_raw(std::string name, std::string value)
    {
        attrs_[std::move(name)] = std::move(value);
    }
    [[nodiscard]] bool has_attribute(const std::string& name) const
    {
        return attrs_.contains(name);
    }

    [[nodiscard]] const std::vector<element_ptr>& children() const { return children_; }
    void add_child_raw(element_ptr child) { children_.push_back(std::move(child)); }

    /// Load callbacks (scripts and images).
    std::function<void()> onload;
    std::function<void(const std::string& error)> onerror;

    /// Text content (inline scripts, labels) counted into the token bag.
    std::string text;

    /// Dirty bit consumed by the renderer: element needs repaint work.
    bool needs_paint = false;

    /// Serialise the subtree: `<tag attr=value ...>children</tag>`.
    [[nodiscard]] std::string serialize() const;

    /// Term-frequency bag over tags, attribute names/values and text tokens.
    void accumulate_tokens(std::unordered_map<std::string, double>& bag) const;

private:
    std::string tag_;
    std::map<std::string, std::string> attrs_;
    std::vector<element_ptr> children_;
};

/// The document: a root element plus bookkeeping the browser uses when
/// wiring loads and paints.
class document {
public:
    document() : root_(std::make_shared<element>("html")) {}

    [[nodiscard]] const element_ptr& root() const { return root_; }

    [[nodiscard]] std::string serialize() const { return root_->serialize(); }

    [[nodiscard]] std::unordered_map<std::string, double> token_bag() const
    {
        std::unordered_map<std::string, double> bag;
        root_->accumulate_tokens(bag);
        return bag;
    }

    /// Count of elements in the tree (tests / workload sanity checks).
    [[nodiscard]] std::size_t element_count() const;

private:
    static std::size_t count_rec(const element& e);
    element_ptr root_;
};

}  // namespace jsk::rt
