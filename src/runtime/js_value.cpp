#include "runtime/js_value.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace jsk::rt {

js_value js_value::get(const std::string& key) const
{
    if (!is_object()) return js_value{};
    const auto& obj = as_object();
    auto it = obj.find(key);
    return it == obj.end() ? js_value{} : it->second;
}

void js_value::set(std::string key, js_value value)
{
    if (!is_object()) throw std::logic_error("js_value::set on non-object");
    as_object()[std::move(key)] = std::move(value);
}

std::size_t js_value::byte_size() const
{
    struct visitor {
        std::size_t operator()(const undefined_t&) const { return 1; }
        std::size_t operator()(const null_t&) const { return 1; }
        std::size_t operator()(bool) const { return 1; }
        std::size_t operator()(double) const { return 8; }
        std::size_t operator()(const std::string& s) const { return s.size(); }
        std::size_t operator()(const std::shared_ptr<js_array>& a) const
        {
            std::size_t acc = 8;
            for (const auto& v : *a) acc += v.byte_size();
            return acc;
        }
        std::size_t operator()(const std::shared_ptr<js_object>& o) const
        {
            std::size_t acc = 8;
            for (const auto& [k, v] : *o) acc += k.size() + v.byte_size();
            return acc;
        }
        std::size_t operator()(const array_buffer_ptr& b) const
        {
            return b ? b->data.size() : 0;
        }
        std::size_t operator()(const shared_buffer_ptr&) const { return 8; }  // by handle
    };
    return std::visit(visitor{}, v_);
}

std::string js_value::to_string() const
{
    struct visitor {
        std::string operator()(const undefined_t&) const { return "undefined"; }
        std::string operator()(const null_t&) const { return "null"; }
        std::string operator()(bool b) const { return b ? "true" : "false"; }
        std::string operator()(double d) const
        {
            // Print integers without a trailing ".000000".
            if (d == static_cast<double>(static_cast<std::int64_t>(d))) {
                return std::to_string(static_cast<std::int64_t>(d));
            }
            std::ostringstream os;
            os << d;
            return os.str();
        }
        std::string operator()(const std::string& s) const { return "\"" + s + "\""; }
        std::string operator()(const std::shared_ptr<js_array>& a) const
        {
            std::string out = "[";
            for (std::size_t i = 0; i < a->size(); ++i) {
                if (i) out += ",";
                out += (*a)[i].to_string();
            }
            return out + "]";
        }
        std::string operator()(const std::shared_ptr<js_object>& o) const
        {
            std::string out = "{";
            bool first = true;
            for (const auto& [k, v] : *o) {
                if (!first) out += ",";
                first = false;
                out += "\"" + k + "\":" + v.to_string();
            }
            return out + "}";
        }
        std::string operator()(const array_buffer_ptr& b) const
        {
            if (!b) return "ArrayBuffer(null)";
            return b->neutered ? "ArrayBuffer(neutered)"
                               : "ArrayBuffer(" + std::to_string(b->data.size()) + ")";
        }
        std::string operator()(const shared_buffer_ptr& b) const
        {
            return "SharedArrayBuffer(" + std::to_string(b ? b->slots.size() : 0) + ")";
        }
    };
    return std::visit(visitor{}, v_);
}

js_value make_object(std::initializer_list<std::pair<const std::string, js_value>> fields)
{
    return js_value{js_object(fields)};
}

namespace {

bool in_transfer(const array_buffer_ptr& buffer, const transfer_list& transfer)
{
    return std::find(transfer.begin(), transfer.end(), buffer) != transfer.end();
}

js_value clone_rec(const js_value& value, const transfer_list& transfer)
{
    struct visitor {
        const transfer_list& transfer;
        js_value operator()(const undefined_t&) const { return js_value{}; }
        js_value operator()(const null_t&) const { return js_value{nullptr}; }
        js_value operator()(bool b) const { return js_value{b}; }
        js_value operator()(double d) const { return js_value{d}; }
        js_value operator()(const std::string& s) const { return js_value{s}; }
        js_value operator()(const std::shared_ptr<js_array>& a) const
        {
            js_array out;
            out.reserve(a->size());
            for (const auto& v : *a) out.push_back(clone_rec(v, transfer));
            return js_value{std::move(out)};
        }
        js_value operator()(const std::shared_ptr<js_object>& o) const
        {
            js_object out;
            for (const auto& [k, v] : *o) out.emplace(k, clone_rec(v, transfer));
            return js_value{std::move(out)};
        }
        js_value operator()(const array_buffer_ptr& b) const
        {
            if (!b) return js_value{array_buffer_ptr{}};
            if (b->neutered) throw std::runtime_error("DataCloneError: buffer is neutered");
            auto copy = std::make_shared<array_buffer>();
            if (in_transfer(b, transfer)) {
                copy->data = std::move(b->data);  // transfer: move and neuter source
                b->data.clear();
                b->neutered = true;
            } else {
                copy->data = b->data;
            }
            return js_value{std::move(copy)};
        }
        js_value operator()(const shared_buffer_ptr& b) const
        {
            return js_value{b};  // shared memory is shared, never copied
        }
    };
    return std::visit(visitor{transfer}, value.raw());
}

}  // namespace

js_value structured_clone(const js_value& value, const transfer_list& transfer)
{
    return clone_rec(value, transfer);
}

}  // namespace jsk::rt
