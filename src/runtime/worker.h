// Web Worker wiring: the parent-side handle, the parent<->child link record,
// and the native worker implementation behind `new Worker(src)`.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "runtime/api.h"

namespace jsk::rt {

class browser;
class context;

/// Shared bookkeeping for one worker pair. Lives as long as either side
/// holds a handle; the browser keeps a registry for liveness queries (several
/// CVE trigger conditions are races against these flags).
struct worker_link {
    std::uint64_t id = 0;
    context* parent = nullptr;
    context* child = nullptr;  // owned by the browser's context list
    std::string src;
    bool script_loaded = false;
    bool alive = true;          // child thread still runs
    bool self_closed = false;   // worker called close()
    bool terminated = false;    // parent called terminate()
    bool terminate_requested = false;  // terminate() called; teardown may lag
    bool crashed = false;       // engine died out from under the worker
    bool passed_transferable = false;  // child sent a transferable ArrayBuffer
    int inflight_to_child = 0;         // posted but not yet delivered
    std::vector<message_event> queued_before_load;  // buffered until import
    message_cb parent_onmessage;       // worker.onmessage on the parent side
    error_cb parent_onerror;
    // Per-direction delivery-time floors. Fault injection may delay a single
    // message, but a later message on the same channel is clamped to at
    // least the previous delivery time, so postMessage ordering stays
    // FIFO-realizable no matter what the injector decides.
    sim::time_ns to_child_floor = 0;
    sim::time_ns to_parent_floor = 0;
};

/// The native (browser-provided) worker handle. Under JSKernel user code
/// never sees this type: it gets a kernel stub instead.
class native_worker final : public worker_handle {
public:
    native_worker(browser& owner, std::shared_ptr<worker_link> link)
        : owner_(&owner), link_(std::move(link))
    {
    }

    void post_message(js_value data, transfer_list transfer) override;
    void set_onmessage(message_cb cb) override;
    void set_onerror(error_cb cb) override;
    /// terminate() semantics (browser::terminate_worker):
    ///  - A task the worker is executing *right now* conceptually runs to
    ///    completion: the simulator charges its full duration to the thread
    ///    (busy_until is already advanced when the task started), so virtual
    ///    time reflects the work; only *queued* tasks are discarded.
    ///  - Queued tasks and undelivered messages are dropped eagerly — the
    ///    slot arena frees their slots and the ready heaps forget the thread
    ///    at destroy_thread() time; in-flight postMessages are accounted
    ///    (messages_in_flight shrinks by the link's inflight count) so no
    ///    bookkeeping leaks.
    ///  - In-flight fetches owned by the dead thread are freed (the
    ///    CVE-2018-5092 window) and announced as fetch_freed.
    ///  - terminate() is idempotent; racing it with self.close() or with an
    ///    in-flight delivery emits the corresponding razor events
    ///    (worker_double_termination / message_after_termination).
    ///  - Under fault injection the engine-side teardown may land a bounded
    ///    virtual-time delay later (plan.worker_termination_delay); the
    ///    handle reports terminated immediately.
    void terminate() override;
    [[nodiscard]] bool alive() const override;
    [[nodiscard]] std::uint64_t id() const override { return link_->id; }

    [[nodiscard]] const std::shared_ptr<worker_link>& link() const { return link_; }

private:
    browser* owner_;
    std::shared_ptr<worker_link> link_;
};

}  // namespace jsk::rt
