// Web Worker wiring: the parent-side handle, the parent<->child link record,
// and the native worker implementation behind `new Worker(src)`.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "runtime/api.h"

namespace jsk::rt {

class browser;
class context;

/// Shared bookkeeping for one worker pair. Lives as long as either side
/// holds a handle; the browser keeps a registry for liveness queries (several
/// CVE trigger conditions are races against these flags).
struct worker_link {
    std::uint64_t id = 0;
    context* parent = nullptr;
    context* child = nullptr;  // owned by the browser's context list
    std::string src;
    bool script_loaded = false;
    bool alive = true;          // child thread still runs
    bool self_closed = false;   // worker called close()
    bool terminated = false;    // parent called terminate()
    bool passed_transferable = false;  // child sent a transferable ArrayBuffer
    int inflight_to_child = 0;         // posted but not yet delivered
    std::vector<message_event> queued_before_load;  // buffered until import
    message_cb parent_onmessage;       // worker.onmessage on the parent side
    error_cb parent_onerror;
};

/// The native (browser-provided) worker handle. Under JSKernel user code
/// never sees this type: it gets a kernel stub instead.
class native_worker final : public worker_handle {
public:
    native_worker(browser& owner, std::shared_ptr<worker_link> link)
        : owner_(&owner), link_(std::move(link))
    {
    }

    void post_message(js_value data, transfer_list transfer) override;
    void set_onmessage(message_cb cb) override;
    void set_onerror(error_cb cb) override;
    void terminate() override;
    [[nodiscard]] bool alive() const override;
    [[nodiscard]] std::uint64_t id() const override { return link_->id; }

    [[nodiscard]] const std::shared_ptr<worker_link>& link() const { return link_; }

private:
    browser* owner_;
    std::shared_ptr<worker_link> link_;
};

}  // namespace jsk::rt
