// A structured-clone value model standing in for JavaScript values.
//
// Web concurrency attacks move data between threads via postMessage; the
// kernel wraps those payloads in an overlay object with a type field
// (§III-E2). This module provides just enough of the JS value universe for
// that machinery: primitives, arrays, string-keyed objects, transferable
// ArrayBuffers, and SharedArrayBuffers (shared by handle, never cloned).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace jsk::rt {

class js_value;

struct undefined_t {
    bool operator==(const undefined_t&) const = default;
};
struct null_t {
    bool operator==(const null_t&) const = default;
};

using js_array = std::vector<js_value>;
// std::map keeps key order deterministic for serialisation and tests.
using js_object = std::map<std::string, js_value>;

/// Transferable binary buffer. Transferring detaches ("neuters") the source,
/// exactly the behaviour CVE-2014-1488's trigger condition depends on.
struct array_buffer {
    std::vector<std::uint8_t> data;
    bool neutered = false;
};

/// Shared memory visible from several contexts at once; reads and writes go
/// through the (interposable) sab_load / sab_store APIs so a kernel can
/// mediate every access (§III-E2).
struct shared_buffer {
    std::vector<double> slots;
    std::uint64_t sab_id = 0;  // world-unique; keys slots for the explorer
};

using array_buffer_ptr = std::shared_ptr<array_buffer>;
using shared_buffer_ptr = std::shared_ptr<shared_buffer>;
using transfer_list = std::vector<array_buffer_ptr>;

/// Tagged union over the supported JS value kinds.
class js_value {
public:
    using storage = std::variant<undefined_t, null_t, bool, double, std::string,
                                 std::shared_ptr<js_array>, std::shared_ptr<js_object>,
                                 array_buffer_ptr, shared_buffer_ptr>;

    js_value() : v_(undefined_t{}) {}
    js_value(std::nullptr_t) : v_(null_t{}) {}
    js_value(bool b) : v_(b) {}
    js_value(double d) : v_(d) {}
    js_value(int i) : v_(static_cast<double>(i)) {}
    js_value(std::int64_t i) : v_(static_cast<double>(i)) {}
    js_value(const char* s) : v_(std::string(s)) {}
    js_value(std::string s) : v_(std::move(s)) {}
    js_value(js_array a) : v_(std::make_shared<js_array>(std::move(a))) {}
    js_value(js_object o) : v_(std::make_shared<js_object>(std::move(o))) {}
    js_value(array_buffer_ptr b) : v_(std::move(b)) {}
    js_value(shared_buffer_ptr b) : v_(std::move(b)) {}

    [[nodiscard]] bool is_undefined() const { return std::holds_alternative<undefined_t>(v_); }
    [[nodiscard]] bool is_null() const { return std::holds_alternative<null_t>(v_); }
    [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
    [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(v_); }
    [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
    [[nodiscard]] bool is_array() const
    {
        return std::holds_alternative<std::shared_ptr<js_array>>(v_);
    }
    [[nodiscard]] bool is_object() const
    {
        return std::holds_alternative<std::shared_ptr<js_object>>(v_);
    }
    [[nodiscard]] bool is_array_buffer() const
    {
        return std::holds_alternative<array_buffer_ptr>(v_);
    }
    [[nodiscard]] bool is_shared_buffer() const
    {
        return std::holds_alternative<shared_buffer_ptr>(v_);
    }

    [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
    [[nodiscard]] double as_number() const { return std::get<double>(v_); }
    [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(v_); }
    [[nodiscard]] js_array& as_array() { return *std::get<std::shared_ptr<js_array>>(v_); }
    [[nodiscard]] const js_array& as_array() const
    {
        return *std::get<std::shared_ptr<js_array>>(v_);
    }
    [[nodiscard]] js_object& as_object() { return *std::get<std::shared_ptr<js_object>>(v_); }
    [[nodiscard]] const js_object& as_object() const
    {
        return *std::get<std::shared_ptr<js_object>>(v_);
    }
    [[nodiscard]] const array_buffer_ptr& as_array_buffer() const
    {
        return std::get<array_buffer_ptr>(v_);
    }
    [[nodiscard]] const shared_buffer_ptr& as_shared_buffer() const
    {
        return std::get<shared_buffer_ptr>(v_);
    }

    /// Object-field access helpers; return undefined for missing keys or
    /// non-object receivers, matching JS property semantics loosely.
    [[nodiscard]] js_value get(const std::string& key) const;
    void set(std::string key, js_value value);

    /// Approximate size in bytes, used by the message-latency model.
    [[nodiscard]] std::size_t byte_size() const;

    /// Deterministic debug/serialisation form (JSON-ish).
    [[nodiscard]] std::string to_string() const;

    [[nodiscard]] const storage& raw() const { return v_; }

private:
    storage v_;
};

/// Convenience object builder: make_object({{"a", 1}, {"b", "x"}}).
js_value make_object(std::initializer_list<std::pair<const std::string, js_value>> fields);

/// Structured clone per the HTML spec, simplified: deep copy of arrays,
/// objects and ArrayBuffers; SharedArrayBuffers are shared by handle; buffers
/// present in `transfer` are moved and the source is neutered. Cloning a
/// neutered buffer throws std::runtime_error (DataCloneError).
js_value structured_clone(const js_value& value, const transfer_list& transfer = {});

}  // namespace jsk::rt
