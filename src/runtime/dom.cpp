#include "runtime/dom.h"

#include <sstream>

namespace jsk::rt {

std::string element::serialize() const
{
    std::ostringstream os;
    os << '<' << tag_;
    for (const auto& [name, value] : attrs_) os << ' ' << name << "=\"" << value << '"';
    os << '>';
    if (!text.empty()) os << text;
    for (const auto& child : children_) os << child->serialize();
    os << "</" << tag_ << '>';
    return os.str();
}

void element::accumulate_tokens(std::unordered_map<std::string, double>& bag) const
{
    bag["tag:" + tag_] += 1.0;
    for (const auto& [name, value] : attrs_) {
        bag["attr:" + name] += 1.0;
        bag["val:" + value] += 1.0;
    }
    if (!text.empty()) {
        std::istringstream is(text);
        std::string word;
        while (is >> word) bag["text:" + word] += 1.0;
    }
    for (const auto& child : children_) child->accumulate_tokens(bag);
}

std::size_t document::count_rec(const element& e)
{
    std::size_t n = 1;
    for (const auto& child : e.children()) n += count_rec(*child);
    return n;
}

std::size_t document::element_count() const { return count_rec(*root_); }

}  // namespace jsk::rt
