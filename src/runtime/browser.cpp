#include "runtime/browser.h"

#include <algorithm>
#include <utility>

#include "faults/injector.h"

namespace jsk::rt {

browser::browser(browser_profile profile, std::uint64_t seed)
    : profile_(std::move(profile)), rng_(seed), net_(profile_)
{
    wmem_.bind(&sim_);
    main_ = &create_context("main", context_kind::main);
    renderer_ = std::make_unique<renderer>(*this, *main_);
}

browser::~browser() = default;

faults::injector* browser::active_faults() const
{
    return (faults_ != nullptr && faults_->enabled()) ? faults_ : nullptr;
}

context& browser::create_context(std::string name, context_kind kind,
                                 sim::thread_id reuse_thread)
{
    const sim::thread_id thread =
        reuse_thread != sim::no_thread ? reuse_thread : sim_.create_thread(name);
    contexts_.push_back(std::make_unique<context>(*this, std::move(name), kind, thread));
    return *contexts_.back();
}

void browser::end_private_session()
{
    private_browsing_ = false;
    const std::size_t survivors = idb_.end_private_session(bugs_.idb_private_mode_persists);
    if (survivors > 0) {
        emit(rt_event{rt_event_kind::indexeddb_persisted_private, main_->thread(), 0,
                      survivors, "", page_origin_, true});
    }
}

void browser::reload_page()
{
    // A real teardown aborts every in-flight request; with a freed request
    // record this is the CVE-2018-5092 use-after-free.
    emit(rt_event{rt_event_kind::page_reload, main_->thread(), 0,
                  static_cast<std::uint64_t>(messages_in_flight_), "", page_origin_,
                  messages_in_flight_ > 0});
    // Fire abort on all in-flight fetches (teardown semantics).
    abort_all_inflight_fetches();
}

void browser::abort_all_inflight_fetches()
{
    for (auto* record : net_.inflight_fetches()) {
        record->aborted = true;
        if (record->signal) record->signal->aborted = true;
        emit(rt_event{rt_event_kind::fetch_aborted, record->owner, 0, record->id, record->url,
                      page_origin_, record->freed});
    }
}

void browser::abort_fetches_with(const abort_signal& signal)
{
    if (!signal) return;
    signal->aborted = true;
    for (auto* record : net_.fetches_with(signal)) {
        if (record->completed || record->aborted) continue;
        record->aborted = true;
        emit(rt_event{rt_event_kind::fetch_aborted, record->owner, 0, record->id, record->url,
                      page_origin_, record->freed});
    }
}

// --- workers ---------------------------------------------------------------

void browser::register_worker_script(std::string src, worker_script body)
{
    scripts_[std::move(src)] = std::move(body);
}

const browser::worker_script* browser::find_worker_script(const std::string& src) const
{
    auto it = scripts_.find(src);
    return it == scripts_.end() ? nullptr : &it->second;
}

worker_ptr browser::spawn_worker(context& parent, const std::string& src)
{
    auto link = std::make_shared<worker_link>();
    link->id = next_worker_id_++;
    link->parent = &parent;
    link->src = src;

    const sim::thread_id thread = polyfill_workers_
                                      ? parent.thread()  // Chrome Zero: no real thread
                                      : sim_.create_thread("worker:" + src);
    context& child = create_context("worker:" + src, context_kind::worker, thread);
    link->child = &child;
    child.bind_link(link);
    links_.push_back(link);

    emit(rt_event{rt_event_kind::worker_created, parent.thread(), 0, link->id, src,
                  page_origin_, polyfill_workers_});

    if (faults::injector* fi = active_faults(); fi != nullptr && !polyfill_workers_) {
        if (fi->on_worker_spawn()) {
            // The engine never starts the worker: surface an async error on
            // the parent and tear the half-built thread down at the time the
            // script import would have begun.
            const auto weak = std::weak_ptr<worker_link>(link);
            sim_.post(
                parent.thread(), sim_.now() + profile_.worker_spawn_cost,
                [this, weak] {
                    if (auto strong = weak.lock()) fail_worker_spawn(strong);
                },
                "worker-spawn-fail:" + src);
            return std::make_shared<native_worker>(*this, std::move(link));
        }
        if (const sim::time_ns crash_after = fi->worker_crash_delay(); crash_after > 0) {
            // Doomed from birth, but the crash lands at an arbitrary later
            // virtual time — possibly mid-task. Scheduled on the parent
            // thread so it survives the child thread's destruction.
            const auto weak = std::weak_ptr<worker_link>(link);
            sim_.post(
                parent.thread(), sim_.now() + crash_after,
                [this, weak] {
                    if (auto strong = weak.lock()) crash_worker(*strong);
                },
                "worker-crash:" + src);
        }
    }

    // Spawn cost + script import happen asynchronously on the child thread.
    const auto weak = std::weak_ptr<worker_link>(link);
    child.post_task(
        profile_.worker_spawn_cost,
        [this, weak] {
            if (auto strong = weak.lock()) import_worker_script(strong);
        },
        "worker-spawn:" + src);

    return std::make_shared<native_worker>(*this, std::move(link));
}

void browser::fail_worker_spawn(const std::shared_ptr<worker_link>& link)
{
    if (!link->alive || link->terminated || link->crashed) return;
    link->crashed = true;
    link->alive = false;
    emit(rt_event{rt_event_kind::worker_crashed, link->parent->thread(), 0, link->id,
                  link->src, page_origin_, false});
    // Messages posted before the failure became visible would have been
    // buffered until import; they die here, so settle the in-flight ledger.
    messages_in_flight_ -= link->inflight_to_child;
    link->inflight_to_child = 0;
    link->queued_before_load.clear();
    fire_worker_error(*link, "worker spawn failure: " + link->src,
                      bugs_.leaky_worker_error_messages);
    if (link->child != nullptr) {
        link->child->close();
        sim_.destroy_thread(link->child->thread());
    }
}

void browser::crash_worker(worker_link& link)
{
    if (!link.alive || link.terminated || link.crashed || link.self_closed ||
        polyfill_workers_) {
        return;
    }
    const bool mid_task = link.child != nullptr &&
                          sim_.thread_alive(link.child->thread()) &&
                          sim_.busy_until(link.child->thread()) > sim_.now();
    link.crashed = true;
    link.alive = false;
    emit(rt_event{rt_event_kind::worker_crashed, link.parent->thread(), 0, link.id, link.src,
                  page_origin_, mid_task});
    messages_in_flight_ -= link.inflight_to_child;
    link.inflight_to_child = 0;
    fire_worker_error(link, "worker crashed: " + link.src,
                      bugs_.leaky_worker_error_messages);
    if (link.child != nullptr) {
        link.child->close();
        // The engine frees whatever the dead thread owned: queued tasks die
        // with destroy_thread, in-flight fetches are freed exactly like a
        // terminate-side teardown (the CVE-2018-5092 window — a crash is an
        // engine event the kernel cannot mediate).
        for (const std::uint64_t fetch_id : net_.free_fetches_of(link.child->thread())) {
            emit(rt_event{rt_event_kind::fetch_freed, link.child->thread(), 0, fetch_id, "",
                          page_origin_, true});
        }
        sim_.destroy_thread(link.child->thread());
    }
}

void browser::import_worker_script(const std::shared_ptr<worker_link>& link)
{
    if (!link->alive || link->child == nullptr) return;
    const worker_script* body = find_worker_script(link->src);
    if (body == nullptr) {
        fire_worker_error(*link, "failed to load worker script: " + link->src,
                          bugs_.leaky_worker_error_messages);
        return;
    }
    const resource* res = net_.find(link->src);
    if (res != nullptr) {
        link->child->consume(static_cast<sim::time_ns>(static_cast<double>(res->bytes) *
                                                       profile_.parse_ns_per_byte));
    }
    (*body)(*link->child);
    link->script_loaded = true;
    emit(rt_event{rt_event_kind::worker_script_imported, link->child->thread(), 0, link->id,
                  link->src, page_origin_, false});
    // Flush any messages that arrived before the script had run.
    std::vector<message_event> buffered;
    buffered.swap(link->queued_before_load);
    for (auto& event : buffered) {
        emit(rt_event{rt_event_kind::message_delivered, link->child->thread(), 0, link->id,
                      "", page_origin_, false});
        link->child->deliver_self_message(event);
    }
}

void browser::terminate_worker(worker_link& link)
{
    if (link.terminated || link.crashed) return;
    if (faults::injector* fi = active_faults();
        fi != nullptr && !polyfill_workers_ && !link.terminate_requested) {
        if (const sim::time_ns delay = fi->termination_delay(); delay > 0) {
            // Delayed termination: terminate() returns to the caller at once
            // but the engine-side teardown lands a bounded virtual-time
            // delay later. Applied once per link.
            link.terminate_requested = true;
            std::shared_ptr<worker_link> strong;
            for (const auto& candidate : links_) {
                if (candidate.get() == &link) {
                    strong = candidate;
                    break;
                }
            }
            const auto weak = std::weak_ptr<worker_link>(strong);
            sim_.post(
                main_->thread(), sim_.now() + delay,
                [this, weak] {
                    if (auto locked = weak.lock()) terminate_worker_now(*locked);
                },
                "worker-terminate-delayed");
            return;
        }
    }
    link.terminate_requested = true;
    terminate_worker_now(link);
}

void browser::terminate_worker_now(worker_link& link)
{
    if (link.terminated || link.crashed) return;
    if (link.self_closed && !polyfill_workers_) {
        // terminate() raced with self.close(): double-termination (modelled
        // CVE-2010-4576 trigger condition).
        emit(rt_event{rt_event_kind::worker_double_termination, main_->thread(), 0, link.id,
                      link.src, page_origin_, true});
    }
    if (link.child != nullptr && !polyfill_workers_ &&
        sim_.thread_alive(link.child->thread()) &&
        sim_.busy_until(link.child->thread()) > sim_.now()) {
        // Termination landed while the worker was mid-dispatch (CVE-2014-1719).
        emit(rt_event{rt_event_kind::terminate_during_dispatch, main_->thread(), 0, link.id,
                      link.src, page_origin_, true});
    }
    if (link.inflight_to_child > 0 && !polyfill_workers_) {
        // Messages still in flight are dispatched into a worker the engine is
        // tearing down concurrently (modelled CVE-2014-3194). The delivery
        // tasks themselves die with the thread.
        emit(rt_event{rt_event_kind::message_after_termination, main_->thread(), 0, link.id,
                      link.src, page_origin_, true});
        messages_in_flight_ -= link.inflight_to_child;
        link.inflight_to_child = 0;
    }
    link.terminated = true;
    link.alive = false;
    if (link.child != nullptr) {
        link.child->close();
        if (!polyfill_workers_) {
            // Any fetch the worker still has in flight is freed by the engine
            // — the "false termination" precondition of CVE-2018-5092. A
            // polyfill worker has no engine-level teardown (and shares the
            // main thread), so nothing is freed there.
            for (const std::uint64_t fetch_id :
                 net_.free_fetches_of(link.child->thread())) {
                emit(rt_event{rt_event_kind::fetch_freed, link.child->thread(), 0, fetch_id,
                              "", page_origin_, true});
            }
            sim_.destroy_thread(link.child->thread());
        }
    }
    emit(rt_event{rt_event_kind::worker_terminated, main_->thread(), 0, link.id, link.src,
                  page_origin_, link.passed_transferable});
}

void browser::worker_self_close(context& worker_ctx)
{
    const auto& link = worker_ctx.link();
    if (!link || link->self_closed) return;
    link->self_closed = true;
    link->alive = false;
    worker_ctx.close();
    emit(rt_event{rt_event_kind::worker_self_closed, worker_ctx.thread(), 0, link->id,
                  link->src, page_origin_, false});
    if (!polyfill_workers_) sim_.destroy_thread(worker_ctx.thread());
}

void browser::post_to_child(worker_link& link, js_value data, transfer_list transfer)
{
    js_value cloned = structured_clone(data, transfer);
    const sim::time_ns clone_cost = static_cast<sim::time_ns>(
        static_cast<double>(cloned.byte_size()) * profile_.message_ns_per_byte);
    charge(clone_cost);
    emit(rt_event{rt_event_kind::message_posted, link.parent->thread(), 0, link.id, "",
                  page_origin_, false});
    context* child = link.child;
    const std::uint64_t link_id = link.id;
    auto* self = this;
    // Posts into a torn-down (or tearing-down) worker vanish at the source:
    // the child context pointer outlives its thread, so without this guard
    // the in-flight ledger would charge deliveries that can never run.
    if (child == nullptr || !link.alive || link.terminate_requested) return;
    ++messages_in_flight_;
    ++link.inflight_to_child;
    // Deliver on the child thread after channel latency.
    sim::time_ns when = sim_.now() + profile_.message_latency;
    bool dropped = false;
    int copies = 1;
    if (faults::injector* fi = active_faults(); fi != nullptr && !polyfill_workers_) {
        const auto decision = fi->on_message();
        switch (decision.kind) {
            case faults::injector::msg_fault::drop: dropped = true; break;
            case faults::injector::msg_fault::duplicate: copies = 2; break;
            case faults::injector::msg_fault::delay: when += decision.delay; break;
            case faults::injector::msg_fault::none: break;
        }
        // FIFO-realizable bound: whatever the injector decided, this message
        // may not land before an earlier one on the same direction.
        when = std::max(when, link.to_child_floor);
        link.to_child_floor = when;
    }
    if (dropped) {
        emit(rt_event{rt_event_kind::message_dropped, link.parent->thread(), 0, link.id, "",
                      page_origin_, false});
        // The payload vanishes in transit; the ledger still settles at the
        // would-be delivery time so messages_in_flight() stays exact.
        sim_.post(
            child->thread(), when,
            [self, child] {
                --self->messages_in_flight_;
                if (auto link_ptr = child->link()) --link_ptr->inflight_to_child;
            },
            "onmessage-drop");
        return;
    }
    if (copies == 2) {
        // Duplicated in transit: two deliveries, both accounted.
        ++messages_in_flight_;
        ++link.inflight_to_child;
    }
    for (int copy = 0; copy < copies; ++copy) {
        sim_.post(
            child->thread(), when,
            [self, child, link_id, data = cloned] {
                --self->messages_in_flight_;
                auto link_ptr = child->link();
                if (!link_ptr) return;
                --link_ptr->inflight_to_child;
                if (!link_ptr->alive) return;  // JS-level drop (polyfill workers)
                if (!link_ptr->script_loaded) {
                    // Real browsers buffer messages until the worker script ran.
                    link_ptr->queued_before_load.push_back(
                        message_event{data, self->page_origin_, false});
                    return;
                }
                self->charge(self->profile_.task_dispatch_cost);
                self->emit(rt_event{rt_event_kind::message_delivered, child->thread(), 0,
                                    link_id, "", self->page_origin_, false});
                child->deliver_self_message(message_event{data, self->page_origin_, false});
            },
            "onmessage");
    }
}

void browser::post_to_parent(context& child, js_value data, transfer_list transfer)
{
    const auto& link = child.link();
    if (!link) return;
    const bool has_transfer = !transfer.empty();
    js_value cloned = structured_clone(data, transfer);
    const sim::time_ns clone_cost = static_cast<sim::time_ns>(
        static_cast<double>(cloned.byte_size()) * profile_.message_ns_per_byte);
    charge(clone_cost);
    if (has_transfer) link->passed_transferable = true;
    emit(rt_event{rt_event_kind::message_posted, child.thread(), 0, link->id, "",
                  page_origin_, false});
    ++messages_in_flight_;

    const auto weak = std::weak_ptr<worker_link>(link);
    sim::time_ns when = sim_.now() + profile_.message_latency;
    auto* self = this;
    bool dropped = false;
    int copies = 1;
    if (faults::injector* fi = active_faults(); fi != nullptr && !polyfill_workers_) {
        const auto decision = fi->on_message();
        switch (decision.kind) {
            case faults::injector::msg_fault::drop: dropped = true; break;
            case faults::injector::msg_fault::duplicate: copies = 2; break;
            case faults::injector::msg_fault::delay: when += decision.delay; break;
            case faults::injector::msg_fault::none: break;
        }
        when = std::max(when, link->to_parent_floor);
        link->to_parent_floor = when;
    }
    if (dropped) {
        emit(rt_event{rt_event_kind::message_dropped, child.thread(), 0, link->id, "",
                      page_origin_, false});
        sim_.post(
            link->parent->thread(), when, [self] { --self->messages_in_flight_; },
            "worker.onmessage-drop");
        return;
    }
    if (copies == 2) ++messages_in_flight_;
    for (int copy = 1; copy < copies; ++copy) {
        sim_.post(
            link->parent->thread(), when,
            [self, weak, data = cloned] {
                --self->messages_in_flight_;
                auto link_ptr = weak.lock();
                if (!link_ptr) return;
                self->charge(self->profile_.task_dispatch_cost);
                self->emit(rt_event{rt_event_kind::message_delivered,
                                    link_ptr->parent->thread(), 0, link_ptr->id, "",
                                    self->page_origin_, false});
                if (link_ptr->parent_onmessage) {
                    link_ptr->parent_onmessage(
                        message_event{data, self->page_origin_, false});
                }
            },
            "worker.onmessage");
    }
    sim_.post(
        link->parent->thread(), when,
        [self, weak, has_transfer, data = std::move(cloned)] {
            --self->messages_in_flight_;
            auto link_ptr = weak.lock();
            if (!link_ptr) return;
            self->charge(self->profile_.task_dispatch_cost);
            self->emit(rt_event{rt_event_kind::message_delivered,
                                link_ptr->parent->thread(), 0, link_ptr->id, "",
                                self->page_origin_, false});
            if (has_transfer) {
                // A transferable arriving after its sender was torn down uses
                // memory the engine already freed (CVE-2014-1488). A polyfill
                // worker has no engine-side backing store to free.
                self->emit(rt_event{rt_event_kind::transferable_received,
                                    link_ptr->parent->thread(), 0, link_ptr->id, "",
                                    self->page_origin_,
                                    !link_ptr->alive && !self->polyfill_workers_});
            }
            if (link_ptr->parent_onmessage) {
                link_ptr->parent_onmessage(
                    message_event{data, self->page_origin_, false});
            }
        },
        "worker.onmessage");
}

void browser::fire_worker_error(worker_link& link, const std::string& raw_message,
                                bool leaks_cross_origin)
{
    std::string message = raw_message;
    bool leaks = leaks_cross_origin;
    if (sanitizer_) {
        message = sanitizer_(raw_message);
        leaks = false;  // sanitised before any page handler can observe it
    }
    emit(rt_event{rt_event_kind::worker_error_event, link.parent->thread(), 0, link.id,
                  link.src, page_origin_, leaks});
    if (link.parent_onerror) {
        auto cb = link.parent_onerror;
        sim_.post(link.parent->thread(), sim_.now() + profile_.message_latency,
                  [cb, message] { cb(message); }, "worker.onerror");
    }
}

}  // namespace jsk::rt
