// Network and HTTP-cache model.
//
// Resources are registered up front (url -> size/origin/kind). A request
// costs RTT + size/bandwidth on a miss and `cache_hit_latency` on a hit —
// the asymmetry the cache attack [7] and the DOM-based side channels [8]
// measure. Fetches are abortable; the interplay of abort with worker
// termination reproduces CVE-2018-5092's trigger condition.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runtime/profile.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace jsk::rt {

enum class resource_kind { script, image, document, data, media };

struct resource {
    std::string url;
    std::string origin;
    resource_kind kind = resource_kind::data;
    std::size_t bytes = 0;
    std::uint32_t width = 0;   // images only
    std::uint32_t height = 0;  // images only
    sim::time_ns server_latency = 0;  // extra server think time
};

/// Shared abort flag behind an AbortController/AbortSignal pair.
struct abort_signal_state {
    bool aborted = false;
};
using abort_signal = std::shared_ptr<abort_signal_state>;

struct abort_controller {
    abort_controller() : signal(std::make_shared<abort_signal_state>()) {}
    void abort() const { signal->aborted = true; }
    abort_signal signal;
};

/// Why a fetch did not produce a body. `none` means it succeeded (or is
/// still in flight). timeout/reset/partial come from fault injection
/// (jsk::faults) or, in principle, any future network model; they are the
/// retryable class — the request can be re-issued. aborted and blocked are
/// caller decisions and are final.
enum class fetch_error : std::uint8_t { none, aborted, timeout, reset, partial, blocked };

inline const char* to_string(fetch_error e)
{
    switch (e) {
        case fetch_error::none: return "none";
        case fetch_error::aborted: return "aborted";
        case fetch_error::timeout: return "timeout";
        case fetch_error::reset: return "reset";
        case fetch_error::partial: return "partial";
        case fetch_error::blocked: return "blocked";
    }
    return "?";
}

/// Book-keeping for one in-flight fetch. `freed` models the browser freeing
/// the request object when its owner thread dies while the request is still
/// in flight (the CVE-2018-5092 use-after-free window). A failed fetch
/// (timeout/reset/partial) keeps its record with `failed` set and the error
/// cause, so tests and monitors can audit the failure path.
struct fetch_record {
    std::uint64_t id = 0;
    std::string url;
    sim::thread_id owner = sim::no_thread;
    abort_signal signal;
    bool completed = false;
    bool aborted = false;
    bool freed = false;
    bool failed = false;
    fetch_error error = fetch_error::none;
};

class network {
public:
    explicit network(const browser_profile& profile) : profile_(&profile) {}

    /// Register (or replace) a resource the simulated web serves.
    void serve(resource res) { resources_[res.url] = std::move(res); }

    [[nodiscard]] const resource* find(const std::string& url) const
    {
        auto it = resources_.find(url);
        return it == resources_.end() ? nullptr : &it->second;
    }

    /// Transfer latency for `url` given current cache state; also updates the
    /// cache (a completed fetch populates it). Unknown URLs behave like tiny
    /// 404 documents.
    sim::time_ns request_latency(const std::string& url)
    {
        const resource* res = find(url);
        const std::size_t bytes = res ? res->bytes : 512;
        const sim::time_ns think = res ? res->server_latency : 0;
        if (cache_.contains(url)) return profile_->cache_hit_latency;
        cache_.insert(url);
        return profile_->net_rtt + think +
               static_cast<sim::time_ns>(static_cast<double>(bytes) * profile_->net_ns_per_byte);
    }

    [[nodiscard]] bool cached(const std::string& url) const { return cache_.contains(url); }
    void evict(const std::string& url) { cache_.erase(url); }
    void flush_cache() { cache_.clear(); }
    void prime_cache(const std::string& url) { cache_.insert(url); }

    // --- fetch records -----------------------------------------------------
    fetch_record& start_fetch(std::string url, sim::thread_id owner, abort_signal signal)
    {
        const std::uint64_t id = next_fetch_id_++;
        auto& rec = fetches_[id];
        rec = fetch_record{id, std::move(url), owner, std::move(signal), false, false, false};
        return rec;
    }

    fetch_record* find_fetch(std::uint64_t id)
    {
        auto it = fetches_.find(id);
        return it == fetches_.end() ? nullptr : &it->second;
    }

    /// All fetches that have not settled (completed, failed, or aborted) yet.
    /// A failed fetch's connection is already torn down — it has no engine
    /// resources left for a teardown to free or an abort to reach.
    std::vector<fetch_record*> inflight_fetches()
    {
        std::vector<fetch_record*> out;
        for (auto& [id, rec] : fetches_) {
            if (!rec.completed && !rec.failed && !rec.aborted) out.push_back(&rec);
        }
        return out;
    }

    /// In-flight fetches bound to a specific abort signal.
    std::vector<fetch_record*> fetches_with(const abort_signal& signal)
    {
        std::vector<fetch_record*> out;
        for (auto& [id, rec] : fetches_) {
            if (rec.signal == signal) out.push_back(&rec);
        }
        return out;
    }

    /// Mark every in-flight fetch owned by `thread` as freed (its owner died).
    /// Returns the ids affected.
    std::vector<std::uint64_t> free_fetches_of(sim::thread_id thread)
    {
        std::vector<std::uint64_t> freed;
        for (auto& [id, rec] : fetches_) {
            if (rec.owner == thread && !rec.completed && !rec.failed && !rec.freed) {
                rec.freed = true;
                freed.push_back(id);
            }
        }
        return freed;
    }

private:
    const browser_profile* profile_;
    std::unordered_map<std::string, resource> resources_;
    std::unordered_set<std::string> cache_;
    std::unordered_map<std::uint64_t, fetch_record> fetches_;
    std::uint64_t next_fetch_id_ = 1;
};

}  // namespace jsk::rt
