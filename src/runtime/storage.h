// Browser-local storage models: indexedDB (with private-browsing semantics
// relevant to CVE-2017-7843) and the visited-link store (history sniffing).
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "runtime/js_value.h"

namespace jsk::rt {

/// indexedDB-lite: named databases of key->value records. The private-mode
/// bug in CVE-2017-7843 is that data written during private browsing is not
/// deleted when the session ends; we reproduce that by keeping private-mode
/// writes in the same backing store unless the caller purges them.
class indexed_db {
public:
    void put(const std::string& db, const std::string& key, js_value value, bool private_mode)
    {
        stores_[db][key] = std::move(value);
        if (private_mode) private_writes_[db].insert(key);
    }

    [[nodiscard]] js_value get(const std::string& db, const std::string& key) const
    {
        auto sit = stores_.find(db);
        if (sit == stores_.end()) return js_value{};
        auto it = sit->second.find(key);
        return it == sit->second.end() ? js_value{} : it->second;
    }

    [[nodiscard]] bool has(const std::string& db, const std::string& key) const
    {
        auto sit = stores_.find(db);
        return sit != stores_.end() && sit->second.contains(key);
    }

    /// End a private session. The *correct* behaviour deletes private-mode
    /// writes; the buggy behaviour (the CVE) leaves them behind. Returns the
    /// number of records that survived the session end.
    std::size_t end_private_session(bool buggy)
    {
        std::size_t survivors = 0;
        for (auto& [db, keys] : private_writes_) {
            for (const auto& key : keys) {
                if (buggy) {
                    if (stores_[db].contains(key)) ++survivors;
                } else {
                    stores_[db].erase(key);
                }
            }
        }
        private_writes_.clear();
        return survivors;
    }

private:
    std::unordered_map<std::string, std::map<std::string, js_value>> stores_;
    std::unordered_map<std::string, std::unordered_set<std::string>> private_writes_;
};

/// Visited-link store: the renderer paints :visited links differently, which
/// the history-sniffing attack times.
class history_store {
public:
    void mark_visited(const std::string& url) { visited_.insert(url); }
    [[nodiscard]] bool visited(const std::string& url) const { return visited_.contains(url); }

private:
    std::unordered_set<std::string> visited_;
};

}  // namespace jsk::rt
