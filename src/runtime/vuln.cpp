#include "runtime/vuln.h"

#include <unordered_set>

#include "obs/trace.h"

namespace jsk::rt {

namespace {

/// Monitor firing on a single event kind, optionally requiring detail_flag.
class simple_monitor final : public cve_monitor {
public:
    simple_monitor(std::string id, std::string description, rt_event_kind kind,
                   bool require_flag)
        : cve_monitor(std::move(id), std::move(description)),
          kind_(kind),
          require_flag_(require_flag)
    {
    }

    void observe(const rt_event& event) override
    {
        if (event.kind == kind_ && (!require_flag_ || event.detail_flag)) fire();
    }

private:
    rt_event_kind kind_;
    bool require_flag_;
};

/// CVE-2018-5092: a fetch is freed by a false worker termination, then an
/// abort signal reaches the freed request (use-after-free).
class cve_2018_5092 final : public cve_monitor {
public:
    cve_2018_5092()
        : cve_monitor("CVE-2018-5092",
                      "use-after-free: abort signal delivered to a fetch freed by a "
                      "false worker termination")
    {
    }

    void observe(const rt_event& event) override
    {
        if (event.kind == rt_event_kind::fetch_freed) freed_.insert(event.subject_id);
        if (event.kind == rt_event_kind::fetch_aborted &&
            (event.detail_flag || freed_.contains(event.subject_id))) {
            fire();
        }
    }

private:
    std::unordered_set<std::uint64_t> freed_;
};

/// CVE-2017-7843: indexedDB written during private browsing persists after
/// the private session ends.
class cve_2017_7843 final : public cve_monitor {
public:
    cve_2017_7843()
        : cve_monitor("CVE-2017-7843",
                      "private-browsing indexedDB access persists after session end")
    {
    }

    void observe(const rt_event& event) override
    {
        if (event.kind == rt_event_kind::indexeddb_access && event.detail_flag) {
            accessed_in_private_ = true;
        }
        if (event.kind == rt_event_kind::indexeddb_persisted_private && accessed_in_private_) {
            fire();
        }
    }

private:
    bool accessed_in_private_ = false;
};

/// CVE-2013-6646: page reload tears down the document while workers are
/// alive with messages still in flight (use-after-free during shutdown).
class cve_2013_6646 final : public cve_monitor {
public:
    cve_2013_6646()
        : cve_monitor("CVE-2013-6646",
                      "reload with live workers and in-flight messages races document "
                      "teardown (modelled from NVD description)")
    {
    }

    void observe(const rt_event& event) override
    {
        if (event.kind == rt_event_kind::worker_created && !event.detail_flag) {
            // detail_flag marks polyfill workers: no engine thread to race.
            live_workers_.insert(event.subject_id);
        }
        if (event.kind == rt_event_kind::worker_terminated ||
            event.kind == rt_event_kind::worker_self_closed) {
            live_workers_.erase(event.subject_id);
        }
        if (event.kind == rt_event_kind::page_reload && event.detail_flag &&
            !live_workers_.empty()) {
            fire();
        }
    }

private:
    std::unordered_set<std::uint64_t> live_workers_;
};

}  // namespace

std::uint32_t monitor_watch_mask(rt_event_kind kind)
{
    // Slot numbers mirror the push order in the vuln_registry constructor
    // below; the static_assert-style cross-check lives in tests/explore.
    switch (kind) {
        case rt_event_kind::fetch_freed:
        case rt_event_kind::fetch_aborted:
            return 1u << 0;  // CVE-2018-5092
        case rt_event_kind::indexeddb_access:
        case rt_event_kind::indexeddb_persisted_private:
            return 1u << 1;  // CVE-2017-7843
        case rt_event_kind::import_scripts_error:
            return 1u << 2;  // CVE-2015-7215
        case rt_event_kind::message_after_termination:
            return 1u << 3;  // CVE-2014-3194
        case rt_event_kind::terminate_during_dispatch:
            return 1u << 4;  // CVE-2014-1719
        case rt_event_kind::transferable_received:
            return 1u << 5;  // CVE-2014-1488
        case rt_event_kind::worker_error_event:
            return 1u << 6;  // CVE-2014-1487
        case rt_event_kind::worker_created:
        case rt_event_kind::worker_terminated:
        case rt_event_kind::worker_self_closed:
        case rt_event_kind::page_reload:
            return 1u << 7;  // CVE-2013-6646 (worker lifecycle vs reload)
        case rt_event_kind::worker_onmessage_assigned:
            return 1u << 8;  // CVE-2013-5602
        case rt_event_kind::xhr_request:
            return 1u << 9;  // CVE-2013-1714
        case rt_event_kind::cross_origin_script_imported:
            return 1u << 10;  // CVE-2011-1190
        case rt_event_kind::worker_double_termination:
            return 1u << 11;  // CVE-2010-4576
        default:
            return 0;  // no monitor consumes this kind
    }
}

vuln_registry::vuln_registry(event_bus& bus)
{
    monitors_.push_back(std::make_unique<cve_2018_5092>());
    monitors_.push_back(std::make_unique<cve_2017_7843>());
    monitors_.push_back(std::make_unique<simple_monitor>(
        "CVE-2015-7215",
        "importScripts() error message discloses cross-origin information",
        rt_event_kind::import_scripts_error, /*require_flag=*/true));
    monitors_.push_back(std::make_unique<simple_monitor>(
        "CVE-2014-3194",
        "message dispatched to a worker torn down concurrently (modelled from NVD "
        "description)",
        rt_event_kind::message_after_termination, /*require_flag=*/true));
    monitors_.push_back(std::make_unique<simple_monitor>(
        "CVE-2014-1719",
        "terminate() landed while the worker was mid-dispatch (modelled from NVD "
        "description)",
        rt_event_kind::terminate_during_dispatch, /*require_flag=*/true));
    monitors_.push_back(std::make_unique<simple_monitor>(
        "CVE-2014-1488",
        "transferable ArrayBuffer received after its sending worker was terminated "
        "(freed backing store)",
        rt_event_kind::transferable_received, /*require_flag=*/true));
    monitors_.push_back(std::make_unique<simple_monitor>(
        "CVE-2014-1487",
        "worker onerror event discloses cross-origin information",
        rt_event_kind::worker_error_event, /*require_flag=*/true));
    monitors_.push_back(std::make_unique<cve_2013_6646>());
    monitors_.push_back(std::make_unique<simple_monitor>(
        "CVE-2013-5602",
        "null/invalid onmessage handler assignment dereferences an uninitialised "
        "listener slot",
        rt_event_kind::worker_onmessage_assigned, /*require_flag=*/true));
    monitors_.push_back(std::make_unique<simple_monitor>(
        "CVE-2013-1714",
        "worker thread XMLHttpRequest bypasses the same-origin policy",
        rt_event_kind::xhr_request, /*require_flag=*/true));
    monitors_.push_back(std::make_unique<simple_monitor>(
        "CVE-2011-1190",
        "cross-origin script import exposes source to the worker (modelled from NVD "
        "description)",
        rt_event_kind::cross_origin_script_imported, /*require_flag=*/true));
    monitors_.push_back(std::make_unique<simple_monitor>(
        "CVE-2010-4576",
        "terminate() raced with worker close(): double termination (modelled from "
        "NVD description)",
        rt_event_kind::worker_double_termination, /*require_flag=*/true));

    fired_.assign(monitors_.size(), false);

    bus.subscribe([this](const rt_event& event) {
        for (auto& monitor : monitors_) monitor->observe(event);
        // Trigger *transitions* become attack instants: the event that tipped
        // a monitor carries the virtual time and thread of the trigger.
        if (tsink_ == nullptr) return;
        for (std::size_t i = 0; i < monitors_.size(); ++i) {
            if (monitors_[i]->triggered() && !fired_[i]) {
                fired_[i] = true;
                tsink_->instant(obs::category::attack, event.thread, event.at,
                                "trigger:" + monitors_[i]->id());
            }
        }
    });
}

void vuln_registry::set_trace_sink(obs::sink* sink)
{
    tsink_ = sink;
    for (std::size_t i = 0; i < monitors_.size(); ++i) {
        fired_[i] = monitors_[i]->triggered();
    }
}

const cve_monitor* vuln_registry::find(const std::string& id) const
{
    for (const auto& monitor : monitors_) {
        if (monitor->id() == id) return monitor.get();
    }
    return nullptr;
}

void vuln_registry::reset_all()
{
    for (auto& monitor : monitors_) monitor->reset();
    fired_.assign(monitors_.size(), false);
}

std::vector<std::string> vuln_registry::triggered_ids() const
{
    std::vector<std::string> out;
    for (const auto& monitor : monitors_) {
        if (monitor->triggered()) out.push_back(monitor->id());
    }
    return out;
}

}  // namespace jsk::rt
