// Rendering loop: 60 Hz vsync, requestAnimationFrame, repaint cost model
// (style/layout, SVG filters, :visited link paint delta), CSS animations and
// media cue events.
//
// The animation-related timing attacks (§IV-A2) observe how long frames take
// when the renderer is busy with secret-dependent paint work; all that
// secret-dependent work funnels through add_paint_work()/mark_dirty().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "runtime/api.h"
#include "runtime/dom.h"
#include "sim/time.h"

namespace jsk::rt {

class browser;
class context;

/// A running CSS animation; progress advances one step per frame. The
/// CSS-animation implicit clock reads `progress` through the (interposable)
/// attribute APIs.
struct css_animation {
    element_ptr target;
    int total_frames = 0;
    int elapsed_frames = 0;
    std::function<void(double progress)> on_tick;  // optional observer
    [[nodiscard]] bool done() const { return elapsed_frames >= total_frames; }
};

class renderer {
public:
    renderer(browser& owner, context& main);

    // --- requestAnimationFrame (native implementation) ---
    std::int64_t request_frame(frame_cb cb);
    void cancel_frame(std::int64_t id);

    // --- paint work ---
    /// Queue explicit repaint work for the next frame (e.g. an SVG erode
    /// filter applied to a cross-origin image).
    void add_paint_work(sim::time_ns cost);

    /// Mark an element dirty; its paint cost is computed from tag/attributes
    /// (visited links pay the :visited delta, filtered elements their filter
    /// cost) and charged on the next frame.
    void mark_dirty(const element_ptr& el);

    // --- CSS animations ---
    /// Start an animation on `target` running `frames` frames; progress is
    /// mirrored into the element's "animation-progress" attribute each frame.
    void start_animation(element_ptr target, int frames,
                         std::function<void(double)> on_tick = {});

    // --- media cues (video/WebVTT implicit clock) ---
    /// Fire the element's cue callback every `period` until stop_video().
    void play_video(const element_ptr& el, sim::time_ns period);
    void stop_video(const element_ptr& el);
    /// Native cue-callback registration (trapable via the api_table).
    void set_cue_callback(const element_ptr& el, timer_cb cb);

    [[nodiscard]] std::uint64_t frames_rendered() const { return frames_; }

    /// Compute the paint cost of one element (exposed for tests).
    [[nodiscard]] sim::time_ns element_paint_cost(const element& el) const;

private:
    void ensure_vsync();
    void on_vsync();
    [[nodiscard]] bool has_work() const;

    browser* owner_;
    context* main_;

    struct frame_req {
        std::int64_t id;
        frame_cb cb;
    };
    std::vector<frame_req> frame_requests_;
    std::int64_t next_frame_id_ = 1;

    sim::time_ns pending_paint_work_ = 0;
    std::vector<element_ptr> dirty_;
    std::vector<css_animation> animations_;

    struct video_state {
        sim::time_ns period = 0;
        bool playing = false;
        timer_cb cue_cb;
    };
    std::unordered_map<element*, video_state> videos_;
    std::vector<element_ptr> playing_videos_;  // keeps targets alive

    bool vsync_scheduled_ = false;
    bool in_vsync_ = false;
    std::uint64_t frames_ = 0;
};

}  // namespace jsk::rt
