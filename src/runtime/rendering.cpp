#include "runtime/rendering.h"

#include <algorithm>

#include "runtime/browser.h"
#include "runtime/context.h"

namespace jsk::rt {

renderer::renderer(browser& owner, context& main) : owner_(&owner), main_(&main) {}

std::int64_t renderer::request_frame(frame_cb cb)
{
    const std::int64_t id = next_frame_id_++;
    frame_requests_.push_back(frame_req{id, std::move(cb)});
    ensure_vsync();
    return id;
}

void renderer::cancel_frame(std::int64_t id)
{
    auto it = std::find_if(frame_requests_.begin(), frame_requests_.end(),
                           [id](const frame_req& r) { return r.id == id; });
    if (it != frame_requests_.end()) frame_requests_.erase(it);
}

void renderer::add_paint_work(sim::time_ns cost)
{
    pending_paint_work_ += cost;
    ensure_vsync();
}

sim::time_ns renderer::element_paint_cost(const element& el) const
{
    const auto& profile = owner_->profile();
    sim::time_ns cost = 0;
    if (el.tag() == "a") {
        // :visited links take a different (slower) paint path.
        if (owner_->history().visited(el.attribute("href"))) {
            cost += profile.visited_link_paint_delta;
        }
    }
    const std::string filter = el.attribute("filter");
    if (!filter.empty()) {
        // Filter cost scales with the filtered surface.
        double width = 64.0;
        double height = 64.0;
        if (el.has_attribute("width")) width = std::stod(el.attribute("width"));
        if (el.has_attribute("height")) height = std::stod(el.attribute("height"));
        const std::string src = el.attribute("src");
        if (const resource* res = owner_->net().find(src)) {
            if (res->width > 0) width = res->width;
            if (res->height > 0) height = res->height;
        }
        double iterations = 1.0;
        if (el.has_attribute("filter-iterations")) {
            iterations = std::stod(el.attribute("filter-iterations"));
        }
        cost += static_cast<sim::time_ns>(width * height * iterations *
                                          profile.erode_ns_per_pixel);
    }
    return cost;
}

void renderer::mark_dirty(const element_ptr& el)
{
    dirty_.push_back(el);
    ensure_vsync();
}

void renderer::start_animation(element_ptr target, int frames, std::function<void(double)> on_tick)
{
    css_animation anim;
    anim.target = std::move(target);
    anim.total_frames = frames;
    anim.on_tick = std::move(on_tick);
    if (anim.target) {
        anim.target->set_attribute_raw("animation-progress", "0");
        anim.target->set_attribute_raw("animation-total-frames", std::to_string(frames));
    }
    animations_.push_back(std::move(anim));
    ensure_vsync();
}

void renderer::play_video(const element_ptr& el, sim::time_ns period)
{
    auto& state = videos_[el.get()];
    state.period = std::max<sim::time_ns>(period, owner_->profile().frame_interval);
    if (!state.playing) {
        state.playing = true;
        playing_videos_.push_back(el);
        el->set_attribute_raw("cue-count", "0");
        // Cue delivery runs on its own cadence, independent of vsync, via a
        // self-scheduling closure.
        struct cue_loop {
            renderer* self;
            element* raw;
            void operator()() const
            {
                auto it = self->videos_.find(raw);
                if (it == self->videos_.end() || !it->second.playing) return;
                for (const auto& v : self->playing_videos_) {
                    if (v.get() == raw) {
                        const int count = std::stoi(v->attribute("cue-count")) + 1;
                        v->set_attribute_raw("cue-count", std::to_string(count));
                    }
                }
                if (it->second.cue_cb) it->second.cue_cb();
                self->main_->post_task(it->second.period, cue_loop{self, raw}, "video-cue");
            }
        };
        main_->post_task(state.period, cue_loop{this, el.get()}, "video-cue");
    }
}

void renderer::stop_video(const element_ptr& el)
{
    auto it = videos_.find(el.get());
    if (it != videos_.end()) it->second.playing = false;
    std::erase(playing_videos_, el);
}

void renderer::set_cue_callback(const element_ptr& el, timer_cb cb)
{
    videos_[el.get()].cue_cb = std::move(cb);
}

bool renderer::has_work() const
{
    return !frame_requests_.empty() || pending_paint_work_ > 0 || !dirty_.empty() ||
           !animations_.empty();
}

void renderer::ensure_vsync()
{
    // While a frame is being produced, the next one is scheduled at the end
    // of on_vsync — after paint cost is known — so a heavy frame slips the
    // next one to a later vsync slot, like a real compositor.
    if (in_vsync_ || vsync_scheduled_ || !has_work()) return;
    vsync_scheduled_ = true;
    const sim::time_ns interval = owner_->profile().frame_interval;
    const sim::time_ns now = owner_->sim().now();
    // Align to the vsync grid. Routed through post_task so defenses that
    // fuzz event pacing (Fuzzyfox) also affect frame delivery.
    const sim::time_ns next = ((now / interval) + 1) * interval;
    main_->post_task(next - now, [this] { on_vsync(); }, "vsync");
}

void renderer::on_vsync()
{
    vsync_scheduled_ = false;
    in_vsync_ = true;
    ++frames_;
    const auto& profile = owner_->profile();

    // 1. Animation callbacks (rAF) run first, with the frame timestamp taken
    //    from the *current* performance_now definition so a defense that
    //    redefined the clock also governs rAF timestamps.
    std::vector<frame_req> due;
    due.swap(frame_requests_);
    const double timestamp = main_->apis().performance_now
                                 ? main_->apis().performance_now()
                                 : main_->native_performance_now();
    for (auto& req : due) {
        if (req.cb) req.cb(timestamp);
    }

    // 2. CSS animations advance one frame.
    for (auto& anim : animations_) {
        ++anim.elapsed_frames;
        const double progress =
            anim.total_frames == 0
                ? 1.0
                : std::min(1.0, static_cast<double>(anim.elapsed_frames) /
                                    static_cast<double>(anim.total_frames));
        if (anim.target) {
            anim.target->set_attribute_raw("animation-progress", std::to_string(progress));
        }
        if (anim.on_tick) anim.on_tick(progress);
    }
    std::erase_if(animations_, [](const css_animation& a) { return a.done(); });

    // 3. Style/layout/paint, including secret-dependent paint work.
    sim::time_ns frame_cost = 0;
    if (!dirty_.empty() || pending_paint_work_ > 0) {
        frame_cost += profile.style_layout_cost + profile.paint_base_cost;
        for (const auto& el : dirty_) frame_cost += element_paint_cost(*el);
        dirty_.clear();
        frame_cost += pending_paint_work_;
        pending_paint_work_ = 0;
    }
    owner_->charge(frame_cost);

    in_vsync_ = false;
    if (has_work()) ensure_vsync();
}

}  // namespace jsk::rt
