// CVE trigger state machines.
//
// Each monitor encodes the *triggering condition* of one web concurrency
// attack from Table I as a small state machine over the runtime event bus.
// A monitor fires (`triggered() == true`) when the documented invocation
// sequence was observed at the engine level; a defense wins when the exploit
// runs but the sequence never becomes observable.
//
// Provenance: conditions for CVE-2018-5092, -2013-1714, -2013-5602,
// -2014-1488, -2014-1487, -2015-7215 and -2017-7843 are taken from §IV-B of
// the paper; the remaining five (2014-3194, 2014-1719, 2013-6646, 2011-1190,
// 2010-4576) are reconstructed best-effort from their NVD descriptions —
// each one is a worker-lifecycle race, which is what we model.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/events.h"

namespace jsk::obs {
class sink;
}

namespace jsk::rt {

class cve_monitor {
public:
    cve_monitor(std::string id, std::string description)
        : id_(std::move(id)), description_(std::move(description))
    {
    }
    virtual ~cve_monitor() = default;

    [[nodiscard]] const std::string& id() const { return id_; }
    [[nodiscard]] const std::string& description() const { return description_; }
    [[nodiscard]] bool triggered() const { return triggered_; }
    void reset() { triggered_ = false; }

    virtual void observe(const rt_event& event) = 0;

protected:
    void fire() { triggered_ = true; }

private:
    std::string id_;
    std::string description_;
    bool triggered_ = false;
};

/// Bitmask of vuln_registry monitor slots whose state machine reads events of
/// `kind` (bit i = monitors()[i]). The schedule explorer uses this to record
/// a por::sink_key touch per watching monitor when an event is emitted: tasks
/// feeding the *same* monitor are order-dependent even when the runtime
/// objects they touch are disjoint. Kinds no monitor consumes (plain message
/// traffic, fetch lifecycle, fault-injection noise) map to 0 — they add no
/// dependence beyond the inbox/channel keys already recorded.
[[nodiscard]] std::uint32_t monitor_watch_mask(rt_event_kind kind);

/// Owns one monitor per modelled CVE and subscribes them all to a bus.
class vuln_registry {
public:
    /// Create all twelve monitors and attach them to `bus`.
    explicit vuln_registry(event_bus& bus);

    [[nodiscard]] const std::vector<std::unique_ptr<cve_monitor>>& monitors() const
    {
        return monitors_;
    }

    /// Find by CVE id ("CVE-2018-5092"); nullptr when unknown.
    [[nodiscard]] const cve_monitor* find(const std::string& id) const;

    /// Reset all monitors (between attack trials).
    void reset_all();

    /// Ids of all monitors that have triggered.
    [[nodiscard]] std::vector<std::string> triggered_ids() const;

    /// Attach (or detach, with nullptr) an observability sink: from then on
    /// every monitor's triggered() *transition* emits a category::attack
    /// instant named "trigger:<CVE id>", stamped with the bus event that
    /// tipped it. Monitors already triggered at attach time do not re-emit.
    void set_trace_sink(obs::sink* sink);

private:
    std::vector<std::unique_ptr<cve_monitor>> monitors_;
    std::vector<bool> fired_;  // per-monitor: trigger instant already emitted
    obs::sink* tsink_ = nullptr;
};

}  // namespace jsk::rt
