// Runtime event bus.
//
// The browser substrate announces semantically interesting moments (worker
// lifecycle, fetch/abort, message traffic, storage access). Two kinds of
// listener consume them: the CVE trigger state machines in runtime/vuln.h,
// and tests asserting on runtime behaviour. The JSKernel defense does NOT use
// this bus — it interposes at the API table like the real extension; the bus
// is the "low level" where vulnerabilities live.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulation.h"

namespace jsk::rt {

enum class rt_event_kind {
    worker_created,
    worker_script_imported,
    worker_terminated,
    worker_self_closed,
    worker_onmessage_assigned,   // detail_flag = handler was null/invalid
    message_posted,              // a => b message enqueued
    message_delivered,
    transferable_received,       // detail_flag = sender already terminated (UAF window)
    fetch_started,
    fetch_completed,
    fetch_aborted,               // detail_flag = the fetch record was already freed (UAF)
    fetch_freed,                 // owner thread terminated while fetch in flight
    xhr_request,                 // detail_flag = cross-origin
    import_scripts_error,        // detail_flag = error message leaks cross-origin info
    cross_origin_script_imported,  // detail_flag = source exposed (modelled CVE-2011-1190)
    worker_error_event,          // detail_flag = error message leaks cross-origin info
    indexeddb_access,            // detail_flag = in private browsing mode
    indexeddb_persisted_private, // private-mode data survived session end
    page_reload,
    worker_double_termination,   // terminate raced with self.close
    message_after_termination,   // delivery raced with terminate
    terminate_during_dispatch,   // terminate landed while target was dispatching
    fetch_failed,                // transient network failure (timeout/reset/partial)
    message_dropped,             // injected channel fault swallowed a postMessage
    worker_crashed,              // engine died (injected crash or failed spawn);
                                 // detail_flag = thread was mid-task
};

/// One announcement on the bus. `origin`/`target_origin` carry resource
/// origins for the information-disclosure CVEs.
struct rt_event {
    rt_event_kind kind;
    sim::thread_id thread = sim::no_thread;
    sim::time_ns at = 0;
    std::uint64_t subject_id = 0;  // worker id, fetch id, message id ...
    std::string url;
    std::string origin;
    bool detail_flag = false;
};

class event_bus {
public:
    using listener = std::function<void(const rt_event&)>;

    void subscribe(listener fn) { listeners_.push_back(std::move(fn)); }

    void emit(const rt_event& event)
    {
        ++emitted_;
        for (const auto& fn : listeners_) fn(event);
    }

    [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

private:
    std::vector<listener> listeners_;
    std::uint64_t emitted_ = 0;
};

}  // namespace jsk::rt
