#include "runtime/worker.h"

#include "runtime/browser.h"
#include "runtime/context.h"
#include "runtime/events.h"

namespace jsk::rt {

void native_worker::post_message(js_value data, transfer_list transfer)
{
    owner_->charge(owner_->profile().api_call_cost);
    owner_->post_to_child(*link_, std::move(data), std::move(transfer));
}

void native_worker::set_onmessage(message_cb cb)
{
    owner_->charge(owner_->profile().api_call_cost);
    // Assigning a null handler dereferences an uninitialised listener slot in
    // the vulnerable engine (modelled CVE-2013-5602 trigger condition). A
    // polyfill worker keeps the handler in plain JS — nothing to dereference.
    owner_->emit(rt_event{rt_event_kind::worker_onmessage_assigned,
                          link_->parent ? link_->parent->thread() : sim::no_thread, 0,
                          link_->id, link_->src, "",
                          cb == nullptr && !owner_->polyfill_workers()});
    link_->parent_onmessage = std::move(cb);
}

void native_worker::set_onerror(error_cb cb)
{
    owner_->charge(owner_->profile().api_call_cost);
    link_->parent_onerror = std::move(cb);
}

void native_worker::terminate()
{
    owner_->charge(owner_->profile().api_call_cost);
    owner_->terminate_worker(*link_);
}

bool native_worker::alive() const { return link_->alive; }

}  // namespace jsk::rt
