// The interposable web-API surface.
//
// This is the reproduction's equivalent of the JavaScript global environment
// an extension can redefine. Every platform capability user scripts touch is
// reached through an `api_table` entry (a std::function slot). Defenses —
// JSKernel above all — install themselves by replacing entries while keeping
// private copies of the natives (§III-B "kernel API calls"). Slots that the
// real system protects with non-configurable setters expose a freeze bit
// (§III-B: "such properties are not configurable").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/dom.h"
#include "runtime/js_value.h"
#include "runtime/network.h"
#include "sim/time.h"
#include "wm/model.h"

namespace jsk::rt {

/// A delivered message, as seen by an onmessage handler.
struct message_event {
    js_value data;
    std::string origin;
    bool system = false;  // kernel-overlay traffic (never visible to user code)
};

using timer_cb = std::function<void()>;
using frame_cb = std::function<void(double /*timestamp ms*/)>;
using message_cb = std::function<void(const message_event&)>;
using error_cb = std::function<void(const std::string& message)>;

/// Completion value of fetch/xhr.
struct fetch_result {
    bool ok = false;
    bool aborted = false;
    std::string url;
    std::string error;
    std::size_t bytes = 0;  // partial failures report the truncated byte count
    fetch_error kind = fetch_error::none;

    /// True for transient network failures (timeout / connection reset /
    /// truncated body) that a retry policy may re-issue; aborts and
    /// policy/SOP blocks are final.
    [[nodiscard]] bool retryable() const
    {
        return kind == fetch_error::timeout || kind == fetch_error::reset ||
               kind == fetch_error::partial;
    }
};
using fetch_cb = std::function<void(const fetch_result&)>;

struct fetch_options {
    abort_signal signal;  // may be null
};

/// User-visible handle to a worker. `new Worker(src)` returns one; under
/// JSKernel the returned object is a kernel stub (a Proxy in the paper) whose
/// methods call into the kernel instead of the native implementation.
class worker_handle {
public:
    virtual ~worker_handle() = default;
    virtual void post_message(js_value data, transfer_list transfer = {}) = 0;
    virtual void set_onmessage(message_cb cb) = 0;
    virtual void set_onerror(error_cb cb) = 0;
    virtual void terminate() = 0;
    [[nodiscard]] virtual bool alive() const = 0;
    /// Unique id of the underlying worker (0 for detached stubs).
    [[nodiscard]] virtual std::uint64_t id() const = 0;
};
using worker_ptr = std::shared_ptr<worker_handle>;

/// The redefinable global environment of one execution context.
///
/// Invariant: every slot is non-null once the owning context finishes
/// construction; natives remain reachable via context::native_*() so a
/// defense can always fall through.
struct api_table {
    // --- timers ---
    std::function<std::int64_t(timer_cb, sim::time_ns delay)> set_timeout;
    std::function<void(std::int64_t)> clear_timeout;
    std::function<std::int64_t(timer_cb, sim::time_ns delay)> set_interval;
    std::function<void(std::int64_t)> clear_interval;

    // --- animation & clocks ---
    std::function<std::int64_t(frame_cb)> request_animation_frame;
    std::function<void(std::int64_t)> cancel_animation_frame;
    std::function<double()> performance_now;  // milliseconds
    std::function<double()> date_now;         // milliseconds

    // --- workers (creation side) ---
    std::function<worker_ptr(const std::string& src)> create_worker;

    // --- frames: a same-origin iframe shares the event loop but gets its
    // --- own global environment (and, under JSKernel, its own kernel).
    std::function<class context*(const std::string& name)> create_iframe;

    // --- messaging (worker side: `self`) ---
    std::function<void(js_value, transfer_list)> post_message_to_parent;
    std::function<void(message_cb)> set_self_onmessage;
    std::function<void()> close_self;
    std::function<void(const std::vector<std::string>& urls)> import_scripts;

    // --- network ---
    std::function<void(const std::string& url, fetch_options, fetch_cb then, fetch_cb fail)>
        fetch;
    std::function<void(const abort_signal&)> abort_fetch;
    std::function<void(const std::string& url, fetch_cb done)> xhr;

    // --- navigation ---
    std::function<void()> reload;

    // --- DOM (main thread) ---
    std::function<element_ptr(const std::string& tag)> create_element;
    std::function<void(const element_ptr& parent, const element_ptr& child)> append_child;
    std::function<std::string(const element_ptr&, const std::string& name)> get_attribute;
    std::function<void(const element_ptr&, const std::string& name, const std::string& value)>
        set_attribute;

    // --- media (video/WebVTT cue clock) ---
    std::function<void(const element_ptr&, sim::time_ns period)> play_video;
    std::function<void(const element_ptr&, timer_cb)> set_cue_callback;  // trapable

    // --- shared memory ---
    // Plain typed-array accesses carry a wm::access descriptor (ordering +
    // tear granularity); default-constructed it means what every historic
    // call meant: unordered, full-width. The Atomics.* entries are the
    // seq-cst surface — no descriptor, they are seq-cst full-width by
    // definition (add/compareExchange return the old value).
    std::function<shared_buffer_ptr(std::size_t slots)> create_shared_buffer;
    std::function<double(const shared_buffer_ptr&, std::size_t index, wm::access)> sab_load;
    std::function<void(const shared_buffer_ptr&, std::size_t index, double value,
                       wm::access)>
        sab_store;
    std::function<double(const shared_buffer_ptr&, std::size_t index)> atomics_load;
    std::function<void(const shared_buffer_ptr&, std::size_t index, double value)>
        atomics_store;
    std::function<double(const shared_buffer_ptr&, std::size_t index, double delta)>
        atomics_add;
    std::function<double(const shared_buffer_ptr&, std::size_t index, double expected,
                         double desired)>
        atomics_compare_exchange;

    // --- storage ---
    std::function<bool(const std::string& db, const std::string& key, js_value value)>
        indexeddb_put;
    std::function<js_value(const std::string& db, const std::string& key)> indexeddb_get;
};

}  // namespace jsk::rt
