// The simulated browser: owns the simulation, the main context, workers,
// network, DOM, renderer, storage and the runtime event bus.
//
// Defense hooks live here when they are browser-global (task-delay fuzzing,
// error-message sanitisation, polyfill-worker mode); everything API-shaped is
// interposed per-context through the api_table instead.
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/context.h"
#include "runtime/dom.h"
#include "runtime/events.h"
#include "runtime/network.h"
#include "runtime/profile.h"
#include "runtime/rendering.h"
#include "runtime/storage.h"
#include "runtime/vuln.h"
#include "runtime/worker.h"
#include "sim/por.h"
#include "sim/rng.h"
#include "sim/simulation.h"
#include "wm/memory.h"

namespace jsk::faults {
class injector;
}

namespace jsk::rt {

/// Engine-bug switches: a "legacy" engine ships all of them; individual tests
/// can patch single bugs off. These are the substrate the CVE trigger state
/// machines observe — a defense that works must win *with the bugs present*.
struct engine_bugs {
    bool idb_private_mode_persists = true;     // CVE-2017-7843
    bool worker_xhr_ignores_sop = true;        // CVE-2013-1714
    bool leaky_worker_error_messages = true;   // CVE-2014-1487
    bool leaky_import_scripts_errors = true;   // CVE-2015-7215
    bool cross_origin_import_exposes_source = true;  // CVE-2011-1190 (modelled)
};

class browser {
public:
    explicit browser(browser_profile profile, std::uint64_t seed = 0x6a736bULL);
    ~browser();

    browser(const browser&) = delete;
    browser& operator=(const browser&) = delete;

    // --- subsystems ---
    [[nodiscard]] sim::simulation& sim() { return sim_; }
    [[nodiscard]] const browser_profile& profile() const { return profile_; }
    [[nodiscard]] sim::rng& random() { return rng_; }
    [[nodiscard]] event_bus& bus() { return bus_; }
    [[nodiscard]] network& net() { return net_; }
    [[nodiscard]] document& doc() { return doc_; }
    [[nodiscard]] renderer& painter() { return *renderer_; }
    [[nodiscard]] indexed_db& idb() { return idb_; }
    [[nodiscard]] history_store& history() { return history_; }
    [[nodiscard]] context& main() { return *main_; }
    [[nodiscard]] engine_bugs& bugs() { return bugs_; }

    // --- page state ---
    [[nodiscard]] const std::string& page_origin() const { return page_origin_; }
    void set_page_origin(std::string origin) { page_origin_ = std::move(origin); }
    [[nodiscard]] bool private_browsing() const { return private_browsing_; }
    void set_private_browsing(bool on) { private_browsing_ = on; }

    /// Leave private browsing; with the engine bug present, private-mode
    /// indexedDB records survive and the corresponding event is emitted.
    void end_private_session();

    /// Reload the page: emits page_reload and (like a real teardown) fires
    /// the abort signal of every in-flight fetch.
    void reload_page();

    // --- worker machinery ---
    using worker_script = std::function<void(context&)>;
    void register_worker_script(std::string src, worker_script body);
    [[nodiscard]] const worker_script* find_worker_script(const std::string& src) const;

    /// Native `new Worker(src)` path.
    worker_ptr spawn_worker(context& parent, const std::string& src);
    void terminate_worker(worker_link& link);
    void worker_self_close(context& worker_ctx);
    void post_to_child(worker_link& link, js_value data, transfer_list transfer);
    void post_to_parent(context& child, js_value data, transfer_list transfer);
    void fire_worker_error(worker_link& link, const std::string& raw_message,
                           bool leaks_cross_origin);
    [[nodiscard]] const std::vector<std::shared_ptr<worker_link>>& links() const
    {
        return links_;
    }

    /// Messages posted but not yet delivered (CVE-2013-6646's reload race).
    [[nodiscard]] std::int64_t messages_in_flight() const { return messages_in_flight_; }

    // --- fetch/abort plumbing ---
    void abort_fetches_with(const abort_signal& signal);
    void abort_all_inflight_fetches();

    /// Model computation cost, but only when a task is on the stack (harness
    /// code frequently drives natives from outside the simulation).
    void charge(sim::time_ns cost)
    {
        if (sim_.in_task() && cost > 0) sim_.consume(cost);
    }

    // --- defense hooks ---
    /// Adjust the delay of every macrotask posted on any context (Fuzzyfox's
    /// pause-task injection). Receives the requested delay and the label.
    using task_delay_hook =
        std::function<sim::time_ns(sim::time_ns delay, const std::string& label)>;
    void set_task_delay_hook(task_delay_hook hook) { delay_hook_ = std::move(hook); }
    [[nodiscard]] const task_delay_hook& task_delay_hook_fn() const { return delay_hook_; }

    /// Sanitize error strings before they reach page handlers (how the
    /// JSKernel extension scrubs cross-origin info from onerror /
    /// importScripts exceptions). Returns the replacement message; setting it
    /// also suppresses the leak flag on emitted events.
    using error_sanitizer = std::function<std::string(const std::string& raw)>;
    void set_error_sanitizer(error_sanitizer fn) { sanitizer_ = std::move(fn); }

    /// Chrome Zero mode: workers are polyfilled onto the main thread with a
    /// JS-level implementation — no engine-level worker objects exist.
    void set_polyfill_workers(bool on) { polyfill_workers_ = on; }
    [[nodiscard]] bool polyfill_workers() const { return polyfill_workers_; }

    // --- fault injection (jsk::faults) ---
    /// Attach a deterministic fault injector (not owned; nullptr detaches).
    /// Interposition sites consult it through active_faults(), which is
    /// nullptr whenever no injector is attached *or* its plan is null — the
    /// fault-free path costs one branch (same pattern as the obs null-sink
    /// guard, pinned by bench_hotpath).
    void set_fault_injector(faults::injector* injector) { faults_ = injector; }
    [[nodiscard]] faults::injector* fault_injector() const { return faults_; }
    [[nodiscard]] faults::injector* active_faults() const;

    // --- context management ---
    context& create_context(std::string name, context_kind kind,
                            sim::thread_id reuse_thread = sim::no_thread);

    // --- run helpers ---
    void run(std::uint64_t max_tasks = 50'000'000) { sim_.run(max_tasks); }
    void run_until(sim::time_ns t, std::uint64_t max_tasks = 50'000'000)
    {
        sim_.run_until(t, max_tasks);
    }

    void emit(rt_event event)
    {
        event.at = sim_.now();
        // Every event is a write into the state machine of each monitor
        // watching its kind: announce those sink touches to the schedule
        // explorer *before* the bus fans out, so two tasks feeding the same
        // CVE monitor are never judged independent (DESIGN.md §12). No-op
        // (one branch per watcher bit) outside controlled exploration.
        for (std::uint32_t sinks = monitor_watch_mask(event.kind); sinks != 0;
             sinks &= sinks - 1) {
            sim_.note_access(sim::por::sink_key(
                                 static_cast<std::size_t>(std::countr_zero(sinks))),
                             /*write=*/true);
        }
        bus_.emit(event);
    }

    /// World-unique id for a SharedArrayBuffer: keys its slots in the
    /// explorer's SAB access namespace (por::sab_key).
    [[nodiscard]] std::uint64_t take_sab_id() { return next_sab_id_++; }

    // --- weak memory (jsk::wm) ---
    /// Switch the SAB memory model. `seqcst` (default) is the historical
    /// strongly-consistent behaviour; `relaxed` activates the candidate-
    /// execution enumerator — unordered reads may return any reads-from
    /// choice the repaired ECMAScript model allows, steered through the
    /// explorer's decision string. Switching resets recorded events, so set
    /// it before (or right after attaching a controller to) a trial; like a
    /// defense install it is per-world state, never part of a snapshot
    /// recipe.
    void set_memory_model(wm::mode m)
    {
        wmem_.set_mode(m);
        sim_.set_wm_listener(m == wm::mode::relaxed ? &wmem_ : nullptr);
    }
    [[nodiscard]] wm::mode memory_model() const { return wmem_.model(); }
    [[nodiscard]] wm::memory& wmem() { return wmem_; }

private:
    void import_worker_script(const std::shared_ptr<worker_link>& link);
    void terminate_worker_now(worker_link& link);
    void crash_worker(worker_link& link);
    void fail_worker_spawn(const std::shared_ptr<worker_link>& link);

    browser_profile profile_;
    sim::simulation sim_;
    sim::rng rng_;
    event_bus bus_;
    network net_;
    document doc_;
    indexed_db idb_;
    history_store history_;
    engine_bugs bugs_;

    std::string page_origin_ = "https://attacker.example";
    bool private_browsing_ = false;

    std::vector<std::unique_ptr<context>> contexts_;
    context* main_ = nullptr;
    std::unique_ptr<renderer> renderer_;

    std::unordered_map<std::string, worker_script> scripts_;
    std::vector<std::shared_ptr<worker_link>> links_;
    std::uint64_t next_worker_id_ = 1;
    std::uint64_t next_sab_id_ = 1;
    std::int64_t messages_in_flight_ = 0;

    task_delay_hook delay_hook_;
    error_sanitizer sanitizer_;
    bool polyfill_workers_ = false;
    faults::injector* faults_ = nullptr;
    wm::memory wmem_;  // by value: fork rollback restores the model's events
};

}  // namespace jsk::rt
