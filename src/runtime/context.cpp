#include "runtime/context.h"

#include <stdexcept>
#include <utility>

#include "faults/injector.h"
#include "obs/trace.h"
#include "runtime/browser.h"

namespace jsk::rt {

namespace {
constexpr int nesting_clamp_threshold = 5;  // HTML spec: clamp after 5 levels
}

context::context(browser& owner, std::string name, context_kind kind, sim::thread_id thread)
    : owner_(&owner), name_(std::move(name)), kind_(kind), thread_(thread)
{
    install_natives();
}

const std::string& context::origin() const { return owner_->page_origin(); }

void context::install_natives()
{
    apis_.set_timeout = [this](timer_cb cb, sim::time_ns delay) {
        return native_set_timeout(std::move(cb), delay);
    };
    apis_.clear_timeout = [this](std::int64_t id) { native_clear_timeout(id); };
    apis_.set_interval = [this](timer_cb cb, sim::time_ns period) {
        return native_set_interval(std::move(cb), period);
    };
    apis_.clear_interval = [this](std::int64_t id) { native_clear_interval(id); };
    apis_.request_animation_frame = [this](frame_cb cb) {
        return native_request_animation_frame(std::move(cb));
    };
    apis_.cancel_animation_frame = [this](std::int64_t id) {
        native_cancel_animation_frame(id);
    };
    apis_.performance_now = [this] { return native_performance_now(); };
    apis_.date_now = [this] { return native_date_now(); };
    apis_.create_worker = [this](const std::string& src) { return native_create_worker(src); };
    apis_.create_iframe = [this](const std::string& name) { return native_create_iframe(name); };
    apis_.post_message_to_parent = [this](js_value data, transfer_list transfer) {
        native_post_message_to_parent(std::move(data), std::move(transfer));
    };
    apis_.set_self_onmessage = [this](message_cb cb) {
        native_set_self_onmessage(std::move(cb));
    };
    apis_.close_self = [this] { native_close_self(); };
    apis_.import_scripts = [this](const std::vector<std::string>& urls) {
        native_import_scripts(urls);
    };
    apis_.fetch = [this](const std::string& url, fetch_options options, fetch_cb then,
                         fetch_cb fail) {
        native_fetch(url, std::move(options), std::move(then), std::move(fail));
    };
    apis_.abort_fetch = [this](const abort_signal& signal) { native_abort_fetch(signal); };
    apis_.xhr = [this](const std::string& url, fetch_cb done) {
        native_xhr(url, std::move(done));
    };
    apis_.reload = [this] { native_reload(); };
    apis_.create_element = [this](const std::string& tag) { return native_create_element(tag); };
    apis_.append_child = [this](const element_ptr& parent, const element_ptr& child) {
        native_append_child(parent, child);
    };
    apis_.get_attribute = [this](const element_ptr& el, const std::string& name) {
        return native_get_attribute(el, name);
    };
    apis_.set_attribute = [this](const element_ptr& el, const std::string& name,
                                 const std::string& value) {
        native_set_attribute(el, name, value);
    };
    apis_.play_video = [this](const element_ptr& el, sim::time_ns period) {
        native_play_video(el, period);
    };
    apis_.set_cue_callback = [this](const element_ptr& el, timer_cb cb) {
        native_set_cue_callback(el, std::move(cb));
    };
    apis_.create_shared_buffer = [this](std::size_t slots) {
        return native_create_shared_buffer(slots);
    };
    apis_.sab_load = [this](const shared_buffer_ptr& buf, std::size_t index,
                            wm::access acc) { return native_sab_load(buf, index, acc); };
    apis_.sab_store = [this](const shared_buffer_ptr& buf, std::size_t index,
                             double value, wm::access acc) {
        native_sab_store(buf, index, value, acc);
    };
    apis_.atomics_load = [this](const shared_buffer_ptr& buf, std::size_t index) {
        return native_atomics_load(buf, index);
    };
    apis_.atomics_store = [this](const shared_buffer_ptr& buf, std::size_t index,
                                 double value) { native_atomics_store(buf, index, value); };
    apis_.atomics_add = [this](const shared_buffer_ptr& buf, std::size_t index,
                               double delta) {
        return native_atomics_add(buf, index, delta);
    };
    apis_.atomics_compare_exchange = [this](const shared_buffer_ptr& buf,
                                            std::size_t index, double expected,
                                            double desired) {
        return native_atomics_compare_exchange(buf, index, expected, desired);
    };
    apis_.indexeddb_put = [this](const std::string& db, const std::string& key,
                                 js_value value) {
        return native_indexeddb_put(db, key, std::move(value));
    };
    apis_.indexeddb_get = [this](const std::string& db, const std::string& key) {
        return native_indexeddb_get(db, key);
    };
}

bool context::try_redefine_self_onmessage_trap(std::function<void(message_cb)> setter)
{
    if (traps_locked_) return false;
    apis_.set_self_onmessage = std::move(setter);
    return true;
}

// --- event loop -------------------------------------------------------------

sim::task_id context::post_task(sim::time_ns delay, std::function<void()> fn,
                                std::string label)
{
    if (closed_) return 0;
    if (const auto& hook = owner_->task_delay_hook_fn()) delay = hook(delay, label);
    auto& simulator = owner_->sim();
    const sim::time_ns when = simulator.now() + std::max<sim::time_ns>(delay, 0);
    const sim::time_ns dispatch_cost = owner_->profile().task_dispatch_cost;
    return simulator.post(
        thread_, when,
        [this, fn = std::move(fn), dispatch_cost] {
            if (closed_) return;
            owner_->sim().consume(dispatch_cost);
            fn();
            drain_microtasks();
        },
        std::move(label));
}

void context::cancel_task(sim::task_id id)
{
    if (id != 0) owner_->sim().cancel(id);
}

void context::queue_microtask(std::function<void()> fn)
{
    microtasks_.push_back(std::move(fn));
}

void context::drain_microtasks()
{
    if (draining_microtasks_) return;
    draining_microtasks_ = true;
    while (!microtasks_.empty()) {
        auto fn = std::move(microtasks_.front());
        microtasks_.pop_front();
        fn();
    }
    draining_microtasks_ = false;
}

void context::consume(sim::time_ns cost) { owner_->charge(cost); }

double context::now_ms_raw() const
{
    return sim::to_ms(owner_->sim().now());
}

// --- timers ------------------------------------------------------------------

std::int64_t context::native_set_timeout(timer_cb cb, sim::time_ns delay)
{
    consume(owner_->profile().api_call_cost);
    const int nesting = timer_nesting_ + 1;
    sim::time_ns clamped = std::max(delay, owner_->profile().timer_clamp);
    if (nesting > nesting_clamp_threshold) {
        clamped = std::max(clamped, owner_->profile().nested_timer_clamp);
    }
    const std::int64_t id = next_timer_id_++;
    timer_entry entry;
    entry.interval = false;
    entry.cb = std::move(cb);
    entry.nesting = nesting;
    timers_.emplace(id, std::move(entry));
    timers_[id].task = post_task(clamped, [this, id] { fire_timer(id); }, "timer");
    return id;
}

void context::native_clear_timeout(std::int64_t id)
{
    consume(owner_->profile().api_call_cost);
    auto it = timers_.find(id);
    if (it == timers_.end()) return;
    it->second.cancelled = true;
    cancel_task(it->second.task);
    timers_.erase(it);
}

std::int64_t context::native_set_interval(timer_cb cb, sim::time_ns period)
{
    consume(owner_->profile().api_call_cost);
    const sim::time_ns clamped =
        std::max({period, owner_->profile().timer_clamp, sim::time_ns{1 * sim::ms}});
    const std::int64_t id = next_timer_id_++;
    timer_entry entry;
    entry.interval = true;
    entry.period = clamped;
    entry.cb = std::move(cb);
    timers_.emplace(id, std::move(entry));
    timers_[id].task = post_task(clamped, [this, id] { fire_timer(id); }, "interval");
    return id;
}

void context::native_clear_interval(std::int64_t id) { native_clear_timeout(id); }

void context::fire_timer(std::int64_t id)
{
    auto it = timers_.find(id);
    if (it == timers_.end() || it->second.cancelled) return;
    if (obs::sink* ts = owner_->sim().trace_sink()) {
        ts->instant(obs::category::timer, thread_, owner_->sim().now(),
                    it->second.interval ? "interval:fire" : "timer:fire",
                    {obs::num("id", id)});
    }
    const int saved_nesting = timer_nesting_;
    timer_nesting_ = it->second.nesting;
    // Copy the callback out: the callback may clearTimeout itself or install
    // new timers, invalidating the iterator.
    timer_cb cb = it->second.cb;
    const bool interval = it->second.interval;
    cb();
    timer_nesting_ = saved_nesting;
    it = timers_.find(id);
    if (it == timers_.end()) return;  // cleared from inside the callback
    if (interval && !it->second.cancelled) {
        it->second.task = post_task(it->second.period, [this, id] { fire_timer(id); },
                                    "interval");
    } else {
        timers_.erase(it);
    }
}

// --- animation & clocks -------------------------------------------------------

std::int64_t context::native_request_animation_frame(frame_cb cb)
{
    if (kind_ == context_kind::worker) {
        throw std::logic_error("requestAnimationFrame is not available in workers");
    }
    consume(owner_->profile().api_call_cost);
    return owner_->painter().request_frame(std::move(cb));
}

void context::native_cancel_animation_frame(std::int64_t id)
{
    consume(owner_->profile().api_call_cost);
    owner_->painter().cancel_frame(id);
}

double context::native_performance_now() const
{
    owner_->charge(owner_->profile().api_call_cost);
    sim::time_ns t = owner_->sim().now();
    // Injected skew perturbs only the *native* clock surface: the kernel's
    // derived kclock display never consults this path, so kernel-mediated
    // pages keep their coarse deterministic clock even under skew faults.
    if (faults::injector* fi = owner_->active_faults()) t += fi->clock_skew(t);
    return sim::to_ms(sim::quantize(t, owner_->profile().now_precision));
}

double context::native_date_now() const
{
    owner_->charge(owner_->profile().api_call_cost);
    // Arbitrary epoch base keeps Date.now() looking like wall-clock ms.
    constexpr double epoch_base_ms = 1'580'000'000'000.0;
    return epoch_base_ms +
           sim::to_ms(sim::quantize(owner_->sim().now(), owner_->profile().date_precision));
}

// --- workers -------------------------------------------------------------------

worker_ptr context::native_create_worker(const std::string& src)
{
    consume(owner_->profile().api_call_cost);
    return owner_->spawn_worker(*this, src);
}

context* context::native_create_iframe(const std::string& name)
{
    consume(owner_->profile().api_call_cost);
    if (kind_ == context_kind::worker) {
        throw std::logic_error("iframes cannot be created from a worker scope");
    }
    // Same-origin iframe: its own global environment on the same thread.
    return &owner_->create_context("frame:" + name, context_kind::frame, thread_);
}

void context::native_post_message_to_parent(js_value data, transfer_list transfer)
{
    if (kind_ != context_kind::worker) {
        throw std::logic_error("postMessage to parent outside a worker scope");
    }
    consume(owner_->profile().api_call_cost);
    owner_->post_to_parent(*this, std::move(data), std::move(transfer));
}

void context::native_set_self_onmessage(message_cb cb)
{
    consume(owner_->profile().api_call_cost);
    self_onmessage_ = std::move(cb);
}

void context::native_close_self()
{
    if (kind_ != context_kind::worker) {
        throw std::logic_error("close() outside a worker scope");
    }
    owner_->worker_self_close(*this);
}

void context::native_import_scripts(const std::vector<std::string>& urls)
{
    if (kind_ != context_kind::worker) {
        throw std::logic_error("importScripts outside a worker scope");
    }
    const std::uint64_t link_id = link_ ? link_->id : 0;
    for (const auto& url : urls) {
        consume(owner_->profile().api_call_cost);
        const resource* res = owner_->net().find(url);
        const bool cross_origin = res && res->origin != origin();
        if (res == nullptr || (res->kind != resource_kind::script)) {
            // Failed load: the error message of a vulnerable engine embeds
            // the full cross-origin URL (CVE-2015-7215's trigger condition).
            const bool leaks = owner_->bugs().leaky_import_scripts_errors &&
                               (res ? cross_origin : true);
            owner_->emit(rt_event{rt_event_kind::import_scripts_error, thread_, 0, link_id,
                                  url, res ? res->origin : "", leaks});
            if (link_) {
                owner_->fire_worker_error(*link_, "importScripts failed: " + url, leaks);
            }
            continue;
        }
        consume(owner_->net().request_latency(url));
        consume(static_cast<sim::time_ns>(static_cast<double>(res->bytes) *
                                          owner_->profile().parse_ns_per_byte));
        if (cross_origin && owner_->bugs().cross_origin_import_exposes_source) {
            // Modelled CVE-2011-1190: importing a cross-origin script exposes
            // its source/function list to the worker.
            owner_->emit(rt_event{rt_event_kind::cross_origin_script_imported, thread_, 0,
                                  link_id, url, res->origin, true});
        }
        if (const auto* body = owner_->find_worker_script(url)) (*body)(*this);
    }
}

// --- network -------------------------------------------------------------------

void context::native_fetch(const std::string& url, fetch_options options, fetch_cb then,
                           fetch_cb fail)
{
    consume(owner_->profile().api_call_cost);
    auto& rec = owner_->net().start_fetch(url, thread_, options.signal);
    const std::uint64_t id = rec.id;
    owner_->emit(rt_event{rt_event_kind::fetch_started, thread_, 0, id, url, origin(), false});
    sim::time_ns latency = owner_->net().request_latency(url);
    const resource* res = owner_->net().find(url);
    std::size_t bytes = res ? res->bytes : 0;
    // Fault interposition: a spike only stretches the latency; timeout /
    // reset / partial turn the completion into a deterministic failure.
    fetch_error fault = fetch_error::none;
    if (faults::injector* fi = owner_->active_faults()) {
        const auto decision = fi->on_fetch(latency);
        switch (decision.kind) {
            case faults::injector::fetch_fault::spike:
                latency += decision.extra_latency;
                break;
            case faults::injector::fetch_fault::timeout:
                fault = fetch_error::timeout;
                latency = decision.fail_after;
                break;
            case faults::injector::fetch_fault::reset:
                fault = fetch_error::reset;
                latency = decision.fail_after;
                break;
            case faults::injector::fetch_fault::partial:
                fault = fetch_error::partial;
                bytes /= 2;  // the truncated prefix that did arrive
                break;
            case faults::injector::fetch_fault::none: break;
        }
    }
    post_task(
        latency,
        [this, id, url, bytes, fault, then = std::move(then), fail = std::move(fail)] {
            fetch_record* record = owner_->net().find_fetch(id);
            if (record == nullptr) return;
            if (record->aborted || (record->signal && record->signal->aborted)) {
                record->aborted = true;
                record->error = fetch_error::aborted;
                if (fail) {
                    fail(fetch_result{false, true, url, "aborted", 0, fetch_error::aborted});
                }
                return;
            }
            if (fault != fetch_error::none) {
                record->failed = true;
                record->error = fault;
                owner_->emit(rt_event{rt_event_kind::fetch_failed, thread_, 0, id, url,
                                      origin(), false});
                if (fail) {
                    fail(fetch_result{false, false, url,
                                      std::string("fetch failed: ") + to_string(fault),
                                      fault == fetch_error::partial ? bytes : 0, fault});
                }
                return;
            }
            record->completed = true;
            owner_->emit(rt_event{rt_event_kind::fetch_completed, thread_, 0, id, url,
                                  origin(), false});
            if (then) then(fetch_result{true, false, url, "", bytes});
        },
        "fetch:" + url);
}

void context::native_abort_fetch(const abort_signal& signal)
{
    consume(owner_->profile().api_call_cost);
    owner_->abort_fetches_with(signal);
}

void context::native_xhr(const std::string& url, fetch_cb done)
{
    consume(owner_->profile().api_call_cost);
    const resource* res = owner_->net().find(url);
    const bool cross_origin = res != nullptr && res->origin != origin();
    const std::uint64_t link_id = link_ ? link_->id : 0;
    // Same-origin policy: the main thread enforces it; a *real* worker thread
    // in a vulnerable engine does not (CVE-2013-1714) — a polyfill worker
    // issues its requests from the main thread, where SOP holds. The event's
    // detail flag records whether a bypass actually happened.
    const bool from_worker =
        kind_ == context_kind::worker && !owner_->polyfill_workers();
    const bool sop_bypassed =
        cross_origin && from_worker && owner_->bugs().worker_xhr_ignores_sop;
    owner_->emit(rt_event{rt_event_kind::xhr_request, thread_, 0, link_id, url,
                          res ? res->origin : "", sop_bypassed});
    const bool blocked = cross_origin && !sop_bypassed;
    const sim::time_ns latency = owner_->net().request_latency(url);
    const std::size_t bytes = res ? res->bytes : 0;
    post_task(
        latency,
        [url, bytes, blocked, done = std::move(done)] {
            if (!done) return;
            if (blocked) {
                done(fetch_result{false, false, url, "blocked by same-origin policy", 0,
                                  fetch_error::blocked});
            } else {
                done(fetch_result{true, false, url, "", bytes});
            }
        },
        "xhr:" + url);
}

void context::native_reload()
{
    consume(owner_->profile().api_call_cost);
    owner_->reload_page();
}

// --- DOM -------------------------------------------------------------------------

element_ptr context::native_create_element(const std::string& tag)
{
    consume(owner_->profile().dom_op_cost);
    return std::make_shared<element>(tag);
}

void context::native_append_child(const element_ptr& parent, const element_ptr& child)
{
    consume(owner_->profile().dom_op_cost);
    parent->add_child_raw(child);

    const std::string src = child->attribute("src");
    const std::string& tag = child->tag();
    if (tag == "script" && !src.empty()) {
        const sim::time_ns latency = owner_->net().request_latency(src);
        const resource* res = owner_->net().find(src);
        post_task(
            latency,
            [this, child, res, src] {
                if (res == nullptr || res->kind != resource_kind::script) {
                    if (child->onerror) child->onerror("script load failed: " + src);
                    return;
                }
                consume(static_cast<sim::time_ns>(static_cast<double>(res->bytes) *
                                                  owner_->profile().parse_ns_per_byte));
                if (child->onload) child->onload();
            },
            "script-load:" + src);
    } else if (tag == "img" && !src.empty()) {
        const sim::time_ns latency = owner_->net().request_latency(src);
        const resource* res = owner_->net().find(src);
        post_task(
            latency,
            [this, child, res, src] {
                if (res == nullptr || res->kind != resource_kind::image) {
                    if (child->onerror) child->onerror("image load failed: " + src);
                    return;
                }
                const double pixels =
                    static_cast<double>(res->width) * static_cast<double>(res->height);
                consume(static_cast<sim::time_ns>(pixels *
                                                  owner_->profile().decode_ns_per_pixel));
                if (child->onload) child->onload();
            },
            "img-decode:" + src);
    }
    if (kind_ == context_kind::main &&
        (tag == "a" || child->has_attribute("filter") || child->has_attribute("style"))) {
        owner_->painter().mark_dirty(child);
    }
}

std::string context::native_get_attribute(const element_ptr& el, const std::string& name)
{
    consume(owner_->profile().dom_op_cost);
    return el->attribute(name);
}

void context::native_set_attribute(const element_ptr& el, const std::string& name,
                                   const std::string& value)
{
    consume(owner_->profile().dom_op_cost);
    el->set_attribute_raw(name, value);
    if (kind_ == context_kind::main &&
        (name == "filter" || name == "src" || name == "style" || name == "href")) {
        owner_->painter().mark_dirty(el);
    }
}

void context::native_play_video(const element_ptr& el, sim::time_ns period)
{
    consume(owner_->profile().api_call_cost);
    owner_->painter().play_video(el, period);
}

void context::native_set_cue_callback(const element_ptr& el, timer_cb cb)
{
    consume(owner_->profile().api_call_cost);
    owner_->painter().set_cue_callback(el, std::move(cb));
}

// --- shared memory -----------------------------------------------------------------

shared_buffer_ptr context::native_create_shared_buffer(std::size_t slots)
{
    consume(owner_->profile().api_call_cost);
    auto buf = std::make_shared<shared_buffer>();
    buf->slots.assign(slots, 0.0);
    buf->sab_id = owner_->take_sab_id();
    return buf;
}

namespace {

std::uint8_t access_order_of(wm::access acc)
{
    return acc.ord == wm::ordering::seqcst ? sim::por::order_seqcst
                                           : sim::por::order_unordered;
}

}  // namespace

double context::native_sab_load(const shared_buffer_ptr& buf, std::size_t index,
                                wm::access acc)
{
    consume(owner_->profile().api_call_cost);
    if (!buf || index >= buf->slots.size()) {
        throw std::out_of_range("SharedArrayBuffer read out of range");
    }
    owner_->sim().note_access(sim::por::sab_key(buf->sab_id, index), /*write=*/false,
                              access_order_of(acc));
    // Committed memory lives in the slot; under the relaxed model the
    // enumerator may answer an unordered read with any consistent
    // reads-from candidate instead (wm/memory.h). Seq-cst mode short-
    // circuits inside wm::memory to exactly the committed value.
    return owner_->wmem().load(buf->sab_id, static_cast<std::uint32_t>(index),
                               buf->slots[index], acc);
}

void context::native_sab_store(const shared_buffer_ptr& buf, std::size_t index,
                               double value, wm::access acc)
{
    consume(owner_->profile().api_call_cost);
    if (!buf || index >= buf->slots.size()) {
        throw std::out_of_range("SharedArrayBuffer write out of range");
    }
    owner_->sim().note_access(sim::por::sab_key(buf->sab_id, index), /*write=*/true,
                              access_order_of(acc));
    buf->slots[index] = owner_->wmem().store(buf->sab_id,
                                             static_cast<std::uint32_t>(index),
                                             buf->slots[index], value, acc);
}

double context::native_atomics_load(const shared_buffer_ptr& buf, std::size_t index)
{
    return native_sab_load(buf, index, wm::seqcst_access);
}

void context::native_atomics_store(const shared_buffer_ptr& buf, std::size_t index,
                                   double value)
{
    native_sab_store(buf, index, value, wm::seqcst_access);
}

double context::native_atomics_add(const shared_buffer_ptr& buf, std::size_t index,
                                   double delta)
{
    consume(owner_->profile().api_call_cost);
    if (!buf || index >= buf->slots.size()) {
        throw std::out_of_range("SharedArrayBuffer write out of range");
    }
    owner_->sim().note_access(sim::por::sab_key(buf->sab_id, index), /*write=*/true,
                              sim::por::order_seqcst);
    return owner_->wmem().add(buf->sab_id, static_cast<std::uint32_t>(index),
                              buf->slots[index], delta);
}

double context::native_atomics_compare_exchange(const shared_buffer_ptr& buf,
                                                std::size_t index, double expected,
                                                double desired)
{
    consume(owner_->profile().api_call_cost);
    if (!buf || index >= buf->slots.size()) {
        throw std::out_of_range("SharedArrayBuffer write out of range");
    }
    owner_->sim().note_access(sim::por::sab_key(buf->sab_id, index), /*write=*/true,
                              sim::por::order_seqcst);
    return owner_->wmem().compare_exchange(buf->sab_id,
                                           static_cast<std::uint32_t>(index),
                                           buf->slots[index], expected, desired);
}

// --- storage --------------------------------------------------------------------------

bool context::native_indexeddb_put(const std::string& db, const std::string& key,
                                   js_value value)
{
    consume(owner_->profile().api_call_cost);
    owner_->emit(rt_event{rt_event_kind::indexeddb_access, thread_, 0, 0, db, origin(),
                          owner_->private_browsing()});
    owner_->idb().put(db, key, std::move(value), owner_->private_browsing());
    return true;
}

js_value context::native_indexeddb_get(const std::string& db, const std::string& key)
{
    consume(owner_->profile().api_call_cost);
    owner_->emit(rt_event{rt_event_kind::indexeddb_access, thread_, 0, 0, db, origin(),
                          owner_->private_browsing()});
    return owner_->idb().get(db, key);
}

// --- worker-side plumbing ----------------------------------------------------------------

void context::deliver_self_message(const message_event& event)
{
    if (closed_) return;
    if (self_onmessage_) self_onmessage_(event);
}

}  // namespace jsk::rt
