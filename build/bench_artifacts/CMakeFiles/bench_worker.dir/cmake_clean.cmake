file(REMOVE_RECURSE
  "../bench/bench_worker"
  "../bench/bench_worker.pdb"
  "CMakeFiles/bench_worker.dir/bench_worker.cpp.o"
  "CMakeFiles/bench_worker.dir/bench_worker.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_worker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
