# Empty compiler generated dependencies file for bench_compat.
# This may be replaced when dependencies are built.
