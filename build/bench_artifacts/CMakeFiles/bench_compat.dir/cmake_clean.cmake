file(REMOVE_RECURSE
  "../bench/bench_compat"
  "../bench/bench_compat.pdb"
  "CMakeFiles/bench_compat.dir/bench_compat.cpp.o"
  "CMakeFiles/bench_compat.dir/bench_compat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
