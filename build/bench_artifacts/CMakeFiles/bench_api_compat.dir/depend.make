# Empty dependencies file for bench_api_compat.
# This may be replaced when dependencies are built.
