file(REMOVE_RECURSE
  "../bench/bench_api_compat"
  "../bench/bench_api_compat.pdb"
  "CMakeFiles/bench_api_compat.dir/bench_api_compat.cpp.o"
  "CMakeFiles/bench_api_compat.dir/bench_api_compat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_api_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
