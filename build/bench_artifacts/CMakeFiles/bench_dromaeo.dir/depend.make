# Empty dependencies file for bench_dromaeo.
# This may be replaced when dependencies are built.
