# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_simulation[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_js_value[1]_include.cmake")
include("/root/repo/build/tests/test_context[1]_include.cmake")
include("/root/repo/build/tests/test_workers[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_dom[1]_include.cmake")
include("/root/repo/build/tests/test_rendering[1]_include.cmake")
include("/root/repo/build/tests/test_vuln[1]_include.cmake")
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_determinism[1]_include.cmake")
include("/root/repo/build/tests/test_defenses[1]_include.cmake")
include("/root/repo/build/tests/test_table1_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_browser[1]_include.cmake")
include("/root/repo/build/tests/test_thread_manager[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_adversarial[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_attack_clocks[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_policy_spec[1]_include.cmake")
include("/root/repo/build/tests/test_sab_clock[1]_include.cmake")
include("/root/repo/build/tests/test_journal[1]_include.cmake")
include("/root/repo/build/tests/test_program_fuzz[1]_include.cmake")
