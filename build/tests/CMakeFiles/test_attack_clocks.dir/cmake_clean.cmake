file(REMOVE_RECURSE
  "CMakeFiles/test_attack_clocks.dir/attacks/test_clocks.cpp.o"
  "CMakeFiles/test_attack_clocks.dir/attacks/test_clocks.cpp.o.d"
  "test_attack_clocks"
  "test_attack_clocks.pdb"
  "test_attack_clocks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack_clocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
