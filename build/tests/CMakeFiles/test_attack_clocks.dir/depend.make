# Empty dependencies file for test_attack_clocks.
# This may be replaced when dependencies are built.
