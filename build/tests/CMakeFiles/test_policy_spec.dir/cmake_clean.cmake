file(REMOVE_RECURSE
  "CMakeFiles/test_policy_spec.dir/kernel/test_policy_spec.cpp.o"
  "CMakeFiles/test_policy_spec.dir/kernel/test_policy_spec.cpp.o.d"
  "test_policy_spec"
  "test_policy_spec.pdb"
  "test_policy_spec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
