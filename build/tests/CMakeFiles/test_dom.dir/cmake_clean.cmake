file(REMOVE_RECURSE
  "CMakeFiles/test_dom.dir/runtime/test_dom.cpp.o"
  "CMakeFiles/test_dom.dir/runtime/test_dom.cpp.o.d"
  "test_dom"
  "test_dom.pdb"
  "test_dom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
