# Empty compiler generated dependencies file for test_thread_manager.
# This may be replaced when dependencies are built.
