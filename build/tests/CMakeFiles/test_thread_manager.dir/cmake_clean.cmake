file(REMOVE_RECURSE
  "CMakeFiles/test_thread_manager.dir/kernel/test_thread_manager.cpp.o"
  "CMakeFiles/test_thread_manager.dir/kernel/test_thread_manager.cpp.o.d"
  "test_thread_manager"
  "test_thread_manager.pdb"
  "test_thread_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thread_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
