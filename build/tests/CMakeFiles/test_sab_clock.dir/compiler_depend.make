# Empty compiler generated dependencies file for test_sab_clock.
# This may be replaced when dependencies are built.
