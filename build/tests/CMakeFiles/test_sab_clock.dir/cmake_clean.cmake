file(REMOVE_RECURSE
  "CMakeFiles/test_sab_clock.dir/kernel/test_sab_clock.cpp.o"
  "CMakeFiles/test_sab_clock.dir/kernel/test_sab_clock.cpp.o.d"
  "test_sab_clock"
  "test_sab_clock.pdb"
  "test_sab_clock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sab_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
