file(REMOVE_RECURSE
  "CMakeFiles/test_table1_matrix.dir/attacks/test_table1_matrix.cpp.o"
  "CMakeFiles/test_table1_matrix.dir/attacks/test_table1_matrix.cpp.o.d"
  "test_table1_matrix"
  "test_table1_matrix.pdb"
  "test_table1_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table1_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
