# Empty dependencies file for test_table1_matrix.
# This may be replaced when dependencies are built.
