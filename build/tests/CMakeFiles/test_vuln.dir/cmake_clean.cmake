file(REMOVE_RECURSE
  "CMakeFiles/test_vuln.dir/runtime/test_vuln.cpp.o"
  "CMakeFiles/test_vuln.dir/runtime/test_vuln.cpp.o.d"
  "test_vuln"
  "test_vuln.pdb"
  "test_vuln[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vuln.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
