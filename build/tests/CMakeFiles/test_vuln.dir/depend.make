# Empty dependencies file for test_vuln.
# This may be replaced when dependencies are built.
