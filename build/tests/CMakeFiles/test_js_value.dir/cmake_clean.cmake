file(REMOVE_RECURSE
  "CMakeFiles/test_js_value.dir/runtime/test_js_value.cpp.o"
  "CMakeFiles/test_js_value.dir/runtime/test_js_value.cpp.o.d"
  "test_js_value"
  "test_js_value.pdb"
  "test_js_value[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_js_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
