# Empty compiler generated dependencies file for test_js_value.
# This may be replaced when dependencies are built.
