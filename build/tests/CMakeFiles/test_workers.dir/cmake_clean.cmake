file(REMOVE_RECURSE
  "CMakeFiles/test_workers.dir/runtime/test_workers.cpp.o"
  "CMakeFiles/test_workers.dir/runtime/test_workers.cpp.o.d"
  "test_workers"
  "test_workers.pdb"
  "test_workers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
