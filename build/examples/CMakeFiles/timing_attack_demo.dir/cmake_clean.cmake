file(REMOVE_RECURSE
  "CMakeFiles/timing_attack_demo.dir/timing_attack_demo.cpp.o"
  "CMakeFiles/timing_attack_demo.dir/timing_attack_demo.cpp.o.d"
  "timing_attack_demo"
  "timing_attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
