# Empty dependencies file for timing_attack_demo.
# This may be replaced when dependencies are built.
