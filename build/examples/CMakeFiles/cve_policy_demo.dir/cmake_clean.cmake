file(REMOVE_RECURSE
  "CMakeFiles/cve_policy_demo.dir/cve_policy_demo.cpp.o"
  "CMakeFiles/cve_policy_demo.dir/cve_policy_demo.cpp.o.d"
  "cve_policy_demo"
  "cve_policy_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cve_policy_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
