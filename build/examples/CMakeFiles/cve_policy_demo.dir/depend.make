# Empty dependencies file for cve_policy_demo.
# This may be replaced when dependencies are built.
