
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/browser.cpp" "src/runtime/CMakeFiles/jsk_runtime.dir/browser.cpp.o" "gcc" "src/runtime/CMakeFiles/jsk_runtime.dir/browser.cpp.o.d"
  "/root/repo/src/runtime/context.cpp" "src/runtime/CMakeFiles/jsk_runtime.dir/context.cpp.o" "gcc" "src/runtime/CMakeFiles/jsk_runtime.dir/context.cpp.o.d"
  "/root/repo/src/runtime/dom.cpp" "src/runtime/CMakeFiles/jsk_runtime.dir/dom.cpp.o" "gcc" "src/runtime/CMakeFiles/jsk_runtime.dir/dom.cpp.o.d"
  "/root/repo/src/runtime/js_value.cpp" "src/runtime/CMakeFiles/jsk_runtime.dir/js_value.cpp.o" "gcc" "src/runtime/CMakeFiles/jsk_runtime.dir/js_value.cpp.o.d"
  "/root/repo/src/runtime/profile.cpp" "src/runtime/CMakeFiles/jsk_runtime.dir/profile.cpp.o" "gcc" "src/runtime/CMakeFiles/jsk_runtime.dir/profile.cpp.o.d"
  "/root/repo/src/runtime/rendering.cpp" "src/runtime/CMakeFiles/jsk_runtime.dir/rendering.cpp.o" "gcc" "src/runtime/CMakeFiles/jsk_runtime.dir/rendering.cpp.o.d"
  "/root/repo/src/runtime/vuln.cpp" "src/runtime/CMakeFiles/jsk_runtime.dir/vuln.cpp.o" "gcc" "src/runtime/CMakeFiles/jsk_runtime.dir/vuln.cpp.o.d"
  "/root/repo/src/runtime/worker.cpp" "src/runtime/CMakeFiles/jsk_runtime.dir/worker.cpp.o" "gcc" "src/runtime/CMakeFiles/jsk_runtime.dir/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/jsk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
