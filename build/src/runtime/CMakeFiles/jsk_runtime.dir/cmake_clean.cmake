file(REMOVE_RECURSE
  "CMakeFiles/jsk_runtime.dir/browser.cpp.o"
  "CMakeFiles/jsk_runtime.dir/browser.cpp.o.d"
  "CMakeFiles/jsk_runtime.dir/context.cpp.o"
  "CMakeFiles/jsk_runtime.dir/context.cpp.o.d"
  "CMakeFiles/jsk_runtime.dir/dom.cpp.o"
  "CMakeFiles/jsk_runtime.dir/dom.cpp.o.d"
  "CMakeFiles/jsk_runtime.dir/js_value.cpp.o"
  "CMakeFiles/jsk_runtime.dir/js_value.cpp.o.d"
  "CMakeFiles/jsk_runtime.dir/profile.cpp.o"
  "CMakeFiles/jsk_runtime.dir/profile.cpp.o.d"
  "CMakeFiles/jsk_runtime.dir/rendering.cpp.o"
  "CMakeFiles/jsk_runtime.dir/rendering.cpp.o.d"
  "CMakeFiles/jsk_runtime.dir/vuln.cpp.o"
  "CMakeFiles/jsk_runtime.dir/vuln.cpp.o.d"
  "CMakeFiles/jsk_runtime.dir/worker.cpp.o"
  "CMakeFiles/jsk_runtime.dir/worker.cpp.o.d"
  "libjsk_runtime.a"
  "libjsk_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsk_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
