# Empty compiler generated dependencies file for jsk_runtime.
# This may be replaced when dependencies are built.
