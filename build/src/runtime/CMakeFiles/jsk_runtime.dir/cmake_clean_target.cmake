file(REMOVE_RECURSE
  "libjsk_runtime.a"
)
