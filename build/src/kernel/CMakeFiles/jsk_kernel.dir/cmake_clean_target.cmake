file(REMOVE_RECURSE
  "libjsk_kernel.a"
)
