file(REMOVE_RECURSE
  "CMakeFiles/jsk_kernel.dir/dispatcher.cpp.o"
  "CMakeFiles/jsk_kernel.dir/dispatcher.cpp.o.d"
  "CMakeFiles/jsk_kernel.dir/event_queue.cpp.o"
  "CMakeFiles/jsk_kernel.dir/event_queue.cpp.o.d"
  "CMakeFiles/jsk_kernel.dir/journal.cpp.o"
  "CMakeFiles/jsk_kernel.dir/journal.cpp.o.d"
  "CMakeFiles/jsk_kernel.dir/json.cpp.o"
  "CMakeFiles/jsk_kernel.dir/json.cpp.o.d"
  "CMakeFiles/jsk_kernel.dir/kernel.cpp.o"
  "CMakeFiles/jsk_kernel.dir/kernel.cpp.o.d"
  "CMakeFiles/jsk_kernel.dir/kevent.cpp.o"
  "CMakeFiles/jsk_kernel.dir/kevent.cpp.o.d"
  "CMakeFiles/jsk_kernel.dir/policies.cpp.o"
  "CMakeFiles/jsk_kernel.dir/policies.cpp.o.d"
  "CMakeFiles/jsk_kernel.dir/policy_spec.cpp.o"
  "CMakeFiles/jsk_kernel.dir/policy_spec.cpp.o.d"
  "CMakeFiles/jsk_kernel.dir/policy_synthesis.cpp.o"
  "CMakeFiles/jsk_kernel.dir/policy_synthesis.cpp.o.d"
  "CMakeFiles/jsk_kernel.dir/prediction.cpp.o"
  "CMakeFiles/jsk_kernel.dir/prediction.cpp.o.d"
  "CMakeFiles/jsk_kernel.dir/scheduler.cpp.o"
  "CMakeFiles/jsk_kernel.dir/scheduler.cpp.o.d"
  "CMakeFiles/jsk_kernel.dir/thread_manager.cpp.o"
  "CMakeFiles/jsk_kernel.dir/thread_manager.cpp.o.d"
  "libjsk_kernel.a"
  "libjsk_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsk_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
