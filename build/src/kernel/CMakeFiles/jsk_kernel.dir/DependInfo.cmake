
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/dispatcher.cpp" "src/kernel/CMakeFiles/jsk_kernel.dir/dispatcher.cpp.o" "gcc" "src/kernel/CMakeFiles/jsk_kernel.dir/dispatcher.cpp.o.d"
  "/root/repo/src/kernel/event_queue.cpp" "src/kernel/CMakeFiles/jsk_kernel.dir/event_queue.cpp.o" "gcc" "src/kernel/CMakeFiles/jsk_kernel.dir/event_queue.cpp.o.d"
  "/root/repo/src/kernel/journal.cpp" "src/kernel/CMakeFiles/jsk_kernel.dir/journal.cpp.o" "gcc" "src/kernel/CMakeFiles/jsk_kernel.dir/journal.cpp.o.d"
  "/root/repo/src/kernel/json.cpp" "src/kernel/CMakeFiles/jsk_kernel.dir/json.cpp.o" "gcc" "src/kernel/CMakeFiles/jsk_kernel.dir/json.cpp.o.d"
  "/root/repo/src/kernel/kernel.cpp" "src/kernel/CMakeFiles/jsk_kernel.dir/kernel.cpp.o" "gcc" "src/kernel/CMakeFiles/jsk_kernel.dir/kernel.cpp.o.d"
  "/root/repo/src/kernel/kevent.cpp" "src/kernel/CMakeFiles/jsk_kernel.dir/kevent.cpp.o" "gcc" "src/kernel/CMakeFiles/jsk_kernel.dir/kevent.cpp.o.d"
  "/root/repo/src/kernel/policies.cpp" "src/kernel/CMakeFiles/jsk_kernel.dir/policies.cpp.o" "gcc" "src/kernel/CMakeFiles/jsk_kernel.dir/policies.cpp.o.d"
  "/root/repo/src/kernel/policy_spec.cpp" "src/kernel/CMakeFiles/jsk_kernel.dir/policy_spec.cpp.o" "gcc" "src/kernel/CMakeFiles/jsk_kernel.dir/policy_spec.cpp.o.d"
  "/root/repo/src/kernel/policy_synthesis.cpp" "src/kernel/CMakeFiles/jsk_kernel.dir/policy_synthesis.cpp.o" "gcc" "src/kernel/CMakeFiles/jsk_kernel.dir/policy_synthesis.cpp.o.d"
  "/root/repo/src/kernel/prediction.cpp" "src/kernel/CMakeFiles/jsk_kernel.dir/prediction.cpp.o" "gcc" "src/kernel/CMakeFiles/jsk_kernel.dir/prediction.cpp.o.d"
  "/root/repo/src/kernel/scheduler.cpp" "src/kernel/CMakeFiles/jsk_kernel.dir/scheduler.cpp.o" "gcc" "src/kernel/CMakeFiles/jsk_kernel.dir/scheduler.cpp.o.d"
  "/root/repo/src/kernel/thread_manager.cpp" "src/kernel/CMakeFiles/jsk_kernel.dir/thread_manager.cpp.o" "gcc" "src/kernel/CMakeFiles/jsk_kernel.dir/thread_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/jsk_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jsk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
