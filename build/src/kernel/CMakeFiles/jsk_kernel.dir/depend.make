# Empty dependencies file for jsk_kernel.
# This may be replaced when dependencies are built.
