# Empty compiler generated dependencies file for jsk_kernel.
# This may be replaced when dependencies are built.
