file(REMOVE_RECURSE
  "libjsk_sim.a"
)
