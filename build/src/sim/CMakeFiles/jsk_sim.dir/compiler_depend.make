# Empty compiler generated dependencies file for jsk_sim.
# This may be replaced when dependencies are built.
