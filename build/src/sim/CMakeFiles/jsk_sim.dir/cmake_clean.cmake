file(REMOVE_RECURSE
  "CMakeFiles/jsk_sim.dir/simulation.cpp.o"
  "CMakeFiles/jsk_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/jsk_sim.dir/stats.cpp.o"
  "CMakeFiles/jsk_sim.dir/stats.cpp.o.d"
  "libjsk_sim.a"
  "libjsk_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsk_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
