file(REMOVE_RECURSE
  "libjsk_workloads.a"
)
