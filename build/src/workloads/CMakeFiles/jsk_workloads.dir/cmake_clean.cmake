file(REMOVE_RECURSE
  "CMakeFiles/jsk_workloads.dir/sites.cpp.o"
  "CMakeFiles/jsk_workloads.dir/sites.cpp.o.d"
  "libjsk_workloads.a"
  "libjsk_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsk_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
