# Empty compiler generated dependencies file for jsk_workloads.
# This may be replaced when dependencies are built.
