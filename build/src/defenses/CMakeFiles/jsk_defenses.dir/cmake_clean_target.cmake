file(REMOVE_RECURSE
  "libjsk_defenses.a"
)
