
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/defenses/chrome_zero.cpp" "src/defenses/CMakeFiles/jsk_defenses.dir/chrome_zero.cpp.o" "gcc" "src/defenses/CMakeFiles/jsk_defenses.dir/chrome_zero.cpp.o.d"
  "/root/repo/src/defenses/deterfox.cpp" "src/defenses/CMakeFiles/jsk_defenses.dir/deterfox.cpp.o" "gcc" "src/defenses/CMakeFiles/jsk_defenses.dir/deterfox.cpp.o.d"
  "/root/repo/src/defenses/fuzzyfox.cpp" "src/defenses/CMakeFiles/jsk_defenses.dir/fuzzyfox.cpp.o" "gcc" "src/defenses/CMakeFiles/jsk_defenses.dir/fuzzyfox.cpp.o.d"
  "/root/repo/src/defenses/jskernel.cpp" "src/defenses/CMakeFiles/jsk_defenses.dir/jskernel.cpp.o" "gcc" "src/defenses/CMakeFiles/jsk_defenses.dir/jskernel.cpp.o.d"
  "/root/repo/src/defenses/legacy.cpp" "src/defenses/CMakeFiles/jsk_defenses.dir/legacy.cpp.o" "gcc" "src/defenses/CMakeFiles/jsk_defenses.dir/legacy.cpp.o.d"
  "/root/repo/src/defenses/registry.cpp" "src/defenses/CMakeFiles/jsk_defenses.dir/registry.cpp.o" "gcc" "src/defenses/CMakeFiles/jsk_defenses.dir/registry.cpp.o.d"
  "/root/repo/src/defenses/tor.cpp" "src/defenses/CMakeFiles/jsk_defenses.dir/tor.cpp.o" "gcc" "src/defenses/CMakeFiles/jsk_defenses.dir/tor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/jsk_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/jsk_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jsk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
