file(REMOVE_RECURSE
  "CMakeFiles/jsk_defenses.dir/chrome_zero.cpp.o"
  "CMakeFiles/jsk_defenses.dir/chrome_zero.cpp.o.d"
  "CMakeFiles/jsk_defenses.dir/deterfox.cpp.o"
  "CMakeFiles/jsk_defenses.dir/deterfox.cpp.o.d"
  "CMakeFiles/jsk_defenses.dir/fuzzyfox.cpp.o"
  "CMakeFiles/jsk_defenses.dir/fuzzyfox.cpp.o.d"
  "CMakeFiles/jsk_defenses.dir/jskernel.cpp.o"
  "CMakeFiles/jsk_defenses.dir/jskernel.cpp.o.d"
  "CMakeFiles/jsk_defenses.dir/legacy.cpp.o"
  "CMakeFiles/jsk_defenses.dir/legacy.cpp.o.d"
  "CMakeFiles/jsk_defenses.dir/registry.cpp.o"
  "CMakeFiles/jsk_defenses.dir/registry.cpp.o.d"
  "CMakeFiles/jsk_defenses.dir/tor.cpp.o"
  "CMakeFiles/jsk_defenses.dir/tor.cpp.o.d"
  "libjsk_defenses.a"
  "libjsk_defenses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsk_defenses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
