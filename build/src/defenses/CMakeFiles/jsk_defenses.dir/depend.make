# Empty dependencies file for jsk_defenses.
# This may be replaced when dependencies are built.
