file(REMOVE_RECURSE
  "libjsk_attacks.a"
)
