file(REMOVE_RECURSE
  "CMakeFiles/jsk_attacks.dir/clocks.cpp.o"
  "CMakeFiles/jsk_attacks.dir/clocks.cpp.o.d"
  "CMakeFiles/jsk_attacks.dir/cve_attacks.cpp.o"
  "CMakeFiles/jsk_attacks.dir/cve_attacks.cpp.o.d"
  "CMakeFiles/jsk_attacks.dir/harness.cpp.o"
  "CMakeFiles/jsk_attacks.dir/harness.cpp.o.d"
  "CMakeFiles/jsk_attacks.dir/raf_attacks.cpp.o"
  "CMakeFiles/jsk_attacks.dir/raf_attacks.cpp.o.d"
  "CMakeFiles/jsk_attacks.dir/registry.cpp.o"
  "CMakeFiles/jsk_attacks.dir/registry.cpp.o.d"
  "CMakeFiles/jsk_attacks.dir/timing_attacks.cpp.o"
  "CMakeFiles/jsk_attacks.dir/timing_attacks.cpp.o.d"
  "libjsk_attacks.a"
  "libjsk_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsk_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
