
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attacks/clocks.cpp" "src/attacks/CMakeFiles/jsk_attacks.dir/clocks.cpp.o" "gcc" "src/attacks/CMakeFiles/jsk_attacks.dir/clocks.cpp.o.d"
  "/root/repo/src/attacks/cve_attacks.cpp" "src/attacks/CMakeFiles/jsk_attacks.dir/cve_attacks.cpp.o" "gcc" "src/attacks/CMakeFiles/jsk_attacks.dir/cve_attacks.cpp.o.d"
  "/root/repo/src/attacks/harness.cpp" "src/attacks/CMakeFiles/jsk_attacks.dir/harness.cpp.o" "gcc" "src/attacks/CMakeFiles/jsk_attacks.dir/harness.cpp.o.d"
  "/root/repo/src/attacks/raf_attacks.cpp" "src/attacks/CMakeFiles/jsk_attacks.dir/raf_attacks.cpp.o" "gcc" "src/attacks/CMakeFiles/jsk_attacks.dir/raf_attacks.cpp.o.d"
  "/root/repo/src/attacks/registry.cpp" "src/attacks/CMakeFiles/jsk_attacks.dir/registry.cpp.o" "gcc" "src/attacks/CMakeFiles/jsk_attacks.dir/registry.cpp.o.d"
  "/root/repo/src/attacks/timing_attacks.cpp" "src/attacks/CMakeFiles/jsk_attacks.dir/timing_attacks.cpp.o" "gcc" "src/attacks/CMakeFiles/jsk_attacks.dir/timing_attacks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/defenses/CMakeFiles/jsk_defenses.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/jsk_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/jsk_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/jsk_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jsk_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
