# Empty compiler generated dependencies file for jsk_attacks.
# This may be replaced when dependencies are built.
